#!/usr/bin/env python3
"""Continuous queries over a live update stream: the stock ticker.

This is the paper's motivating scenario (Sections I and V): a snapshot of
stock quotes followed by an unbounded stream of embedded updates.  The
query asks for IBM's price; the display tracks it continuously:

* a price replacement updates the displayed price in place;
* renaming a quote to IBM makes its price *appear* retroactively;
* renaming it away *erases* it — without the engine ever re-reading the
  stream or buffering non-IBM quotes.

Run:

    python examples/stock_ticker.py
"""

from repro import XFlux
from repro.data.stock import StockTicker


def main() -> None:
    ticker = StockTicker(
        symbols=("IBM", "MSFT", "AAPL"),
        n_updates=12,
        mutable_names=True,       # names may change -> revocable filters
        name_update_fraction=0.5,
        seed=20,
    )

    engine = XFlux('stream()//quote[name="IBM"]/price',
                   mutable_source=True)
    run = engine.start()

    print("query: stream()//quote[name=\"IBM\"]/price\n")
    shown = None
    for i, event in enumerate(ticker.iter_events()):
        run.feed(event)
        text = run.text()
        if text != shown:
            shown = text
            marker = "update" if event.is_update else event.abbrev
            print("[event {:>3} {:>7}] display: {}".format(
                i, marker, text or "(empty)"))
    run.finish()

    print("\nfinal answer:", run.text())
    stats = run.stats()
    print("events processed:", stats["transformer_calls"],
          "| retained state cells:", stats["state_cells"])

    # A second continuous query over the same feed: how many quotes are
    # currently IBM?  The count is adjusted retroactively by each rename.
    print("\nquery: count(stream()//quote[name=\"IBM\"])\n")
    counter = XFlux('count(stream()//quote[name="IBM"])',
                    mutable_source=True).start()
    shown = None
    for event in ticker.iter_events():
        counter.feed(event)
        if counter.text() != shown and counter.text():
            shown = counter.text()
            print("count now:", shown)
    counter.finish()


if __name__ == "__main__":
    main()
