#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables (Section VII).

Runs the nine benchmark queries over synthetic XMark/DBLP documents and
prints the dataset table and the query table in the paper's layout.
Scale with --scale (default 0.02; the paper's documents are roughly
scale 100–200 in these units — allow several hours of pure-Python time
if you go there).

    python examples/paper_tables.py --scale 0.05
"""

import argparse

from repro.bench.harness import Workloads, format_report, run_all


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.02,
                    help="dataset scale factor (default 0.02)")
    ap.add_argument("--queries", nargs="*", default=None,
                    help="subset of Q1..Q9 to run")
    args = ap.parse_args()

    print("generating workloads at scale {} ...".format(args.scale))
    workloads = Workloads(xmark_scale=args.scale, dblp_scale=args.scale)
    datasets = workloads.dataset_stats()
    print("running queries ...")
    rows = run_all(workloads, queries=args.queries)
    print()
    print(format_report(datasets, rows))
    print()
    for row in rows:
        spex = ("(SPEX result {})".format(
            "matches" if row.spex_matches else "DIFFERS")
            if row.spex_matches is not None else "")
        print("{}: {!r} {}".format(row.query, row.result_preview, spex))


if __name__ == "__main__":
    main()
