#!/usr/bin/env python3
"""Quickstart: run streaming XQuery over an XML document.

The engine evaluates queries one event at a time; the result display is
always consistent and can be inspected mid-stream.  Run:

    python examples/quickstart.py
"""

from repro import XFlux, tokenize

CATALOG = """
<catalog>
  <book genre="classic">
    <title>Middlemarch</title><author>Eliot</author><price>9</price>
  </book>
  <book>
    <title>Dubliners</title><author>Joyce</author><price>12</price>
  </book>
  <book>
    <title>Ulysses</title><author>Joyce</author><price>25</price>
  </book>
</catalog>
"""


def main() -> None:
    # One-shot evaluation: parse, compile, run, read the final display.
    print("== titles by Joyce ==")
    result = XFlux('X//book[author="Joyce"]/title').run_xml(CATALOG)
    print(result.text())

    print("\n== count and sum ==")
    print("books:", XFlux("count(X//book)").run_xml(CATALOG).text())
    print("total price:", XFlux("sum(X//price)").run_xml(CATALOG).text())

    print("\n== FLWOR with sorting and construction ==")
    query = """
    <cheap>{
        for $b in X//book
        where $b/price < 20
        order by $b/price
        return <entry>{ $b/title, $b/price }</entry>
    }</cheap>
    """
    print(XFlux(query).run_xml(CATALOG).text())

    print("\n== continuous operation ==")
    # Feed events one at a time and watch the display evolve: the count
    # is displayed from the very first event and replaced as it grows —
    # the paper's unblocked aggregation.
    engine = XFlux("count(X//book)")
    run = engine.start()
    shown = None
    for event in tokenize(CATALOG):
        run.feed(event)
        if run.text() != shown:
            shown = run.text()
            print("display now: {!r}".format(shown))
    run.finish()

    print("\n== execution metrics ==")
    stats = XFlux('X//book[author="Joyce"]/title').run_xml(CATALOG).stats()
    print("transformer calls:", stats["transformer_calls"])
    print("retained state cells:", stats["state_cells"])
    print("pipeline stages:", stats["stages"])


if __name__ == "__main__":
    main()
