#!/usr/bin/env python3
"""The paper's introduction query: sorted, filtered, constructed books.

    <books>{
      for $b in stream()//biblio[publisher = "Wiley"]/books/book
      where $b/author/lastname = "Smith"
      order by $b/price
      return <book>{ $b/title, $b/price }</book>
    }</books>

Books arrive unsorted; each qualified book is inserted at its sorted
position in the display the moment its price is known — the display is a
correctly sorted list at every instant, growing as the stream flows.

Run:

    python examples/bibliography.py
"""

from repro import XFlux, tokenize

BIBLIO = """
<root>
  <biblio>
    <publisher>Wiley</publisher>
    <books>
      <book><author><lastname>Smith</lastname></author>
            <title>Query Processing</title><price>42</price></book>
      <book><author><lastname>Jones</lastname></author>
            <title>Other Things</title><price>7</price></book>
      <book><author><lastname>Smith</lastname></author>
            <title>Stream Systems</title><price>18</price></book>
      <book><author><lastname>Smith</lastname></author>
            <title>XML in Anger</title><price>31</price></book>
    </books>
  </biblio>
  <biblio>
    <publisher>Elsevier</publisher>
    <books>
      <book><author><lastname>Smith</lastname></author>
            <title>Wrong Publisher</title><price>1</price></book>
    </books>
  </biblio>
</root>
"""

QUERY = """
<books>{
  for $b in stream()//biblio[publisher = "Wiley"]/books/book
  where $b/author/lastname = "Smith"
  order by $b/price
  return <book>{ $b/title, $b/price }</book>
}</books>
"""


def main() -> None:
    engine = XFlux(QUERY)
    run = engine.start()

    print("display over time (each line = the display changed):\n")
    shown = None
    for event in tokenize(BIBLIO):
        run.feed(event)
        text = run.text()
        if text != shown:
            shown = text
            print("  " + (text or "(empty)"))
    run.finish()

    print("\nfinal answer:")
    print(run.text())

    # Observations worth making:
    #  * books appear in the display optimistically, move into sorted
    #    position when their price arrives, and the Jones book is erased
    #    as soon as its author is known not to be Smith;
    #  * the Elsevier biblio's books were also emitted optimistically and
    #    were retracted wholesale when its publisher turned out wrong —
    #    the retroactive erasure the paper's introduction describes.
    assert "Wrong Publisher" not in run.text()
    assert "Other Things" not in run.text()


if __name__ == "__main__":
    main()
