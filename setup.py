"""Legacy entry point; the project metadata lives in pyproject.toml.

The evaluation environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` cannot build a PEP-517 editable wheel there; use
``python setup.py develop`` or add ``src/`` to a ``.pth`` file instead.
"""
from setuptools import setup

setup()
