"""Table 2 analogue: the nine benchmark queries.

Per query the paper reports XFlux time, MB/s, SPEX time (where SPEX
supports the query), state-transformer calls ("events") and memory.  Each
benchmark here records the same quantities in extra_info; the SPEX
comparisons are separate benchmarks so the relative shape (e.g. SPEX far
ahead on Q3) is visible directly in the report.
"""

import pytest

from repro.baselines.spex import SpexEngine
from repro.bench.harness import (PAPER_QUERIES, QUERY_DATASET,
                                 SPEX_QUERIES)
from repro.xquery.engine import QueryRun, XFlux


def _run_xflux(workloads, name):
    query = PAPER_QUERIES[name]
    engine = XFlux(query)
    plan = engine.compile()
    events = workloads.events(QUERY_DATASET[name], oids=plan.needs_oids)

    def run():
        fresh = QueryRun(engine.compile())
        fresh.feed_all(events)
        fresh.finish()
        return fresh

    return run, events


@pytest.mark.parametrize("name", list(PAPER_QUERIES))
def test_xflux_query(benchmark, workloads, name):
    run, events = _run_xflux(workloads, name)
    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=0)
    stats = result.stats()
    text = workloads.text(QUERY_DATASET[name])
    secs = benchmark.stats["mean"]
    benchmark.extra_info.update({
        "query": PAPER_QUERIES[name][:60],
        "mb_per_s": round(len(text) / 1e6 / secs, 3) if secs else None,
        "transformer_calls": stats["transformer_calls"],
        "mem_cells": stats["state_cells"]
        + stats["display"]["peak_regions"],
        "result_len": len(result.text()),
    })


@pytest.mark.parametrize("name", SPEX_QUERIES)
def test_spex_query(benchmark, workloads, name):
    query = PAPER_QUERIES[name]
    events = workloads.events(QUERY_DATASET[name])

    def run():
        engine = SpexEngine.from_query(query)
        engine.process_all(events)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=0)
    benchmark.extra_info.update({
        "query": query[:60],
        "events_processed": engine.events_processed,
        "peak_buffered": engine.peak_buffered,
    })


def test_naive_blocking_baseline(benchmark, workloads):
    """The stored-processor stand-in the paper declines to race: full
    materialization, zero output until the end."""
    from repro.baselines.dom_eval import evaluate_to_xml
    from repro.xmlio import parse
    from repro.xquery.parser import parse as parse_query
    text = workloads.xmark_text
    ast = parse_query(PAPER_QUERIES["Q1"])

    def run():
        return evaluate_to_xml(ast, parse(text))

    out = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["result_len"] = len(out)
