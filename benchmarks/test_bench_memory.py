"""Memory-footprint benchmark shape: the Section V trajectory claims.

What ``BENCH_memory.json`` must show, asserted at bench scale:

* the freeze on/off ablation never changes the output stream (the
  module itself raises if it does — here we check the recorded flag);
* with reclamation on, peak retained state is a small fraction of the
  peak with reclamation off, for every paper query and the ticker
  (this is the paper's small-footprint claim for unblocked blocking
  operators, quantified);
* footprint timelines are well-formed: sample sequence numbers are
  non-decreasing and the recorded peak equals the timeline's max.
"""

import pytest

from repro.bench.memory import bench_memory


@pytest.fixture(scope="module")
def payload(workloads):
    return bench_memory(workloads, sample_interval=256,
                        stock_updates=200)


def test_every_row_output_identical(benchmark, payload):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(r["output_identical"] for r in payload["queries"])


def test_freeze_reclaims_peak_state(benchmark, payload):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    reductions = {r["query"]: r["peak_reduction"]
                  for r in payload["queries"]}
    benchmark.extra_info.update(reductions)
    for row in payload["queries"]:
        on = row["freeze_on"]["peak_cells"]
        off = row["freeze_off"]["peak_cells"]
        # Every workload reclaims; the blocking-operator and ticker
        # rows dramatically so.
        assert on <= off, row["query"]
    blocking = [reductions[q] for q in ("Q4", "Q7", "Q9", "stock")]
    assert min(blocking) > 0.5


def test_final_state_grows_without_reclamation(benchmark, payload):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in payload["queries"]:
        assert (row["freeze_off"]["final_cells"]
                >= row["freeze_on"]["final_cells"]), row["query"]


def test_timelines_well_formed(benchmark, payload):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in payload["queries"]:
        for stage in row["freeze_on"]["stages"]:
            samples = stage["samples"]
            assert samples, (row["query"], stage["label"])
            seqs = [s[0] for s in samples]
            assert seqs == sorted(seqs)
            assert stage["peak_cells"] == max(s[1] for s in samples)
            assert stage["peak_regions"] == max(s[2] for s in samples)
