"""Table 1 analogue: dataset size, event count, tokenization time.

The paper reports for XMark (224 MB) and DBLP (318 MB): document size,
SAX events in millions, and the seconds to tokenize.  These benchmarks
regenerate the same row structure for the synthetic datasets.
"""

from repro.xmlio import tokenize


def test_tokenize_xmark(benchmark, workloads):
    text = workloads.xmark_text
    events = benchmark(lambda: len(tokenize(text)))
    benchmark.extra_info["size_mb"] = round(len(text) / 1e6, 3)
    benchmark.extra_info["events"] = events
    assert events > 0


def test_tokenize_dblp(benchmark, workloads):
    text = workloads.dblp_text
    events = benchmark(lambda: len(tokenize(text)))
    benchmark.extra_info["size_mb"] = round(len(text) / 1e6, 3)
    benchmark.extra_info["events"] = events
    assert events > 0


def test_tokenize_incremental_chunks(benchmark, workloads):
    """Streaming intake: same work arriving in 64 KiB chunks."""
    from repro.xmlio import iter_tokenize
    text = workloads.xmark_text
    chunks = [text[i:i + 65536] for i in range(0, len(text), 65536)]

    def run():
        return sum(1 for _ in iter_tokenize(chunks))

    events = benchmark(run)
    assert events > 0
