"""Shared benchmark fixtures.

Scales are deliberately small so the whole suite runs in minutes on a
laptop; set REPRO_BENCH_SCALE to raise them (the paper's documents are
~200x the default).  All measurements that matter for the reproduction
are *relative* (who wins, by what factor); see EXPERIMENTS.md.
"""

import os

import pytest

from repro.bench.harness import Workloads

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


@pytest.fixture(scope="session")
def workloads():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE)
