"""Ablations: the design choices DESIGN.md calls out, measured.

* freeze / mutability analysis (Section V): retained state with and
  without producer freezes;
* unblocked sorting (Section VI-D): first-output latency against a
  blocking sort;
* descendant-or-self (Section VI-C): bufferless operation against an
  explicit buffering implementation;
* update streams vs eager re-evaluation: the cost of one incoming update.
"""

import time

import pytest

from repro.core import Context, Display, Pipeline
from repro.data.stock import StockTicker
from repro.data.xmark import XMarkGenerator
from repro.xmlio import tokenize
from repro.xquery.engine import XFlux


def _run_stock(events):
    engine = XFlux('stream()//quote[name="IBM"]/price',
                   mutable_source=True)
    run = engine.start()
    run.feed_all(events)
    run.finish()
    return run


def test_freeze_state_pruning(benchmark):
    """Section V ablation: producer freezes bound the retained state."""
    n = 300
    with_freeze = StockTicker(n_updates=n, mutable_names=False,
                              freeze_superseded=True).events()
    without = StockTicker(n_updates=n, mutable_names=False,
                          freeze_superseded=False).events()

    run = benchmark.pedantic(lambda: _run_stock(with_freeze), rounds=3,
                             iterations=1)
    cells_frozen = run.stats()["state_cells"]
    cells_open = _run_stock(without).stats()["state_cells"]
    benchmark.extra_info.update({
        "state_cells_with_freeze": cells_frozen,
        "state_cells_without_freeze": cells_open,
    })
    # Without freezes every superseded region keeps state copies in every
    # stage; with them the state is proportional to the live regions.
    assert cells_frozen * 5 < cells_open


def test_sort_unblocking(benchmark):
    """Section VI-D ablation: the sorted display grows continuously."""
    xml = XMarkGenerator(scale=0.02, seed=3).text()
    events = tokenize(xml)
    query = ("for $i in X//item order by $i/quantity "
             "return $i/quantity")
    engine = XFlux(query)

    def first_sorted_output():
        run = engine.start()
        for i, e in enumerate(events):
            run.feed(e)
            if run.display.tree.stats()["events"] > 2:
                return i
        run.finish()
        return len(events)

    at_event = benchmark.pedantic(first_sorted_output, rounds=3,
                                  iterations=1)
    benchmark.extra_info.update({
        "first_sorted_output_at_event": at_event,
        "stream_length": len(events),
    })
    # A blocking sort cannot emit before the end of the stream; the
    # insert-after strategy emits as soon as the first item's key is in.
    assert at_event < len(events) / 10


def test_descendant_buffering(benchmark):
    """Section VI-C ablation: //* without buffering vs with buffering.

    The buffered reference implementation caches each element's pending
    subtrees; the update-stream version keeps only a depth-high state.
    Compare peak auxiliary buffering on a deep document.
    """
    deep = ["<r>"]
    for _ in range(40):
        deep.append("<p>")
    deep.append("x")
    for _ in range(40):
        deep.append("</p>")
    deep.append("</r>")
    text = "".join(deep)
    events = tokenize(text)

    from repro.operators import DescendantStep

    def unblocked():
        ctx = Context()
        ctx.ids.reserve(0)
        out = ctx.fresh_id()
        disp = Display(out)
        pipe = Pipeline(ctx, [DescendantStep(ctx, 0, out, None)], disp)
        pipe.run(events)
        return max(len(w.t.levels) + 2 for w in pipe.wrappers), disp

    def buffered_reference():
        # Classic approach: per open element, buffer the copies of its
        # subtree until it closes.  Track the peak buffered event count.
        stack, peak = [], 0
        out = []
        for e in events:
            if e.abbrev == "sE":
                stack.append([])
            for buf in stack:
                buf.append(e)
            if e.abbrev == "eE":
                done = stack.pop()
                out.append(done)
            peak = max(peak, sum(len(b) for b in stack))
        return peak

    op_state, disp = benchmark.pedantic(unblocked, rounds=3, iterations=1)
    peak_buffered = buffered_reference()
    benchmark.extra_info.update({
        "unblocked_operator_state": op_state,
        "buffered_reference_peak_events": peak_buffered,
    })
    # The buffered version holds O(depth^2) events at the deepest point;
    # the operator state is O(depth).
    assert op_state * 10 < peak_buffered


def test_incremental_vs_reeval(benchmark):
    """Update streams vs recomputing from scratch on every update."""
    base = StockTicker(n_updates=0, mutable_names=False).events()
    updates = StockTicker(n_updates=100, mutable_names=False).events()
    # The suffix after the base snapshot is the update tail (strip the
    # shared close events from base).
    tail = updates[len(base) - 2:]
    query = 'stream()//quote[name="IBM"]/price'

    def incremental():
        engine = XFlux(query, mutable_source=True)
        run = engine.start()
        run.feed_all(base[:-2])
        start = time.perf_counter()
        run.feed_all(tail)
        run.finish()
        return time.perf_counter() - start

    def reevaluate():
        # Re-run the full query once per update (the strawman).
        engine = XFlux(query, mutable_source=True)
        start = time.perf_counter()
        for _ in range(10):  # 10 of the 100 updates, scaled below
            fresh = engine.start()
            fresh.feed_all(updates)
            fresh.finish()
        return (time.perf_counter() - start) * 10

    inc = benchmark.pedantic(incremental, rounds=3, iterations=1)
    ree = reevaluate()
    benchmark.extra_info.update({
        "incremental_secs_for_100_updates": round(inc, 4),
        "reeval_secs_for_100_updates": round(ree, 4),
    })
    assert inc < ree


def test_consumer_opt_out(benchmark):
    """Section V's consumer choice: ignoring updates prunes everything."""
    events = StockTicker(n_updates=300, mutable_names=True,
                         freeze_superseded=False, seed=6).events()
    q = 'stream()//quote[name="IBM"]/price'

    def opted_out():
        run = XFlux(q, ignore_updates=True).start()
        run.feed_all(events)
        run.finish()
        return run

    run = benchmark.pedantic(opted_out, rounds=3, iterations=1)
    tracking = XFlux(q, mutable_source=True).start()
    tracking.feed_all(events)
    tracking.finish()
    benchmark.extra_info.update({
        "state_cells_opted_out": run.stats()["state_cells"],
        "state_cells_tracking": tracking.stats()["state_cells"],
    })
    assert run.stats()["state_cells"] * 3 < tracking.stats()["state_cells"]


def test_scaling_memory_constant(benchmark):
    """Boundedness across scales: Q1's retained state is flat while the
    input grows ~5x (the asymptotic version of the paper's mem column)."""
    from repro.bench.harness import PAPER_QUERIES

    def measure(scale):
        text = XMarkGenerator(scale=scale, seed=13).text()
        run = XFlux(PAPER_QUERIES["Q1"]).run_xml(text)
        return len(text), run.stats()["state_cells"]

    def run_both():
        return measure(0.02), measure(0.10)

    (small, large) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "small_bytes": small[0], "small_cells": small[1],
        "large_bytes": large[0], "large_cells": large[1],
    })
    assert large[0] > 4 * small[0]
    assert large[1] <= small[1] * 2
