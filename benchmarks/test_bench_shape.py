"""Shape checks: the relative structure of the paper's Table 2.

The reproduction is not expected to match the paper's absolute numbers
(Java on a 2008 Pentium 4 vs pure Python); the claims that must hold are
relative:

* the automata baseline is far faster than XFlux on query 3 (the paper
  measures 70 s vs 197 s on its hardware; the compositional ``//*``
  translation re-emits each element once per depth);
* ``//*``-based queries (Q3, Q6) have the largest transformer-call
  counts, an order of magnitude above Q1 (17 M vs 683 M in the paper);
* retained memory stays bounded (sub-MB equivalents) for every query.
"""

import time

import pytest

from repro.baselines.spex import SpexEngine
from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET, run_query
from repro.xquery.engine import XFlux


@pytest.fixture(scope="module")
def table(workloads):
    return {name: run_query(workloads, name) for name in PAPER_QUERIES}


def test_spex_beats_xflux_on_q3(benchmark, table):
    row = table["Q3"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"xflux_secs": row.xflux_secs, "spex_secs": row.spex_secs})
    assert row.spex_secs is not None
    # The paper's gap is ~3x on its scale; ours is larger because Python
    # function-call overhead amplifies the event blow-up.
    assert row.spex_secs * 2 < row.xflux_secs


def test_wildcard_queries_blow_up_call_counts(benchmark, table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    calls = {name: row.calls_m for name, row in table.items()}
    benchmark.extra_info.update(calls)
    # Q3 and Q6 (//*-based) dominate Q1, as in the paper (683M/329M vs
    # 17M there).
    assert calls["Q3"] > 4 * calls["Q1"]
    assert calls["Q6"] > 4 * calls["Q1"]


def test_q1_has_best_xflux_throughput(benchmark, table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rates = {name: row.mb_per_sec for name, row in table.items()
             if QUERY_DATASET[name] == "X"}
    benchmark.extra_info.update(rates)
    assert rates["Q1"] == max(rates.values())


def test_memory_bounded_for_all_queries(benchmark, table, workloads):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mems = {name: row.mem_cells for name, row in table.items()}
    benchmark.extra_info.update(mems)
    for name, row in table.items():
        # Retained state stays a small fraction of the stream (the
        # paper's sub-MB column against multi-hundred-MB inputs).  Q9's
        # sort is the paper's largest consumer too (its key map grows
        # with the item count — "it still requires unbounded state").
        events_in = len(workloads.events(QUERY_DATASET[name]))
        factor = 2 if name == "Q9" else 1
        assert row.mem_cells < events_in * factor, name


def test_spex_results_match_xflux(benchmark, table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ("Q1", "Q2", "Q3", "Q8"):
        assert table[name].spex_matches, name


def test_first_output_latency_vs_blocking(benchmark, workloads):
    """Unblocking claim: XFlux shows its first answer long before the
    blocking baseline shows anything at all."""
    from repro.xmlio import tokenize
    text = workloads.xmark_text
    events = workloads.events("X")
    engine = XFlux(PAPER_QUERIES["Q1"])

    def first_output():
        run = engine.start()
        start = time.perf_counter()
        for i, e in enumerate(events):
            run.feed(e)
            if run.display.tree.stats()["events"] > 0:
                return time.perf_counter() - start, i
        run.finish()
        return time.perf_counter() - start, len(events)

    (latency, at_event) = benchmark.pedantic(first_output, rounds=3,
                                             iterations=1)
    benchmark.extra_info.update({
        "first_output_at_event": at_event,
        "stream_length": len(events),
    })
    # The first qualified item appears early in the stream, not at EOF.
    assert at_event < len(events) / 2
