#!/usr/bin/env python
"""Bench-regression gate: fresh run vs the committed baseline.

Runs the paper-query benchmark (same harness as ``repro bench``) and
compares per-query throughput against a committed ``BENCH_queries.json``
— the one whose ``meta.git_commit`` stamps the tree the numbers came
from.  By default a regression is *reported* (REGRESSION on stderr) but
the exit code stays zero: throughput on shared runners is noisy, and the
committed baseline may have been recorded on different hardware or at a
different scale, so for PR runs the gate is a tripwire, not a verdict.
The nightly CI job passes ``--strict``, which turns a regression into a
non-zero exit so sustained drift actually fails somewhere visible.

    python benchmarks/compare.py --baseline BENCH_queries.json \
        --scale 0.1 --repeats 3 --threshold 1.30
    python benchmarks/compare.py --strict   # nightly: fail on regression
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(
    __file__)), "..", "src"))


def build_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="benchmarks/compare.py",
        description="Compare a fresh benchmark run against a committed "
                    "BENCH_queries.json and fail past a slowdown "
                    "threshold.")
    ap.add_argument("--baseline", default="BENCH_queries.json",
                    help="committed baseline file (default: "
                         "BENCH_queries.json in the cwd)")
    ap.add_argument("--scale", type=float, default=0.1,
                    help="dataset scale for the fresh run (default 0.1; "
                         "a scale differing from the baseline's adds "
                         "noise, which the report flags)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repetitions, best kept (default 3)")
    ap.add_argument("--threshold", type=float, default=1.30,
                    help="fail when geomean slowdown exceeds this "
                         "ratio (default 1.30)")
    ap.add_argument("--queries",
                    help="comma-separated subset, e.g. Q1,Q2 "
                         "(default: every query in the baseline)")
    ap.add_argument("--json", action="store_true",
                    help="emit the comparison as JSON")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero on regression (default: report "
                         "the regression but exit zero, for noisy PR "
                         "runners)")
    return ap


def compare(baseline: dict, fresh: dict, threshold: float) -> dict:
    """Per-query and geomean slowdown of ``fresh`` vs ``baseline``.

    Slowdown is ``baseline_events_per_s / fresh_events_per_s`` — above
    1.0 means the fresh tree is slower.  Queries present in only one
    side are reported but not scored.
    """
    base_rows = {r["query"]: r for r in baseline.get("queries", [])}
    fresh_rows = {r["query"]: r for r in fresh.get("queries", [])}
    shared = [q for q in base_rows if q in fresh_rows]
    ratios = {}
    for q in shared:
        b = base_rows[q].get("events_per_s")
        f = fresh_rows[q].get("events_per_s")
        if b and f:
            ratios[q] = round(b / f, 4)
    geomean = (round(math.exp(sum(math.log(r) for r in ratios.values())
                              / len(ratios)), 4)
               if ratios else None)
    return {
        "baseline_commit": baseline.get("meta", {}).get("git_commit"),
        "baseline_dirty": baseline.get("meta", {}).get("git_dirty"),
        "baseline_scale": baseline.get("meta", {}).get("xmark_scale"),
        "fresh_scale": fresh.get("meta", {}).get("xmark_scale"),
        "scale_mismatch": (baseline.get("meta", {}).get("xmark_scale")
                          != fresh.get("meta", {}).get("xmark_scale")),
        "slowdown_per_query": ratios,
        "geomean_slowdown": geomean,
        "threshold": threshold,
        "regression": (geomean is not None and geomean > threshold),
        "missing_in_fresh": sorted(set(base_rows) - set(fresh_rows)),
        "missing_in_baseline": sorted(set(fresh_rows) - set(base_rows)),
    }


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        print("error: cannot read baseline {}: {}".format(
            args.baseline, exc), file=sys.stderr)
        return 2

    from repro.bench.harness import Workloads
    from repro.bench.record import bench_queries
    queries = (args.queries.split(",") if args.queries
               else [r["query"] for r in baseline.get("queries", [])])
    workloads = Workloads(xmark_scale=args.scale, dblp_scale=args.scale)
    fresh = bench_queries(workloads, repeats=args.repeats,
                          queries=queries)

    report = compare(baseline, fresh, args.threshold)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print("baseline: {} (commit {}{})".format(
            args.baseline, report["baseline_commit"],
            ", dirty" if report["baseline_dirty"] else ""))
        if report["scale_mismatch"]:
            print("note: scale mismatch (baseline {}, fresh {}) — "
                  "ratios are indicative only".format(
                      report["baseline_scale"], report["fresh_scale"]))
        for q, r in sorted(report["slowdown_per_query"].items()):
            print("  {:<4} slowdown {:.4f}{}".format(
                q, r, "  <-- slow" if r > args.threshold else ""))
        print("geomean slowdown: {} (threshold {})".format(
            report["geomean_slowdown"], args.threshold))
    if report["regression"]:
        print("REGRESSION: geomean slowdown {} exceeds threshold {}"
              .format(report["geomean_slowdown"], args.threshold),
              file=sys.stderr)
        if args.strict:
            return 1
        print("(warn-only: pass --strict to fail on regression)",
              file=sys.stderr)
        return 0
    print("ok: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
