"""Tests for the CLI and the min/max aggregates."""

import subprocess
import sys

import pytest

from repro import XFlux
from repro.events import dumps, loads
from repro.data.stock import StockTicker

from tests.helpers import assert_query_matches_naive

DOC = "<r><p>5</p><p>2</p><p>9</p><p>oops</p></r>"


class TestMinMax:
    def test_basic(self):
        assert XFlux("min(X//p)").run_xml(DOC).text() == "2"
        assert XFlux("max(X//p)").run_xml(DOC).text() == "9"

    def test_matches_naive(self, auction_xml):
        assert_query_matches_naive("min(X//quantity)", auction_xml)
        assert_query_matches_naive("max(X//quantity)", auction_xml)
        assert_query_matches_naive(
            'max(X//item[location="Albania"]/quantity)', auction_xml)

    def test_empty_input(self):
        assert XFlux("min(X//nothing)").run_xml(DOC).text() == ""

    def test_continuous_display(self):
        from repro.xmlio import tokenize
        run = XFlux("min(X//p)").start(track_snapshots=True)
        run.feed_all(tokenize(DOC))
        run.finish()
        non_empty = [s for s in run.display.snapshots if s]
        assert non_empty == ["5", "2"]  # improves as lower values arrive

    def test_retraction_dethrones_minimum(self):
        src = ('sS(0) sE(0,"r") '
               'sM(0,1) sE(1,"p") cD(1,"2") eE(1,"p") eM(0,1) '
               'sE(0,"p") cD(0,"5") eE(0,"p") '
               'sR(1,2) sE(2,"p") cD(2,"7") eE(2,"p") eR(1,2) '
               'eE(0,"r") eS(0)')
        run = XFlux("min(stream()//p)", mutable_source=True).start()
        run.feed_all(loads(src))
        run.finish()
        assert run.text() == "5"

    def test_update_improves_maximum(self):
        src = ('sS(0) sE(0,"r") '
               'sM(0,1) sE(1,"p") cD(1,"2") eE(1,"p") eM(0,1) '
               'sR(1,2) sE(2,"p") cD(2,"99") eE(2,"p") eR(1,2) '
               'eE(0,"r") eS(0)')
        run = XFlux("max(stream()//p)", mutable_source=True).start()
        run.feed_all(loads(src))
        run.finish()
        assert run.text() == "99"


def run_cli(args, stdin=""):
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                          input=stdin, capture_output=True, text=True,
                          timeout=120)
    return proc


class TestCLI:
    def test_query_over_stdin(self):
        proc = run_cli(["count(X//p)"], stdin=DOC)
        assert proc.returncode == 0
        assert proc.stdout.strip() == "4"

    def test_query_over_file(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text(DOC)
        proc = run_cli(["X//p", str(doc)])
        assert proc.returncode == 0
        assert proc.stdout.strip().startswith("<p>5</p>")

    def test_events_input_with_updates(self, tmp_path):
        events = StockTicker(symbols=("IBM",), n_updates=3,
                             mutable_names=False, seed=2).events()
        feed = tmp_path / "ticker.events"
        feed.write_text(dumps(events))
        proc = run_cli(["--events", "--mutable-source",
                        "stream()//quote/price", str(feed)])
        assert proc.returncode == 0
        assert proc.stdout.count("<price>") == 1  # final price only

    def test_follow_prints_progression(self):
        proc = run_cli(["--follow", "count(X//p)"], stdin=DOC)
        lines = [l for l in proc.stdout.splitlines() if l]
        assert lines == ["0", "1", "2", "3", "4"]

    def test_stats_flag(self):
        proc = run_cli(["--stats", "count(X//p)"], stdin=DOC)
        assert "transformer_calls=" in proc.stderr

    def test_query_file(self, tmp_path):
        qf = tmp_path / "q.xq"
        qf.write_text("count(X//p)")
        proc = run_cli(["--query-file", str(qf)], stdin=DOC)
        assert proc.stdout.strip() == "4"

    def test_bad_query_reports_error(self):
        proc = run_cli(["for $x in"], stdin=DOC)
        assert proc.returncode == 2
        assert "error:" in proc.stderr

    def test_bad_xml_reports_error(self):
        proc = run_cli(["X//p"], stdin="<a><b></a>")
        assert proc.returncode == 1
        assert "error:" in proc.stderr

    def test_missing_query(self):
        proc = run_cli([], stdin=DOC)
        assert proc.returncode == 2
