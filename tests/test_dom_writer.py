"""Tests for the mini-DOM and the event writer."""

import pytest

from repro.events import loads
from repro.xmlio import (Element, Text, escape_text, forest_from_events,
                         forest_to_xml, parse, tokenize, write_events)


class TestWriter:
    def test_escaping(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_write_filters_by_stream(self):
        evs = loads('sE(0,"a") cD(1,"other") cD(0,"mine") eE(0,"a")')
        assert write_events(evs, stream_id=0) == "<a>mine</a>"

    def test_write_rejects_updates(self):
        with pytest.raises(ValueError):
            write_events(loads('sM(0,1) eM(0,1)'))

    def test_forest_rendering(self):
        evs = loads('sE(0,"a") eE(0,"a") cD(0,"mid") sE(0,"b") eE(0,"b")')
        assert write_events(evs) == "<a></a>mid<b></b>"

    def test_structural_markers_invisible(self):
        evs = loads('sS(0) sT(0) cD(0,"x") eT(0) eS(0)')
        assert write_events(evs) == "x"


class TestDom:
    def test_parse_and_navigate(self):
        root = parse("<a><b>x</b><b>y</b><c><b>z</b></c></a>")
        assert root.tag == "a"
        assert [b.string_value for b in root.child_elements("b")] == \
            ["x", "y"]
        assert len(root.descendants("b")) == 3
        assert root.string_value == "xyz"

    def test_parent_and_ancestors(self):
        root = parse("<a><b><c/></b></a>")
        c = root.descendants("c")[0]
        assert [a.tag for a in c.ancestors()] == ["b", "a"]
        assert c.root() is root

    def test_descendants_or_self_document_order(self):
        root = parse("<a><b><c/></b><d/></a>")
        assert [e.tag for e in root.descendants_or_self()] == \
            ["a", "b", "c", "d"]

    def test_to_xml_roundtrip(self):
        doc = "<a><b>x &amp; y</b><c></c></a>"
        assert parse(doc).to_xml() == doc

    def test_to_events_matches_tokenizer(self):
        doc = "<a><b>x</b></a>"
        assert parse(doc).to_events() == tokenize(doc)[1:-1]

    def test_copy_is_deep(self):
        root = parse("<a><b>x</b></a>")
        dup = root.copy()
        dup.child_elements("b")[0].children[0].text = "changed"
        assert root.string_value == "x"
        assert dup.string_value == "changed"
        assert dup.children[0].parent is dup

    def test_append_strings_become_text(self):
        el = Element("p", ["hello ", Element("b", ["world"])])
        assert el.to_xml() == "<p>hello <b>world</b></p>"

    def test_parse_requires_single_root(self):
        with pytest.raises(Exception):
            parse("<a/><b/>")


class TestForestFromEvents:
    def test_builds_forest(self):
        evs = loads('cD(0,"t") sE(0,"a") cD(0,"x") eE(0,"a")')
        forest = forest_from_events(evs)
        assert isinstance(forest[0], Text)
        assert isinstance(forest[1], Element)
        assert forest_to_xml(forest) == "t<a>x</a>"

    def test_rejects_updates(self):
        with pytest.raises(ValueError):
            forest_from_events(loads('sM(0,1) eM(0,1)'))

    def test_rejects_unbalanced(self):
        with pytest.raises(ValueError):
            forest_from_events(loads('sE(0,"a")'))

    def test_stream_filter(self):
        evs = loads('sE(0,"a") eE(0,"a") sE(1,"b") eE(1,"b")')
        forest = forest_from_events(evs, stream_id=1)
        assert [n.tag for n in forest] == ["b"]
