"""Tests for and/or conditions in predicates and where clauses."""

import pytest

from repro import XFlux
from repro.baselines.spex import SpexError, run_spex
from repro.xmlio import tokenize
from repro.xquery.parser import XQuerySyntaxError, parse

from tests.helpers import assert_query_matches_naive

DOC = """<r>
<item><a>1</a><b>2</b><name>both</name></item>
<item><a>1</a><b>9</b><name>a-only</name></item>
<item><a>9</a><b>2</b><name>b-only</name></item>
<item><a>9</a><b>9</b><name>neither</name></item>
</r>"""


class TestAnd:
    def test_predicate_and(self):
        out = XFlux('X//item[a="1" and b="2"]/name').run_xml(DOC).text()
        assert out == "<name>both</name>"

    def test_where_and(self):
        q = ('for $i in X//item where $i/a = "1" and $i/b = "2" '
             'return $i/name/text()')
        assert XFlux(q).run_xml(DOC).text() == "both"

    def test_matches_naive(self):
        assert_query_matches_naive('X//item[a="1" and b="2"]/name', DOC)
        assert_query_matches_naive(
            'for $i in X//item where $i/a = "1" and $i/b = "9" '
            'return $i/name', DOC)

    def test_spex_supports_and(self):
        q = 'X//item[a="1" and b="2"]/name'
        spex = run_spex(q, tokenize(DOC)).text()
        assert spex == XFlux(q).run_xml(DOC).text()

    def test_and_equals_chained_predicates(self):
        a = XFlux('X//item[a="1" and b="2"]/name').run_xml(DOC).text()
        b = XFlux('X//item[a="1"][b="2"]/name').run_xml(DOC).text()
        assert a == b


class TestOr:
    def test_predicate_or(self):
        out = XFlux('X//item[a="1" or b="2"]/name').run_xml(DOC).text()
        assert out == ("<name>both</name><name>a-only</name>"
                       "<name>b-only</name>")

    def test_where_or(self):
        q = ('for $i in X//item where $i/a = "1" or $i/b = "2" '
             'return $i/name/text()')
        assert XFlux(q).run_xml(DOC).text() == "botha-onlyb-only"

    def test_matches_naive(self):
        assert_query_matches_naive('X//item[a="1" or b="2"]/name', DOC)

    def test_or_with_existence(self):
        doc = "<r><i><opt/></i><i><k>x</k></i><i/></r>"
        assert_query_matches_naive('X//i[opt or k]', doc)

    def test_spex_rejects_or(self):
        with pytest.raises(SpexError):
            run_spex('X//item[a="1" or b="2"]', tokenize(DOC))


class TestSyntax:
    def test_mixed_and_or_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse('X//item[a="1" and b="2" or c="3"]')

    def test_three_way_and(self):
        assert_query_matches_naive(
            'X//item[a="1" and b="2" and name="both"]/name', DOC)


class TestUnderUpdates:
    def test_or_flips_with_updates(self):
        from repro.events import loads
        src = ('sS(0) sE(0,"r") '
               'sE(0,"item") '
               'sM(0,1) sE(1,"a") cD(1,"9") eE(1,"a") eM(0,1) '
               'sE(0,"b") cD(0,"9") eE(0,"b") '
               'sE(0,"name") cD(0,"X") eE(0,"name") eE(0,"item") '
               'sR(1,2) sE(2,"a") cD(2,"1") eE(2,"a") eR(1,2) '
               'eE(0,"r") eS(0)')
        q = 'stream()//item[a="1" or b="2"]/name'
        run = XFlux(q, mutable_source=True).start()
        run.feed_all(loads(src))
        run.finish()
        assert run.text() == "<name>X</name>"

    def test_and_revoked_by_update(self):
        from repro.events import loads
        src = ('sS(0) sE(0,"r") '
               'sE(0,"item") '
               'sM(0,1) sE(1,"a") cD(1,"1") eE(1,"a") eM(0,1) '
               'sE(0,"b") cD(0,"2") eE(0,"b") '
               'sE(0,"name") cD(0,"X") eE(0,"name") eE(0,"item") '
               'sR(1,2) sE(2,"a") cD(2,"9") eE(2,"a") eR(1,2) '
               'eE(0,"r") eS(0)')
        q = 'stream()//item[a="1" and b="2"]/name'
        run = XFlux(q, mutable_source=True).start()
        run.feed_all(loads(src))
        run.finish()
        assert run.text() == ""
