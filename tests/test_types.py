"""Tests for the schema layer and the static type & effect checker.

Covers the DTD parser round-trips (the ``examples/*.dtd`` fixtures are
the source of truth for the bundled generators), type inference over the
paper queries, static emptiness with byte-identical dead-stage
elimination, the update-effect lints, the multi-query short-circuit, and
the CLI surfaces.
"""

from __future__ import annotations

import json
from io import StringIO
from pathlib import Path

import pytest

from repro import XFlux
from repro.analysis import (ElementSchema, SchemaError, TypeCheckError,
                            infer_types, known_schema, optimize_plan,
                            verify_types_against_runtime)
from repro.analysis.projection import ProjectionMatcher, derive_projection
from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET
from repro.cli import main as cli_main
from repro.core.transformer import StructuralRelay
from repro.data import dblp, xmark
from repro.xquery.engine import MultiQueryRun, QueryRun

from tests.conftest import AUCTION_XML, BIB_XML

REPO_ROOT = Path(__file__).resolve().parents[1]
XMARK_DTD_PATH = REPO_ROOT / "examples" / "xmark.dtd"
DBLP_DTD_PATH = REPO_ROOT / "examples" / "dblp.dtd"

#: Adversarial never-match queries with the schema that refutes them.
EMPTY_QUERIES = [
    ("X//nosuchtag/quantity", "xmark", AUCTION_XML),
    ("X/regions/europe/itm", "xmark", AUCTION_XML),
    ('X//item[nosuch="x"]/quantity', "xmark", AUCTION_XML),
    ("X//quantity//item", "xmark", AUCTION_XML),
    ("D//article/booktitle", "dblp", BIB_XML),
]


def _schema_for(name: str) -> str:
    return "dblp" if QUERY_DATASET[name] == "D" else "xmark"


def _doc_for(name: str) -> str:
    return BIB_XML if QUERY_DATASET[name] == "D" else AUCTION_XML


class TestDTDParser:
    def test_fixture_files_match_module_schemas(self):
        """S1: the examples/*.dtd fixtures parse to the exact schemas
        the data modules expose (the modules embed the same DTD)."""
        for path, module in ((XMARK_DTD_PATH, xmark),
                             (DBLP_DTD_PATH, dblp)):
            parsed = ElementSchema.from_dtd(path)
            built_in = module.document_schema()
            assert parsed.children_map() == built_in.children_map()
            assert parsed.root == built_in.root
            assert parsed.closed and built_in.closed
            assert parsed.tags == built_in.tags
            for parent in parsed.tags:
                assert (parsed.repeatable_under(parent)
                        == built_in.repeatable_under(parent))
                assert (parsed.allows_text(parent)
                        == built_in.allows_text(parent))

    def test_element_children_round_trip(self):
        """The legacy hand-coded maps are now DTD-derived."""
        kids = xmark.element_children()
        assert kids["site"] == ("regions",)
        assert "item" in kids["europe"]
        assert dblp.element_children()["dblp"] == ("article",
                                                   "inproceedings")

    def test_inline_text_and_empty_model(self):
        schema = ElementSchema.from_dtd(
            "<!ELEMENT r (a, b*)> <!ELEMENT a (#PCDATA)> "
            "<!ELEMENT b EMPTY>")
        assert schema.root == "r"
        assert schema.closed
        assert schema.children("r") == frozenset({"a", "b"})
        assert schema.is_repeatable("r", "b")
        assert not schema.is_repeatable("r", "a")
        assert schema.allows_text("a")
        assert not schema.allows_text("b")

    def test_attlist_and_comments_skipped(self):
        schema = ElementSchema.from_dtd(
            "<!-- doc --> <!ELEMENT r (a)> "
            "<!ATTLIST r id CDATA #IMPLIED> <!ELEMENT a (#PCDATA)>")
        assert schema.children("r") == frozenset({"a"})

    def test_any_model_rejected(self):
        with pytest.raises(SchemaError):
            ElementSchema.from_dtd("<!ELEMENT r ANY>")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(SchemaError):
            ElementSchema.from_dtd("<!ELEMENT r (a)> <!ELEMENT r (b)>")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SchemaError):
            ElementSchema.from_dtd("<!ELEMENT r (a)> wat")

    def test_missing_file_rejected(self):
        with pytest.raises(SchemaError):
            ElementSchema.from_dtd("/no/such/place.dtd")

    def test_repeatable_and_rigid_regions(self):
        schema = known_schema("xmark")
        # Each region holds item* — the schema's mutable region.
        assert schema.is_repeatable("europe", "item")
        assert "item" in schema.repeatable_under("europe")
        # regions' children have fixed cardinality: rigid positions.
        assert schema.rigid_parents("europe") == frozenset({"regions"})
        assert "europe" in schema.rigid_under("regions")
        # dblp's top level is (inproceedings|article)*: no rigidity.
        assert not known_schema("dblp").rigid_parents("inproceedings")

    def test_descendant_closure(self):
        schema = known_schema("xmark")
        assert "quantity" in schema.descendants("site")
        assert "parlist" in schema.descendants("item")
        # Recursive content models close properly.
        assert "parlist" in schema.descendants("parlist")
        assert schema.descendants("quantity") == frozenset()


class TestKnownSchema:
    def test_names_paths_and_passthrough(self):
        assert known_schema(None) is None
        assert known_schema("xmark").root == "site"
        assert known_schema("dblp").root == "dblp"
        by_path = known_schema(str(XMARK_DTD_PATH))
        assert by_path.closed and by_path.root == "site"
        schema = ElementSchema({"r": ("a",)})
        assert known_schema(schema) is schema

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            known_schema("no-such-schema")


class TestInference:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_paper_queries_infer_clean(self, name):
        plan = XFlux(PAPER_QUERIES[name]).compile()
        report = infer_types(plan, schema=_schema_for(name))
        assert not report.statically_empty
        assert not report.dead_stages
        assert len(report.stages) == len(plan.stages)
        errors = [lint for lint in report.effect_lints
                  if lint["severity"] == "error"]
        assert errors == [], errors

    def test_specific_result_types(self):
        plan = XFlux(PAPER_QUERIES["Q1"]).compile()
        report = infer_types(plan, schema="xmark")
        assert report.source_type.describe() == "(site)*"
        assert report.result_type.describe() == "(quantity)*"

    def test_without_schema_everything_unknown(self):
        plan = XFlux("X//europe//item/quantity").compile()
        report = infer_types(plan)
        assert report.source_type.top
        assert not report.statically_empty

    def test_mutable_source_refused(self):
        plan = XFlux("stream()//a/b", mutable_source=True).compile()
        with pytest.raises(TypeCheckError):
            infer_types(plan, schema="xmark")

    def test_report_serializes(self):
        plan = XFlux(PAPER_QUERIES["Q1"]).compile()
        report = infer_types(plan, schema="xmark")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["schema"] == "xmark"
        assert payload["statically_empty"] is False
        assert payload["stages"][0]["output"]["labels"] == ["europe"]
        assert "type report" in report.render()


class TestEmptiness:
    @pytest.mark.parametrize("query,schema,doc", EMPTY_QUERIES)
    def test_proven_empty_with_proofs(self, query, schema, doc):
        plan = XFlux(query).compile()
        report = infer_types(plan, schema=schema)
        assert report.statically_empty
        assert report.proofs  # a human-readable reason exists

    @pytest.mark.parametrize("query,schema,doc", EMPTY_QUERIES)
    def test_optimized_byte_identical(self, query, schema, doc):
        raw = XFlux(query).run_xml(doc).text()
        opt_engine = XFlux(query, schema=schema)
        assert raw == opt_engine.run_xml(doc).text() == ""
        # The whole chain collapsed to one structural relay.
        plan = opt_engine.compile()
        assert len(plan.stages) == 1
        assert isinstance(plan.stages[0], StructuralRelay)

    def test_empty_queries_on_generated_datasets(self):
        docs = {"xmark": xmark.XMarkGenerator(scale=0.01).text(),
                "dblp": dblp.DBLPGenerator(scale=0.01).text()}
        for query, schema, _ in EMPTY_QUERIES:
            doc = docs[schema]
            assert (XFlux(query, schema=schema).run_xml(doc).text()
                    == XFlux(query).run_xml(doc).text())

    def test_dead_stage_inside_live_plan(self):
        """count() of a provably-empty path is '0', not empty — only
        the dead step is relayed, the aggregate survives."""
        query = "count(X//nosuchtag)"
        report = infer_types(XFlux(query).compile(), schema="xmark")
        assert not report.statically_empty
        assert report.dead_stages == [0]
        engine = XFlux(query, schema="xmark")
        plan = engine.compile()
        assert isinstance(plan.stages[0], StructuralRelay)
        assert engine.run_xml(AUCTION_XML).text() == "0"
        assert XFlux(query).run_xml(AUCTION_XML).text() == "0"

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_emptiness_never_contradicts_runtime_paper(self, name):
        plan = XFlux(PAPER_QUERIES[name]).compile()
        report = infer_types(plan, schema=_schema_for(name))
        run = QueryRun(plan, metrics=True)
        from repro.xmlio.tokenizer import tokenize
        run.feed_all(tokenize(_doc_for(name),
                              emit_oids=plan.needs_oids))
        run.finish()
        assert verify_types_against_runtime(report, run.recorder) == []

    @pytest.mark.parametrize("query,schema,doc", EMPTY_QUERIES)
    def test_emptiness_never_contradicts_runtime_empty(self, query,
                                                       schema, doc):
        plan = XFlux(query).compile()
        report = infer_types(plan, schema=schema)
        run = QueryRun(plan, metrics=True)
        from repro.xmlio.tokenizer import tokenize
        run.feed_all(tokenize(doc, emit_oids=plan.needs_oids))
        run.finish()
        assert verify_types_against_runtime(report, run.recorder) == []


class TestOptimizePlan:
    def test_nothing_provable_returns_same_plan(self):
        plan = XFlux(PAPER_QUERIES["Q1"]).compile()
        assert optimize_plan(plan, schema="xmark") is plan

    def test_mutable_source_untouched(self):
        plan = XFlux("stream()//a/b", mutable_source=True).compile()
        assert optimize_plan(plan, schema="xmark") is plan

    def test_relay_chain_merges(self):
        plan = optimize_plan(XFlux("X//nosuchtag/quantity").compile(),
                             schema="xmark")
        assert [type(s).__name__ for s in plan.stages] \
            == ["StructuralRelay"]

    def test_dtd_path_as_schema(self):
        engine = XFlux("X//nosuchtag/quantity",
                       schema=str(XMARK_DTD_PATH))
        assert len(engine.compile().stages) == 1
        assert engine.run_xml(AUCTION_XML).text() == ""

    def test_compile_escape_hatch(self):
        engine = XFlux("X//nosuchtag/quantity", schema="xmark")
        assert len(engine.compile(optimize=False).stages) == 2


class TestEffectChecks:
    def test_rigid_insert_note_on_fixed_position(self):
        """Q1 navigates into europe — fixed under regions, so a
        document insert at that anchor would break the schema."""
        report = infer_types(XFlux(PAPER_QUERIES["Q1"]).compile(),
                             schema="xmark")
        notes = [lint for lint in report.effect_lints
                 if lint["severity"] == "note"]
        assert any("rigid content-model position" in n["message"]
                   for n in notes)

    def test_no_rigid_note_in_repeatable_region(self):
        """Q8 anchors at inproceedings — repeatable under dblp, a
        legitimate mutable region."""
        report = infer_types(XFlux(PAPER_QUERIES["Q8"]).compile(),
                             schema="dblp")
        assert report.effect_lints == []

    def test_malformed_specs_flagged_as_errors(self):
        plan = XFlux("X/a").compile()
        stage = plan.stages[0]
        watermark = plan.first_runtime_id

        def bogus_facts():
            return {"brackets": (
                {"kind": "sZ", "target": 0, "sub": "dynamic",
                 "freeze": "never", "per": "item"},
                {"kind": "sM", "target": watermark + 7, "sub": "oops",
                 "freeze": "sometimes", "per": "widget"},
                {"kind": "sA", "target": "dynamic", "sub": "dynamic",
                 "freeze": "never", "per": "tuple", "parent": 9},
            )}

        stage.static_facts = bogus_facts
        report = infer_types(plan, schema=None)
        messages = [lint["message"] for lint in report.effect_lints
                    if lint["severity"] == "error"]
        assert any("unknown bracket kind" in m for m in messages)
        assert any("not a compile-time id" in m for m in messages)
        assert any("invalid freeze mode" in m for m in messages)
        assert any("invalid cardinality" in m for m in messages)
        assert any("stream number or 'dynamic'" in m for m in messages)
        assert any("parent must reference" in m for m in messages)

    def test_dead_effect_note_on_empty_stream(self):
        plan = XFlux("X//nosuchtag/quantity").compile()
        dead_stream = plan.stages[0].output_id
        stage = plan.stages[1]

        def facts_with_dead_target():
            return {"brackets": (
                {"kind": "sM", "target": dead_stream, "sub": "dynamic",
                 "freeze": "never", "per": "item"},
            )}

        stage.static_facts = facts_with_dead_target
        report = infer_types(plan, schema="xmark")
        assert any("can never fire" in lint["message"]
                   for lint in report.effect_lints)


class TestMultiQueryTypecheck:
    QUERIES = ["X//europe//item/quantity", "X//nosuchtag/quantity",
               "count(X//item)", "X/regions/europe/itm"]

    def test_statuses_and_byte_identity(self):
        mq = MultiQueryRun(self.QUERIES, schema="xmark", typecheck=True)
        mq.run_xml(AUCTION_XML)
        base = MultiQueryRun(self.QUERIES)
        base.run_xml(AUCTION_XML)
        assert mq.statuses() == ["ok", "empty", "ok", "empty"]
        assert mq.texts() == base.texts()

    def test_empty_members_never_fed(self):
        mq = MultiQueryRun(self.QUERIES, schema="xmark", typecheck=True)
        mq.run_xml(AUCTION_XML)
        for i, status in enumerate(mq.statuses()):
            calls = mq.query_run(i).stats()["transformer_calls"]
            if status == "empty":
                assert calls == 0
            else:
                assert calls > 0
        stats = mq.stats()
        assert stats["static_empty"] == 2
        assert stats["fanout"]["static_empty_pipelines"] == 2
        assert [e["status"] for e in stats["per_query"]] \
            == mq.statuses()

    def test_typecheck_with_projection(self):
        mq = MultiQueryRun(self.QUERIES, schema="xmark", typecheck=True,
                           projection=True)
        mq.run_xml(AUCTION_XML)
        base = MultiQueryRun(self.QUERIES)
        base.run_xml(AUCTION_XML)
        assert mq.texts() == base.texts()

    def test_mutable_member_runs_normally(self):
        engines = [XFlux("X//europe//item/quantity"),
                   XFlux("X//nosuchtag/quantity"),
                   XFlux("X//item/quantity", mutable_source=True)]
        mq = MultiQueryRun(engines, schema="xmark", typecheck=True)
        mq.run_xml(AUCTION_XML)
        assert mq.statuses() == ["ok", "empty", "ok"]
        assert mq.texts()[2]  # the mutable query still produced output

    def test_type_reports_exposed(self):
        mq = MultiQueryRun(self.QUERIES, schema="xmark", typecheck=True)
        assert mq.type_reports[1].statically_empty
        assert not mq.type_reports[0].statically_empty


class TestTypedProjectionClosure:
    def test_descendant_query_prunable_from_dtd(self):
        """A descendant-led query is prunable purely from a parsed DTD
        (no hand-coded map involved)."""
        plan = XFlux(PAPER_QUERIES["Q1"]).compile()
        proj = derive_projection(plan)
        assert not ProjectionMatcher(proj).prunable
        assert ProjectionMatcher(
            proj, schema=str(XMARK_DTD_PATH)).prunable


class TestCLI:
    def _run(self, argv):
        out, err = StringIO(), StringIO()
        rc = cli_main(argv, out=out, err=err)
        return rc, out.getvalue(), err.getvalue()

    def test_types_text_mode(self):
        rc, out, _ = self._run(["analyze", "Q1", "--types",
                                "--schema", "xmark"])
        assert rc == 0
        assert "type report (schema: xmark)" in out
        assert "(quantity)*" in out
        assert "statically empty: no" in out

    def test_types_with_dtd_path(self):
        rc, out, _ = self._run(["analyze", "Q1", "--types",
                                "--schema", str(XMARK_DTD_PATH)])
        assert rc == 0
        assert "(quantity)*" in out

    def test_json_always_has_types_and_fusion(self):
        rc, out, _ = self._run(["analyze", "Q3", "--json"])
        assert rc == 0
        payload = json.loads(out)
        assert "types" in payload
        assert "partition" in payload["fusion"]
        assert payload["types"]["statically_empty"] is False

    def test_json_empty_query(self):
        rc, out, _ = self._run(["analyze", "X//nosuchtag/quantity",
                                "--json", "--schema", "xmark"])
        assert rc == 0
        payload = json.loads(out)
        assert payload["types"]["statically_empty"] is True
        assert payload["types"]["proofs"]

    def test_runtime_cross_check(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text(AUCTION_XML)
        rc, out, _ = self._run(["analyze", "Q1", "--types",
                                "--schema", "xmark",
                                "--input", str(doc)])
        assert rc == 0
        assert "runtime events agree with the inferred types." in out

    def test_unknown_query_name_fails(self):
        for argv in (["analyze", "Q12", "--types"],
                     ["stats", "Q99"]):
            rc, _, err = self._run(argv)
            assert rc == 2
            assert "unknown paper query name" in err

    def test_missing_dtd_fails(self):
        rc, _, err = self._run(["analyze", "Q1", "--types",
                                "--schema", "/no/such/file.dtd"])
        assert rc == 2
        assert "cannot read DTD" in err

    def test_malformed_dtd_fails(self, tmp_path):
        bad = tmp_path / "bad.dtd"
        bad.write_text("<!ELEMENT broken")
        rc, _, err = self._run(["analyze", "Q1", "--types",
                                "--schema", str(bad)])
        assert rc == 2
        assert "error" in err

    def test_types_on_mutable_source_fails(self):
        rc, _, err = self._run(["analyze", "stream()//quote/price",
                                "--mutable-source", "--types"])
        assert rc == 2
        assert "unsound for mutable update sources" in err

    def test_json_mutable_source_records_skip(self):
        rc, out, _ = self._run(["analyze", "stream()//quote/price",
                                "--mutable-source", "--json"])
        assert rc == 0
        payload = json.loads(out)
        assert "skipped" in payload["types"]
