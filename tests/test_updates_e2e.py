"""End-to-end tests of continuous queries over update streams.

The central theorem these tests exercise: for an update stream U and a
query Q, the streaming engine's *final* display equals the naive
evaluation of Q over the *eagerly updated* document, i.e.

    display(XFlux(Q) over U)  ==  naive(Q, dom(apply_updates(U)))

and intermediate displays always correspond to prefixes of the updates.
"""

import pytest

from repro import XFlux, apply_updates
from repro.baselines.dom_eval import evaluate_to_xml
from repro.data.stock import StockTicker
from repro.events import loads
from repro.xmlio import forest_from_events, parse, write_events
from repro.xquery.parser import parse as parse_query


def eager_oracle(query, events):
    """Naive evaluation over the eagerly-updated document."""
    plain = apply_updates(events)
    root = parse("<stream>{}</stream>".format(write_events(plain)))
    # Re-root: queries address the quotes directly via //.
    return evaluate_to_xml(parse_query(query), root)


def run_flux(query, events):
    engine = XFlux(query, mutable_source=True)
    run = engine.start()
    run.feed_all(events)
    run.finish()
    return run


class TestStockTicker:
    @pytest.mark.parametrize("seed", [1, 2, 3, 11])
    def test_price_query_tracks_updates(self, seed):
        events = StockTicker(n_updates=40, mutable_names=False,
                             seed=seed).events()
        query = 'stream()//quote[name="IBM"]/price'
        run = run_flux(query, events)
        assert run.text() == eager_oracle(query, events)

    @pytest.mark.parametrize("seed", [1, 5, 7])
    def test_name_flips_track_updates(self, seed):
        events = StockTicker(n_updates=30, mutable_names=True,
                             name_update_fraction=0.4,
                             seed=seed).events()
        query = 'stream()//quote[name="IBM"]/price'
        run = run_flux(query, events)
        assert run.text() == eager_oracle(query, events)

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_count_under_updates(self, seed):
        events = StockTicker(n_updates=30, mutable_names=True,
                             name_update_fraction=0.5,
                             seed=seed).events()
        query = 'count(stream()//quote[name="IBM"])'
        run = run_flux(query, events)
        assert run.text() == eager_oracle(query, events)

    def test_display_changes_on_price_update(self):
        events = StockTicker(symbols=("IBM",), n_updates=5,
                             mutable_names=False, seed=3).events()
        engine = XFlux('stream()//quote/price', mutable_source=True)
        run = engine.start()
        displays = []
        for e in events:
            run.feed(e)
            if not displays or displays[-1] != run.text():
                displays.append(run.text())
        run.finish()
        # initial price + 5 updates, all rendered over time
        assert len([d for d in displays if "<price>" in d]) >= 3

    def test_memory_stays_bounded_with_freezes(self):
        # Prices mutable, names fixed: the engine keeps state only for
        # the mutable regions (Section V).
        few = StockTicker(n_updates=10, mutable_names=False).events()
        many = StockTicker(n_updates=500, mutable_names=False).events()
        q = 'stream()//quote[name="IBM"]/price'
        r_few = run_flux(q, few)
        r_many = run_flux(q, many)
        cells_few = r_few.stats()["state_cells"]
        cells_many = r_many.stats()["state_cells"]
        # State does not grow with the number of updates (same quotes).
        assert cells_many <= cells_few * 2


class TestHandWrittenStreams:
    def test_intro_scenario_erase_and_reappear(self):
        # The introduction's story: an author update erases the book from
        # the display; a later update brings it back.
        src = ('sS(0) sE(0,"bib") '
               'sE(0,"book") sM(0,1) sE(1,"author") cD(1,"Smith") '
               'eE(1,"author") eM(0,1) sE(0,"title") cD(0,"T1") '
               'eE(0,"title") eE(0,"book") '
               'sR(1,2) sE(2,"author") cD(2,"Jones") eE(2,"author") '
               'eR(1,2) '
               'sR(2,3) sE(3,"author") cD(3,"Smith") eE(3,"author") '
               'eR(2,3) eE(0,"bib") eS(0)')
        events = loads(src)
        engine = XFlux('stream()//book[author="Smith"]/title',
                       mutable_source=True)
        run = engine.start()
        displays = []
        for e in events:
            run.feed(e)
            displays.append(run.text())
        run.finish()
        assert "<title>T1</title>" in displays  # shown initially
        assert "" in displays[displays.index("<title>T1</title>"):]
        assert run.text() == "<title>T1</title>"  # back at the end

    def test_replacement_inside_selected_subtree_updates_display(self):
        src = ('sS(0) sE(0,"r") sE(0,"item") sM(0,1) sE(1,"v") '
               'cD(1,"old") eE(1,"v") eM(0,1) eE(0,"item") '
               'sR(1,2) sE(2,"v") cD(2,"new") eE(2,"v") eR(1,2) '
               'eE(0,"r") eS(0)')
        run = run_flux("stream()//item", loads(src))
        assert run.text() == "<item><v>new</v></item>"

    def test_where_clause_revoked_by_update(self):
        src = ('sS(0) sE(0,"recs") '
               'sE(0,"rec") sM(0,1) sE(1,"k") cD(1,"yes") eE(1,"k") '
               'eM(0,1) sE(0,"v") cD(0,"payload") eE(0,"v") eE(0,"rec") '
               'sR(1,2) sE(2,"k") cD(2,"no") eE(2,"k") eR(1,2) '
               'eE(0,"recs") eS(0)')
        q = 'for $r in stream()//rec where $r/k = "yes" return $r/v'
        run = run_flux(q, loads(src))
        assert run.text() == ""

    def test_eager_oracle_agrees_for_where(self):
        src = ('sS(0) sE(0,"recs") '
               'sE(0,"rec") sM(0,1) sE(1,"k") cD(1,"no") eE(1,"k") '
               'eM(0,1) sE(0,"v") cD(0,"A") eE(0,"v") eE(0,"rec") '
               'sE(0,"rec") sM(0,3) sE(3,"k") cD(3,"yes") eE(3,"k") '
               'eM(0,3) sE(0,"v") cD(0,"B") eE(0,"v") eE(0,"rec") '
               'sR(1,2) sE(2,"k") cD(2,"yes") eE(2,"k") eR(1,2) '
               'eE(0,"recs") eS(0)')
        q = 'for $r in stream()//rec where $r/k = "yes" return $r/v'
        run = run_flux(q, loads(src))
        assert run.text() == eager_oracle(q, loads(src))

    def test_incoming_insert_after_extends_result(self):
        src = ('sS(0) sE(0,"r") sM(0,1) sE(1,"item") cD(1,"a") '
               'eE(1,"item") eM(0,1) '
               'sA(1,2) sE(2,"item") cD(2,"b") eE(2,"item") eA(1,2) '
               'eE(0,"r") eS(0)')
        run = run_flux("count(stream()//item)", loads(src))
        assert run.text() == "2"

    def test_incoming_insert_before_orders_result(self):
        src = ('sS(0) sE(0,"r") sM(0,1) sE(1,"item") cD(1,"second") '
               'eE(1,"item") eM(0,1) '
               'sB(1,2) sE(2,"item") cD(2,"first") eE(2,"item") eB(1,2) '
               'eE(0,"r") eS(0)')
        run = run_flux("stream()//item", loads(src))
        assert run.text() == ("<item>first</item><item>second</item>")


class TestConsumerOptOut:
    """Section V: "the stream consumer [chooses] which updates to accept
    and which ones to ignore" — ignoring makes regions immutable."""

    def test_ignored_updates_are_void(self):
        events = StockTicker(symbols=("IBM",), n_updates=20,
                             mutable_names=False, seed=8).events()
        live = XFlux('stream()//quote/price', mutable_source=True)
        frozen = XFlux('stream()//quote/price', ignore_updates=True)
        live_run = live.start(); live_run.feed_all(events); live_run.finish()
        cold_run = frozen.start(); cold_run.feed_all(events); cold_run.finish()
        # The opted-out consumer keeps the snapshot price.
        assert cold_run.text() != live_run.text()
        snapshot_only = StockTicker(symbols=("IBM",), n_updates=0,
                                    mutable_names=False, seed=8).events()
        base = XFlux('stream()//quote/price').start()
        base.feed_all(snapshot_only); base.finish()
        assert cold_run.text() == base.text()

    def test_ignoring_prunes_all_state(self):
        events = StockTicker(n_updates=100, mutable_names=True,
                             freeze_superseded=False, seed=9).events()
        q = 'stream()//quote[name="IBM"]/price'
        tracking = XFlux(q, mutable_source=True).start()
        tracking.feed_all(events); tracking.finish()
        opted_out = XFlux(q, ignore_updates=True).start()
        opted_out.feed_all(events); opted_out.finish()
        assert (opted_out.stats()["state_cells"]
                < tracking.stats()["state_cells"] / 2)


    def test_opt_out_with_predicates(self):
        # The engine's own generated regions must be unaffected by the
        # consumer's opt-out: predicates still filter correctly.
        events = StockTicker(n_updates=30, mutable_names=True,
                             name_update_fraction=0.5, seed=4).events()
        snapshot = StockTicker(n_updates=0, mutable_names=True,
                               seed=4).events()
        q = 'count(stream()//quote[name="IBM"])'
        opted = XFlux(q, ignore_updates=True).start()
        opted.feed_all(events); opted.finish()
        base = XFlux(q).start()
        base.feed_all(snapshot); base.finish()
        assert opted.text() == base.text() == "1"
