"""Property-based sanitizer tests (hypothesis).

The sanitizer must (a) accept every stream our generators can produce —
plain tokenized documents and update-bearing ticker streams — and (b)
reject single-event mutations of a valid update stream: a dropped
end-element, a toggle inserted after a freeze, a bracket reusing a
frozen region number, a bumped node identity.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro import tokenize
from repro.analysis import check_stream
from repro.data.stock import StockTicker
from repro.events.errors import ProtocolViolation
from repro.events.model import (EE, FREEZE, Event, hide, start_mutable)

TAGS = ("a", "b", "c", "item")
WORDS = ("x", "yy", "hit", "", "z 1")


@st.composite
def xml_trees(draw, depth=3):
    """Random XML document text over a small tag/text alphabet."""
    def element(d):
        tag = draw(st.sampled_from(TAGS))
        if d == 0:
            return "<{0}>{1}</{0}>".format(
                tag, draw(st.sampled_from(WORDS)))
        n = draw(st.integers(min_value=0, max_value=3))
        inner = "".join(element(d - 1) for _ in range(n))
        text = draw(st.sampled_from(WORDS))
        return "<{0}>{1}{2}</{0}>".format(tag, text, inner)
    return "<root>{}</root>".format(element(depth))


class TestAcceptsValidStreams:
    @given(xml_trees())
    @settings(max_examples=60, deadline=None)
    def test_tokenized_documents_pass(self, doc):
        check_stream(tokenize(doc))

    @given(xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_tokenized_documents_with_oids_pass(self, doc):
        check_stream(tokenize(doc, emit_oids=True))

    @given(st.integers(min_value=0, max_value=500),
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_ticker_update_streams_pass(self, seed, mutable_names):
        events = StockTicker(n_updates=25, mutable_names=mutable_names,
                             name_update_fraction=0.4,
                             seed=seed).events()
        check_stream(events)


def _ticker(seed):
    return list(StockTicker(n_updates=25, mutable_names=True,
                            name_update_fraction=0.4,
                            seed=seed).events())


class TestRejectsMutations:
    @given(st.integers(min_value=0, max_value=100), st.data())
    @settings(max_examples=40, deadline=None)
    def test_dropped_end_element_rejected(self, seed, data):
        events = _ticker(seed)
        ee_positions = [i for i, e in enumerate(events)
                        if e.kind == EE]
        pos = data.draw(st.sampled_from(ee_positions))
        with pytest.raises(ProtocolViolation):
            check_stream(events[:pos] + events[pos + 1:])

    @given(st.integers(min_value=0, max_value=100), st.data())
    @settings(max_examples=40, deadline=None)
    def test_toggle_after_freeze_rejected(self, seed, data):
        events = _ticker(seed)
        freeze_positions = [i for i, e in enumerate(events)
                            if e.kind == FREEZE]
        if not freeze_positions:
            return
        pos = data.draw(st.sampled_from(freeze_positions))
        mutated = (events[:pos + 1] + [hide(events[pos].id)]
                   + events[pos + 1:])
        with pytest.raises(ProtocolViolation):
            check_stream(mutated)

    @given(st.integers(min_value=0, max_value=100), st.data())
    @settings(max_examples=40, deadline=None)
    def test_frozen_region_reuse_rejected(self, seed, data):
        events = _ticker(seed)
        freeze_positions = [i for i, e in enumerate(events)
                            if e.kind == FREEZE]
        if not freeze_positions:
            return
        pos = data.draw(st.sampled_from(freeze_positions))
        frozen = events[pos].id
        mutated = (events[:pos + 1]
                   + [start_mutable(events[pos].id, frozen)]
                   + events[pos + 1:])
        with pytest.raises(ProtocolViolation):
            check_stream(mutated)

    @given(xml_trees(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_bumped_oid_rejected(self, doc, data):
        events = list(tokenize(doc, emit_oids=True))
        ee_positions = [i for i, e in enumerate(events)
                        if e.kind == EE and e.oid is not None]
        pos = data.draw(st.sampled_from(ee_positions))
        e = events[pos]
        events[pos] = Event(EE, e.id, tag=e.tag, oid=e.oid + 1)
        with pytest.raises(ProtocolViolation) as info:
            check_stream(events)
        assert info.value.rule == "oid-discipline"
