"""Tests for the FLWOR tuple normalizer and its downstream composition.

ForTuples re-expresses upstream update structure per tuple: spanning
predicate regions are dissolved into per-tuple regions slaved to their
sources, within-item value regions are retargeted and forwarded.  These
tests pin the behaviours that make where/order/construct/concat compose
over predicate-filtered sequences and update streams.
"""

import pytest

from repro import XFlux
from repro.core import Collector, Context, Pipeline
from repro.events import UPDATE_STARTS, loads
from repro.operators import ForTuples
from repro.xmlio import tokenize

from tests.helpers import assert_query_matches_naive

BIBLIO = """<root>
  <biblio><publisher>Wiley</publisher><books>
    <book><author><lastname>Smith</lastname></author>
          <title>T2</title><price>20</price></book>
    <book><author><lastname>Jones</lastname></author>
          <title>T3</title><price>5</price></book>
    <book><author><lastname>Smith</lastname></author>
          <title>T1</title><price>10</price></book>
  </books></biblio>
  <biblio><publisher>Elsevier</publisher><books>
    <book><author><lastname>Smith</lastname></author>
          <title>TX</title><price>1</price></book>
  </books></biblio>
</root>"""

INTRO_QUERY = '''<books>{
  for $b in stream()//biblio[publisher = "Wiley"]/books/book
  where $b/author/lastname = "Smith"
  order by $b/price
  return <book>{ $b/title, $b/price }</book>
}</books>'''


class TestIntroductionQuery:
    def test_final_answer(self):
        out = XFlux(INTRO_QUERY).run_xml(BIBLIO).text()
        assert out == ("<books>"
                       "<book><title>T1</title><price>10</price></book>"
                       "<book><title>T2</title><price>20</price></book>"
                       "</books>")

    def test_elsevier_books_retracted(self):
        run = XFlux(INTRO_QUERY).start(track_snapshots=True)
        from repro.xmlio import tokenize as tok
        run.feed_all(tok(BIBLIO))
        run.finish()
        # The Elsevier book appeared optimistically and was erased when
        # the publisher was known (the paper's introduction scenario).
        assert any("TX" in snap for snap in run.display.snapshots)
        assert "TX" not in run.text()

    def test_matches_naive(self):
        assert_query_matches_naive(INTRO_QUERY, BIBLIO)

    @pytest.mark.parametrize("query", [
        ('for $b in stream()//biblio[publisher = "Wiley"]/books/book '
         'return $b/title'),
        ('for $b in stream()//biblio[publisher = "Wiley"]/books/book '
         'where $b/author/lastname = "Smith" return $b/title'),
        ('for $b in stream()//biblio[publisher = "Wiley"]/books/book '
         'order by $b/price return $b/title'),
        ('for $b in stream()//biblio[publisher = "Wiley"]/books/book '
         'return <book>{ $b/title, $b/price }</book>'),
        ('for $b in stream()//biblio[publisher = "Wiley"]/books/book '
         'where $b/author/lastname = "Smith" order by $b/price '
         'descending return ($b/price/text(), " ", $b/title/text())'),
    ])
    def test_feature_combinations_match_naive(self, query):
        assert_query_matches_naive(query, BIBLIO)


class TestNormalizerStream:
    def _run(self, src_events):
        ctx = Context()
        ctx.ids.reserve(0)
        out = ctx.fresh_id()
        col = Collector()
        pipe = Pipeline(ctx, [ForTuples(ctx, 0, out)], col)
        pipe.run(src_events)
        return col.events, out

    def test_plain_items_get_sealed_tuple_regions(self):
        events, out = self._run(tokenize("<r><a>1</a><a>2</a></r>")[1:-1]
                                if False else
                                loads('sS(0) sE(0,"a") eE(0,"a") '
                                      'sE(0,"a") eE(0,"a") eS(0)'))
        tuples = [e for e in events if e.abbrev == "sT"]
        regions = [e for e in events if e.abbrev == "sM"]
        freezes = [e for e in events if e.abbrev == "freeze"]
        assert len(tuples) == len(regions) == 2
        # Plain items have no revocable source: sealed immediately.
        assert {e.sub for e in regions} == {e.id for e in freezes}

    def test_spanning_bracket_dissolved(self):
        src = ('sS(0) sM(0,9) sE(9,"a") eE(9,"a") sE(9,"a") eE(9,"a") '
               'eM(0,9) eS(0)')
        events, out = self._run(loads(src))
        # The spanning region 9 is gone from the output...
        assert not any(e.sub == 9 or e.id == 9 for e in events
                       if e.is_update)
        # ...but each item got its own region, unsealed (9 never froze).
        regions = [e for e in events if e.abbrev == "sM"]
        assert len(regions) == 2
        frozen = {e.id for e in events if e.abbrev == "freeze"}
        assert not any(r.sub in frozen for r in regions)

    def test_spanning_hide_fans_out(self):
        src = ('sS(0) sM(0,9) sE(9,"a") eE(9,"a") sE(9,"a") eE(9,"a") '
               'eM(0,9) hide(9) show(9) freeze(9) eS(0)')
        events, _ = self._run(loads(src))
        wids = [e.sub for e in events if e.abbrev == "sM"]
        hidden = [e.id for e in events if e.abbrev == "hide"]
        shown = [e.id for e in events if e.abbrev == "show"]
        frozen = {e.id for e in events if e.abbrev == "freeze"}
        assert sorted(hidden) == sorted(wids)
        assert sorted(shown) == sorted(wids)
        assert set(wids) <= frozen  # released once the source sealed

    def test_items_born_inside_hidden_region_start_hidden(self):
        src = ('sS(0) sM(0,9) sE(9,"a") eE(9,"a") eM(0,9) hide(9) '
               'sB(9,10) sE(10,"a") eE(10,"a") eB(9,10) eS(0)')
        # Region 10 inserts before hidden region 9... items under 9 were
        # hidden; region 10 is separate (visible).
        events, _ = self._run(loads(src))
        wids = [e.sub for e in events if e.abbrev == "sM"]
        hidden = [e.id for e in events if e.abbrev == "hide"]
        assert len(wids) == 2
        assert len(hidden) == 1

    def test_within_item_bracket_retargeted(self):
        src = ('sS(0) sE(0,"a") sM(0,5) sE(5,"v") cD(5,"x") eE(5,"v") '
               'eM(0,5) eE(0,"a") eS(0)')
        events, _ = self._run(loads(src))
        inner = [e for e in events if e.is_update and e.sub == 5]
        assert inner  # forwarded
        wid = next(e.sub for e in events if e.abbrev == "sM"
                   and e.sub != 5)
        assert inner[0].id == wid  # retargeted into the item's region

    def test_replacement_content_not_itemized(self):
        src = ('sS(0) sE(0,"a") sM(0,5) sE(5,"v") cD(5,"x") eE(5,"v") '
               'eM(0,5) eE(0,"a") '
               'sR(5,6) sE(6,"v") cD(6,"y") eE(6,"v") eR(5,6) eS(0)')
        events, _ = self._run(loads(src))
        tuples = [e for e in events if e.abbrev == "sT"]
        assert len(tuples) == 1  # the replacement is not a new tuple
        # Replacement content keeps its region number.
        assert any(e.id == 6 and e.text == "y" for e in events)

    def test_replacing_spanning_region_erases_old_items(self):
        src = ('sS(0) sM(0,9) sE(9,"a") cD(9,"old") eE(9,"a") eM(0,9) '
               'sR(9,10) sE(10,"a") cD(10,"new") eE(10,"a") eR(9,10) '
               'eS(0)')
        events, _ = self._run(loads(src))
        tuples = [e for e in events if e.abbrev == "sT"]
        assert len(tuples) == 2  # old item + its replacement item
        hides = [e for e in events if e.abbrev == "hide"]
        assert len(hides) == 1  # the old item was erased


class TestFLWOROverUpdateStreams:
    def test_where_with_construct_under_updates(self):
        src = ('sS(0) sE(0,"recs") '
               'sE(0,"rec") sM(0,1) sE(1,"k") cD(1,"no") eE(1,"k") '
               'eM(0,1) sE(0,"v") cD(0,"A") eE(0,"v") eE(0,"rec") '
               'sR(1,2) sE(2,"k") cD(2,"yes") eE(2,"k") eR(1,2) '
               'eE(0,"recs") eS(0)')
        q = ('for $r in stream()//rec where $r/k = "yes" '
             'return <hit>{ $r/v }</hit>')
        run = XFlux(q, mutable_source=True).start()
        run.feed_all(loads(src))
        run.finish()
        assert run.text() == "<hit><v>A</v></hit>"

    def test_where_construct_revoked_under_updates(self):
        src = ('sS(0) sE(0,"recs") '
               'sE(0,"rec") sM(0,1) sE(1,"k") cD(1,"yes") eE(1,"k") '
               'eM(0,1) sE(0,"v") cD(0,"A") eE(0,"v") eE(0,"rec") '
               'sR(1,2) sE(2,"k") cD(2,"no") eE(2,"k") eR(1,2) '
               'eE(0,"recs") eS(0)')
        q = ('for $r in stream()//rec where $r/k = "yes" '
             'return <hit>{ $r/v }</hit>')
        run = XFlux(q, mutable_source=True).start()
        run.feed_all(loads(src))
        run.finish()
        assert run.text() == ""
