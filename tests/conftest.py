"""Shared fixtures and differential-testing helpers."""

from __future__ import annotations

import pytest

from repro import XFlux, parse_xml, tokenize
from repro.baselines.dom_eval import evaluate_to_xml
from repro.core import Context
from repro.xquery.parser import parse as parse_query

AUCTION_XML = """<site><regions><europe>
<item><location>Albania</location><quantity>5</quantity>\
<payment>Cash</payment></item>
<item><location>France</location><quantity>7</quantity>\
<payment>Credit</payment></item>
<item><location>Albania</location><quantity>2</quantity>\
<payment>Cash</payment></item>
</europe><asia>
<item><location>Albania</location><quantity>9</quantity>\
<payment>Cash</payment></item>
</asia></regions></site>"""

BIB_XML = """<dblp>
<inproceedings><author>John Smith</author><title>Paper B</title>\
<year>1999</year></inproceedings>
<inproceedings><author>Jane Doe</author><title>Paper X</title>\
<year>1997</year></inproceedings>
<inproceedings><author>Adam Smith</author><title>Paper A</title>\
<year>1995</year></inproceedings>
</dblp>"""

RECURSIVE_XML = ("<r><part>a<part>b<part>c</part></part></part>"
                 "<part>d</part><widget><part>e</part></widget></r>")


@pytest.fixture
def auction_xml():
    return AUCTION_XML


@pytest.fixture
def bib_xml():
    return BIB_XML


@pytest.fixture
def recursive_xml():
    return RECURSIVE_XML


@pytest.fixture
def ctx():
    context = Context()
    context.ids.reserve(0)
    return context
