"""Tests for the naive DOM evaluator and the SPEX-style automata engine."""

import pytest

from repro import XFlux, parse_xml, tokenize
from repro.baselines.dom_eval import (EvalError, descendants_postorder,
                                      evaluate, evaluate_to_xml)
from repro.baselines.spex import (SpexEngine, SpexError, compile_path,
                                  run_spex)
from repro.xquery.parser import parse


class TestDescendantsPostorder:
    def test_nested_before_enclosing(self):
        root = parse_xml("<a><b><c/></b><d/></a>")
        assert [e.tag for e in descendants_postorder(root, None)] == \
            ["c", "b", "d"]

    def test_tag_filter(self):
        root = parse_xml("<r><p>1<p>2</p></p><q><p>3</p></q></r>")
        assert [e.string_value
                for e in descendants_postorder(root, "p")] == \
            ["2", "12", "3"]


class TestNaiveEvaluator:
    def test_path_evaluation(self, auction_xml):
        root = parse_xml(auction_xml)
        out = evaluate(parse("X//europe/item/location"), root)
        assert [n.string_value for n in out] == \
            ["Albania", "France", "Albania"]

    def test_predicate(self, auction_xml):
        root = parse_xml(auction_xml)
        out = evaluate(parse('X//item[quantity="9"]/location'), root)
        assert [n.string_value for n in out] == ["Albania"]

    def test_flwor_with_order(self, auction_xml):
        root = parse_xml(auction_xml)
        text = evaluate_to_xml(parse(
            "for $i in X//item order by $i/quantity "
            "return $i/quantity/text()"), root)
        assert text == "2579"

    def test_construction_copies_nodes(self, auction_xml):
        root = parse_xml(auction_xml)
        out = evaluate(parse("<w>{ X//asia/item/location }</w>"), root)
        assert out[0].to_xml() == "<w><location>Albania</location></w>"
        # The original tree is untouched (deep copies).
        assert root.descendants("location")[0].parent.tag == "item"

    def test_aggregates(self, auction_xml):
        root = parse_xml(auction_xml)
        assert evaluate_to_xml(parse("count(X//item)"), root) == "4"
        assert evaluate_to_xml(parse("sum(X//quantity)"), root) == "23"
        assert evaluate_to_xml(parse("avg(X//quantity)"), root) == "5.75"

    def test_unbound_variable_raises(self, auction_xml):
        with pytest.raises(EvalError):
            evaluate(parse("$x/title"), parse_xml(auction_xml))

    def test_parent_and_ancestor(self, auction_xml):
        root = parse_xml(auction_xml)
        assert evaluate_to_xml(
            parse('count(X//item[location="Albania"]/..)'), root) == "2"
        # items x4 + europe + asia + regions (site is the root/context)
        assert evaluate_to_xml(
            parse('count(X//location/ancestor::*)'), root) == "7"


class TestSpexCompile:
    def test_plain_path(self):
        steps, is_count = compile_path(parse("X//a/b"))
        assert not is_count
        assert [(s.axis, s.tag) for s in steps] == \
            [("descendant", "a"), ("child", "b")]

    def test_count_wrapper(self):
        _, is_count = compile_path(parse("count(X//a)"))
        assert is_count

    def test_predicates_attach_to_their_step(self):
        steps, _ = compile_path(parse('X//a[x="1"]/b'))
        assert len(steps[0].predicates) == 1
        assert not steps[1].predicates

    def test_rejects_backward_axes(self):
        with pytest.raises(SpexError):
            compile_path(parse("X//a/.."))

    def test_rejects_flwor(self):
        with pytest.raises(SpexError):
            compile_path(parse("for $x in X//a return $x"))


class TestSpexExecution:
    @pytest.mark.parametrize("query", [
        "X//item/location",
        'X//item[location="Albania"]',
        'X//europe//item[location="Albania"]/quantity',
        'X//item[location="Albania"][payment="Cash"]/location',
        'X//*[location="Albania"]/quantity',
        'count(X//item[location="Albania"])',
        "X//item[payment]/quantity",
        'X//item[contains(location,"ban")]/quantity',
        "count(X//*)",
        "X/regions/europe/item/quantity",
    ])
    def test_matches_xflux(self, query, auction_xml):
        spex = run_spex(query, tokenize(auction_xml)).text()
        flux = XFlux(query).run_xml(auction_xml).text()
        assert spex == flux, (query, spex, flux)

    def test_recursive_duplicate_semantics_differ(self, recursive_xml):
        # A known, documented divergence: the holistic automaton matches
        # each node once (XPath node-set semantics), while the
        # compositional step-at-a-time translation — like the paper's —
        # emits one copy per derivation on recursive data.
        spex = run_spex("count(X//part//part)",
                        tokenize(recursive_xml)).text()
        flux = XFlux("count(X//part//part)").run_xml(recursive_xml).text()
        assert spex == "2"   # {b, c} as a node set
        assert flux == "3"   # b, c (under a) + c (under b)

    def test_buffering_is_observable(self, auction_xml):
        engine = SpexEngine.from_query('X//item[location="Albania"]')
        engine.process_all(tokenize(auction_xml))
        assert engine.peak_buffered >= 1

    def test_events_processed_counted(self, auction_xml):
        engine = run_spex("count(X//item)", tokenize(auction_xml))
        assert engine.events_processed > 0
