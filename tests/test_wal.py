"""Write-ahead log unit tests: record round-trips, torn tails,
mid-log corruption, checkpoint-gated rotation, and bounded retention.

The durability contract under test (DESIGN.md section 14): every
record reads back exactly as written; a crash that tears the final
record is repaired by truncation without losing any earlier record;
corruption anywhere else refuses to replay; and rotation never drops a
frame a recovery could still need.
"""

from __future__ import annotations

import os

import pytest

from repro.events import codec
from repro.fault.wal import (R_CKPT, R_EOS, R_FRAME, R_META, R_STATUS,
                             WalError, WriteAheadLog, iter_wal_records,
                             list_segments, scan_wal)
from repro.xmlio import tokenize


def _batches(n_batches: int, events_per: int = 4):
    """Deterministic encoded batch payloads, one per frame."""
    out = []
    for i in range(n_batches):
        doc = "<r>" + "<i>{}</i>".format(i) * events_per + "</r>"
        events = tokenize(doc)[: events_per]
        out.append(codec.encode_batch(events))
    return out


def _write_log(directory, n_frames=5, ckpt_at=(), statuses=(),
               eos=False, **wal_opts):
    wal = WriteAheadLog(str(directory), **wal_opts)
    wal.begin({"kind": "test", "queries": ["q"]})
    wal.register_shards([None])
    for seq, payload in enumerate(_batches(n_frames), start=1):
        wal.log_frame(seq, payload)
        if seq in ckpt_at:
            wal.checkpoint(b"CKPT-BLOB-%d" % seq, seq)
        for query, at in statuses:
            if at == seq:
                wal.status(query, {"error_type": "Boom",
                                   "message": "m"}, seq)
    if eos:
        wal.eos()
    wal.close()
    return wal


class TestRecordRoundTrip:
    def test_scan_reproduces_everything(self, tmp_path):
        payloads = _batches(4)
        _write_log(tmp_path, n_frames=4, ckpt_at=(2,),
                   statuses=[(1, 3)], eos=True)
        state = scan_wal(str(tmp_path))
        assert state.manifest["kind"] == "test"
        assert state.manifest["wal_version"] == 1
        assert sorted(state.frames) == [1, 2, 3, 4]
        for seq, payload in enumerate(payloads, start=1):
            assert state.frames[seq] == payload
        assert state.checkpoints[None] == (2, b"CKPT-BLOB-2")
        assert state.statuses == [{"query": 1, "error_type": "Boom",
                                   "message": "m", "at_seq": 3}]
        assert state.eos_seq == 4
        assert state.truncated is None
        assert state.last_frame == 4
        assert state.events_logged() == 16

    def test_record_types_in_order(self, tmp_path):
        _write_log(tmp_path, n_frames=2, ckpt_at=(2,), eos=True)
        types = [r.rtype for r in iter_wal_records(str(tmp_path))]
        assert types == [R_META, R_FRAME, R_FRAME, R_CKPT, R_EOS]

    def test_frame_bytes_is_the_wire_format(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.begin({"kind": "test"})
        payload = _batches(1)[0]
        wal.log_frame(1, payload)
        assert wal.frame_bytes(1) == codec.frame_checked(payload, 1)
        wal.close()

    def test_sequence_gap_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.begin({"kind": "test"})
        wal.log_frame(1, b"p")
        with pytest.raises(WalError) as excinfo:
            wal.log_frame(3, b"p")
        assert excinfo.value.reason == "bad-record"
        wal.close()

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.begin({"kind": "test"})
        wal.close()
        with pytest.raises(WalError) as excinfo:
            wal.log_frame(1, b"p")
        assert excinfo.value.reason == "closed"

    def test_existing_log_refused(self, tmp_path):
        _write_log(tmp_path, n_frames=1)
        with pytest.raises(WalError) as excinfo:
            WriteAheadLog(str(tmp_path))
        assert excinfo.value.reason == "exists"


class TestTornTail:
    def _tear(self, tmp_path, drop: int):
        """Append a record then chop ``drop`` bytes off the segment."""
        _write_log(tmp_path, n_frames=3, eos=False)
        (seg,) = list_segments(str(tmp_path))
        extra = codec.frame_checked(bytes([R_FRAME]) + b"torn", 4)
        with open(seg, "ab") as fh:
            fh.write(extra[: len(extra) - drop])
        return seg

    @pytest.mark.parametrize("drop", [1, 4, 10])
    def test_unrepai_red_scan_names_the_tear(self, tmp_path, drop):
        seg = self._tear(tmp_path, drop)
        with pytest.raises(WalError) as excinfo:
            list(iter_wal_records(str(tmp_path), repair=False))
        assert excinfo.value.reason == "torn-tail"
        assert excinfo.value.segment == seg

    @pytest.mark.parametrize("drop", [1, 4, 10])
    def test_repair_truncates_and_keeps_the_prefix(self, tmp_path, drop):
        seg = self._tear(tmp_path, drop)
        torn_size = os.path.getsize(seg)
        state = scan_wal(str(tmp_path), repair=True)
        assert sorted(state.frames) == [1, 2, 3]
        assert state.truncated is not None
        assert state.truncated["segment"] == seg
        assert state.truncated["bytes_dropped"] > 0
        assert os.path.getsize(seg) < torn_size
        # After repair the log is clean: a second scan sees no tear.
        again = scan_wal(str(tmp_path))
        assert again.truncated is None
        assert sorted(again.frames) == [1, 2, 3]

    def test_scan_without_repair_raises(self, tmp_path):
        self._tear(tmp_path, 3)
        with pytest.raises(WalError) as excinfo:
            scan_wal(str(tmp_path), repair=False)
        assert excinfo.value.reason == "torn-tail"


class TestMidLogCorruption:
    def test_flipped_byte_is_corrupt_not_torn(self, tmp_path):
        _write_log(tmp_path, n_frames=3, eos=True)
        (seg,) = list_segments(str(tmp_path))
        data = bytearray(open(seg, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(seg, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(WalError) as excinfo:
            scan_wal(str(tmp_path))
        assert excinfo.value.reason == "corrupt"

    def test_truncated_nonfinal_segment_is_corrupt(self, tmp_path):
        # Force one rotation so two segments would exist; simulate a
        # mid-log hole by chopping the tail off the *first* of two
        # segments instead of the last.
        _write_log(tmp_path, n_frames=3, eos=False)
        (seg1,) = list_segments(str(tmp_path))
        seg2 = os.path.join(str(tmp_path), "wal-00000002.seg")
        with open(seg2, "wb") as fh:
            fh.write(codec.frame_checked(bytes([R_EOS]), 3))
        with open(seg1, "r+b") as fh:
            fh.truncate(os.path.getsize(seg1) - 5)
        with pytest.raises(WalError) as excinfo:
            scan_wal(str(tmp_path))
        assert excinfo.value.reason == "corrupt"

    def test_empty_directory_is_not_a_log(self, tmp_path):
        with pytest.raises(WalError) as excinfo:
            scan_wal(str(tmp_path))
        assert excinfo.value.reason == "not-a-log"

    def test_missing_manifest_is_not_a_log(self, tmp_path):
        seg = os.path.join(str(tmp_path), "wal-00000001.seg")
        with open(seg, "wb") as fh:
            fh.write(codec.frame_checked(bytes([R_FRAME]) + b"p", 1))
        with pytest.raises(WalError) as excinfo:
            scan_wal(str(tmp_path))
        assert excinfo.value.reason == "not-a-log"


class TestRotation:
    def test_rotation_waits_for_a_checkpoint(self, tmp_path):
        # Tiny segment budget but no checkpoint: the floor stays 0, so
        # the log must never rotate (a rotation would discard frames a
        # replay still needs).
        wal = WriteAheadLog(str(tmp_path), segment_bytes=64)
        wal.begin({"kind": "test"})
        wal.register_shards([None])
        for seq, payload in enumerate(_batches(6), start=1):
            wal.log_frame(seq, payload)
        assert wal.rotations == 0
        assert len(list_segments(str(tmp_path))) == 1
        wal.close()

    def test_rotation_bounds_the_log_and_keeps_the_tail(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_bytes=256)
        wal.begin({"kind": "test", "queries": ["q"]})
        wal.register_shards([None])
        payloads = _batches(12)
        for seq, payload in enumerate(payloads, start=1):
            wal.log_frame(seq, payload)
            if seq % 4 == 0:
                wal.checkpoint(b"B%d" % seq, seq)
        assert wal.rotations >= 1
        # Only the newest segment survives; it is self-sufficient.
        assert len(list_segments(str(tmp_path))) == 1
        state = scan_wal(str(tmp_path))
        assert state.manifest["kind"] == "test"
        floor = state.checkpoints[None][0]
        # Every frame past the newest checkpoint floor is replayable
        # and byte-identical to what was logged.
        for seq in range(floor + 1, 13):
            assert state.frames[seq] == payloads[seq - 1]
        wal.close()

    def test_rotated_log_stays_smaller_than_unrotated(self, tmp_path):
        rotated_dir = tmp_path / "rot"
        unrotated_dir = tmp_path / "flat"
        for directory, seg_bytes in ((rotated_dir, 256),
                                     (unrotated_dir, 1 << 30)):
            wal = WriteAheadLog(str(directory), segment_bytes=seg_bytes)
            wal.begin({"kind": "test"})
            wal.register_shards([None])
            for seq, payload in enumerate(_batches(40), start=1):
                wal.log_frame(seq, payload)
                if seq % 4 == 0:
                    wal.checkpoint(b"B", seq)
            wal.close()
        rotated = sum(os.path.getsize(p)
                      for p in list_segments(str(rotated_dir)))
        unrotated = sum(os.path.getsize(p)
                        for p in list_segments(str(unrotated_dir)))
        assert rotated < unrotated

    def test_frame_payload_survives_pruning_via_disk(self, tmp_path):
        # After a checkpoint prunes the in-memory copy, frame_payload
        # falls back to scanning the segments.
        wal = WriteAheadLog(str(tmp_path))
        wal.begin({"kind": "test"})
        wal.register_shards([None])
        payloads = _batches(3)
        for seq, payload in enumerate(payloads, start=1):
            wal.log_frame(seq, payload)
        wal.checkpoint(b"B", 3)
        assert wal.stats()["retained_payloads"] == 0
        assert wal.frame_payload(2) == payloads[1]
        wal.close()


class TestScanAbsorb:
    def test_newest_checkpoint_wins(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.begin({"kind": "test"})
        wal.register_shards([0, 1])
        wal.log_frame(1, b"p1")
        wal.checkpoint(b"old0", 1, shard=0)
        wal.log_frame(2, b"p2")
        wal.checkpoint(b"new0", 2, shard=0)
        wal.checkpoint(b"only1", 2, shard=1)
        wal.close()
        state = scan_wal(str(tmp_path))
        assert state.checkpoints[0] == (2, b"new0")
        assert state.checkpoints[1] == (2, b"only1")

    def test_whole_process_key_is_none(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.begin({"kind": "test"})
        wal.log_frame(1, b"p1")
        wal.checkpoint(b"blob", 1)
        wal.close()
        state = scan_wal(str(tmp_path))
        assert list(state.checkpoints) == [None]
