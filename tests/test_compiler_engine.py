"""Tests for the compiler and the XFlux engine facade."""

import pytest

from repro import CompileError, XFlux
from repro.operators import (AncestorJoin, CountItems, DescendantStep,
                             Predicate, SortTuples, Tee)
from repro.xquery.compiler import Compiler
from repro.xquery.parser import parse

from tests.helpers import assert_query_matches_naive, flux_result


class TestPlans:
    def test_plan_stage_shapes(self):
        plan = XFlux('X//item[a="1"]/b').compile()
        kinds = [type(s).__name__ for s in plan.stages]
        assert kinds == ["DescendantStep", "Predicate", "ChildStep"]

    def test_backward_plan_inserts_source_tee(self):
        plan = XFlux("count(X//item/..)").compile()
        assert isinstance(plan.stages[0], Tee)
        assert plan.needs_oids
        assert any(isinstance(s, AncestorJoin) for s in plan.stages)
        assert isinstance(plan.stages[-1], CountItems)

    def test_forward_plan_needs_no_oids(self):
        assert not XFlux("X//item").compile().needs_oids

    def test_order_by_plan_sorts_after_construction(self):
        plan = XFlux('for $d in D//r order by $d/k return '
                     '<e>{ $d/v }</e>').compile()
        names = [type(s).__name__ for s in plan.stages]
        assert names.index("TupleConstruct") < names.index("SortTuples")

    def test_plans_are_single_use(self):
        engine = XFlux("X//item")
        p1, p2 = engine.compile(), engine.compile()
        assert p1.result_id != p2.result_id or p1.ctx is not p2.ctx


class TestCompileErrors:
    def test_unbound_variable(self):
        with pytest.raises(CompileError):
            XFlux("$nope/title").compile()

    def test_literal_outside_flwor(self):
        with pytest.raises(CompileError):
            XFlux('"just a string"').compile()

    def test_backward_axis_in_condition(self):
        with pytest.raises(CompileError):
            XFlux('X//item[a/ancestor::b]').compile()

    def test_foreign_variable_in_where(self):
        with pytest.raises(CompileError):
            XFlux('for $a in X//p return '
                  'for $b in X//q where $a/x = "1" return $b').compile()

    def test_top_level_comparison(self):
        with pytest.raises(CompileError):
            XFlux('X//a = "b"').compile()


class TestEngineFacade:
    def test_run_xml_returns_queryrun(self, auction_xml):
        run = XFlux("count(X//item)").run_xml(auction_xml)
        assert run.text() == "4"
        stats = run.stats()
        assert stats["transformer_calls"] > 0
        assert stats["stages"] >= 1
        assert "display" in stats

    def test_continuous_feeding(self, auction_xml):
        from repro.xmlio import tokenize
        engine = XFlux("count(X//item)")
        run = engine.start()
        seen = []
        for e in tokenize(auction_xml):
            run.feed(e)
            seen.append(run.text())
        run.finish()
        assert seen[-1] == "4"
        assert "2" in seen  # intermediate counts were displayed

    def test_on_change_callback(self, auction_xml):
        calls = []
        XFlux("count(X//item)").run_xml(
            auction_xml, on_change=lambda e, d: calls.append(e))
        assert calls

    def test_accepts_preparsed_ast(self, auction_xml):
        engine = XFlux(parse("count(X//item)"))
        assert engine.run_xml(auction_xml).text() == "4"


class TestQueriesAgainstOracle:
    """Differential tests beyond the paper's nine queries."""

    @pytest.mark.parametrize("query", [
        "X//item",
        "X//item/location",
        "X//europe/item",
        "X//*",
        'X//item[location="Albania"]',
        'X//item[location!="Albania"]/location',
        'X//item[quantity>"4"]/quantity',
        'X//item[quantity<="5"]/quantity',
        "X//item[payment]/quantity",
        "count(X//regions/*)",
        "count(X//*)",
        "sum(X//quantity)",
        "avg(X//quantity)",
        "<wrap>{ X//asia//location }</wrap>",
        "for $i in X//item return $i/location",
        'for $i in X//item where $i/payment = "Cash" return $i/quantity',
        "for $i in X//item order by $i/quantity return $i/quantity",
        ("for $i in X//item order by $i/quantity descending "
         "return $i/quantity"),
        ("for $i in X//europe/item order by $i/location "
         "return ($i/location/text(), ';')"),
        "<out>{ for $i in X//item return <q>{ $i/quantity }</q> }</out>",
        "count(X//item/ancestor::regions)",
        'X//item[location="Nowhere"]/quantity',
    ])
    def test_matches_naive(self, query, auction_xml):
        assert_query_matches_naive(query, auction_xml)

    @pytest.mark.parametrize("query", [
        "D//inproceedings/title",
        'D//inproceedings[year="1999"]/title',
        ('for $d in D//inproceedings order by $d/title '
         'return $d/title/text()'),
        "count(D//author)",
    ])
    def test_bib_queries(self, query, bib_xml):
        assert_query_matches_naive(query, bib_xml)

    def test_recursive_descendants(self, recursive_xml):
        assert_query_matches_naive("X//part", recursive_xml)
        assert_query_matches_naive("count(X//part//part)", recursive_xml)

    def test_empty_result_is_empty_string(self, auction_xml):
        assert flux_result("X//nothing", auction_xml) == ""


class TestNestedFLWOR:
    def test_flattening_nested_for(self, auction_xml):
        # A nested FLWOR that is the whole return clause re-tuples.
        assert_query_matches_naive(
            "for $r in X//europe return for $i in $r/item "
            "return $i/location", auction_xml)

    def test_nested_for_with_outer_where(self, auction_xml):
        assert_query_matches_naive(
            'for $r in X//regions return for $i in $r/europe '
            'where $i/item return $i/item', auction_xml)

    def test_outer_variable_in_inner_rejected(self):
        with pytest.raises(CompileError):
            XFlux("for $g in X//g return for $x in $g/x "
                  "return ($g/n/text(), $x)").compile()

    def test_flwor_inside_per_tuple_constructor_rejected(self):
        with pytest.raises(CompileError):
            XFlux("for $g in X//g return "
                  "<grp>{ for $x in $g/x return $x }</grp>").compile()


class TestLetClauses:
    DOC = ("<r><b><t>X</t><p>3</p></b>"
           "<b><t>Y</t><p>1</p></b></r>")

    def test_let_binds_relative_path(self):
        assert_query_matches_naive(
            "for $b in X//b let $t := $b/t return ($t, $b/p)", self.DOC)

    def test_chained_lets(self):
        assert_query_matches_naive(
            "for $b in X//b let $t := $b/t let $v := $t/text() "
            "return <e>{ $v }</e>", self.DOC)

    def test_let_with_order_by(self):
        assert_query_matches_naive(
            "for $b in X//b let $t := $b/t order by $b/p "
            "return $t/text()", self.DOC)

    def test_let_with_where(self, auction_xml):
        assert_query_matches_naive(
            'for $i in X//item let $l := $i/location '
            'where $i/payment = "Cash" return $l', auction_xml)

    def test_let_scoping_restored(self):
        # The binding does not leak past the FLWOR.
        q = ("for $a in X//b let $x := $a/t return $x")
        from repro import XFlux
        XFlux(q).run_xml(self.DOC)  # compiles and runs without residue
        with pytest.raises(CompileError):
            XFlux("$x/t").compile()
