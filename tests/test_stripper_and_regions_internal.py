"""Tests for the update stripper and region-tree internals."""

from repro.core.regions import Region, RegionTree
from repro.events import (UpdateStripper, cdata, loads, strip_updates,
                          validate_document_stream)
from repro.xmlio import write_events


class TestUpdateStripper:
    def test_plain_stream_untouched(self):
        evs = loads('sS(0) sE(0,"a") cD(0,"x") eE(0,"a") eS(0)')
        assert strip_updates(evs) == evs

    def test_mutable_region_dissolves_into_content(self):
        evs = loads('sS(0) sM(0,1) sE(1,"a") cD(1,"x") eE(1,"a") eM(0,1) '
                    'eS(0)')
        out = strip_updates(evs)
        assert write_events(out) == "<a>x</a>"
        assert all(e.id == 0 for e in out)
        validate_document_stream(out, allow_updates=False)

    def test_replace_content_dropped(self):
        evs = loads('sS(0) sM(0,1) cD(1,"keep") eM(0,1) '
                    'sR(1,2) cD(2,"ignored") eR(1,2) eS(0)')
        assert write_events(strip_updates(evs)) == "keep"

    def test_inserts_dropped(self):
        evs = loads('sS(0) sM(0,1) cD(1,"m") eM(0,1) '
                    'sB(1,2) cD(2,"l") eB(1,2) sA(1,3) cD(3,"r") eA(1,3) '
                    'eS(0)')
        assert write_events(strip_updates(evs)) == "m"

    def test_nested_mutables_flatten(self):
        evs = loads('sS(0) sM(0,1) cD(1,"a") sM(1,2) cD(2,"b") eM(1,2) '
                    'cD(1,"c") eM(0,1) eS(0)')
        assert write_events(strip_updates(evs)) == "abc"

    def test_toggles_vanish(self):
        evs = loads('sS(0) sM(0,1) cD(1,"x") eM(0,1) hide(1) freeze(1) '
                    'eS(0)')
        out = strip_updates(evs)
        assert write_events(out) == "x"  # the hide was ignored

    def test_incremental_feed(self):
        stripper = UpdateStripper()
        evs = loads('sS(0) sM(0,1) cD(1,"x") eM(0,1) eS(0)')
        out = []
        for e in evs:
            out.extend(stripper.feed(e))
        assert write_events(out) == "x"


class TestRegionInternals:
    def test_dissolve_preserves_order(self):
        tree = RegionTree()
        tree.process_all(loads(
            'sS(0) cD(0,"a") sM(0,1) cD(1,"b") sM(1,2) cD(2,"c") eM(1,2) '
            'eM(0,1) cD(0,"d") freeze(2) freeze(1) eS(0)'))
        assert write_events(tree.flatten()) == "abcd"
        assert tree.stats()["regions"] == 1

    def test_counts_recursive(self):
        region = Region(1)
        region.append_event(cdata(1, "x"))
        child = Region(2)
        child.append_event(cdata(2, "y"))
        region.append_child(child)
        region.append_event(cdata(1, "z"))
        counts = region.counts()
        assert counts == {"regions": 1, "events": 3}

    def test_iter_events_skips_hidden(self):
        region = Region(1)
        child = Region(2)
        child.hidden = True
        child.append_event(cdata(2, "hidden"))
        region.append_child(child)
        region.append_event(cdata(1, "shown"))
        assert [e.text for e in region.iter_events()] == ["shown"]

    def test_run_coalescing(self):
        region = Region(1)
        for i in range(5):
            region.append_event(cdata(1, str(i)))
        # All five events share one run node.
        node = region.head.next
        assert len(node.events) == 5
        assert node.next is region.tail

    def test_clear_content_reports_dropped_regions(self):
        region = Region(1)
        inner = Region(2)
        deeper = Region(3)
        inner.append_child(deeper)
        region.append_child(inner)
        dropped = region.clear_content()
        assert {r.id for r in dropped} == {2, 3}
        assert list(region.iter_events()) == []

    def test_show_on_never_hidden_is_noop(self):
        tree = RegionTree()
        tree.process_all(loads('sS(0) sM(0,1) cD(1,"x") eM(0,1) show(1) '
                               'eS(0)'))
        assert write_events(tree.flatten()) == "x"
