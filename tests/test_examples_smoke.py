"""Smoke tests: the shipped examples run and produce their documented output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "<title>Dubliners</title><title>Ulysses</title>" in out
    assert "books: 3" in out
    assert "display now: '3'" in out


def test_stock_ticker():
    out = run_example("stock_ticker.py")
    assert "final answer:" in out
    assert "<price>" in out
    assert "count now:" in out


def test_bibliography():
    out = run_example("bibliography.py")
    assert "Wrong Publisher" not in out.split("final answer:")[1]
    assert "<books><book><title>Stream Systems</title>" in out


def test_paper_tables_tiny():
    out = run_example("paper_tables.py", "--scale", "0.01",
                      "--queries", "Q1", "Q5")
    assert "Datasets (paper Table 1 analogue)" in out
    assert "Q1" in out and "Q5" in out
