"""Tests for unblocked aggregation (count/sum/avg)."""

from repro.core import Display, Pipeline
from repro.events import loads
from repro.operators import CountItems, NumericAggregate
from repro.xmlio import tokenize

import pytest


def continuous(ctx, stages, events):
    disp = Display(stages[-1].output_id)
    pipe = Pipeline(ctx, stages, disp)
    snaps = []
    for e in events:
        pipe.feed(e)
        if not snaps or snaps[-1] != disp.text():
            snaps.append(disp.text())
    pipe.finish()
    return disp, snaps


class TestCount:
    def test_counts_elements(self, ctx):
        out = ctx.fresh_id()
        disp, snaps = continuous(ctx, [CountItems(ctx, 0, out)],
                                 tokenize("<r/><r/><r/>"[0:0] or None)
                                 if False else
                                 loads('sS(0) sE(0,"a") eE(0,"a") '
                                       'sE(0,"b") cD(0,"t") eE(0,"b") '
                                       'eS(0)'))
        assert disp.text() == "2"

    def test_unblocked_display_progression(self, ctx):
        # The paper's point: the display shows 0, then 1, then 2, ...
        out = ctx.fresh_id()
        disp, snaps = continuous(
            ctx, [CountItems(ctx, 0, out)],
            loads('sS(0) sE(0,"a") eE(0,"a") sE(0,"a") eE(0,"a") '
                  'sE(0,"a") eE(0,"a") eS(0)'))
        assert snaps == ["0", "1", "2", "3"]

    def test_counts_bare_text_items(self, ctx):
        out = ctx.fresh_id()
        disp, _ = continuous(ctx, [CountItems(ctx, 0, out)],
                             loads('sS(0) cD(0,"x") cD(0,"y") eS(0)'))
        assert disp.text() == "2"

    def test_nested_elements_count_once(self, ctx):
        out = ctx.fresh_id()
        disp, _ = continuous(ctx, [CountItems(ctx, 0, out)],
                             tokenize("<a><b><c/></b></a>"))
        assert disp.text() == "1"

    def test_empty_stream_displays_zero(self, ctx):
        out = ctx.fresh_id()
        disp, _ = continuous(ctx, [CountItems(ctx, 0, out)],
                             loads("sS(0) eS(0)"))
        assert disp.text() == "0"


class TestSumAvg:
    def test_sum_of_values(self, ctx):
        out = ctx.fresh_id()
        disp, snaps = continuous(
            ctx, [NumericAggregate(ctx, 0, out, op="sum")],
            loads('sS(0) sE(0,"p") cD(0,"10") eE(0,"p") '
                  'sE(0,"p") cD(0,"2.5") eE(0,"p") eS(0)'))
        assert disp.text() == "12.5"
        assert snaps[0] == "0"

    def test_avg(self, ctx):
        out = ctx.fresh_id()
        disp, _ = continuous(
            ctx, [NumericAggregate(ctx, 0, out, op="avg")],
            loads('sS(0) cD(0,"10") cD(0,"20") eS(0)'))
        assert disp.text() == "15"

    def test_avg_empty_is_empty(self, ctx):
        out = ctx.fresh_id()
        disp, _ = continuous(ctx,
                             [NumericAggregate(ctx, 0, out, op="avg")],
                             loads("sS(0) eS(0)"))
        assert disp.text() == ""

    def test_non_numeric_items_contribute_zero(self, ctx):
        out = ctx.fresh_id()
        disp, _ = continuous(
            ctx, [NumericAggregate(ctx, 0, out, op="sum")],
            loads('sS(0) cD(0,"oops") cD(0,"5") eS(0)'))
        assert disp.text() == "5"

    def test_rejects_unknown_op(self, ctx):
        with pytest.raises(ValueError):
            NumericAggregate(ctx, 0, 1, op="median")


class TestAggregatesUnderUpdates:
    def test_sum_adjusts_on_replacement(self, ctx):
        out = ctx.fresh_id()
        disp, _ = continuous(
            ctx, [NumericAggregate(ctx, 0, out, op="sum")],
            loads('sS(0) sM(0,1) sE(1,"p") cD(1,"10") eE(1,"p") eM(0,1) '
                  'sE(0,"p") cD(0,"5") eE(0,"p") '
                  'sR(1,2) sE(2,"p") cD(2,"100") eE(2,"p") eR(1,2) eS(0)'))
        assert disp.text() == "105"

    def test_count_adjusts_on_hide_show(self, ctx):
        out = ctx.fresh_id()
        disp, snaps = continuous(
            ctx, [CountItems(ctx, 0, out)],
            loads('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
                  'sE(0,"b") eE(0,"b") hide(1) show(1) eS(0)'))
        assert disp.text() == "2"
        assert "1" in snaps  # the hide was visible in the display

    def test_display_shows_corrected_value_immediately(self, ctx):
        out = ctx.fresh_id()
        pipe_events = loads(
            'sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
            'sR(1,2) sE(2,"x") eE(2,"x") sE(2,"y") eE(2,"y") eR(1,2) '
            'eS(0)')
        disp, snaps = continuous(ctx, [CountItems(ctx, 0, out)],
                                 pipe_events)
        assert snaps[-1] == "2"
