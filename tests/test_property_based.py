"""Property-based tests (hypothesis) on the core invariants.

These pin the reproduction's load-bearing properties:

* tokenizer/writer round-trips on arbitrary documents;
* chunked tokenization is equivalent to one-shot tokenization;
* streaming query evaluation equals naive in-memory evaluation for
  arbitrary documents and a family of generated queries;
* eager update application equals the continuous display for random
  update streams;
* the batched pipeline driver equals the recursive per-event driver, and
  the dormant (update-free fast path) wrapper equals the always-active
  wrapper, on both the paper queries and random update streams;
* inert transformers restore their state over well-formed sequences;
* the sorted display is sorted after every single event.
"""

import re

from hypothesis import given, settings, strategies as st

from repro import XFlux, apply_updates, parse_xml, tokenize
from repro.baselines.dom_eval import evaluate_to_xml
from repro.baselines.spex import run_spex
from repro.core import Context, Display, Pipeline
from repro.events import loads, validate_document_stream
from repro.operators import (ChildStep, DescendantStep, ForTuples,
                             SortTuples, StringValue, Tee)
from repro.xmlio import write_events
from repro.xquery.parser import parse as parse_query

TAGS = ("a", "b", "c", "item")
WORDS = ("x", "yy", "hit", "", "z 1")


@st.composite
def xml_trees(draw, depth=3):
    """Random XML document text over a small tag/text alphabet."""
    def element(d):
        tag = draw(st.sampled_from(TAGS))
        if d == 0:
            return "<{0}>{1}</{0}>".format(
                tag, draw(st.sampled_from(WORDS)))
        n = draw(st.integers(min_value=0, max_value=3))
        inner = "".join(element(d - 1) for _ in range(n))
        text = draw(st.sampled_from(WORDS))
        return "<{0}>{1}{2}</{0}>".format(tag, text, inner)
    return "<root>{}</root>".format(element(depth))


@st.composite
def queries(draw):
    """A random query in the forward fragment."""
    steps = draw(st.lists(
        st.tuples(st.sampled_from(["/", "//"]),
                  st.sampled_from(TAGS + ("*",))),
        min_size=1, max_size=3))
    text = "X" + "".join(axis + tag for axis, tag in steps)
    if draw(st.booleans()):
        n_conds = draw(st.integers(min_value=1, max_value=2))
        conds = []
        for _ in range(n_conds):
            ptag = draw(st.sampled_from(TAGS))
            if draw(st.booleans()):
                conds.append('{}="hit"'.format(ptag))
            else:
                conds.append(ptag)
        joiner = draw(st.sampled_from([" and ", " or "]))
        text += "[{}]".format(joiner.join(conds))
    wrapper = draw(st.sampled_from(["", "count", "sum", "min", "max"]))
    if wrapper:
        text = "{}({})".format(wrapper, text)
    return text


class TestTokenizerProperties:
    @given(xml_trees())
    @settings(max_examples=60, deadline=None)
    def test_write_parse_roundtrip(self, doc):
        events = tokenize(doc, keep_whitespace=True)
        assert write_events(events) == doc

    @given(xml_trees(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_chunked_equals_oneshot(self, doc, size):
        from repro.xmlio import iter_tokenize
        chunks = [doc[i:i + size] for i in range(0, len(doc), size)]
        assert list(iter_tokenize(chunks)) == tokenize(doc)

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_token_stream_is_valid(self, doc):
        validate_document_stream(tokenize(doc))


class TestQueryEquivalence:
    @given(xml_trees(), queries())
    @settings(max_examples=120, deadline=None)
    def test_streaming_equals_naive(self, doc, query):
        expected = evaluate_to_xml(parse_query(query), parse_xml(doc))
        actual = XFlux(query).run_xml(doc).text()
        assert actual == expected

    @given(xml_trees(), queries())
    @settings(max_examples=60, deadline=None)
    def test_spex_agrees_on_nonrecursive_paths(self, doc, query):
        # SPEX uses node-set semantics; restrict to queries where the
        # compositional engine produces no duplicates: single descendant
        # step paths on possibly-recursive data still differ, so compare
        # counts only when the naive evaluation has no duplicates.
        from repro.baselines.spex import SpexError
        try:
            spex = run_spex(query, tokenize(doc)).text()
        except SpexError:
            return
        naive_nodes = _naive_nodes(query, doc)
        if len(naive_nodes) != len(set(map(id, naive_nodes))):
            return
        flux = XFlux(query).run_xml(doc).text()
        if flux == spex:
            return
        # Residual mismatches must come from duplicate derivations.
        assert len(set(map(id, naive_nodes))) < len(naive_nodes) or \
            _is_count(query)


class TestUpdateStreams:
    @st.composite
    @staticmethod
    def update_streams(draw):
        """A document with mutable fields plus a batch of replacements."""
        n_items = draw(st.integers(min_value=1, max_value=4))
        parts = ["sS(0)", 'sE(0,"r")']
        region = 1
        regions = []
        for i in range(n_items):
            value = draw(st.sampled_from(WORDS))
            parts.append('sE(0,"item")')
            parts.append("sM(0,{})".format(region))
            parts.append('sE({r},"v") cD({r},"{v}") eE({r},"v")'.format(
                r=region, v=value))
            parts.append("eM(0,{})".format(region))
            parts.append('eE(0,"item")')
            regions.append(region)
            region += 1
        n_updates = draw(st.integers(min_value=0, max_value=5))
        for _ in range(n_updates):
            idx = draw(st.integers(min_value=0, max_value=n_items - 1))
            new_value = draw(st.sampled_from(WORDS))
            new_region = region
            region += 1
            kind = draw(st.sampled_from(["replace", "hide", "show"]))
            if kind == "replace":
                parts.append(
                    'sR({t},{n}) sE({n},"v") cD({n},"{v}") eE({n},"v") '
                    'eR({t},{n})'.format(t=regions[idx], n=new_region,
                                         v=new_value))
                regions[idx] = new_region
            elif kind == "hide":
                parts.append("hide({})".format(regions[idx]))
            else:
                parts.append("show({})".format(regions[idx]))
        parts.append('eE(0,"r") eS(0)')
        return " ".join(parts)

    @given(update_streams())
    @settings(max_examples=80, deadline=None)
    def test_display_equals_eager_application(self, src):
        events = loads(src)
        query = 'stream()//item[v="hit"]'
        run = XFlux(query, mutable_source=True).start()
        run.feed_all(events)
        run.finish()
        plain = apply_updates(events)
        doc = write_events(plain)
        expected = evaluate_to_xml(parse_query(query), parse_xml(doc))
        assert run.text() == expected

    @given(update_streams())
    @settings(max_examples=50, deadline=None)
    def test_count_equals_eager_application(self, src):
        events = loads(src)
        query = 'count(stream()//item[v="hit"])'
        run = XFlux(query, mutable_source=True).start()
        run.feed_all(events)
        run.finish()
        doc = write_events(apply_updates(events))
        expected = evaluate_to_xml(parse_query(query), parse_xml(doc))
        assert run.text() == expected

    @given(update_streams(),
           st.sampled_from(["sum(stream()//item)",
                            "min(stream()//item)",
                            "max(stream()//item)",
                            'count(stream()//item[v and v="hit"])']))
    @settings(max_examples=60, deadline=None)
    def test_aggregates_equal_eager_application(self, src, query):
        events = loads(src)
        run = XFlux(query, mutable_source=True).start()
        run.feed_all(events)
        run.finish()
        doc = write_events(apply_updates(events))
        expected = evaluate_to_xml(parse_query(query), parse_xml(doc))
        assert run.text() == expected

    @given(update_streams())
    @settings(max_examples=40, deadline=None)
    def test_opt_out_equals_stripped_stream(self, src):
        from repro.events import strip_updates
        events = loads(src)
        query = 'stream()//item[v="hit"]'
        opted = XFlux(query, ignore_updates=True).start()
        opted.feed_all(events)
        opted.finish()
        plain = XFlux(query).start()
        plain.feed_all(strip_updates(events))
        plain.finish()
        assert opted.text() == plain.text()


def _collect_output(plan, events, batched, always_active):
    """Run events through a compiled plan's stages; return output keys."""
    from repro.core.pipeline import Collector, Pipeline
    collector = Collector()
    pipe = Pipeline(plan.ctx, plan.stages, collector,
                    always_active=always_active)
    if batched:
        pipe.feed_batch(events)
    else:
        for e in events:
            pipe.feed(e)
    pipe.finish()
    return [e.key() for e in collector.events], pipe.total_calls()


class TestPipelineEquivalence:
    """Differential: batched == per-event; dormant fast path == active.

    The reference configuration is the recursive per-event driver with
    ``always_active=True`` (no fast path, no routing); every optimized
    configuration must produce the identical output event stream.  In
    always-active mode the batched driver must also report identical
    transformer-call counts — routing is disabled there precisely so the
    accounting matches the paper's "events" column.
    """

    MODES = ((True, True), (False, False), (True, False))

    def test_paper_queries_all_modes_identical(self):
        from repro.bench.harness import (PAPER_QUERIES, QUERY_DATASET,
                                         Workloads)
        w = Workloads(xmark_scale=0.02, dblp_scale=0.02)
        for name, query in PAPER_QUERIES.items():
            plan = XFlux(query).compile()
            events = w.events(QUERY_DATASET[name], oids=plan.needs_oids)
            ref, ref_calls = _collect_output(
                plan, events, batched=False, always_active=True)
            assert ref, name  # sanity: the reference run produced output
            for batched, always_active in self.MODES:
                out, calls = _collect_output(
                    XFlux(query).compile(), events, batched=batched,
                    always_active=always_active)
                assert out == ref, (name, batched, always_active)
                if always_active:
                    assert calls == ref_calls, name

    @given(TestUpdateStreams.update_streams())
    @settings(max_examples=50, deadline=None)
    def test_update_streams_all_modes_identical(self, src):
        events = loads(src)
        query = 'stream()//item[v="hit"]'
        plan = XFlux(query, mutable_source=True).compile()
        ref, ref_calls = _collect_output(
            plan, events, batched=False, always_active=True)
        for batched, always_active in self.MODES:
            out, calls = _collect_output(
                XFlux(query, mutable_source=True).compile(), events,
                batched=batched, always_active=always_active)
            assert out == ref, (batched, always_active)
            if always_active:
                assert calls == ref_calls

    @st.composite
    @staticmethod
    def dormant_prefix_streams(draw):
        """An update-free prefix followed by updates mid-stream.

        Every wrapper starts dormant, processes real query work in the
        fast path, and is forced through the dormant -> active transition
        by the first ``sM`` — the transition the fast path must make
        losslessly.
        """
        parts = ["sS(0)", 'sE(0,"r")']
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            value = draw(st.sampled_from(WORDS))
            parts.append('sE(0,"item") sE(0,"v") cD(0,"{v}") eE(0,"v") '
                         'eE(0,"item")'.format(v=value))
        region = 1
        regions = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            value = draw(st.sampled_from(WORDS))
            parts.append('sE(0,"item")')
            parts.append("sM(0,{})".format(region))
            parts.append('sE({r},"v") cD({r},"{v}") eE({r},"v")'.format(
                r=region, v=value))
            parts.append("eM(0,{})".format(region))
            parts.append('eE(0,"item")')
            regions.append(region)
            region += 1
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            idx = draw(st.integers(min_value=0, max_value=len(regions) - 1))
            choice = draw(st.sampled_from(["replace", "hide", "show"]))
            if choice == "replace":
                new_region = region
                region += 1
                parts.append(
                    'sR({t},{n}) sE({n},"v") cD({n},"{v}") eE({n},"v") '
                    'eR({t},{n})'.format(t=regions[idx], n=new_region,
                                         v=draw(st.sampled_from(WORDS))))
                regions[idx] = new_region
            elif choice == "hide":
                parts.append("hide({})".format(regions[idx]))
            else:
                parts.append("show({})".format(regions[idx]))
        parts.append('eE(0,"r") eS(0)')
        return " ".join(parts)

    @given(dormant_prefix_streams())
    @settings(max_examples=50, deadline=None)
    def test_dormant_to_active_transition_lossless(self, src):
        events = loads(src)
        query = 'stream()//item[v="hit"]'
        plan = XFlux(query, mutable_source=True).compile()
        ref, _ = _collect_output(
            plan, events, batched=False, always_active=True)
        for batched, always_active in self.MODES:
            out, _ = _collect_output(
                XFlux(query, mutable_source=True).compile(), events,
                batched=batched, always_active=always_active)
            assert out == ref, (batched, always_active)


class TestOperatorInvariants:
    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_inert_transformers_restore_state(self, doc):
        from repro.core.transformer import run_sequence
        ctx = Context()
        ctx.ids.reserve(0)
        for make in (lambda: ChildStep(ctx, 0, ctx.fresh_id(), "a"),
                     lambda: DescendantStep(ctx, 0, ctx.fresh_id(), None),
                     lambda: StringValue(ctx, 0, ctx.fresh_id())):
            t = make()
            before = t.get_state()
            run_sequence(t, tokenize(doc)[1:-1])
            assert t.get_state() == before

    @given(st.lists(st.integers(min_value=0, max_value=99), min_size=1,
                    max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_sorted_display_after_every_event(self, values):
        doc = "<r>{}</r>".format("".join(
            "<e><k>{:02d}</k></e>".format(v) for v in values))
        ctx = Context()
        ctx.ids.reserve(0)
        ids = ctx.ids
        s_e, s_for, tk, k1, k2, s_sort = (ids.fresh() for _ in range(6))
        disp = Display(s_sort)
        pipe = Pipeline(ctx, [
            DescendantStep(ctx, 0, s_e, "e"),
            ForTuples(ctx, s_e, s_for),
            Tee(ctx, s_for, tk),
            ChildStep(ctx, tk, k1, "k"),
            StringValue(ctx, k1, k2),
            SortTuples(ctx, s_for, k2, s_sort),
        ], disp)
        for e in tokenize(doc):
            pipe.feed(e)
            keys = re.findall(r"<k>(\d+)</k>", disp.text())
            assert keys == sorted(keys)
        pipe.finish()
        assert len(re.findall(r"<e>", disp.text())) == len(values)


def _naive_nodes(query, doc):
    from repro.baselines.dom_eval import evaluate
    from repro.xquery import ast
    q = parse_query(query)
    if isinstance(q, ast.FunCall):
        q = q.args[0]
    return evaluate(q, parse_xml(doc))


def _is_count(query):
    return query.startswith("count(")
