"""Tests for the region tree — the update-application semantics (§III)."""

from repro.core import RegionTree, apply_updates
from repro.events import loads
from repro.xmlio import write_events


def applied_text(src, **kwargs):
    return write_events(apply_updates(loads(src), **kwargs))


class TestPaperExamples:
    def test_section3_worked_example(self):
        # Replace "x" by "y", insert "z" after the replacement, insert "w"
        # before the (already replaced) region: result w y z.
        src = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) sR(1,2) cD(2,"y") eR(1,2) '
               'sA(2,3) cD(3,"z") eA(2,3) sB(1,3) cD(3,"w") eB(1,3) eS(0)')
        out = apply_updates(loads(src))
        assert [(e.id, e.text) for e in out] == [(0, "w"), (0, "y"),
                                                 (0, "z")]

    def test_concatenation_example(self):
        # Section VI-A: left stream 0 routed before right stream 1.
        src = ('sT(2) sM(2,1) sB(1,0) cD(0,"x") cD(1,"y") cD(0,"z") '
               'cD(1,"w") eB(1,0) eM(2,1) eT(2)')
        out = apply_updates(loads(src))
        assert [e.text for e in out] == ["x", "z", "y", "w"]

    def test_descendant_example(self):
        # Section VI-C traced with fresh ids (see DESIGN.md).
        src = ('sS(0) sM(0,1) sE(1,"b") sE(1,"c") sB(1,2) sE(2,"c") '
               'cD(1,"x") cD(2,"x") eE(2,"c") eB(1,2) eE(1,"c") '
               'eE(1,"b") eM(0,1) eS(0)')
        assert applied_text(src) == "<c>x</c><b><c>x</c></b>"


class TestReplacement:
    def test_replace_keeps_position(self):
        src = ('sS(0) cD(0,"a") sM(0,1) cD(1,"b") eM(0,1) cD(0,"c") '
               'sR(1,2) cD(2,"B") eR(1,2) eS(0)')
        assert applied_text(src) == "aBc"

    def test_cascaded_replacements_latest_wins(self):
        src = ('sS(0) sM(0,1) cD(1,"v1") eM(0,1) '
               'sR(1,2) cD(2,"v2") eR(1,2) sR(2,3) cD(3,"v3") eR(2,3) '
               'eS(0)')
        assert applied_text(src) == "v3"

    def test_re_replacing_original_region(self):
        # Replacing region 1 twice: the second replacement discards the
        # first entirely.
        src = ('sS(0) sM(0,1) cD(1,"v1") eM(0,1) '
               'sR(1,2) cD(2,"v2") eR(1,2) sR(1,3) cD(3,"v3") eR(1,3) '
               'eS(0)')
        assert applied_text(src) == "v3"

    def test_delete_by_empty_replacement(self):
        src = 'sS(0) cD(0,"a") sM(0,1) cD(1,"b") eM(0,1) sR(1,2) eR(1,2) eS(0)'
        assert applied_text(src) == "a"

    def test_replacement_with_elements(self):
        src = ('sS(0) sM(0,1) sE(1,"old") eE(1,"old") eM(0,1) '
               'sR(1,2) sE(2,"new") cD(2,"t") eE(2,"new") eR(1,2) eS(0)')
        assert applied_text(src) == "<new>t</new>"


class TestInserts:
    def test_insert_before_and_after(self):
        src = ('sS(0) sM(0,1) cD(1,"m") eM(0,1) '
               'sB(1,2) cD(2,"l") eB(1,2) sA(1,3) cD(3,"r") eA(1,3) eS(0)')
        assert applied_text(src) == "lmr"

    def test_repeated_insert_before_preserves_arrival_order(self):
        src = ('sS(0) sM(0,1) cD(1,"m") eM(0,1) '
               'sB(1,2) cD(2,"a") eB(1,2) sB(1,3) cD(3,"b") eB(1,3) eS(0)')
        assert applied_text(src) == "abm"

    def test_repeated_insert_after_stacks_backwards(self):
        src = ('sS(0) sM(0,1) cD(1,"m") eM(0,1) '
               'sA(1,2) cD(2,"a") eA(1,2) sA(1,3) cD(3,"b") eA(1,3) eS(0)')
        assert applied_text(src) == "mba"

    def test_update_id_reuse_targets_latest(self):
        # The paper: "only the latest one is active and open for updates".
        src = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) '
               'sA(1,3) cD(3,"z") eA(1,3) sB(1,3) cD(3,"w") eB(1,3) '
               'sA(3,4) cD(4,"!") eA(3,4) eS(0)')
        # The second region numbered 3 ("w") is the active one, so the
        # insert-after lands after "w".
        assert applied_text(src) == "w!xz"


class TestVisibility:
    def test_hide_and_show(self):
        src_hide = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) hide(1) eS(0)')
        assert applied_text(src_hide) == ""
        src_show = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) hide(1) show(1) eS(0)')
        assert applied_text(src_show) == "x"

    def test_hide_is_idempotent(self):
        src = 'sS(0) sM(0,1) cD(1,"x") eM(0,1) hide(1) hide(1) show(1) eS(0)'
        assert applied_text(src) == "x"

    def test_hidden_region_still_updatable(self):
        src = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) hide(1) '
               'sR(1,2) cD(2,"y") eR(1,2) show(1) eS(0)')
        assert applied_text(src) == "y"


class TestFreeze:
    def test_freeze_seals_against_updates(self):
        src = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) freeze(1) '
               'sR(1,2) cD(2,"y") eR(1,2) eS(0)')
        assert applied_text(src) == "x"

    def test_freeze_hidden_region_discards_content(self):
        src = 'sS(0) sM(0,1) cD(1,"x") eM(0,1) hide(1) freeze(1) eS(0)'
        tree = RegionTree()
        tree.process_all(loads(src))
        assert write_events(tree.flatten()) == ""
        # The discarded region is gone from the bookkeeping entirely.
        assert tree.stats()["regions"] == 1  # only the stream root

    def test_freeze_visible_region_dissolves(self):
        src = ('sS(0) cD(0,"a") sM(0,1) cD(1,"b") eM(0,1) freeze(1) '
               'cD(0,"c") eS(0)')
        tree = RegionTree()
        tree.process_all(loads(src))
        assert write_events(tree.flatten()) == "abc"
        assert tree.stats()["regions"] == 1

    def test_region_id_reusable_after_freeze(self):
        src = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) freeze(1) '
               'sM(0,1) cD(1,"y") eM(0,1) sR(1,2) cD(2,"Y") eR(1,2) eS(0)')
        assert applied_text(src) == "xY"


class TestRobustness:
    def test_updates_to_unknown_targets_ignored(self):
        src = 'sS(0) cD(0,"a") sR(99,1) cD(1,"junk") eR(99,1) eS(0)'
        tree = RegionTree()
        tree.process_all(loads(src))
        assert write_events(tree.flatten()) == "a"
        assert tree.ignored_updates == 1

    def test_untracked_stream_content_ignored(self):
        src = 'sS(0) cD(0,"a") cD(5,"ghost") eS(0)'
        assert applied_text(src) == "a"

    def test_result_id_filtering(self):
        src = 'sS(0) cD(0,"a") eS(0) sS(1) cD(1,"b") eS(1)'
        tree = RegionTree(result_ids=[1])
        tree.process_all(loads(src))
        assert write_events(tree.flatten()) == "b"

    def test_keep_tuples(self):
        src = 'sS(0) sT(0) cD(0,"a") eT(0) eS(0)'
        out = apply_updates(loads(src), keep_tuples=True)
        assert [e.abbrev for e in out] == ["sT", "cD", "eT"]

    def test_flatten_relabels_to_root(self):
        src = 'sS(0) sM(0,5) cD(5,"x") eM(0,5) eS(0)'
        out = apply_updates(loads(src))
        assert out[0].id == 0

    def test_nested_mutable_regions(self):
        src = ('sS(0) sM(0,1) cD(1,"a") sM(1,2) cD(2,"b") eM(1,2) '
               'cD(1,"c") eM(0,1) sR(2,3) cD(3,"B") eR(2,3) eS(0)')
        assert applied_text(src) == "aBc"

    def test_stats_counts(self):
        src = ('sS(0) sM(0,1) sE(1,"a") cD(1,"t") eE(1,"a") eM(0,1) eS(0)')
        tree = RegionTree()
        tree.process_all(loads(src))
        stats = tree.stats()
        assert stats["regions"] == 2  # root + region 1
        assert stats["events"] == 3
