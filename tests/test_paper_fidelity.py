"""Fidelity tests: the paper's concrete pseudo-code behaviours, verbatim.

Each test transcribes a behaviour the paper states explicitly — worked
examples, operator output shapes, wrapper state rules — and checks the
implementation reproduces it (modulo the documented deviations: fresh
region numbers where the paper's examples reuse them inconsistently).
"""

from repro.core import Collector, Context, Display, Pipeline, apply_updates
from repro.core.transformer import run_sequence
from repro.core.wrapper import UpdateWrapper
from repro.events import CD, loads
from repro.operators import ChildStep, Concat, CountItems, DescendantStep
from repro.xmlio import tokenize, write_events


class TestSectionII:
    """Simple XML streams and the /tag state modifier."""

    def test_name_element_tokenization(self):
        # "<name>Smith</name> is tokenized into the event sequence
        #  [sE(0,"name"), cD(0,"Smith"), eE(0,"name")]"
        events = tokenize("<name>Smith</name>")
        assert [e.abbrev for e in events[1:-1]] == ["sE", "cD", "eE"]
        assert events[2].text == "Smith"

    def test_tag_step_is_inert(self, ctx):
        # "The state transformer of /tag is inert because, for properly
        #  nested XML elements, the final values of depth and pass are
        #  restored to their starting values."
        step = ChildStep(ctx, 0, ctx.fresh_id(), "tag")
        initial = step.get_state()
        run_sequence(step, tokenize("<r><tag>a</tag><o><tag>b</tag></o>"
                                    "</r>")[1:-1])
        assert step.get_state() == initial


class TestSectionIII:
    """Update streams: the worked replace/insert example."""

    def test_worked_example_result(self):
        # "After the updates are applied, the result is equivalent to the
        #  sequence [cD(0,"w"), cD(0,"y"), cD(0,"z")]."
        src = ('sS(0) sM(0,1) cD(1,"x") eM(0,1) '
               'sR(1,2) cD(2,"y") eR(1,2) '
               'sA(2,3) cD(3,"z") eA(2,3) '
               'sB(1,3) cD(3,"w") eB(1,3) eS(0)')
        out = apply_updates(loads(src))
        assert [(e.kind, e.id, e.text) for e in out] == \
            [(CD, 0, "w"), (CD, 0, "y"), (CD, 0, "z")]

    def test_count_emission_shape(self, ctx):
        # "F(e) sends continuous updates on the count value, starting
        #  with 0 and sending a replacement update with the new counter
        #  value on each [item]."
        out_id = ctx.fresh_id()
        col = Collector()
        Pipeline(ctx, [CountItems(ctx, 0, out_id)], col).run(
            loads('sS(0) sE(0,"a") eE(0,"a") eS(0)'))
        shapes = [e.abbrev for e in col.events]
        assert shapes == ["sS", "sM", "cD", "eM",      # initial 0
                          "sR", "cD", "eR",            # replacement 1
                          "eS"]
        texts = [e.text for e in col.events if e.kind == CD]
        assert texts == ["0", "1"]


class TestSectionIV:
    """The wrapper's state bookkeeping rules."""

    def _wrapped_count(self, ctx):
        t = CountItems(ctx, 0, ctx.fresh_id())
        return UpdateWrapper(t)

    def test_sM_copies_end_state(self, ctx):
        # sM, sA: start[uid] <- end[id]; end[uid] <- end[id]
        w = self._wrapped_count(ctx)
        for e in loads('sS(0) sE(0,"a") eE(0,"a") sM(0,7)'):
            w.dispatch(e)
        assert w.start[7] == w.end[7]
        assert w.start[7][0] == 1  # the count so far

    def test_sR_copies_start_state(self, ctx):
        # sR, sB: start[uid] <- start[id]; end[uid] <- start[id]
        w = self._wrapped_count(ctx)
        for e in loads('sS(0) sM(0,7) sE(7,"a") eE(7,"a") eM(0,7) '
                       'sE(0,"b") eE(0,"b") sR(7,8)'):
            w.dispatch(e)
        assert w.start[8][0] == 0  # the count *before* region 7
        assert w.end[8] == w.start[8]

    def test_hide_moves_end_to_shadow(self, ctx):
        # hide(uid): shadow[uid] <- end[uid]; end[uid] <- start[uid]
        w = self._wrapped_count(ctx)
        for e in loads('sS(0) sM(0,7) sE(7,"a") eE(7,"a") eM(0,7)'):
            w.dispatch(e)
        end_before = w.end[7]
        for e in loads("hide(7)"):
            w.dispatch(e)
        assert w.shadow[7] == end_before
        assert w.end[7] == w.start[7]

    def test_show_restores_shadow(self, ctx):
        w = self._wrapped_count(ctx)
        for e in loads('sS(0) sM(0,7) sE(7,"a") eE(7,"a") eM(0,7) '
                       'hide(7)'):
            w.dispatch(e)
        shadow = w.shadow[7]
        for e in loads("show(7)"):
            w.dispatch(e)
        assert w.end[7] == shadow
        assert 7 not in w.shadow

    def test_count_adjustment_formula(self, ctx):
        # "count <- count + (s2.count - s1.count)"
        t = CountItems(ctx, 0, ctx.fresh_id())
        assert t.adjust((10, 0), (3, 0), (5, 0)) == (12, 0)


class TestSectionV:
    def test_freeze_removes_states(self, ctx):
        # "when a state transformer sees that a fix[id] is true, it
        #  removes the states for id"
        w = UpdateWrapper(CountItems(ctx, 0, ctx.fresh_id()))
        for e in loads('sS(0) sM(0,7) sE(7,"a") eE(7,"a") eM(0,7)'):
            w.dispatch(e)
        assert 7 in w.end
        for e in loads("freeze(7)"):
            w.dispatch(e)
        assert 7 not in w.end and 7 not in w.start
        assert ctx.fix.is_fixed(7)

    def test_updates_to_fixed_ids_are_void(self, ctx):
        out_id = ctx.fresh_id()
        disp = Display(out_id)
        pipe = Pipeline(ctx, [CountItems(ctx, 0, out_id)], disp)
        pipe.run(loads('sS(0) sM(0,7) sE(7,"a") eE(7,"a") eM(0,7) '
                       'freeze(7) sR(7,8) sE(8,"b") eE(8,"b") '
                       'sE(8,"c") eE(8,"c") eR(7,8) eS(0)'))
        assert disp.text() == "1"


class TestSectionVI:
    def test_concat_example(self, ctx):
        # VI-A: the example's streams, via the actual operator: tuples of
        # the two streams interleave; the result is left-then-right.
        out = ctx.fresh_id()
        disp = Display(out)
        Pipeline(ctx, [Concat(ctx, 0, 1, out)], disp).run(loads(
            'sS(0) sS(1) sT(0) sT(1) cD(0,"x") cD(1,"y") cD(0,"z") '
            'cD(1,"w") eT(0) eT(1) eS(0) eS(1)'))
        assert disp.text() == "xzyw"

    def test_descendant_example(self, ctx):
        # VI-C: //* over <a><b><c><d>X</d><d>Y</d></c></b>
        #                <b><c><d>Z</d></c></b></a>, postorder.
        out = ctx.fresh_id()
        disp = Display(out)
        Pipeline(ctx, [DescendantStep(ctx, 0, out, None)], disp).run(
            tokenize("<a><b><c><d>X</d><d>Y</d></c></b>"
                     "<b><c><d>Z</d></c></b></a>"))
        assert disp.text() == ("<d>X</d><d>Y</d><c><d>X</d><d>Y</d></c>"
                               "<b><c><d>X</d><d>Y</d></c></b>"
                               "<d>Z</d><c><d>Z</d></c>"
                               "<b><c><d>Z</d></c></b>")

    def test_descendant_operator_state_is_depth_bounded(self, ctx):
        # VI-C: the operator's own state is the depth and the per-level
        # ids — never buffered events.
        deep = "<r>" + "<p>" * 30 + "x" + "</p>" * 30 + "</r>"
        step = DescendantStep(ctx, 0, ctx.fresh_id(), None)
        max_levels = 0
        for e in tokenize(deep):
            if not e.is_update and e.id == 0:
                step.process(e)
                max_levels = max(max_levels, len(step.levels))
        assert max_levels == 30  # one entry per open level, nothing else
