"""Tests for the generic update wrapper ``W`` (paper Section IV/V)."""

import pytest

from repro.core import Collector, Context, Display, Pipeline
from repro.core.wrapper import LIVE, UpdatePolicy, UpdateWrapper
from repro.events import loads
from repro.operators import ChildStep, CountItems, Tee


def run_count(ctx, src, input_id=0):
    out_id = ctx.ids.reserve(900)
    disp = Display(out_id)
    pipe = Pipeline(ctx, [CountItems(ctx, input_id, out_id)], disp)
    pipe.run(loads(src))
    return disp, pipe


class TestStateCopies:
    def test_count_sees_replacement_delta(self, ctx):
        # Replace one element by two: the count must go 1 -> 2.
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
               'sR(1,2) sE(2,"b") eE(2,"b") sE(2,"c") eE(2,"c") eR(1,2) '
               'eS(0)')
        disp, _ = run_count(ctx, src)
        assert disp.text() == "2"

    def test_count_sees_empty_replacement(self, ctx):
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
               'sE(0,"k") eE(0,"k") sR(1,2) eR(1,2) eS(0)')
        disp, _ = run_count(ctx, src)
        assert disp.text() == "1"

    def test_insert_after_adds(self, ctx):
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
               'sA(1,2) sE(2,"b") eE(2,"b") eA(1,2) eS(0)')
        disp, _ = run_count(ctx, src)
        assert disp.text() == "2"

    def test_hide_subtracts_show_restores(self, ctx):
        base = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
                'sM(0,2) sE(2,"b") eE(2,"b") eM(0,2) {} eS(0)')
        disp, _ = run_count(ctx, base.format("hide(1)"))
        assert disp.text() == "1"
        ctx2 = Context()
        disp, _ = run_count(ctx2, base.format("hide(1) show(1)"))
        assert disp.text() == "2"

    def test_cascaded_replacement_counts_latest(self, ctx):
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
               'sR(1,2) eR(1,2) '
               'sR(2,3) sE(3,"x") eE(3,"x") sE(3,"y") eE(3,"y") eR(2,3) '
               'eS(0)')
        disp, _ = run_count(ctx, src)
        assert disp.text() == "2"


class TestMutabilityAnalysis:
    def test_freeze_drops_wrapper_state(self, ctx):
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) freeze(1) eS(0)')
        disp, pipe = run_count(ctx, src)
        w = pipe.wrappers[0]
        assert w.live_regions() == 0
        assert disp.text() == "1"

    def test_frozen_region_updates_ignored(self, ctx):
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) freeze(1) '
               'sR(1,2) sE(2,"b") eE(2,"b") sE(2,"c") eE(2,"c") eR(1,2) '
               'eS(0)')
        disp, _ = run_count(ctx, src)
        assert disp.text() == "1"

    def test_ignored_stream_processed_as_plain_content(self, ctx):
        # The consumer opted out of updates for this stream: the mutable
        # region's content counts, later updates are void (Section V).
        ctx.fix.ignored_streams.add(1)
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
               'sR(1,2) sE(2,"b") eE(2,"b") sE(2,"c") eE(2,"c") eR(1,2) '
               'eS(0)')
        disp, pipe = run_count(ctx, src)
        assert disp.text() == "1"
        assert pipe.wrappers[0].live_regions() == 0

    def test_peak_state_counting(self, ctx):
        src = ('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) '
               'sM(0,2) sE(2,"b") eE(2,"b") eM(0,2) eS(0)')
        _, pipe = run_count(ctx, src)
        assert pipe.wrappers[0].peak_states >= 3  # live + two regions


class TestPolicies:
    def test_tee_duplicates_brackets_with_fresh_ids(self, ctx):
        copy_id = ctx.ids.reserve(40)
        col = Collector()
        pipe = Pipeline(ctx, [Tee(ctx, 0, copy_id)], col)
        pipe.run(loads('sS(0) sM(0,1) cD(1,"x") eM(0,1) eS(0)'))
        starts = [e for e in col.events if e.abbrev == "sM"]
        assert len(starts) == 2
        assert starts[0].sub == 1          # original preserved
        assert starts[1].sub != 1          # copy renumbered
        assert starts[1].id == copy_id
        # Copied content carries the copy region's number.
        texts = [(e.id, e.text) for e in col.events if e.text]
        assert (1, "x") in texts
        assert (starts[1].sub, "x") in texts

    def test_translate_renumbers_brackets(self, ctx):
        out_id = ctx.ids.reserve(41)
        col = Collector()
        pipe = Pipeline(ctx, [ChildStep(ctx, 0, out_id, "b")], col)
        pipe.run(loads(
            'sS(0) sE(0,"r") sM(0,1) sE(1,"b") cD(1,"x") eE(1,"b") '
            'eM(0,1) eE(0,"r") eS(0)'))
        starts = [e for e in col.events if e.abbrev == "sM"]
        assert len(starts) == 1
        assert starts[0].id == out_id
        assert starts[0].sub != 1

    def test_consume_emits_no_brackets(self, ctx):
        out_id = ctx.ids.reserve(42)
        col = Collector()
        pipe = Pipeline(ctx, [CountItems(ctx, 0, out_id)], col)
        pipe.run(loads('sS(0) sM(0,1) sE(1,"a") eE(1,"a") eM(0,1) eS(0)'))
        # Only the counter's own output region appears, not the input's.
        starts = [e for e in col.events if e.abbrev == "sM"]
        assert len(starts) == 1
        assert starts[0].id == out_id


class TestAdjustLaws:
    """The paper's three adjust properties, on the count transformer."""

    def _make(self, ctx):
        return CountItems(ctx, 0, ctx.ids.reserve(43))

    def test_identity_law(self, ctx):
        # adjust(s1, s2, s2) == s1
        t = self._make(ctx)
        s1, s2 = (5, 0), (9, 0)
        assert t.adjust(s1, s2, s2) == s1

    def test_replacement_law(self, ctx):
        # adjust(s1, s1, s2) == s2
        t = self._make(ctx)
        s1, s2 = (5, 0), (9, 0)
        assert t.adjust(s1, s1, s2) == s2

    def test_commutation_law(self, ctx):
        # adjust(f*(v, s1), s2, s3) == f*(v, adjust(s1, s2, s3))
        from repro.core.transformer import run_sequence
        v = loads('sE(0,"a") eE(0,"a") sE(0,"b") eE(0,"b")')

        def f_star(state):
            t = self._make(Context())
            t.set_state(state)
            run_sequence(t, v)
            return t.get_state()

        t = self._make(ctx)
        s1, s2, s3 = (4, 0), (1, 0), (7, 0)
        assert t.adjust(f_star(s1), s2, s3) == f_star(t.adjust(s1, s2, s3))
