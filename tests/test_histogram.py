"""Log2 latency-histogram tests: bucket math, quantiles, exact merges.

The sharded-observability exactness claim rests on two halves that are
tested separately, because wall-clock bucket placement is not
deterministic across runs:

* the merge arithmetic is **bucket-exact** — proven here with synthetic
  deterministic values: merging per-shard histograms equals one
  histogram fed every observation;
* the observation *counts* are deterministic per source stream —
  proven in tests/test_metrics.py by the 1/3/4-worker differential.
"""

import pytest

from repro.obs import LogHistogram, merge_histogram_dicts, \
    summarize_histogram_dict
from repro.obs.histogram import N_BUCKETS, bucket_index, bucket_upper


class TestBuckets:
    def test_bucket_index_edges(self):
        assert bucket_index(0) == 0
        assert bucket_index(1) == 1
        assert bucket_index(2) == 2
        assert bucket_index(3) == 2
        assert bucket_index(4) == 3
        # Bucket i holds [2^(i-1), 2^i - 1].
        for i in range(1, 20):
            assert bucket_index(1 << (i - 1)) == i
            assert bucket_index((1 << i) - 1) == i

    def test_negative_clamps_to_zero(self):
        assert bucket_index(-5) == 0

    def test_huge_value_clamps_to_last_bucket(self):
        assert bucket_index(1 << 200) == N_BUCKETS - 1

    def test_bucket_upper_brackets_index(self):
        assert bucket_upper(0) == 0
        for i in range(1, 20):
            assert bucket_index(bucket_upper(i)) == i
            assert bucket_index(bucket_upper(i) + 1) == i + 1


class TestRecording:
    def test_exact_count_sum_min_max(self):
        h = LogHistogram()
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        for v in values:
            h.record(v)
        s = h.summary()
        assert s["count"] == len(values)
        assert s["sum"] == sum(values)
        assert s["min"] == min(values)
        assert s["max"] == max(values)

    def test_empty_summary(self):
        s = LogHistogram().summary()
        assert s["count"] == 0
        assert s["p50"] is None and s["p99"] is None

    def test_percentiles_on_known_distribution(self):
        h = LogHistogram()
        # 90 fast observations (~100ns bucket) + 10 slow (~1e6 bucket).
        for _ in range(90):
            h.record(100)
        for _ in range(10):
            h.record(1_000_000)
        s = h.summary()
        # p50 lands in the fast bucket, clamped to its observed range.
        assert s["p50"] <= bucket_upper(bucket_index(100))
        assert s["p50"] >= 100
        # p99 lands in the slow bucket.
        assert s["p95"] >= 1_000_000 or s["p99"] >= 1_000_000
        assert s["max"] == 1_000_000

    def test_percentile_clamped_to_observed_extremes(self):
        h = LogHistogram()
        h.record(7)
        s = h.summary()
        assert s["p50"] == 7 and s["p99"] == 7

    def test_negative_observation_goes_to_zero_bucket(self):
        h = LogHistogram()
        h.record(-3)
        assert h.summary()["min"] == 0


class TestSerialization:
    def test_round_trip(self):
        h = LogHistogram()
        for v in (0, 1, 17, 100000):
            h.record(v)
        d = h.to_dict()
        back = LogHistogram.from_dict(d)
        assert back.to_dict() == d
        assert back.summary() == h.summary()

    def test_buckets_sparse_string_keyed(self):
        h = LogHistogram()
        h.record(5)
        d = h.to_dict()
        assert all(isinstance(k, str) for k in d["buckets"])
        assert sum(d["buckets"].values()) == 1


class TestMergeExactness:
    """Merged shard histograms must equal one histogram fed everything."""

    def test_merge_equals_single_feed(self):
        values = [0, 1, 2, 3, 100, 10**6, 5, 5, 5, 2**40]
        whole = LogHistogram()
        for v in values:
            whole.record(v)
        parts = [LogHistogram() for _ in range(3)]
        for i, v in enumerate(values):
            parts[i % 3].record(v)
        merged = LogHistogram()
        for p in parts:
            merged.merge(p)
        assert merged.to_dict() == whole.to_dict()
        assert merged.summary() == whole.summary()

    def test_merge_dict_equals_merge(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (1, 2, 3):
            a.record(v)
        for v in (1000, 2000):
            b.record(v)
        via_obj = LogHistogram()
        via_obj.merge(a)
        via_obj.merge(b)
        via_dict = LogHistogram()
        via_dict.merge_dict(a.to_dict())
        via_dict.merge_dict(b.to_dict())
        assert via_obj.to_dict() == via_dict.to_dict()

    def test_merge_histogram_dicts_by_name(self):
        a = {"x": self._hist([1, 2]).to_dict(),
             "y": self._hist([5]).to_dict()}
        b = {"x": self._hist([3]).to_dict()}
        merged = merge_histogram_dicts([a, b, None])
        assert set(merged) == {"x", "y"}
        assert merged["x"] == self._hist([1, 2, 3]).to_dict()
        assert merged["y"] == a["y"]

    def test_merge_empty_is_identity(self):
        h = self._hist([4, 8])
        m = LogHistogram()
        m.merge(LogHistogram())
        m.merge(h)
        m.merge(LogHistogram())
        assert m.to_dict() == h.to_dict()

    @staticmethod
    def _hist(values):
        h = LogHistogram()
        for v in values:
            h.record(v)
        return h


class TestSummaryHelpers:
    def test_summarize_histogram_dict(self):
        h = LogHistogram()
        for v in (10, 20, 30):
            h.record(v)
        assert summarize_histogram_dict(h.to_dict()) == h.summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            LogHistogram().percentile(1.5)
