"""Differential tests for the shared-stream multi-query executor.

The contract under test: evaluating N queries through one
:class:`~repro.xquery.engine.MultiQueryRun` pass — or through
:class:`~repro.parallel.ShardedMultiQueryRun` worker processes — yields
per-query answers *byte-identical* to N independent ``run_xml`` calls,
and identical transformer-call accounting (the executor may share
tokenization and stripping, never per-query work).  Holds for plain
documents and for update-bearing streams.
"""

import pytest

from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET, Workloads
from repro.data.stock import StockTicker
from repro.events.wellformed import WellFormednessError
from repro.parallel import ShardedMultiQueryRun, shard_queries
from repro.xquery.engine import MultiQueryRun, XFlux
from repro.xquery.parser import parse_cached

SCALE = 0.02


@pytest.fixture(scope="module")
def workloads():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE)


@pytest.fixture(scope="module")
def independent(workloads):
    """Reference: each paper query through its own single-query run."""
    out = {}
    for name, query in PAPER_QUERIES.items():
        run = XFlux(query).run_xml(workloads.text(QUERY_DATASET[name]))
        out[name] = (run.text(), run.stats()["transformer_calls"])
    return out


def _by_dataset():
    groups = {}
    for name in PAPER_QUERIES:
        groups.setdefault(QUERY_DATASET[name], []).append(name)
    return sorted(groups.items())


class TestMultiplexDifferential:
    def test_single_pass_matches_independent_runs(self, workloads,
                                                  independent):
        for dataset, names in _by_dataset():
            mq = MultiQueryRun([PAPER_QUERIES[n] for n in names])
            mq.run_xml(workloads.text(dataset))
            stats = mq.stats()
            for i, name in enumerate(names):
                text, calls = independent[name]
                assert mq.text(i) == text, name
                assert (stats["per_query"][i]["transformer_calls"]
                        == calls), name

    def test_validate_mode_same_answers(self, workloads, independent):
        names = ["Q1", "Q2", "Q7"]
        mq = MultiQueryRun([PAPER_QUERIES[n] for n in names],
                           validate=True)
        mq.run_xml(workloads.text("X"))
        assert mq.texts() == [independent[n][0] for n in names]
        assert mq.stats()["validated_events"] == mq.stats()["events_in"]

    def test_aggregate_stats_shape(self, workloads):
        mq = MultiQueryRun([PAPER_QUERIES["Q1"], PAPER_QUERIES["Q2"]])
        mq.run_xml(workloads.text("X"))
        stats = mq.stats()
        assert stats["queries"] == 2 and stats["pipelines"] == 2
        assert stats["transformer_calls"] == sum(
            s["transformer_calls"] for s in stats["per_pipeline"])
        assert len(stats["per_query"]) == 2


class TestShardedDifferential:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_sharded_matches_independent_runs(self, workloads,
                                              independent, workers):
        for dataset, names in _by_dataset():
            smq = ShardedMultiQueryRun(
                [PAPER_QUERIES[n] for n in names], workers=workers)
            smq.run_xml(workloads.text(dataset))
            stats = smq.stats()
            for i, name in enumerate(names):
                text, calls = independent[name]
                assert smq.texts()[i] == text, name
                assert (stats["per_query"][i]["transformer_calls"]
                        == calls), name
            assert stats["workers"] == min(workers, len(names))

    def test_small_frames_same_answers(self, workloads, independent):
        # Force many codec frames; framing must not be observable.
        names = ["Q1", "Q2", "Q5"]
        smq = ShardedMultiQueryRun([PAPER_QUERIES[n] for n in names],
                                   workers=2, batch_events=64)
        smq.run_xml(workloads.text("X"))
        assert smq.stats()["frames"] >= 10
        assert smq.texts() == [independent[n][0] for n in names]

    def test_engines_rejected(self):
        with pytest.raises(TypeError):
            ShardedMultiQueryRun([XFlux("count(X//a)")])

    def test_bad_query_fails_fast_in_parent(self):
        with pytest.raises(Exception):
            ShardedMultiQueryRun(["X//item[", "count(X//a)"])


class TestUpdateStreams:
    QUERIES = ['stream()//quote[name="IBM"]/price',
               'count(stream()//quote[name="IBM"])',
               'stream()//quote/price']

    @pytest.fixture(scope="class")
    def events(self):
        return StockTicker(n_updates=40, mutable_names=True,
                           name_update_fraction=0.4, seed=7).events()

    @pytest.fixture(scope="class")
    def reference(self, events):
        out = []
        for q in self.QUERIES:
            run = XFlux(q, mutable_source=True).run(events)
            out.append((run.text(), run.stats()["transformer_calls"]))
        return out

    def test_multiplex_tracks_updates(self, events, reference):
        mq = MultiQueryRun(self.QUERIES, mutable_source=True)
        mq.run(events)
        stats = mq.stats()
        for i, (text, calls) in enumerate(reference):
            assert mq.text(i) == text
            assert stats["per_query"][i]["transformer_calls"] == calls

    @pytest.mark.parametrize("workers", [1, 3])
    def test_sharded_tracks_updates(self, events, reference, workers):
        smq = ShardedMultiQueryRun(self.QUERIES, workers=workers,
                                   mutable_source=True, batch_events=37)
        smq.run(events)
        stats = smq.stats()
        for i, (text, calls) in enumerate(reference):
            assert smq.texts()[i] == text
            assert stats["per_query"][i]["transformer_calls"] == calls

    def test_shared_stripper_matches_private(self, events):
        q = self.QUERIES[0]
        solo = XFlux(q, mutable_source=True, ignore_updates=True)
        expected = solo.run(events).text()
        mq = MultiQueryRun([q, q[:-6] + "/name"], mutable_source=True,
                           ignore_updates=True)
        mq.run(events)
        assert mq.text(0) == expected
        assert mq.mux.stats()["shared_strip"]

    def test_mixed_consumers_one_pass(self, events):
        raw = XFlux(self.QUERIES[0], mutable_source=True)
        opted_out = XFlux(self.QUERIES[0], mutable_source=True,
                          ignore_updates=True)
        mq = MultiQueryRun([raw, opted_out])
        mq.run(events)
        assert mq.text(0) == XFlux(
            self.QUERIES[0], mutable_source=True).run(events).text()
        assert mq.text(1) == XFlux(
            self.QUERIES[0], mutable_source=True,
            ignore_updates=True).run(events).text()


class TestDedup:
    def test_identical_queries_share_a_pipeline(self, workloads,
                                                independent):
        q = PAPER_QUERIES["Q1"]
        mq = MultiQueryRun([q, q, PAPER_QUERIES["Q2"]])
        assert len(mq.runs) == 2 and len(mq) == 3
        mq.run_xml(workloads.text("X"))
        stats = mq.stats()
        assert stats["deduped"] == 1
        assert mq.texts()[0] == mq.texts()[1] == independent["Q1"][0]
        assert (stats["per_query"][0] is stats["per_query"][1])

    def test_dedup_off(self):
        q = PAPER_QUERIES["Q1"]
        mq = MultiQueryRun([q, q], dedup=False)
        assert len(mq.runs) == 2

    def test_different_flags_not_deduped(self):
        q = 'stream()//quote/price'
        mq = MultiQueryRun([XFlux(q, mutable_source=True),
                            XFlux(q, mutable_source=True,
                                  ignore_updates=True)])
        assert len(mq.runs) == 2


class TestValidation:
    def test_mismatched_close_raises(self):
        # The tokenizer catches this in XML input, so feed a broken
        # *event* stream directly (e.g. from a buggy producer).
        from repro.events.model import EE, SE, SS, Event
        mq = MultiQueryRun(["count(X//a)"], validate=True)
        with pytest.raises(WellFormednessError):
            mq.feed_all([Event(SS, 0), Event(SE, 0, tag="doc"),
                         Event(SE, 0, tag="a"), Event(EE, 0, tag="b")])

    def test_unclosed_document_raises_at_finish(self):
        mq = MultiQueryRun(["count(X//a)"], validate=True)
        from repro.xmlio.tokenizer import tokenize
        events = tokenize("<doc><a></a></doc>")
        mq.feed_all(events[:-2])  # drop eE(doc), eS
        with pytest.raises(WellFormednessError):
            mq.finish()

    def test_disagreeing_source_streams_rejected(self):
        with pytest.raises(ValueError):
            MultiQueryRun([XFlux("count(X//a)"),
                           XFlux("count(stream(3)//a)")])


class TestShardPartitioning:
    def test_covers_every_query_once(self):
        shards = shard_queries(9, 4)
        flat = sorted(i for s in shards for i in s)
        assert flat == list(range(9))
        assert len(shards) == 4

    def test_no_empty_shards_when_fewer_queries(self):
        assert shard_queries(2, 8) == [[0], [1]]
        assert shard_queries(0, 4) == []

    def test_weighted_balance(self):
        # One heavy query gets a shard of its own.
        shards = shard_queries(4, 2, weights=[10.0, 1.0, 1.0, 1.0])
        heavy = next(s for s in shards if 0 in s)
        assert heavy == [0]

    def test_submission_order_within_shard(self):
        for shard in shard_queries(8, 3, weights=[5, 1, 4, 2, 3, 1, 2, 4]):
            assert shard == sorted(shard)

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_queries(3, 0)
        with pytest.raises(ValueError):
            shard_queries(3, 2, weights=[1.0])


class TestAstCache:
    def test_same_text_shares_one_ast(self):
        q = 'X//cache_probe[a="b"]/c'
        assert XFlux(q).ast is XFlux(q).ast
        assert parse_cached(q) is parse_cached(q)

    def test_cached_ast_still_compiles_fresh_plans(self, workloads):
        q = PAPER_QUERIES["Q1"]
        first = XFlux(q).run_xml(workloads.text("X")).text()
        second = XFlux(q).run_xml(workloads.text("X")).text()
        assert first == second


class TestDisplayTextCache:
    def test_text_memoized_between_events(self):
        engine = XFlux('stream()//quote/price', mutable_source=True)
        run = engine.start()
        events = StockTicker(symbols=("IBM",), n_updates=3,
                             mutable_names=False, seed=3).events()
        for e in events:
            run.feed(e)
        rendered = run.text()
        assert run.text() is rendered  # cache hit: same object
        run.finish()
        assert run.text() == rendered

    def test_cache_invalidated_by_new_events(self):
        engine = XFlux('stream()//quote/price', mutable_source=True)
        run = engine.start()
        events = StockTicker(symbols=("IBM",), n_updates=4,
                             mutable_names=False, seed=3).events()
        seen = set()
        for e in events:
            run.feed(e)
            seen.add(run.text())
        run.finish()
        seen.add(run.text())
        assert len(seen) > 1  # display really changed across updates
