"""Tests for the transformer base, context, and mutability registry."""

import pytest

from repro.core import (Collector, Context, Drop, Identity,
                        MutabilityRegistry, Pipeline, Relabel)
from repro.core.transformer import run_sequence
from repro.events import cdata, loads


class TestMutabilityRegistry:
    def test_unknown_ids_are_fixed(self):
        fix = MutabilityRegistry()
        assert fix.is_fixed(7)

    def test_declare_mutable(self):
        fix = MutabilityRegistry()
        fix.declare_mutable(7)
        assert not fix.is_fixed(7)
        assert fix.live_count() == 1

    def test_freeze(self):
        fix = MutabilityRegistry()
        fix.declare_mutable(7)
        fix.freeze(7)
        assert fix.is_fixed(7)

    def test_inherit_propagates_mutability(self):
        fix = MutabilityRegistry()
        fix.declare_mutable(1)
        fix.inherit(1, 2)
        assert not fix.is_fixed(2)
        fix.inherit(99, 3)  # fixed target: new id stays fixed
        assert fix.is_fixed(3)

    def test_ignored_streams_stay_fixed(self):
        fix = MutabilityRegistry()
        fix.ignored_streams.add(5)
        fix.declare_mutable(5)
        assert fix.is_fixed(5)

    def test_redeclare_after_freeze(self):
        fix = MutabilityRegistry()
        fix.declare_mutable(1)
        fix.freeze(1)
        fix.declare_mutable(1)
        assert not fix.is_fixed(1)


class TestContext:
    def test_fresh_ids_unique(self):
        ctx = Context()
        assert ctx.fresh_id() != ctx.fresh_id()

    def test_default_components(self):
        ctx = Context()
        assert ctx.fix.is_fixed(123)


class TestSimpleTransformers:
    def test_identity(self, ctx):
        t = Identity(ctx, (0,), 0)
        evs = loads('sE(0,"a") cD(0,"x") eE(0,"a")')
        assert run_sequence(t, evs) == evs

    def test_relabel(self, ctx):
        t = Relabel(ctx, (0,), 9)
        out = run_sequence(t, [cdata(0, "x")])
        assert out[0].id == 9

    def test_drop(self, ctx):
        t = Drop(ctx, (0,), 0)
        assert run_sequence(t, [cdata(0, "x")]) == []

    def test_foreign_events_pass_through(self, ctx):
        t = Drop(ctx, (0,), 0)
        evs = [cdata(5, "keep")]
        assert run_sequence(t, evs) == evs


class TestPipelinePlumbing:
    def test_empty_pipeline_reaches_sink(self, ctx):
        col = Collector()
        pipe = Pipeline(ctx, [], col)
        evs = loads('sS(0) cD(0,"x") eS(0)')
        pipe.run(evs)
        assert col.events == evs

    def test_depth_first_ordering(self, ctx):
        # A stage emitting [a, b] must deliver a through the entire rest
        # of the chain before b (the paper's push-based dispatch).
        order = []

        class Dup(Identity):
            def process(self, e):
                return [e, e.relabel(e.id)]

        class Spy(Identity):
            def process(self, e):
                order.append(e.text)
                return [e]

        class TagSink:
            def process(self, e):
                order.append("sink:" + (e.text or ""))

        pipe = Pipeline(ctx, [Dup(ctx, (0,), 0), Spy(ctx, (0,), 0)],
                        TagSink())
        pipe.feed(cdata(0, "x"))
        assert order == ["x", "sink:x", "x", "sink:x"]

    def test_finish_flushes_on_end(self, ctx):
        class Flusher(Identity):
            def on_end(self):
                return [cdata(self.output_id, "flushed")]

        col = Collector()
        pipe = Pipeline(ctx, [Flusher(ctx, (0,), 0)], col)
        pipe.run([])
        assert [e.text for e in col.events] == ["flushed"]

    def test_finish_is_idempotent(self, ctx):
        col = Collector()
        pipe = Pipeline(ctx, [], col)
        pipe.run([])
        pipe.finish()
        assert col.events == []

    def test_call_accounting(self, ctx):
        col = Collector()
        pipe = Pipeline(ctx, [Identity(ctx, (0,), 0),
                              Identity(ctx, (0,), 0)], col)
        pipe.run(loads('sS(0) cD(0,"a") eS(0)'))
        assert pipe.total_calls() == 6  # 3 events x 2 stages


class TestFilterChain:
    def test_paper_style_filter_chain(self, ctx):
        from repro.core import build_filter_chain
        seen = []
        chain = build_filter_chain([Relabel(ctx, (0,), 1)], seen.append)
        for e in loads('sS(0) cD(0,"x") eS(0)'):
            chain.dispatch(e)
        chain.finish()
        assert [e.id for e in seen] == [1, 1, 1]
