"""Static plan analyzer: fix-map prediction, lints, CLI subcommand.

The central claim: the analyzer's *static* fix map — computed from the
transformers' declared facts alone, without running any events — must
match the runtime :class:`~repro.core.transformer.MutabilityRegistry`
after a complete run over the paper's benchmark datasets.
"""

import io

import pytest

from repro import tokenize
from repro.analysis import (analyze_plan, analyze_query, render_report,
                            verify_against_runtime)
from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET
from repro.cli import main
from repro.data import DBLPGenerator, XMarkGenerator
from repro.xquery.engine import QueryRun, XFlux


@pytest.fixture(scope="module")
def xmark_text():
    return XMarkGenerator(scale=0.03, seed=13,
                          albania_fraction=0.2).text()


@pytest.fixture(scope="module")
def dblp_text():
    return DBLPGenerator(scale=0.02, seed=13, smith_fraction=0.15).text()


def doc_for(name, xmark_text, dblp_text):
    return dblp_text if QUERY_DATASET[name] == "D" else xmark_text


def run_plan(plan, text):
    run = QueryRun(plan)
    run.feed_all(tokenize(text, stream_id=plan.source_id,
                          emit_oids=plan.needs_oids))
    return run.finish()


class TestFixMapPrediction:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_static_fix_map_matches_runtime(self, name, xmark_text,
                                            dblp_text):
        plan = XFlux(PAPER_QUERIES[name]).compile()
        report = analyze_plan(plan)
        run_plan(plan, doc_for(name, xmark_text, dblp_text))
        assert verify_against_runtime(plan, report) == []
        # The partition itself, not only the verifier's verdict:
        leftover = set(plan.ctx.fix._not_fixed)
        static_left = {i for i in leftover if i < plan.first_runtime_id}
        assert static_left == set(report.persistent_static)
        dyn_left = {i for i in leftover if i >= plan.first_runtime_id}
        if report.dynamic_persistent:
            assert dyn_left
        else:
            assert not dyn_left

    def test_q7_concat_regions_stay_mutable(self):
        report = analyze_query(PAPER_QUERIES["Q7"])
        # The two Concat-owned regions (sequence halves) are never
        # frozen: their numbers are compile-time constants.
        assert len(report.persistent_static) == 2
        assert report.dynamic_persistent  # translated per-tuple copies

    def test_q9_sort_tracks_concat_chain(self):
        report = analyze_query(PAPER_QUERIES["Q9"])
        # Three Concats x two regions each reach the blocking sort.
        assert len(report.persistent_static) == 6
        assert not report.dynamic_persistent

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5",
                                      "Q6", "Q8"])
    def test_single_path_queries_free_everything(self, name):
        report = analyze_query(PAPER_QUERIES[name])
        assert not report.persistent_static
        assert not report.dynamic_persistent


class TestLints:
    def test_dormant_fast_path_guaranteed(self):
        report = analyze_query(PAPER_QUERIES["Q1"])
        assert any("dormant fast path is guaranteed" in lint
                   for lint in report.lints)
        assert report.stages[0].dormant

    def test_mutable_source_wakes_first_stage(self):
        report = analyze_query('stream()//quote[name="IBM"]/price',
                               mutable_source=True)
        assert not report.stages[0].dormant
        assert not any("dormant fast path is guaranteed" in lint
                       for lint in report.lints)

    def test_persistent_region_lint_on_q7(self):
        report = analyze_query(PAPER_QUERIES["Q7"])
        assert any("stay open to updates" in lint
                   for lint in report.lints)

    def test_blocking_stage_reported(self):
        report = analyze_query(PAPER_QUERIES["Q9"])
        assert any(sr.facts.get("paper_blocking")
                   for sr in report.stages)
        assert "blocking" in render_report(report)


class TestRender:
    def test_render_lists_every_stage(self):
        report = analyze_query(PAPER_QUERIES["Q3"])
        text = render_report(report)
        for i in range(len(report.stages)):
            assert "[{}]".format(i) in text
        assert "static fix map" in text

    def test_render_names_persistent_regions(self):
        report = analyze_query(PAPER_QUERIES["Q7"])
        text = render_report(report)
        for rid in report.persistent_static:
            assert str(rid) in text


class TestAnalyzeCli:
    def test_analyze_query_name(self):
        out, err = io.StringIO(), io.StringIO()
        assert main(["analyze", "Q1"], out=out, err=err) == 0
        assert "static fix map" in out.getvalue()

    def test_analyze_query_text(self):
        out, err = io.StringIO(), io.StringIO()
        assert main(["analyze", "count(X//item)"], out=out, err=err) == 0
        assert "CountItems" in out.getvalue()

    def test_analyze_with_input_cross_check(self, tmp_path, xmark_text):
        doc = tmp_path / "xmark.xml"
        doc.write_text(xmark_text)
        out, err = io.StringIO(), io.StringIO()
        code = main(["analyze", "Q7", "--input", str(doc), "--sanitize"],
                    out=out, err=err)
        assert code == 0, err.getvalue()
        assert "agrees with the static analysis" in out.getvalue()

    def test_analyze_rejects_bad_query(self):
        out, err = io.StringIO(), io.StringIO()
        assert main(["analyze", "X//"], out=out, err=err) == 2
        assert "error" in err.getvalue()

    def test_analyze_requires_query(self):
        out, err = io.StringIO(), io.StringIO()
        assert main(["analyze"], out=out, err=err) == 2
