"""Unit tests for the event model (repro.events.model)."""

import pytest

from repro.events import (CD, EE, EM, ES, FREEZE, HIDE, SA, SB, SE, SHOW,
                          SM, SR, SS, ST, Event, IdGenerator, Kind, cdata,
                          end_element, end_mutable, end_replace, end_stream,
                          end_tuple, events_of, freeze, hide, matching_end,
                          matching_start, show, start_element,
                          start_insert_after, start_insert_before,
                          start_mutable, start_replace, start_stream,
                          start_tuple)


class TestConstructors:
    def test_start_element_carries_tag(self):
        e = start_element(3, "book")
        assert e.kind == SE
        assert e.id == 3
        assert e.tag == "book"
        assert e.sub is None
        assert e.text is None

    def test_cdata_carries_text(self):
        e = cdata(0, "hello")
        assert e.kind == CD
        assert e.text == "hello"

    def test_stream_and_tuple_markers(self):
        assert start_stream(1).kind == SS
        assert end_stream(1).kind == ES
        assert start_tuple(2).kind == ST
        assert end_tuple(2).kind == Kind.END_TUPLE

    def test_update_brackets_carry_target_and_sub(self):
        e = start_mutable(0, 5)
        assert e.kind == SM
        assert e.id == 0
        assert e.sub == 5
        assert start_replace(5, 6).sub == 6
        assert start_insert_before(5, 7).kind == SB
        assert start_insert_after(5, 8).kind == SA

    def test_toggles(self):
        assert freeze(4).kind == FREEZE
        assert hide(4).kind == HIDE
        assert show(4).kind == SHOW


class TestClassification:
    def test_data_events_are_not_updates(self):
        for e in (start_stream(0), start_element(0, "a"), cdata(0, "x"),
                  end_element(0, "a"), end_stream(0), start_tuple(0)):
            assert not e.is_update

    def test_update_events_are_updates(self):
        for e in (start_mutable(0, 1), end_mutable(0, 1),
                  start_replace(1, 2), end_replace(1, 2), freeze(1),
                  hide(1), show(1)):
            assert e.is_update

    def test_update_start_end_flags(self):
        assert start_mutable(0, 1).is_update_start
        assert not start_mutable(0, 1).is_update_end
        assert end_replace(0, 1).is_update_end
        assert not hide(1).is_update_start


class TestMatching:
    @pytest.mark.parametrize("start,end", [(SM, EM), (SR, Kind.END_REPLACE),
                                           (SB, Kind.END_INSERT_BEFORE),
                                           (SA, Kind.END_INSERT_AFTER)])
    def test_matching_end(self, start, end):
        assert matching_end(start) == end
        assert matching_start(end) == start


class TestValueSemantics:
    def test_equality_ignores_oid(self):
        a = start_element(0, "x", oid=1)
        b = start_element(0, "x", oid=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_payload(self):
        assert cdata(0, "a") != cdata(0, "b")
        assert cdata(0, "a") != cdata(1, "a")
        assert start_element(0, "a") != end_element(0, "a")

    def test_same_node_uses_oid(self):
        a = end_element(0, "x", oid=7)
        b = end_element(5, "x", oid=7)
        c = end_element(0, "x", oid=8)
        assert a.same_node(b)
        assert not a.same_node(c)
        assert not Event(SE, 0, tag="x").same_node(b)  # oid None

    def test_relabel_preserves_everything_but_id(self):
        e = Event(SE, 0, tag="t", oid=9)
        r = e.relabel(42)
        assert r.id == 42
        assert r.tag == "t"
        assert r.oid == 9
        assert r.kind == SE

    def test_repr_uses_paper_abbreviations(self):
        assert repr(start_mutable(0, 1)) == "sM(0,1)"
        assert repr(cdata(2, "y")) == "cD(2,'y')"
        assert repr(freeze(3)) == "freeze(3)"


class TestIdGenerator:
    def test_fresh_is_monotone_and_unique(self):
        gen = IdGenerator(first=10)
        ids = [gen.fresh() for _ in range(100)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 100
        assert ids[0] == 10

    def test_reserve_moves_cursor_forward(self):
        gen = IdGenerator(first=5)
        gen.reserve(50)
        assert gen.fresh() == 51

    def test_reserve_below_cursor_is_noop(self):
        gen = IdGenerator(first=100)
        gen.reserve(3)
        assert gen.fresh() == 100


def test_events_of_filters_by_stream():
    evs = [cdata(0, "a"), cdata(1, "b"), cdata(0, "c")]
    assert [e.text for e in events_of(evs, 0)] == ["a", "c"]
