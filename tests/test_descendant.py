"""Tests for the descendant step (//*, //tag) — paper Section VI-C."""

from repro.core import Collector, Display, Pipeline
from repro.core.transformer import run_sequence
from repro.events import UPDATE_STARTS, loads, validate_document_stream
from repro.operators import DescendantStep
from repro.xmlio import tokenize


def descend(ctx, xml, tag):
    out = ctx.ids.reserve(10)
    disp = Display(out)
    Pipeline(ctx, [DescendantStep(ctx, 0, out, tag)], disp).run(
        tokenize(xml))
    return disp


class TestWildcard:
    def test_paper_example_postorder(self, ctx):
        # Section VI-C: //* over <a><b><c><d>X</d><d>Y</d></c></b>
        #                        <b><c><d>Z</d></c></b></a>
        disp = descend(ctx, "<a><b><c><d>X</d><d>Y</d></c></b>"
                            "<b><c><d>Z</d></c></b></a>", None)
        assert disp.text() == ("<d>X</d><d>Y</d><c><d>X</d><d>Y</d></c>"
                               "<b><c><d>X</d><d>Y</d></c></b>"
                               "<d>Z</d><c><d>Z</d></c>"
                               "<b><c><d>Z</d></c></b>")

    def test_root_excluded(self, ctx):
        disp = descend(ctx, "<a><b>x</b></a>", None)
        assert disp.text() == "<b>x</b>"

    def test_top_level_text_dropped(self, ctx):
        out = ctx.ids.reserve(10)
        disp = Display(out)
        Pipeline(ctx, [DescendantStep(ctx, 0, out, None)], disp).run(
            loads('sS(0) sE(0,"a") cD(0,"loose") sE(0,"b") cD(0,"in") '
                  'eE(0,"b") eE(0,"a") eS(0)'))
        assert disp.text() == "<b>in</b>"


class TestTagged:
    def test_non_recursive_matches_document_order(self, ctx):
        disp = descend(ctx, "<r><a><item>1</item></a><item>2</item></r>",
                       "item")
        assert disp.text() == "<item>1</item><item>2</item>"

    def test_recursive_nesting_postorder(self, ctx, recursive_xml):
        disp = descend(ctx, recursive_xml, "part")
        assert disp.text() == ("<part>c</part><part>b<part>c</part></part>"
                               "<part>a<part>b<part>c</part></part></part>"
                               "<part>d</part><part>e</part>")

    def test_no_matches(self, ctx):
        disp = descend(ctx, "<r><a>x</a></r>", "zzz")
        assert disp.text() == ""

    def test_non_recursive_emits_no_insert_updates(self, ctx):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [DescendantStep(ctx, 0, out, "item")], col).run(
            tokenize("<r><item>1</item><item>2</item></r>"))
        # Only the (immediately frozen) empty anchors, no insert-befores:
        # the paper's "as efficient as /tag".
        assert not any(e.abbrev in ("sB", "sA", "sR") for e in col.events)

    def test_recursive_emits_insert_before(self, ctx, recursive_xml):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [DescendantStep(ctx, 0, out, "part")], col).run(
            tokenize(recursive_xml))
        assert any(e.abbrev == "sB" for e in col.events)

    def test_generated_regions_frozen(self, ctx, recursive_xml):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [DescendantStep(ctx, 0, out, "part")], col).run(
            tokenize(recursive_xml))
        opened = {e.sub for e in col.events if e.kind in UPDATE_STARTS}
        frozen = {e.id for e in col.events if e.abbrev == "freeze"}
        assert opened <= frozen

    def test_output_brackets_nest(self, ctx, recursive_xml):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [DescendantStep(ctx, 0, out, "part")], col).run(
            tokenize(recursive_xml))
        validate_document_stream(col.events)


class TestInertness:
    def test_state_restored_after_document(self, ctx):
        step = DescendantStep(ctx, 0, ctx.ids.reserve(10), None)
        before = step.get_state()
        run_sequence(step, tokenize("<a><b><c>x</c></b></a>")[1:-1])
        assert step.get_state() == before

    def test_composes_with_itself(self, ctx):
        # //a//b
        a, b = ctx.ids.reserve(10), ctx.ids.reserve(11)
        disp = Display(b)
        Pipeline(ctx, [DescendantStep(ctx, 0, a, "sec"),
                       DescendantStep(ctx, a, b, "p")], disp).run(
            tokenize("<doc><sec><p>1</p><div><p>2</p></div></sec>"
                     "<p>outside</p></doc>"))
        assert disp.text() == "<p>1</p><p>2</p>"
