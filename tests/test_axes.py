"""Tests for child/text/string-value steps."""

from repro.core import Collector, Display, Pipeline
from repro.core.transformer import run_sequence
from repro.events import CD, loads
from repro.operators import ChildStep, SelfStep, StringValue, TextStep
from repro.xmlio import tokenize, write_events


def run_step(ctx, step, xml, out_id):
    disp = Display(out_id)
    Pipeline(ctx, [step], disp).run(tokenize(xml))
    return disp.text()


class TestChildStep:
    def test_selects_matching_children_of_root(self, ctx):
        out = ctx.ids.reserve(10)
        text = run_step(ctx, ChildStep(ctx, 0, out, "b"),
                        "<r><b>1</b><c>no</c><b>2</b></r>", out)
        assert text == "<b>1</b><b>2</b>"

    def test_does_not_select_grandchildren(self, ctx):
        out = ctx.ids.reserve(10)
        text = run_step(ctx, ChildStep(ctx, 0, out, "b"),
                        "<r><c><b>deep</b></c></r>", out)
        assert text == ""

    def test_selected_subtree_complete(self, ctx):
        out = ctx.ids.reserve(10)
        text = run_step(ctx, ChildStep(ctx, 0, out, "b"),
                        "<r><b>x<c>y</c>z</b></r>", out)
        assert text == "<b>x<c>y</c>z</b>"

    def test_wildcard(self, ctx):
        out = ctx.ids.reserve(10)
        text = run_step(ctx, ChildStep(ctx, 0, out, None),
                        "<r><a>1</a><b>2</b></r>", out)
        assert text == "<a>1</a><b>2</b>"

    def test_same_tag_nested_not_reselected(self, ctx):
        out = ctx.ids.reserve(10)
        text = run_step(ctx, ChildStep(ctx, 0, out, "b"),
                        "<r><b>x<b>inner</b></b></r>", out)
        assert text == "<b>x<b>inner</b></b>"

    def test_inert_state_restored(self, ctx):
        step = ChildStep(ctx, 0, ctx.ids.reserve(10), "b")
        before = step.get_state()
        run_sequence(step, tokenize("<r><b>x</b></r>")[1:-1])
        assert step.get_state() == before

    def test_composition(self, ctx):
        a, b = ctx.ids.reserve(10), ctx.ids.reserve(11)
        disp = Display(b)
        Pipeline(ctx, [ChildStep(ctx, 0, a, "x"),
                       ChildStep(ctx, a, b, "y")], disp).run(
            tokenize("<r><x><y>1</y></x><x><z><y>no</y></z></x></r>"))
        assert disp.text() == "<y>1</y>"


class TestTextStep:
    def test_selects_text_children(self, ctx):
        out = ctx.ids.reserve(10)
        disp = Display(out)
        Pipeline(ctx, [ChildStep(ctx, 0, 5, "b"),
                       TextStep(ctx, 5, out)], disp).run(
            tokenize("<r><b>keep<c>skip</c>also</b></r>"))
        assert disp.text() == "keepalso"

    def test_ignores_nested_text(self, ctx):
        out = ctx.ids.reserve(10)
        text = run_step(ctx, TextStep(ctx, 0, out),
                        "<r><a>deep</a></r>", out)
        assert text == ""


class TestSelfStep:
    def test_relabels_everything(self, ctx):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [SelfStep(ctx, 0, out)], col).run(
            tokenize("<a>x</a>"))
        assert all(e.id == out for e in col.events)


class TestStringValue:
    def test_element_string_value_concatenates_descendants(self, ctx):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [StringValue(ctx, 0, out)], col).run(
            loads('sS(0) sE(0,"a") cD(0,"x") sE(0,"b") cD(0,"y") '
                  'eE(0,"b") cD(0,"z") eE(0,"a") eS(0)'))
        values = [e.text for e in col.events if e.kind == CD]
        assert values == ["xyz"]

    def test_one_value_per_item(self, ctx):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [StringValue(ctx, 0, out)], col).run(
            loads('sS(0) sE(0,"a") cD(0,"1") eE(0,"a") '
                  'sE(0,"a") cD(0,"2") eE(0,"a") eS(0)'))
        values = [e.text for e in col.events if e.kind == CD]
        assert values == ["1", "2"]

    def test_bare_top_level_text_passes(self, ctx):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [StringValue(ctx, 0, out)], col).run(
            loads('sS(0) cD(0,"plain") eS(0)'))
        values = [e.text for e in col.events if e.kind == CD]
        assert values == ["plain"]

    def test_empty_element_yields_empty_value(self, ctx):
        out = ctx.ids.reserve(10)
        col = Collector()
        Pipeline(ctx, [StringValue(ctx, 0, out)], col).run(
            loads('sS(0) sE(0,"a") eE(0,"a") eS(0)'))
        values = [e.text for e in col.events if e.kind == CD]
        assert values == [""]
