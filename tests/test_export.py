"""Interchange-export tests: Chrome trace-event JSON and OpenMetrics.

Both renderers are validated by the same strict checkers the obs-smoke
CI job runs (:func:`validate_chrome_trace`, :func:`parse_openmetrics`),
so a regression in either format fails here first.
"""

import json

import pytest

from repro.bench.harness import PAPER_QUERIES, Workloads
from repro.obs import merge_trace_dicts
from repro.obs.export import (metrics_to_openmetrics, parse_openmetrics,
                              stage_labels_from_metrics,
                              trace_to_chrome, validate_chrome_trace)
from repro.xquery.engine import XFlux

SCALE = 0.02


@pytest.fixture(scope="module")
def traced_run():
    text = Workloads(xmark_scale=SCALE, dblp_scale=SCALE).text("X")
    return XFlux(PAPER_QUERIES["Q3"]).run_xml(text, trace=True)


@pytest.fixture(scope="module")
def metrics(traced_run):
    return traced_run.metrics()


class TestChromeTrace:
    def test_round_trips_with_required_keys(self, metrics):
        chrome = trace_to_chrome(metrics["trace"],
                                 stage_labels_from_metrics(metrics))
        # The acceptance bar: json round-trip plus required keys.
        back = json.loads(json.dumps(chrome))
        n = validate_chrome_trace(back)
        assert n == len(chrome["traceEvents"]) > 0
        assert back["otherData"]["regions"] == metrics["trace"]["regions"]

    def test_one_track_per_stage_plus_sink(self, metrics):
        chrome = trace_to_chrome(metrics["trace"],
                                 stage_labels_from_metrics(metrics))
        names = {e["args"]["name"]: e["tid"]
                 for e in chrome["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "sink" in names
        stage_labels = set(names) - {"sink"}
        assert stage_labels == {s["label"] for s in metrics["stages"]
                                if any(h["stage"] == s["index"]
                                       for h in metrics["trace"]["hops"])}
        # Distinct threads per station.
        assert len(set(names.values())) == len(names)

    def test_hops_become_complete_events(self, metrics):
        chrome = trace_to_chrome(metrics["trace"])
        xs = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(metrics["trace"]["hops"])

    def test_translations_become_flow_pairs(self, metrics):
        chrome = trace_to_chrome(metrics["trace"])
        starts = [e for e in chrome["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in chrome["traceEvents"] if e["ph"] == "f"]
        n_links = len(metrics["trace"]["links"])
        assert len(starts) == n_links
        # Every flow arrow that lands, lands once, with a matching id.
        start_ids = {e["id"] for e in starts}
        assert all(e["id"] in start_ids for e in finishes)

    def test_regions_become_async_spans(self, metrics):
        chrome = trace_to_chrome(metrics["trace"])
        begins = {e["id"]: e["ts"] for e in chrome["traceEvents"]
                  if e["ph"] == "b"}
        ends = {e["id"]: e["ts"] for e in chrome["traceEvents"]
                if e["ph"] == "e"}
        assert set(begins) == set(ends)
        assert len(begins) == metrics["trace"]["regions"]
        assert all(ends[i] >= begins[i] for i in begins)

    def test_merged_trace_gets_one_process_per_log(self, metrics):
        merged = merge_trace_dicts([metrics["trace"],
                                    metrics["trace"]])
        chrome = trace_to_chrome(merged)
        pids = {e["pid"] for e in chrome["traceEvents"]}
        assert pids == {0, 1}
        validate_chrome_trace(chrome)

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 0,
                                  "tid": 1, "ts": "soon", "dur": 1}]})


class TestOpenMetrics:
    def test_parses_and_counts_match(self, metrics):
        text = metrics_to_openmetrics(metrics)
        families = parse_openmetrics(text)
        source = families["repro_source_events"][0]
        assert source["value"] == metrics["source_events"]
        sink = {s["labels"]["class"]: s["value"]
                for s in families["repro_sink_events"]}
        assert sink == {k: float(v) for k, v
                        in metrics["sink_events"].items()}

    def test_histograms_cumulative_with_inf(self, metrics):
        text = metrics_to_openmetrics(metrics)
        families = parse_openmetrics(text)
        fam = "repro_drain_batch_latency_seconds"
        rows = families[fam]
        buckets = [r for r in rows if r["name"].endswith("_bucket")]
        count = [r for r in rows if r["name"].endswith("_count")][0]
        assert buckets[-1]["labels"]["le"] == "+Inf"
        assert buckets[-1]["value"] == count["value"]
        values = [b["value"] for b in buckets]
        assert values == sorted(values)
        # Seconds, not nanoseconds: a drain batch takes < 1000 s.
        s = [r for r in rows if r["name"].endswith("_sum")][0]
        assert 0 < s["value"] < 1000

    def test_ends_with_eof(self, metrics):
        assert metrics_to_openmetrics(metrics).endswith("# EOF\n")

    def test_label_escaping(self):
        m = {"source_events": 1, "sink_events": {}, "stages": [
            {"index": 0, "label": 'evil"label\\with\nstuff',
             "events_in": {"data": 2}, "events_out": {},
             "peak_cells": 0}],
            "histograms": {}}
        text = metrics_to_openmetrics(m)
        families = parse_openmetrics(text)
        row = families["repro_stage_events_in"][0]
        assert row["value"] == 2

    def test_parser_rejections(self):
        with pytest.raises(ValueError):
            parse_openmetrics("repro_x_total 1\n")  # no # EOF
        with pytest.raises(ValueError):
            parse_openmetrics("repro_x_total 1\n# EOF")  # no # TYPE
        with pytest.raises(ValueError):
            parse_openmetrics("# TYPE repro_x counter\n"
                              "repro_x_total banana\n# EOF")
        bad_hist = ("# TYPE h histogram\n"
                    'h_bucket{le="1"} 5\n'
                    'h_bucket{le="+Inf"} 3\n'  # decreasing
                    "h_sum 1\nh_count 3\n# EOF")
        with pytest.raises(ValueError):
            parse_openmetrics(bad_hist)

    def test_projection_counters_exported(self):
        m = {"source_events": 1, "sink_events": {}, "stages": [],
             "histograms": {},
             "projection": {"events_pruned": 7, "bytes_skipped": 9}}
        families = parse_openmetrics(metrics_to_openmetrics(m))
        rows = {r["labels"]["counter"]: r["value"]
                for r in families["repro_projection"]}
        assert rows == {"events_pruned": 7, "bytes_skipped": 9}
