"""Flight-recorder tests: the ring, the bundles, and the fault wiring.

The flight recorder rides the instrumented drain (same gate as
metrics), so the contracts here are:

* the ring is bounded and counts exactly the source events;
* ``flight=True`` implies a recorder and, like metrics, disengages
  prefix sharing;
* a quarantine dumps a post-mortem bundle whose event ring ends at the
  failure, and a shard recovery dumps a supervisor-side bundle whose
  ``replayed_frames`` equals the run's ``fault_stats()`` counters —
  the chaos CLI writes both kinds to disk.
"""

import json

import pytest

from repro.bench.harness import PAPER_QUERIES, Workloads
from repro.events.model import Event, Kind
from repro.fault import FaultPlan
from repro.obs import (DEFAULT_CAPACITY, FlightRecorder, build_bundle,
                       merge_flight_dicts, write_bundle)
from repro.parallel import ShardedMultiQueryRun
from repro.xquery.engine import MultiQueryRun, XFlux

SCALE = 0.02
NAMES = ["Q1", "Q2", "Q5", "Q7"]
QUERIES = [PAPER_QUERIES[n] for n in NAMES]


@pytest.fixture(scope="module")
def xmark_text():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE).text("X")


class TestRing:
    def test_bounded_and_counting(self):
        rec = FlightRecorder(capacity=4)
        events = [Event(Kind.START_ELEMENT, 1, tag="t{}".format(i))
                  for i in range(10)]
        for e in events:
            rec.note(e)
        assert rec.events_seen == 10
        assert len(rec) == 4
        # Oldest-first, and exactly the last four.
        assert rec.snapshot() == [repr(e) for e in events[-4:]]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_merge_flight_dicts(self):
        a = FlightRecorder(capacity=8)
        b = FlightRecorder(capacity=4)
        for _ in range(6):
            a.note(Event(Kind.CDATA, 1, text="x"))
        b.note(Event(Kind.CDATA, 1, text="y"))
        merged = merge_flight_dicts([a.to_dict(), b.to_dict(), None])
        assert merged == {"capacity": 8, "events_seen": 7,
                          "recorded": 7, "pipelines": 2}
        # Merging merged dicts keeps the pipeline count additive.
        again = merge_flight_dicts([merged, a.to_dict()])
        assert again["pipelines"] == 3
        assert again["events_seen"] == 13


class TestEngineWiring:
    def test_flight_implies_recorder_and_counts_source_events(
            self, xmark_text):
        run = XFlux(PAPER_QUERIES["Q1"]).run_xml(xmark_text,
                                                 flight=True)
        assert run.recorder is not None
        flight = run.recorder.flight
        assert flight is not None
        assert flight.events_seen == run.recorder.source_events
        assert flight.events_seen > 0
        assert 0 < len(flight) <= flight.capacity

    def test_flight_off_by_default(self, xmark_text, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT", raising=False)
        run = XFlux(PAPER_QUERIES["Q1"]).run_xml(xmark_text)
        assert run.recorder is None

    def test_repro_flight_env(self, xmark_text, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT", "1")
        run = XFlux(PAPER_QUERIES["Q1"]).run_xml(xmark_text)
        assert run.recorder is not None
        assert run.recorder.flight is not None

    def test_metrics_alone_has_no_flight(self, xmark_text):
        run = XFlux(PAPER_QUERIES["Q1"]).run_xml(xmark_text,
                                                 metrics=True)
        assert run.recorder is not None
        assert run.recorder.flight is None

    def test_flight_disengages_prefix_sharing(self, xmark_text):
        mq = MultiQueryRun(QUERIES, share_prefixes=True, flight=True)
        assert not mq.share_prefixes
        assert not mq.groups
        mq.run_xml(xmark_text)
        m = mq.metrics()
        assert m["flight"]["pipelines"] == len(QUERIES)

    def test_output_identical_with_flight_on(self, xmark_text):
        plain = XFlux(PAPER_QUERIES["Q7"]).run_xml(xmark_text)
        flown = XFlux(PAPER_QUERIES["Q7"]).run_xml(xmark_text,
                                                   flight=True)
        assert flown.text() == plain.text()


class TestBundles:
    def test_build_bundle_from_recorder(self, xmark_text):
        run = XFlux(PAPER_QUERIES["Q2"]).run_xml(xmark_text,
                                                 flight=True)
        bundle = build_bundle("unit-test", recorder=run.recorder,
                              error={"error_type": "X", "message": "m"})
        assert bundle["bundle"] == "flight-recorder-bundle"
        assert bundle["reason"] == "unit-test"
        assert bundle["error"]["error_type"] == "X"
        assert bundle["last_events"], "ring should not be empty"
        assert bundle["flight"]["events_seen"] > 0
        assert [s["label"] for s in bundle["stages"]]
        assert "drain_batch" in bundle["histograms"]
        assert bundle["metrics"]["source_events"] > 0
        # The whole bundle must be JSON-able as-is (it crosses the
        # shard result pipe and lands in report files).
        json.loads(json.dumps(bundle))

    def test_write_bundle_round_trip(self, tmp_path):
        plan = FaultPlan.parse("kill:shard=0,after=1;seed=7")
        bundle = build_bundle("probe", fault_plan=plan, extra_key=3)
        path = write_bundle(bundle, str(tmp_path / "b.json"))
        with open(path) as fh:
            back = json.load(fh)
        assert back["fault_plan"] == plan.to_spec()
        assert back["fault_seed"] == 7
        assert back["extra_key"] == 3


class TestFaultIntegration:
    def test_kill_plan_bundle_matches_recovery_counters(
            self, xmark_text):
        smq = ShardedMultiQueryRun(
            QUERIES, workers=2, batch_events=64,
            fault_plan=FaultPlan.parse("kill:shard=0,after=3"))
        smq.run_xml(xmark_text)
        ft = smq.fault_stats()
        assert ft["restarts"] >= 1
        bundles = smq.flight_bundles()
        assert len(bundles) == ft["flight_bundles"] >= 1
        restart_bundles = [b for b in bundles
                           if b["reason"] == "worker-restart"]
        assert restart_bundles
        # The last recovery's cumulative replay counter is the run's.
        assert (restart_bundles[-1]["replayed_frames"]
                == ft["replayed_frames"])
        assert restart_bundles[-1]["fault_plan"] == ft["fault_plan"]
        for b in bundles:
            json.loads(json.dumps(b))

    def test_quarantine_bundle_carries_the_ring(self, xmark_text):
        smq = ShardedMultiQueryRun(
            QUERIES, workers=2, batch_events=64, flight=True,
            fault_plan=FaultPlan.parse("raise:query=1,stage=0,at=50"))
        smq.run_xml(xmark_text)
        assert smq.statuses()[1] == "quarantined"
        reports = smq.error_reports()
        assert 1 in reports
        bundle = reports[1].get("flight_bundle")
        assert bundle is not None
        assert bundle["reason"] == "quarantine"
        # The fault fired at source event 50: the ring saw exactly the
        # events up to (and including) the one that blew up.
        assert bundle["flight"]["events_seen"] == 50
        assert len(bundle["last_events"]) == 50
        assert bundle["error"]["error_type"] == "InjectedFault"
        assert bundle["fault_plan"] == "raise:query=1,stage=0,at=50"

    def test_no_flight_no_quarantine_bundle(self, xmark_text):
        smq = ShardedMultiQueryRun(
            QUERIES, workers=2, batch_events=64,
            fault_plan=FaultPlan.parse("raise:query=1,stage=0,at=50"))
        smq.run_xml(xmark_text)
        reports = smq.error_reports()
        assert 1 in reports
        assert "flight_bundle" not in reports[1]
