"""Chunk-boundary behaviour of the incremental tokenizer.

The regex-scanning tokenizer must produce the same events no matter where
``feed`` chunk boundaries fall — including boundaries inside tags,
comments, CDATA sections, entity references and attribute values.  These
tests parametrize over *every* split point of a small document covering
all those constructs, and additionally check the production scanner
differentially against the character-level reference scanner
(:mod:`repro.xmlio.reference_tokenizer`), which is kept verbatim as the
executable specification.
"""

import pytest

from repro.xmlio import XMLSyntaxError, XMLTokenizer, iter_tokenize, \
    tokenize
from repro.xmlio.reference_tokenizer import (ReferenceTokenizer,
                                             iter_reference_tokenize,
                                             reference_tokenize)

# One document exercising every construct whose scanning spans multiple
# characters: declarations, DOCTYPE, attributes (both quote styles, with
# an entity), comments (with embedded markup), CDATA (with metacharacters),
# predefined/numeric entities, self-closing tags, and nesting.
DOC = ('<?xml version="1.0"?><!DOCTYPE root>'
       '<root a="1" b = \'two &amp; three\'>'
       'pre<!-- comment -- ><x/> --><child>text &lt;&#65;&#x42;&gt;</child>'
       '<![CDATA[raw <&> stuff]]>mid<empty/>'
       '<deep><d2>x &quot;q&apos;</d2></deep>tail</root>')

SPLITS = list(range(len(DOC) + 1))


@pytest.fixture(scope="module")
def oneshot():
    return tokenize(DOC)


class TestEverySplitPoint:
    @pytest.mark.parametrize("i", SPLITS)
    def test_two_chunks_equal_oneshot(self, i, oneshot):
        assert list(iter_tokenize([DOC[:i], DOC[i:]])) == oneshot

    @pytest.mark.parametrize("i", SPLITS)
    def test_two_chunks_match_reference(self, i):
        fast = list(iter_tokenize([DOC[:i], DOC[i:]]))
        ref = list(iter_reference_tokenize([DOC[:i], DOC[i:]]))
        assert fast == ref

    def test_byte_at_a_time(self, oneshot):
        assert list(iter_tokenize(list(DOC))) == oneshot

    def test_three_chunks_sliding(self, oneshot):
        third = len(DOC) // 3
        for i in range(0, len(DOC) - third, 7):
            chunks = [DOC[:i], DOC[i:i + third], DOC[i + third:]]
            assert list(iter_tokenize(chunks)) == oneshot


class TestReferenceAgreement:
    def test_oneshot_matches_reference(self):
        assert tokenize(DOC) == reference_tokenize(DOC)

    def test_oids_match_reference(self):
        assert tokenize(DOC, emit_oids=True) == \
            reference_tokenize(DOC, emit_oids=True)

    def test_keep_whitespace_matches_reference(self):
        doc = "<a> <b/> \n <c>x</c> </a>"
        assert tokenize(doc, keep_whitespace=True) == \
            reference_tokenize(doc, keep_whitespace=True)

    def test_attributes_match_reference(self):
        seen_fast, seen_ref = [], []
        list(XMLTokenizer(
            attribute_handler=lambda t, n, v:
            seen_fast.append((t, n, v))).tokenize(DOC))
        list(ReferenceTokenizer(
            attribute_handler=lambda t, n, v:
            seen_ref.append((t, n, v))).tokenize(DOC))
        assert seen_fast == seen_ref
        assert ("root", "b", "two & three") in seen_fast

    @pytest.mark.parametrize("bad", [
        "<a></b>", "<a><b></b>", "</a>", "oops<a/>", "<a>text",
        "<a x=1/>", "<a x></a>", "<a x='1></a>", "<a>&nope;</a>",
        "<a>&unterminated</a>", "<>x</>",
    ])
    def test_errors_match_reference(self, bad):
        with pytest.raises(XMLSyntaxError) as fast:
            tokenize(bad)
        with pytest.raises(XMLSyntaxError) as ref:
            reference_tokenize(bad)
        assert str(fast.value) == str(ref.value)


class TestConstructsSplitMidway:
    """Targeted splits inside each multi-character construct."""

    def _mid(self, needle):
        start = DOC.index(needle)
        return start + len(needle) // 2

    @pytest.mark.parametrize("needle", [
        "<!-- comment", "<![CDATA[", "]]>", "&amp;", "&#65;", "&#x42;",
        "<child>", "</child>", "<empty/>", 'b = \'two',
        "<?xml", "<!DOCTYPE", "-->",
    ])
    def test_split_inside_construct(self, needle, oneshot):
        i = self._mid(needle)
        assert list(iter_tokenize([DOC[:i], DOC[i:]])) == oneshot

    def test_entity_split_across_three_chunks(self):
        doc = "<a>x&amp;y</a>"
        amp = doc.index("&")
        chunks = [doc[:amp + 1], doc[amp + 1:amp + 3], doc[amp + 3:]]
        evs = list(iter_tokenize(chunks))
        assert [e.text for e in evs if e.text is not None] == ["x&y"]

    def test_cdata_split_across_three_chunks(self):
        doc = "<a><![CDATA[one & two]]></a>"
        i = doc.index("one") + 1
        j = doc.index("]]>") + 1
        evs = list(iter_tokenize([doc[:i], doc[i:j], doc[j:]]))
        assert [e.text for e in evs if e.text is not None] == ["one & two"]
