"""Chunk-boundary behaviour of the incremental tokenizer.

The regex-scanning tokenizer must produce the same events no matter where
``feed`` chunk boundaries fall — including boundaries inside tags,
comments, CDATA sections, entity references and attribute values.  These
tests parametrize over *every* split point of a small document covering
all those constructs, and additionally check the production scanner
differentially against the character-level reference scanner
(:mod:`repro.xmlio.reference_tokenizer`), which is kept verbatim as the
executable specification.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.projection import (CHILD, ProjectionMatcher,
                                       QueryProjection)
from repro.xmlio import (ResourceLimitError, XMLSyntaxError, XMLTokenizer,
                         iter_tokenize, tokenize)
from repro.xmlio.reference_tokenizer import (ReferenceTokenizer,
                                             iter_reference_tokenize,
                                             reference_tokenize)

# One document exercising every construct whose scanning spans multiple
# characters: declarations, DOCTYPE, attributes (both quote styles, with
# an entity), comments (with embedded markup), CDATA (with metacharacters),
# predefined/numeric entities, self-closing tags, and nesting.
DOC = ('<?xml version="1.0"?><!DOCTYPE root>'
       '<root a="1" b = \'two &amp; three\'>'
       'pre<!-- comment -- ><x/> --><child>text &lt;&#65;&#x42;&gt;</child>'
       '<![CDATA[raw <&> stuff]]>mid<empty/>'
       '<deep><d2>x &quot;q&apos;</d2></deep>tail</root>')

SPLITS = list(range(len(DOC) + 1))


@pytest.fixture(scope="module")
def oneshot():
    return tokenize(DOC)


class TestEverySplitPoint:
    @pytest.mark.parametrize("i", SPLITS)
    def test_two_chunks_equal_oneshot(self, i, oneshot):
        assert list(iter_tokenize([DOC[:i], DOC[i:]])) == oneshot

    @pytest.mark.parametrize("i", SPLITS)
    def test_two_chunks_match_reference(self, i):
        fast = list(iter_tokenize([DOC[:i], DOC[i:]]))
        ref = list(iter_reference_tokenize([DOC[:i], DOC[i:]]))
        assert fast == ref

    def test_byte_at_a_time(self, oneshot):
        assert list(iter_tokenize(list(DOC))) == oneshot

    def test_three_chunks_sliding(self, oneshot):
        third = len(DOC) // 3
        for i in range(0, len(DOC) - third, 7):
            chunks = [DOC[:i], DOC[i:i + third], DOC[i + third:]]
            assert list(iter_tokenize(chunks)) == oneshot


class TestReferenceAgreement:
    def test_oneshot_matches_reference(self):
        assert tokenize(DOC) == reference_tokenize(DOC)

    def test_oids_match_reference(self):
        assert tokenize(DOC, emit_oids=True) == \
            reference_tokenize(DOC, emit_oids=True)

    def test_keep_whitespace_matches_reference(self):
        doc = "<a> <b/> \n <c>x</c> </a>"
        assert tokenize(doc, keep_whitespace=True) == \
            reference_tokenize(doc, keep_whitespace=True)

    def test_attributes_match_reference(self):
        seen_fast, seen_ref = [], []
        list(XMLTokenizer(
            attribute_handler=lambda t, n, v:
            seen_fast.append((t, n, v))).tokenize(DOC))
        list(ReferenceTokenizer(
            attribute_handler=lambda t, n, v:
            seen_ref.append((t, n, v))).tokenize(DOC))
        assert seen_fast == seen_ref
        assert ("root", "b", "two & three") in seen_fast

    @pytest.mark.parametrize("bad", [
        "<a></b>", "<a><b></b>", "</a>", "oops<a/>", "<a>text",
        "<a x=1/>", "<a x></a>", "<a x='1></a>", "<a>&nope;</a>",
        "<a>&unterminated</a>", "<>x</>",
    ])
    def test_errors_match_reference(self, bad):
        with pytest.raises(XMLSyntaxError) as fast:
            tokenize(bad)
        with pytest.raises(XMLSyntaxError) as ref:
            reference_tokenize(bad)
        assert str(fast.value) == str(ref.value)


class TestConstructsSplitMidway:
    """Targeted splits inside each multi-character construct."""

    def _mid(self, needle):
        start = DOC.index(needle)
        return start + len(needle) // 2

    @pytest.mark.parametrize("needle", [
        "<!-- comment", "<![CDATA[", "]]>", "&amp;", "&#65;", "&#x42;",
        "<child>", "</child>", "<empty/>", 'b = \'two',
        "<?xml", "<!DOCTYPE", "-->",
    ])
    def test_split_inside_construct(self, needle, oneshot):
        i = self._mid(needle)
        assert list(iter_tokenize([DOC[:i], DOC[i:]])) == oneshot

    def test_entity_split_across_three_chunks(self):
        doc = "<a>x&amp;y</a>"
        amp = doc.index("&")
        chunks = [doc[:amp + 1], doc[amp + 1:amp + 3], doc[amp + 3:]]
        evs = list(iter_tokenize(chunks))
        assert [e.text for e in evs if e.text is not None] == ["x&y"]

    def test_cdata_split_across_three_chunks(self):
        doc = "<a><![CDATA[one & two]]></a>"
        i = doc.index("one") + 1
        j = doc.index("]]>") + 1
        evs = list(iter_tokenize([doc[:i], doc[i:j], doc[j:]]))
        assert [e.text for e in evs if e.text is not None] == ["one & two"]


# Document whose *skipped* subtrees contain every construct the raw skip
# scanner must cross without materializing events: comments with embedded
# markup and dashes, a PI with angle brackets, CDATA with a fake ``]]``,
# entities, attributes in both quote styles, self-closing tags, and deep
# nesting.  The projection keeps only the ``keep`` children of the
# root (path ``/keep`` — the root element itself consumes no step).
SKIP_DOC = ('<?xml version="1.0"?>'
            '<root>'
            '<keep>hello <b>bold</b> &amp; more</keep>'
            '<skip a="1" b=\'&lt;x&gt;\'>'
            'text <!-- <not><a>tag</a> -- > dashes --> more'
            '<?pi data with <brackets> and ]]> bytes?>'
            '<![CDATA[raw <&> ]] ]>stuff]]>'
            '<inner f="2">&#65;&#x42; <leaf/> tail</inner>'
            '</skip>'
            '<keep>two &quot;q&apos;</keep>'
            '<skip><deep><deeper>x</deeper></deep><solo/></skip>'
            '</root>')

SKIP_SPLITS = list(range(len(SKIP_DOC) + 1))

KEEP_PROJECTION = QueryProjection(paths=frozenset({
    ((CHILD, "keep"),),
}))


def _matcher():
    return ProjectionMatcher(KEEP_PROJECTION)


def _pruned_tokenize(chunks):
    tok = XMLTokenizer(projection=_matcher())
    out = []
    for chunk in chunks:
        out.extend(tok.feed(chunk))
    out.extend(tok.close())
    return out, tok.projection_stats


class TestSkipModeSplitPoints:
    """Chunk boundaries landing *inside* skipped subtrees."""

    @pytest.fixture(scope="class")
    def pruned_oneshot(self):
        return _pruned_tokenize([SKIP_DOC])

    @pytest.fixture(scope="class")
    def full(self):
        return tokenize(SKIP_DOC)

    def test_projection_rejects_oids(self):
        with pytest.raises(ValueError):
            XMLTokenizer(projection=_matcher(), emit_oids=True)

    def test_pruned_plus_emitted_accounts_for_every_event(
            self, pruned_oneshot, full):
        events, stats = pruned_oneshot
        assert stats.events_emitted == len(events)
        assert stats.events_pruned > 0
        assert stats.bytes_skipped > 0
        assert stats.subtrees_skipped == 2
        assert stats.events_emitted + stats.events_pruned == len(full)

    def test_pruned_events_are_a_subsequence(self, pruned_oneshot, full):
        events, _ = pruned_oneshot
        it = iter(full)
        assert all(any(e == f for f in it) for e in events)

    @pytest.mark.parametrize("i", SKIP_SPLITS)
    def test_two_chunks_equal_oneshot(self, i, pruned_oneshot):
        events, stats = _pruned_tokenize([SKIP_DOC[:i], SKIP_DOC[i:]])
        assert events == pruned_oneshot[0]
        assert stats.counter_dict() == pruned_oneshot[1].counter_dict()

    def test_byte_at_a_time(self, pruned_oneshot):
        events, stats = _pruned_tokenize(list(SKIP_DOC))
        assert events == pruned_oneshot[0]
        assert stats.counter_dict() == pruned_oneshot[1].counter_dict()

    @pytest.mark.parametrize("needle", [
        "<!-- <not>", "-- > dashes", "-->", "<?pi", "]]> bytes?>",
        "<![CDATA[", "]] ]>stuff", "stuff]]>", "&#65;", "<leaf/>",
        "<inner f=", "b=\'&lt;", "</skip>", "<deeper>", "<solo/>",
    ])
    def test_split_inside_skipped_construct(self, needle,
                                            pruned_oneshot):
        start = SKIP_DOC.index(needle)
        for i in (start, start + len(needle) // 2,
                  start + len(needle)):
            events, stats = _pruned_tokenize(
                [SKIP_DOC[:i], SKIP_DOC[i:]])
            assert events == pruned_oneshot[0]
            assert stats.counter_dict() == \
                pruned_oneshot[1].counter_dict()

    @given(cuts=st.lists(st.integers(0, len(SKIP_DOC)), max_size=8))
    @settings(max_examples=120, deadline=None)
    def test_any_chunking_equals_oneshot(self, cuts):
        bounds = sorted({0, len(SKIP_DOC), *cuts})
        chunks = [SKIP_DOC[a:b] for a, b in zip(bounds, bounds[1:])]
        expected, exp_stats = _pruned_tokenize([SKIP_DOC])
        events, stats = _pruned_tokenize(chunks)
        assert events == expected
        assert stats.counter_dict() == exp_stats.counter_dict()

    @pytest.mark.parametrize("bad", [
        # Well-formedness violations *inside* skipped subtrees must
        # still raise: skip mode verifies structure, it only elides
        # event materialization.
        '<root><keep/><skip><a></b></skip></root>',
        '<root><keep/><skip><a>unclosed</skip></root>',
        '<root><keep/><skip><></skip></root>',
    ])
    def test_skipped_subtrees_still_wellformed_checked(self, bad):
        with pytest.raises(XMLSyntaxError):
            _pruned_tokenize([bad])

    def test_matches_unprojected_filter(self, pruned_oneshot, full):
        # The kept events must be exactly the full stream minus the
        # skipped subtrees — reconstruct that set by depth tracking.
        from repro.events.model import EE, SE
        kept = []
        depth = 0        # element depth in the full stream
        skip_until = None  # depth at which the current skip started
        for e in full:
            kind = int(e.kind)
            if kind == int(SE):
                depth += 1
                if skip_until is None and depth == 2 \
                        and e.tag != "keep":
                    skip_until = depth
                if skip_until is None:
                    kept.append(e)
            elif kind == int(EE):
                if skip_until is None:
                    kept.append(e)
                elif depth == skip_until:
                    skip_until = None
                depth -= 1
            else:            # CD
                if skip_until is None:
                    kept.append(e)
        assert kept == pruned_oneshot[0]


# --------------------------------------------------------------------------
# Resource guards: hostile inputs must trip a *structured*
# ResourceLimitError — never a RecursionError, MemoryError, or silent
# unbounded buffering — at the same point regardless of where feed
# boundaries fall.

def _depth_bomb(depth):
    return ("<d>" * depth) + "x" + ("</d>" * depth)


def _giant_attr_doc(size):
    return '<r a="' + "v" * size + '"/>'


def _mega_text_doc(size):
    return "<r>" + "t" * size + "</r>"


def _many_attrs_doc(n):
    attrs = " ".join('a{}="v"'.format(i) for i in range(n))
    return "<r {}/>".format(attrs)


def _chunks_of(doc, cuts):
    bounds = sorted({0, len(doc), *(c % (len(doc) + 1) for c in cuts)})
    return [doc[a:b] for a, b in zip(bounds, bounds[1:])]


class TestResourceGuards:
    def test_depth_bomb_trips_max_depth(self):
        with pytest.raises(ResourceLimitError) as info:
            tokenize(_depth_bomb(200), max_depth=64)
        assert info.value.limit_name == "max_depth"
        assert info.value.limit == 64
        assert info.value.actual == 65

    def test_depth_bomb_is_fine_below_the_limit(self):
        events = tokenize(_depth_bomb(64), max_depth=64)
        assert events == tokenize(_depth_bomb(64))

    def test_giant_attribute_trips_max_token_bytes_oneshot(self):
        with pytest.raises(ResourceLimitError) as info:
            tokenize(_giant_attr_doc(10000), max_token_bytes=1024)
        assert info.value.limit_name == "max_token_bytes"
        assert info.value.actual > info.value.limit == 1024

    def test_mega_text_trips_max_token_bytes(self):
        with pytest.raises(ResourceLimitError) as info:
            list(iter_tokenize(
                ["<r>", "t" * 600, "t" * 600, "</r>"],
                max_token_bytes=1024))
        assert info.value.limit_name == "max_token_bytes"

    def test_attr_flood_trips_max_attrs(self):
        with pytest.raises(ResourceLimitError) as info:
            tokenize(_many_attrs_doc(40), max_attrs=16)
        assert info.value.limit_name == "max_attrs"
        assert info.value.limit == 16
        assert info.value.actual == 40

    def test_limits_off_by_default(self):
        # No limits configured: the same hostile documents tokenize
        # (slowly, but structurally fine).
        assert tokenize(_depth_bomb(300))
        assert tokenize(_giant_attr_doc(5000))
        assert tokenize(_many_attrs_doc(64))

    def test_limited_tokenizer_unchanged_on_benign_input(self, oneshot):
        assert tokenize(DOC, max_depth=64, max_token_bytes=1 << 16,
                        max_attrs=32) == oneshot

    def test_error_is_a_syntax_error_subclass(self):
        with pytest.raises(XMLSyntaxError):
            tokenize(_depth_bomb(100), max_depth=8)

    @given(cuts=st.lists(st.integers(0, 10 ** 6), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_depth_bomb_trips_across_any_chunking(self, cuts):
        doc = _depth_bomb(120)
        with pytest.raises(ResourceLimitError) as info:
            list(iter_tokenize(_chunks_of(doc, cuts), max_depth=48))
        assert info.value.limit_name == "max_depth"
        assert info.value.limit == 48

    @given(cuts=st.lists(st.integers(0, 10 ** 6), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_giant_attribute_trips_across_any_chunking(self, cuts):
        doc = _giant_attr_doc(4000)
        with pytest.raises(ResourceLimitError) as info:
            list(iter_tokenize(_chunks_of(doc, cuts),
                               max_token_bytes=512))
        assert info.value.limit_name == "max_token_bytes"

    @given(cuts=st.lists(st.integers(0, 10 ** 6), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_mega_text_trips_across_any_chunking(self, cuts):
        doc = _mega_text_doc(4000)
        with pytest.raises(ResourceLimitError) as info:
            list(iter_tokenize(_chunks_of(doc, cuts),
                               max_token_bytes=512))
        assert info.value.limit_name == "max_token_bytes"

    @given(cuts=st.lists(st.integers(0, 10 ** 6), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_benign_doc_with_limits_matches_oneshot(self, cuts):
        expected = tokenize(DOC)
        got = list(iter_tokenize(_chunks_of(DOC, cuts), max_depth=64,
                                 max_token_bytes=1 << 16, max_attrs=32))
        assert got == expected
