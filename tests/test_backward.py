"""Tests for backward axes via clone + OID join (paper Section VI-E)."""

import pytest

from repro.core import Display, Pipeline
from repro.operators import (AncestorJoin, ChildStep, CompareLiteral,
                             CountItems, DescendantStep, InlinePipeline,
                             Predicate, StringValue, Tee)
from repro.xmlio import tokenize


def build_pipeline(ctx, cand_tag, direct, pred_tag, pred_value,
                   count=True):
    ids = ctx.ids
    clone, s_item = ids.fresh(), ids.fresh()
    c_in, c1, c2, c_out = (ids.fresh() for _ in range(4))
    s_pred, s_cand, s_anc = ids.fresh(), ids.fresh(), ids.fresh()
    cond = InlinePipeline([
        ChildStep(ctx, c_in, c1, pred_tag),
        StringValue(ctx, c1, c2),
        CompareLiteral(ctx, c2, c_out, "=", pred_value),
    ], c_in, c_out)
    stages = [
        Tee(ctx, 0, clone),
        DescendantStep(ctx, 0, s_item, "item"),
        Predicate(ctx, s_item, s_pred, cond, assume_fixed=True),
        DescendantStep(ctx, clone, s_cand, cand_tag),
        AncestorJoin(ctx, s_cand, s_pred, s_anc, direct_only=direct),
    ]
    out = s_anc
    if count:
        s_cnt = ids.fresh()
        stages.append(CountItems(ctx, s_anc, s_cnt))
        out = s_cnt
    return stages, out


DOC = """<site><regions><europe>
<item><location>Albania</location><q>5</q></item>
<item><location>France</location><q>7</q></item>
</europe><asia>
<item><location>Albania</location><q>9</q></item>
</asia></regions></site>"""


def run(ctx, cand_tag, direct, count=True, doc=DOC, value="Albania"):
    stages, out = build_pipeline(ctx, cand_tag, direct, "location", value,
                                 count=count)
    disp = Display(out)
    Pipeline(ctx, stages, disp).run(tokenize(doc, emit_oids=True))
    return disp


class TestAncestor:
    def test_tagged_ancestor(self, ctx):
        assert run(ctx, "europe", False).text() == "1"

    def test_wildcard_ancestor_counts_each_once(self, ctx):
        # regions, europe, asia — each counted once despite two Albania
        # items sharing ancestors.
        assert run(ctx, None, False).text() == "3"

    def test_ancestor_excludes_self(self, ctx):
        # item matches //* as a candidate but is not its own ancestor.
        doc = ("<site><regions><europe>"
               "<item><location>Albania</location></item>"
               "</europe></regions></site>")
        assert run(ctx, None, False, doc=doc).text() == "2"

    def test_ancestor_output_is_candidate_subtree(self, ctx):
        disp = run(ctx, "europe", False, count=False)
        text = disp.text()
        assert text.startswith("<europe>")
        assert "France" in text  # the whole subtree, not just matches

    def test_no_matching_items_no_ancestors(self, ctx):
        assert run(ctx, "europe", False, value="Mars").text() == "0"

    def test_candidates_in_postorder(self, ctx):
        disp = run(ctx, None, False, count=False)
        text = disp.text()
        # europe (inner) before regions (outer), per //* postorder.
        assert text.index("<europe>") < text.index("<regions>")


class TestParent:
    def test_direct_parents_only(self, ctx):
        assert run(ctx, None, True).text() == "2"  # europe + asia

    def test_parent_of_nested_results(self, ctx):
        doc = ("<r><box><item><location>Albania</location></item>"
               "<item><location>Albania</location></item></box></r>")
        assert run(ctx, None, True, doc=doc).text() == "1"  # one box


class TestHiddenIncoming:
    def test_hidden_items_do_not_match(self, ctx):
        # France is filtered by the predicate; its enclosing europe only
        # qualifies through the Albania item.
        doc = ("<site><regions>"
               "<europe><item><location>France</location></item></europe>"
               "<asia><item><location>Albania</location></item></asia>"
               "</regions></site>")
        assert run(ctx, None, True, doc=doc).text() == "1"  # asia only
