"""Fault-injection and recovery tests (repro.fault + supervised shards).

The recovery machinery's whole contract is differential: a run under a
scripted fault plan must complete with every non-quarantined query's
output byte-identical to an uninterrupted run.  Each canonical failure
class — worker kill, frame corruption, frame drop/duplication, a stage
exception — is proved here against that oracle, and a hypothesis sweep
checks that *random* plans never change surviving output either.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import PAPER_QUERIES, Workloads
from repro.events import codec
from repro.fault import FaultAction, FaultPlan, InjectedFault, \
    arm_stage_fault
from repro.parallel import ShardError, ShardedMultiQueryRun
from repro.xquery.engine import MultiQueryRun, XFlux

SCALE = 0.02
NAMES = ["Q1", "Q2", "Q5", "Q7"]
QUERIES = [PAPER_QUERIES[n] for n in NAMES]
BATCH = 64


@pytest.fixture(scope="module")
def xmark_text():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE).text("X")


@pytest.fixture(scope="module")
def reference(xmark_text):
    """The uninterrupted run every faulted run is compared against."""
    smq = ShardedMultiQueryRun(QUERIES, workers=2, batch_events=BATCH)
    smq.run_xml(xmark_text)
    assert smq.statuses() == ["ok"] * len(QUERIES)
    return {"texts": smq.texts(), "frames": smq.stats()["frames"]}


def _faulted(xmark_text, spec, **kwargs):
    smq = ShardedMultiQueryRun(QUERIES, workers=2, batch_events=BATCH,
                               fault_plan=FaultPlan.parse(spec), **kwargs)
    smq.run_xml(xmark_text)
    return smq


class TestCanonicalPlans:
    def test_worker_kill_recovers_byte_identical(self, xmark_text,
                                                 reference):
        smq = _faulted(xmark_text, "kill:shard=0,after=3")
        assert smq.statuses() == ["ok"] * len(QUERIES)
        assert smq.texts() == reference["texts"]
        ft = smq.fault_stats()
        assert ft["restarts"] >= 1
        assert ft["replayed_frames"] > 0

    def test_frame_corruption_recovers_byte_identical(self, xmark_text,
                                                      reference):
        smq = _faulted(xmark_text, "corrupt:frame=5,shard=0;seed=3")
        assert smq.statuses() == ["ok"] * len(QUERIES)
        assert smq.texts() == reference["texts"]
        assert smq.fault_stats()["restarts"] >= 1

    def test_stage_exception_quarantines_one_query(self, xmark_text,
                                                   reference):
        smq = _faulted(xmark_text, "raise:query=1,stage=0,at=50")
        statuses = smq.statuses()
        assert statuses[1] == "quarantined"
        assert statuses.count("ok") == len(QUERIES) - 1
        for i, status in enumerate(statuses):
            if status == "ok":
                assert smq.texts()[i] == reference["texts"][i]
        assert smq.texts()[1] is None
        report = smq.error_reports()[1]
        assert report["error_type"] == "InjectedFault"
        assert smq.fault_stats()["quarantined_queries"] == 1

    def test_dropped_frame_recovers(self, xmark_text, reference):
        smq = _faulted(xmark_text, "drop:frame=4,shard=1")
        assert smq.statuses() == ["ok"] * len(QUERIES)
        assert smq.texts() == reference["texts"]
        assert smq.fault_stats()["restarts"] >= 1

    def test_dropped_tail_frame_recovers(self, xmark_text, reference):
        # The hardest drop: no gap is ever visible to the worker; only
        # the frames-applied shortfall at end-of-stream catches it.
        smq = _faulted(xmark_text,
                       "drop:frame={},shard=0".format(reference["frames"]))
        assert smq.statuses() == ["ok"] * len(QUERIES)
        assert smq.texts() == reference["texts"]
        assert smq.fault_stats()["restarts"] >= 1

    def test_duplicated_frame_is_dropped(self, xmark_text, reference):
        smq = _faulted(xmark_text, "dup:frame=2,shard=0")
        assert smq.statuses() == ["ok"] * len(QUERIES)
        assert smq.texts() == reference["texts"]
        assert smq.fault_stats()["duplicates_dropped"] >= 1

    def test_quarantine_off_raises_shard_error(self, xmark_text):
        with pytest.raises(ShardError):
            _faulted(xmark_text, "raise:query=0,stage=0,at=10",
                     quarantine=False, max_restarts=1)


class TestRandomPlans:
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_plans_never_change_surviving_output(
            self, data, xmark_text, reference):
        n_frames = reference["frames"]
        actions = []
        for _ in range(data.draw(st.integers(1, 3))):
            kind = data.draw(st.sampled_from(
                ["kill", "corrupt", "drop", "dup", "raise"]))
            shard = data.draw(st.integers(0, 1))
            if kind == "kill":
                actions.append(FaultAction(
                    "kill", shard=shard,
                    after=data.draw(st.integers(1, n_frames))))
            elif kind == "raise":
                actions.append(FaultAction(
                    "raise", query=data.draw(st.integers(0, 3)),
                    stage=0, at=data.draw(st.integers(1, 200))))
            else:
                actions.append(FaultAction(
                    kind, shard=shard,
                    frame=data.draw(st.integers(1, n_frames))))
        plan = FaultPlan(actions, seed=data.draw(st.integers(0, 99)))
        smq = ShardedMultiQueryRun(QUERIES, workers=2,
                                   batch_events=BATCH, fault_plan=plan)
        smq.run_xml(xmark_text)
        for i, status in enumerate(smq.statuses()):
            if status == "ok":
                assert smq.texts()[i] == reference["texts"][i], \
                    "plan {!r} changed query {}".format(plan.to_spec(), i)
            else:
                assert smq.texts()[i] is None
                assert i in smq.error_reports()


class TestMultiQueryQuarantine:
    def test_single_process_quarantine(self, xmark_text):
        ref = MultiQueryRun(QUERIES)
        ref.run_xml(xmark_text)
        plan = FaultPlan.parse("raise:query=2,stage=0,at=25")
        mq = MultiQueryRun(QUERIES, fault_plan=plan)
        mq.run_xml(xmark_text)
        assert mq.statuses() == ["ok", "ok", "quarantined", "ok"]
        for i in (0, 1, 3):
            assert mq.texts()[i] == ref.texts()[i]
        assert mq.texts()[2] is None
        stats = mq.stats()
        assert stats["quarantined"] == 1
        assert stats["per_query"][2]["status"] == "quarantined"

    def test_quarantine_off_propagates(self, xmark_text):
        plan = FaultPlan.parse("raise:query=0,stage=0,at=10")
        mq = MultiQueryRun(QUERIES, fault_plan=plan, quarantine=False)
        with pytest.raises(InjectedFault):
            mq.run_xml(xmark_text)

    def test_arm_rejects_bad_stage(self):
        run = XFlux(QUERIES[0]).start()
        with pytest.raises(ValueError):
            arm_stage_fault(run, stage=99, at=1)


class TestFaultPlanSpec:
    @pytest.mark.parametrize("spec", [
        "kill:shard=0,after=3",
        "corrupt:frame=5,shard=1",
        "drop:frame=2,shard=0;dup:frame=7,shard=0",
        "raise:query=2,stage=1,at=100",
        "kill:shard=1,after=2;corrupt:frame=3,shard=0;seed=42",
    ])
    def test_parse_round_trip(self, spec):
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()

    def test_env_hook(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env(
            {"REPRO_FAULTS": "kill:shard=0,after=1"})
        assert plan.kill_after(0) == 1 and plan.kill_after(1) is None

    @pytest.mark.parametrize("bad", [
        "explode:shard=0", "kill:shard=0", "corrupt:shard=0",
        "raise:query=1", "kill", "kill:after"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_stage_fault_shard_remapping(self):
        plan = FaultPlan.parse("raise:query=5,stage=1,at=9")
        assert plan.stage_faults() == [(5, 1, 9)]
        assert plan.stage_faults(queries=[4, 5, 6]) == [(1, 1, 9)]
        assert plan.stage_faults(queries=[0, 1]) == []

    def test_corruption_is_deterministic_and_detected(self):
        from repro.events.model import SE, Event
        frame = codec.encode_checked_frame(
            [Event(SE, 0, tag="a"), Event(SE, 0, tag="b")], seq=7)
        plan = FaultPlan(seed=5)
        bad = plan.corrupt_bytes(frame, 7)
        assert bad != frame and len(bad) == len(frame)
        assert bad == plan.corrupt_bytes(frame, 7)
        import io
        with pytest.raises(codec.CodecError) as info:
            codec.read_frame_ex(io.BytesIO(bad))
        assert info.value.reason in ("crc-mismatch", "truncated",
                                     "oversized")
