"""Tests for the dataset generators and the result display."""

import pytest

from repro import XFlux, parse_xml, tokenize
from repro.core import Display, Pipeline, RegionTree
from repro.data import DBLPGenerator, StockTicker, XMarkGenerator
from repro.events import validate_document_stream
from repro.operators import CountItems


class TestXMark:
    def test_deterministic(self):
        a = XMarkGenerator(scale=0.02, seed=5).text()
        b = XMarkGenerator(scale=0.02, seed=5).text()
        assert a == b

    def test_seed_changes_content(self):
        a = XMarkGenerator(scale=0.02, seed=5).text()
        b = XMarkGenerator(scale=0.02, seed=6).text()
        assert a != b

    def test_scale_grows_document(self):
        small = XMarkGenerator(scale=0.02).text()
        large = XMarkGenerator(scale=0.08).text()
        assert len(large) > 2 * len(small)

    def test_schema_shape(self):
        root = parse_xml(XMarkGenerator(scale=0.02).text())
        assert root.tag == "site"
        regions = root.child_elements("regions")[0]
        assert {r.tag for r in regions.child_elements()} == {
            "africa", "asia", "australia", "europe", "namerica",
            "samerica"}
        item = regions.descendants("item")[0]
        child_tags = {c.tag for c in item.child_elements()}
        assert {"location", "quantity", "payment",
                "description"} <= child_tags

    def test_recursive_parlists_present(self):
        root = parse_xml(XMarkGenerator(scale=0.05, seed=1).text())
        nested = [p for p in root.descendants("parlist")
                  if p.descendants("parlist")]
        assert nested  # //* has real work to do

    def test_albania_selectivity(self):
        gen = XMarkGenerator(scale=0.2, seed=3, albania_fraction=0.1)
        root = parse_xml(gen.text())
        locations = [l.string_value for l in root.descendants("location")]
        frac = sum(1 for l in locations if l == "Albania") / len(locations)
        assert 0.04 < frac < 0.2

    def test_valid_xml(self):
        events = tokenize(XMarkGenerator(scale=0.02).text())
        validate_document_stream(events)


class TestDBLP:
    def test_deterministic(self):
        assert DBLPGenerator(scale=0.02).text() == \
            DBLPGenerator(scale=0.02).text()

    def test_record_structure(self):
        root = parse_xml(DBLPGenerator(scale=0.02).text())
        assert root.tag == "dblp"
        rec = root.child_elements()[0]
        assert rec.tag in ("inproceedings", "article")
        tags = {c.tag for c in rec.child_elements()}
        assert {"author", "title", "year"} <= tags

    def test_smith_selectivity(self):
        gen = DBLPGenerator(scale=0.3, seed=2, smith_fraction=0.1)
        root = parse_xml(gen.text())
        authors = [a.string_value for a in root.descendants("author")]
        smiths = sum(1 for a in authors if "Smith" in a)
        assert smiths > 0

    def test_years_in_range(self):
        root = parse_xml(DBLPGenerator(scale=0.05).text())
        years = {int(y.string_value) for y in root.descendants("year")}
        assert all(1988 <= y <= 2007 for y in years)


class TestStockTicker:
    def test_stream_is_valid(self):
        validate_document_stream(StockTicker(n_updates=20).events())

    def test_deterministic(self):
        a = StockTicker(seed=4).events()
        b = StockTicker(seed=4).events()
        assert a == b

    def test_snapshot_then_updates(self):
        events = StockTicker(symbols=("IBM", "MSFT"),
                             n_updates=5).events()
        replaces = [e for e in events if e.abbrev == "sR"]
        assert len(replaces) == 5

    def test_immutable_names_have_no_name_regions(self):
        events = StockTicker(mutable_names=False, n_updates=0).events()
        mutables = [e for e in events if e.abbrev == "sM"]
        assert len(mutables) == len(StockTicker().symbols)  # prices only

    def test_superseded_regions_frozen(self):
        events = StockTicker(n_updates=10).events()
        replaced = [e.id for e in events if e.abbrev == "sR"]
        frozen = {e.id for e in events if e.abbrev == "freeze"}
        assert set(replaced) <= frozen


class TestDisplay:
    def test_snapshot_tracking(self):
        from repro.events import loads
        from repro.core import Context
        ctx = Context()
        ctx.ids.reserve(0)
        out = ctx.fresh_id()
        disp = Display(out, track_snapshots=True)
        pipe = Pipeline(ctx, [CountItems(ctx, 0, out)], disp)
        pipe.run(loads('sS(0) sE(0,"a") eE(0,"a") sE(0,"a") eE(0,"a") '
                       'eS(0)'))
        # Replacements momentarily clear the counter region before the
        # new value arrives; the non-empty snapshots are the counts.
        assert [s for s in disp.snapshots if s] == ["0", "1", "2"]

    def test_stats_shape(self, auction_xml):
        run = XFlux("X//item").run_xml(auction_xml)
        stats = run.stats()["display"]
        for key in ("regions", "events", "peak_regions", "peak_events"):
            assert key in stats

    def test_events_snapshot_is_plain(self, auction_xml):
        run = XFlux("X//item/location").run_xml(auction_xml)
        assert all(not e.is_update for e in run.events())
