"""Telemetry-layer tests: the zero-overhead and never-changes contracts.

The observability subsystem (:mod:`repro.obs`) promises:

* **differential identity** — running any query with metrics (and
  tracing) enabled yields a byte-identical output stream and identical
  per-stage transformer-call counts to the plain run, across every
  paper query and the update-bearing ticker stream;
* **unified accounting** — ``Pipeline.state_cells`` / ``live_regions``
  are exact sums over ``Pipeline.stage_accounts()``, and the telemetry
  footprint samples use the same walk;
* **meaningful counters** — activations fire on the dormant -> active
  flip, freezes and reclaimed cells are counted where Section V prunes,
  sink counts partition the output stream by event class;
* **mergeability** — shard workers ship recorder dicts and the merged
  totals equal the single-process run's.
"""

import pytest

from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET, Workloads
from repro.data.stock import StockTicker
from repro.obs import (EVENT_CLASSES, KIND_CLASS, MetricsRecorder,
                       merge_metrics, stage_identities)
from repro.parallel import ShardedMultiQueryRun
from repro.xquery.engine import MultiQueryRun, QueryRun, XFlux

SCALE = 0.02
STOCK_QUERY = 'stream()//quote[name="IBM"]/price'


@pytest.fixture(scope="module")
def workloads():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE)


def _event_keys(run):
    return [(int(e.kind), e.id, e.sub, e.tag, e.text, e.oid)
            for e in run.display.events()]


def _stage_calls(run):
    return [w.calls for w in run.pipeline.wrappers]


def _run_paper_query(workloads, name, **kwargs):
    query = PAPER_QUERIES[name]
    text = workloads.text(QUERY_DATASET[name])
    return XFlux(query).run_xml(text, **kwargs)


class TestDifferentialIdentity:
    """Metrics on vs off: same bytes out, same work done."""

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_paper_queries_output_and_calls_identical(self, workloads,
                                                      name):
        plain = _run_paper_query(workloads, name)
        observed = _run_paper_query(workloads, name, metrics=True,
                                    sample_interval=128)
        assert observed.text() == plain.text()
        assert _event_keys(observed) == _event_keys(plain)
        assert _stage_calls(observed) == _stage_calls(plain)

    def test_tracing_changes_nothing_either(self, workloads):
        plain = _run_paper_query(workloads, "Q3")
        traced = _run_paper_query(workloads, "Q3", metrics=True,
                                  trace=True, sample_interval=64)
        assert _event_keys(traced) == _event_keys(plain)
        assert _stage_calls(traced) == _stage_calls(plain)
        assert traced.metrics()["trace"]["hops"]

    def test_update_stream_identical(self):
        events = StockTicker(n_updates=60, seed=5).events()
        plain = XFlux(STOCK_QUERY, mutable_source=True).run(events)
        observed = XFlux(STOCK_QUERY, mutable_source=True).run(
            events, metrics=True, sample_interval=32)
        assert observed.text() == plain.text()
        assert _event_keys(observed) == _event_keys(plain)
        assert _stage_calls(observed) == _stage_calls(plain)

    def test_recorder_off_by_default(self, workloads, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        run = _run_paper_query(workloads, "Q1")
        assert run.recorder is None
        assert run.metrics() is None
        assert "metrics" not in run.stats()


class TestUnifiedAccounting:
    """One accounting walk, every observer agrees."""

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_aggregates_are_sums_of_per_stage(self, workloads, name):
        run = _run_paper_query(workloads, name)
        stats = run.stats()
        per_stage = stats["per_stage"]
        assert stats["state_cells"] == sum(a["state_cells"]
                                           for a in per_stage)
        assert stats["live_regions"] == sum(a["live_regions"]
                                            for a in per_stage)
        assert stats["transformer_calls"] == sum(a["calls"]
                                                 for a in per_stage)

    def test_stage_accounts_labels_match_identities(self, workloads):
        run = _run_paper_query(workloads, "Q2")
        idents = stage_identities(run.plan.stages)
        accounts = run.pipeline.stage_accounts()
        assert [a["label"] for a in accounts] == [i.label
                                                 for i in idents]
        assert [a["index"] for a in accounts] == list(
            range(len(idents)))

    def test_final_sample_matches_final_accounting(self, workloads):
        run = _run_paper_query(workloads, "Q4", metrics=True,
                               sample_interval=128)
        accounts = run.pipeline.stage_accounts()
        for sm, account in zip(run.metrics()["stages"], accounts):
            last = sm["samples"][-1]
            assert last[1] == account["state_cells"]
            assert last[2] == account["live_regions"]


class TestCounters:
    def test_sink_counts_partition_output(self, workloads):
        run = _run_paper_query(workloads, "Q3", metrics=True)
        sink = run.metrics()["sink_events"]
        assert set(sink) == set(EVENT_CLASSES)
        assert sum(sink.values()) == run.display.events_seen

    def test_kind_class_covers_all_kinds(self):
        from repro.events.model import Kind
        assert len(KIND_CLASS) == len(Kind)
        assert set(KIND_CLASS) == set(EVENT_CLASSES)

    def test_activation_on_first_update(self):
        events = StockTicker(n_updates=10, seed=2).events()
        run = XFlux(STOCK_QUERY, mutable_source=True).run(
            events, metrics=True)
        m = run.metrics()
        assert m["activations_total"] >= 1
        activated = [s for s in m["stages"] if s["activations"]]
        assert all(s["activated_at"] is not None for s in activated)

    def test_freeze_counters_on_ticker(self):
        events = StockTicker(n_updates=40, seed=3,
                             freeze_superseded=True).events()
        run = XFlux(STOCK_QUERY, mutable_source=True).run(
            events, metrics=True)
        m = run.metrics()
        assert m["freezes_total"] > 0
        assert m["cells_reclaimed_total"] > 0

    def test_source_freezes_add_to_internal_ones(self):
        # Internal stages freeze their own regions as decisions become
        # final, so the count never reaches zero; source freezes must
        # strictly add on top.
        def freezes(superseded):
            events = StockTicker(n_updates=10, seed=4,
                                 freeze_superseded=superseded).events()
            run = XFlux(STOCK_QUERY, mutable_source=True).run(
                events, metrics=True)
            return run.metrics()["freezes_total"]

        assert freezes(True) > freezes(False)

    def test_sample_interval_validation(self):
        with pytest.raises(ValueError):
            MetricsRecorder(sample_interval=0)

    def test_sampling_respects_interval(self, workloads):
        run = _run_paper_query(workloads, "Q1", metrics=True,
                               sample_interval=100)
        m = run.metrics()
        # One sample per crossed interval boundary + the final one.
        expected = m["source_events"] // 100 + 1
        assert len(m["stages"][0]["samples"]) == expected


class TestFreezeAblation:
    """``reclaim_on_freeze=False``: same output, bigger footprint."""

    def test_output_identical_state_retained(self):
        events = StockTicker(n_updates=50, seed=7).events()
        normal = XFlux(STOCK_QUERY, mutable_source=True).run(
            events, metrics=True, sample_interval=16)
        kept = XFlux(STOCK_QUERY, mutable_source=True).run(
            events, metrics=True, sample_interval=16,
            reclaim_on_freeze=False)
        assert _event_keys(kept) == _event_keys(normal)
        m_n, m_k = normal.metrics(), kept.metrics()
        assert m_k["freezes_total"] == m_n["freezes_total"]
        assert m_k["peak_cells_total"] > m_n["peak_cells_total"]
        assert (kept.stats()["state_cells"]
                > normal.stats()["state_cells"])

    @pytest.mark.parametrize("name", ["Q4", "Q7", "Q9"])
    def test_blocking_queries_reclaim(self, workloads, name):
        plain = _run_paper_query(workloads, name, metrics=True,
                                 sample_interval=256)
        kept = _run_paper_query(workloads, name, metrics=True,
                                sample_interval=256,
                                reclaim_on_freeze=False)
        assert kept.text() == plain.text()
        assert (kept.metrics()["peak_cells_total"]
                >= plain.metrics()["peak_cells_total"])


class TestMerge:
    def test_merge_counters_add(self):
        a = {"sample_interval": 8, "source_events": 10,
             "sink_events": {"data": 3, "bracket": 1, "control": 0},
             "stages": [{"label": "A[0]"}], "peak_cells_total": 5,
             "cells_reclaimed_total": 2, "freezes_total": 1,
             "activations_total": 1}
        b = {"sample_interval": 8, "source_events": 10,
             "sink_events": {"data": 1, "bracket": 0, "control": 2},
             "stages": [{"label": "B[0]"}, {"label": "B[1]"}],
             "peak_cells_total": 7, "cells_reclaimed_total": 0,
             "freezes_total": 0, "activations_total": 0}
        merged = merge_metrics([a, b, None])
        assert merged["pipelines"] == 2
        assert merged["source_events"] == 10
        assert merged["sink_events"] == {"data": 4, "bracket": 1,
                                         "control": 2}
        assert len(merged["stages"]) == 3
        assert merged["peak_cells_total"] == 12
        assert merged["freezes_total"] == 1

    def test_merge_idempotent_over_merged_dicts(self):
        a = {"pipelines": 3, "source_events": 4,
             "sink_events": {"data": 1, "bracket": 0, "control": 0},
             "stages": [], "peak_cells_total": 1,
             "cells_reclaimed_total": 0, "freezes_total": 0,
             "activations_total": 0, "sample_interval": 8}
        merged = merge_metrics([a, a])
        assert merged["pipelines"] == 6

    def test_multiquery_metrics_merged(self, workloads):
        names = ["Q1", "Q2", "Q3"]
        mq = MultiQueryRun([PAPER_QUERIES[n] for n in names],
                           metrics=True)
        mq.run_xml(workloads.text("X"))
        m = mq.metrics()
        assert m["pipelines"] == 3
        singles = [
            _run_paper_query(workloads, n, metrics=True).metrics()
            for n in names]
        assert m["peak_cells_total"] == sum(s["peak_cells_total"]
                                            for s in singles)
        assert "metrics" in mq.stats()

    @pytest.mark.parametrize("workers", [1, 3, 4])
    def test_shard_merge_matches_single_process(self, workloads,
                                                workers):
        names = ["Q1", "Q2", "Q3", "Q7"]
        queries = [PAPER_QUERIES[n] for n in names]
        text = workloads.text("X")
        ref = MultiQueryRun(queries, metrics=True)
        ref.run_xml(text)
        m_ref = ref.metrics()
        sharded = ShardedMultiQueryRun(queries, workers=workers,
                                       metrics=True)
        sharded.run_xml(text)
        m = sharded.metrics()
        assert sharded.texts() == ref.texts()
        assert m["pipelines"] == m_ref["pipelines"]
        assert m["sink_events"] == m_ref["sink_events"]
        assert m["peak_cells_total"] == m_ref["peak_cells_total"]
        assert m["freezes_total"] == m_ref["freezes_total"]
        assert len(m["stages"]) == len(m_ref["stages"])
        assert "metrics" in sharded.stats()

    @pytest.mark.parametrize("workers", [1, 3, 4])
    def test_shard_histograms_and_flight_match_single_process(
            self, workloads, workers):
        """Sharded observability is exact where exactness is possible.

        Bucket *values* are wall-clock and nondeterministic, so the
        differential holds the deterministic parts equal: observation
        counts (one ``update_latency`` sample per update-start source
        event, one ``tokenizer_chunk`` sample per parent-side chunk)
        and the flight ring's ``events_seen``.  Bucket-exact merge
        arithmetic is proven separately in tests/test_histogram.py
        with synthetic values.
        """
        names = ["Q1", "Q2", "Q3", "Q7"]
        queries = [PAPER_QUERIES[n] for n in names]
        text = workloads.text("X")
        ref = MultiQueryRun(queries, metrics=True, flight=True)
        ref.run_xml(text)
        m_ref = ref.metrics()
        sharded = ShardedMultiQueryRun(queries, workers=workers,
                                       metrics=True, flight=True)
        sharded.run_xml(text)
        m = sharded.metrics()
        assert sharded.texts() == ref.texts()
        assert set(m["histograms"]) == set(m_ref["histograms"]) \
            == {"drain_batch", "update_latency", "tokenizer_chunk"}
        for hname in ("update_latency", "tokenizer_chunk"):
            assert (m["histograms"][hname]["count"]
                    == m_ref["histograms"][hname]["count"]), hname
        assert m["histograms"]["drain_batch"]["count"] > 0
        assert (m["flight"]["events_seen"]
                == m_ref["flight"]["events_seen"])
        assert m["flight"]["pipelines"] == m_ref["flight"]["pipelines"]

    def test_update_latency_counts_update_starts(self):
        """One latency observation per update-start source event."""
        from repro.events.model import Kind
        events = list(StockTicker(n_updates=60, seed=9).events())
        starts = sum(1 for e in events
                     if e.kind in (Kind.START_MUTABLE,
                                   Kind.START_REPLACE,
                                   Kind.START_INSERT_BEFORE,
                                   Kind.START_INSERT_AFTER))
        assert starts > 0
        run = QueryRun(XFlux(STOCK_QUERY).compile(), metrics=True)
        run.feed_all(events)
        run.finish()
        hist = run.recorder.histograms["update_latency"]
        assert hist.count == starts
        assert run.recorder.histograms["drain_batch"].count >= 1

    def test_shard_metrics_off_means_absent(self, workloads,
                                            monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        sharded = ShardedMultiQueryRun([PAPER_QUERIES["Q1"]],
                                       workers=1, metrics=False)
        sharded.run_xml(workloads.text("X"))
        assert sharded.metrics() is None
        assert "metrics" not in sharded.stats()


class TestEnvOptIn:
    def test_repro_metrics_env(self, workloads, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        run = _run_paper_query(workloads, "Q1")
        assert run.recorder is not None
        assert run.metrics() is not None

    def test_env_zero_means_off(self, workloads, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "0")
        run = _run_paper_query(workloads, "Q1")
        assert run.recorder is None
