"""Tests for concatenation (§VI-A) and unblocked sorting (§VI-D)."""

from repro.core import Collector, Display, Pipeline
from repro.events import CD, loads
from repro.operators import (ChildStep, Concat, DescendantStep, ForTuples,
                             SortTuples, StringValue, Tee, TupleConstruct,
                             sort_key)
from repro.xmlio import tokenize


class TestConcat:
    def _run(self, ctx, src):
        out = ctx.ids.reserve(30)
        disp = Display(out)
        Pipeline(ctx, [Concat(ctx, 1, 2, out)], disp).run(loads(src))
        return disp

    def test_left_before_right_within_tuple(self, ctx):
        # Arrival order is right-heavy; the insert-before update moves the
        # left content ahead retroactively.
        src = ('sS(1) sS(2) sT(1) sT(2) cD(2,"R1") cD(2,"R2") cD(1,"L") '
               'eT(1) eT(2) eS(1) eS(2)')
        assert self._run(ctx, src).text() == "LR1R2"

    def test_multiple_tuples_keep_alignment(self, ctx):
        src = ('sS(1) sS(2) '
               'sT(1) sT(2) cD(1,"a1") cD(2,"b1") eT(1) eT(2) '
               'sT(1) sT(2) cD(2,"b2") cD(1,"a2") eT(1) eT(2) '
               'eS(1) eS(2)')
        assert self._run(ctx, src).text() == "a1b1a2b2"

    def test_empty_sides(self, ctx):
        src = ('sS(1) sS(2) sT(1) sT(2) cD(2,"only-right") eT(1) eT(2) '
               'sT(1) sT(2) cD(1,"only-left") eT(1) eT(2) eS(1) eS(2)')
        assert self._run(ctx, src).text() == "only-rightonly-left"

    def test_worst_case_left_arrives_after_right(self, ctx):
        # The paper's motivating case: the whole left stream after the
        # whole right stream, inside one tuple, no buffering needed.
        src = ('sS(1) sS(2) sT(1) sT(2) '
               'cD(2,"r1") cD(2,"r2") cD(2,"r3") '
               'cD(1,"l1") cD(1,"l2") '
               'eT(1) eT(2) eS(1) eS(2)')
        assert self._run(ctx, src).text() == "l1l2r1r2r3"

    def test_chains_right_associatively(self, ctx):
        a, b, c = 1, 2, 3
        inner = ctx.ids.reserve(30)
        outer = ctx.ids.reserve(31)
        disp = Display(outer)
        Pipeline(ctx, [Concat(ctx, b, c, inner),
                       Concat(ctx, a, inner, outer)], disp).run(loads(
            'sS(1) sS(2) sS(3) sT(1) sT(2) sT(3) '
            'cD(3,"C") cD(2,"B") cD(1,"A") '
            'eT(1) eT(2) eT(3) eS(1) eS(2) eS(3)'))
        assert disp.text() == "ABC"


class TestSortKey:
    def test_numeric_before_strings(self):
        assert sort_key("5") < sort_key("abc")

    def test_numeric_ordering(self):
        assert sort_key("2") < sort_key("10")

    def test_string_ordering(self):
        assert sort_key("abc") < sort_key("abd")


class TestSortTuples:
    def _sorted_books(self, ctx, xml, descending=False):
        ids = ctx.ids
        s_book, s_for, tk, k1, k2, s_sort, s_title = (
            ids.reserve(30 + i) for i in range(7))
        disp = Display(s_title)
        Pipeline(ctx, [
            DescendantStep(ctx, 0, s_book, "book"),
            ForTuples(ctx, s_book, s_for),
            Tee(ctx, s_for, tk),
            ChildStep(ctx, tk, k1, "price"),
            StringValue(ctx, k1, k2),
            SortTuples(ctx, s_for, k2, s_sort, descending=descending),
            ChildStep(ctx, s_sort, s_title, "title"),
        ], disp).run(tokenize(xml))
        return disp

    BOOKS = ("<bib>"
             "<book><title>B</title><price>30</price></book>"
             "<book><title>A</title><price>10</price></book>"
             "<book><title>C</title><price>20</price></book>"
             "</bib>")

    def test_ascending(self, ctx):
        disp = self._sorted_books(ctx, self.BOOKS)
        assert disp.text() == ("<title>A</title><title>C</title>"
                               "<title>B</title>")

    def test_descending(self, ctx):
        disp = self._sorted_books(ctx, self.BOOKS, descending=True)
        assert disp.text() == ("<title>B</title><title>C</title>"
                               "<title>A</title>")

    def test_ties_keep_arrival_order(self, ctx):
        xml = ("<bib>"
               "<book><title>first</title><price>5</price></book>"
               "<book><title>second</title><price>5</price></book>"
               "</bib>")
        disp = self._sorted_books(ctx, xml)
        assert disp.text() == ("<title>first</title><title>second</title>")

    def test_missing_key_sorts_first(self, ctx):
        xml = ("<bib>"
               "<book><title>priced</title><price>1</price></book>"
               "<book><title>keyless</title></book>"
               "</bib>")
        disp = self._sorted_books(ctx, xml)
        # The empty key is a string, so it sorts after numerics.
        assert disp.text() == ("<title>priced</title>"
                               "<title>keyless</title>")

    def test_display_sorted_at_every_snapshot(self, ctx):
        ids = ctx.ids
        s_book, s_for, tk, k1, k2, s_sort = (
            ids.reserve(30 + i) for i in range(6))
        disp = Display(s_sort)
        pipe = Pipeline(ctx, [
            DescendantStep(ctx, 0, s_book, "book"),
            ForTuples(ctx, s_book, s_for),
            Tee(ctx, s_for, tk),
            ChildStep(ctx, tk, k1, "price"),
            StringValue(ctx, k1, k2),
            SortTuples(ctx, s_for, k2, s_sort),
        ], disp)
        import re
        for e in tokenize(self.BOOKS):
            pipe.feed(e)
            prices = [float(p) for p in
                      re.findall(r"<price>([\d.]+)</price>",
                                 disp.text())]
            assert prices == sorted(prices)
        pipe.finish()

    def test_sort_after_construction(self, ctx):
        # The compiler sorts the *constructed* tuple stream (see
        # compiler.py); verify the composition directly.
        ids = ctx.ids
        s_book, s_for, tk, k1, k2, s_item, s_sort = (
            ids.reserve(30 + i) for i in range(7))
        disp = Display(s_sort)
        Pipeline(ctx, [
            DescendantStep(ctx, 0, s_book, "book"),
            ForTuples(ctx, s_book, s_for),
            Tee(ctx, s_for, tk),
            ChildStep(ctx, tk, k1, "price"),
            StringValue(ctx, k1, k2),
            TupleConstruct(ctx, s_for, s_item, "entry"),
            SortTuples(ctx, s_item, k2, s_sort),
        ], disp).run(tokenize(self.BOOKS))
        assert disp.text().startswith("<entry><book><title>A</title>")
