"""Differential tests for plan-driven stream projection.

The contract: running any query with ``projection=True`` yields answers
*byte-identical* to running it without — the projection may only change
how many events the tokenizer materializes and how many each pipeline
dispatches, never what a query observes of its own paths.  Holds for
every paper query, through every executor (single run, multiplexed,
sharded with 1 and 3 workers), with the protocol sanitizer interposed,
and on mutable update streams (where the analysis must refuse to prune
at all).
"""

import pytest

from repro.analysis.projection import (CHILD, ProjectionMask,
                                       ProjectionMatcher,
                                       QueryProjection, derive_projection,
                                       format_path, known_schema,
                                       union_projection)
from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET, Workloads
from repro.data.stock import StockTicker
from repro.parallel import ShardedMultiQueryRun
from repro.xquery.engine import MultiQueryRun, XFlux

SCALE = 0.02
DATASET_SCHEMA = {"X": "xmark", "D": "dblp"}

XMARK_NAMES = [n for n in PAPER_QUERIES if QUERY_DATASET[n] == "X"]
DBLP_NAMES = [n for n in PAPER_QUERIES if QUERY_DATASET[n] == "D"]


@pytest.fixture(scope="module")
def workloads():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE)


@pytest.fixture(scope="module")
def reference(workloads):
    """Answers with projection off, one independent run per query."""
    return {name: XFlux(query).run_xml(
                workloads.text(QUERY_DATASET[name])).text()
            for name, query in PAPER_QUERIES.items()}


class TestDeriveProjection:
    def test_q1_paths(self):
        proj = derive_projection(XFlux(PAPER_QUERIES["Q1"]).compile())
        assert not proj.universal
        assert proj.describe() == ["//europe//item",
                                   "//europe//item/quantity"]

    def test_q2_paths(self):
        proj = derive_projection(XFlux(PAPER_QUERIES["Q2"]).compile())
        assert "//item" in proj.describe()

    @pytest.mark.parametrize("name", ["Q4", "Q5", "Q6"])
    def test_oid_queries_fall_back_to_universal(self, name):
        proj = derive_projection(XFlux(PAPER_QUERIES[name]).compile())
        assert proj.universal
        assert "oids" in proj.reason

    def test_mutable_source_falls_back_to_universal(self):
        plan = XFlux('stream()//quote/price',
                     mutable_source=True).compile()
        proj = derive_projection(plan)
        assert proj.universal
        assert "mutable" in proj.reason

    def test_union_of_paths(self):
        a = derive_projection(XFlux(PAPER_QUERIES["Q1"]).compile())
        b = derive_projection(XFlux(PAPER_QUERIES["Q2"]).compile())
        u = union_projection([a, b])
        assert not u.universal
        assert set(u.describe()) == set(a.describe()) | set(b.describe())

    def test_union_with_universal_is_universal(self):
        a = derive_projection(XFlux(PAPER_QUERIES["Q1"]).compile())
        b = QueryProjection(universal=True, reason="test")
        assert union_projection([a, b]).universal

    def test_format_path(self):
        assert format_path(((CHILD, "a"), ("descendant", "b"))) == "/a//b"


class TestPrunability:
    def test_descendant_paths_need_a_schema(self):
        proj = derive_projection(XFlux(PAPER_QUERIES["Q1"]).compile())
        assert not ProjectionMatcher(proj).prunable
        assert ProjectionMatcher(proj, schema="xmark").prunable
        assert ProjectionMatcher(proj,
                                 schema=known_schema("xmark")).prunable

    def test_child_paths_prunable_without_schema(self):
        proj = QueryProjection(paths=frozenset({
            ((CHILD, "site"), (CHILD, "regions"))}))
        assert ProjectionMatcher(proj).prunable

    def test_universal_not_prunable(self):
        proj = QueryProjection(universal=True, reason="test")
        assert not ProjectionMatcher(proj).prunable

    def test_unknown_schema_name_rejected(self):
        proj = derive_projection(XFlux(PAPER_QUERIES["Q1"]).compile())
        with pytest.raises(ValueError):
            ProjectionMatcher(proj, schema="no-such-schema")

    def test_schema_closures(self):
        xmark = known_schema("xmark")
        assert "item" in xmark.descendants("regions")
        assert "quantity" not in xmark.descendants("payment")


class TestSingleRunDifferential:
    @pytest.mark.parametrize("name", list(PAPER_QUERIES))
    def test_projection_on_equals_off(self, name, workloads, reference):
        dataset = QUERY_DATASET[name]
        run = XFlux(PAPER_QUERIES[name]).run_xml(
            workloads.text(dataset), projection=True,
            schema=DATASET_SCHEMA[dataset])
        assert run.text() == reference[name], name
        assert run.projection is not None

    def test_q1_actually_prunes(self, workloads, reference):
        run = XFlux(PAPER_QUERIES["Q1"]).run_xml(
            workloads.text("X"), projection=True, schema="xmark")
        assert run.text() == reference["Q1"]
        assert run.projection_stats is not None
        assert run.projection_stats.events_pruned > 0
        assert run.projection_stats.bytes_skipped > 0

    @pytest.mark.parametrize("name", ["Q4", "Q5", "Q6"])
    def test_universal_queries_never_prune(self, name, workloads,
                                           reference):
        run = XFlux(PAPER_QUERIES[name]).run_xml(
            workloads.text("X"), projection=True, schema="xmark")
        assert run.text() == reference[name]
        assert run.projection_stats is None  # fell back, no skip mode

    def test_child_axis_from_root_not_pruned(self):
        # Regression: the engine's first ChildStep matches children of
        # the *root* (the root element consumes no path step).  The
        # matcher must therefore keep the root unconditionally — an
        # earlier cursor transitioned on the root tag, pruned the whole
        # document for any root not named like step 0, and silently
        # returned an empty answer.
        doc = "<c><book><title>U</title></book><other><x/></other></c>"
        plain = XFlux("X/book/title").run_xml(doc)
        assert plain.text() == "<title>U</title>"
        projected = XFlux("X/book/title").run_xml(doc, projection=True)
        assert projected.text() == plain.text()
        assert projected.projection_stats is not None
        assert projected.projection_stats.subtrees_skipped > 0

    def test_descendant_step_never_matches_root(self):
        # Companion fact: descendant steps match strictly below the
        # root, so keeping the root blanket is exact, not conservative.
        assert XFlux("X//c").run_xml("<c><d>x</d></c>").text() == ""

    def test_sanitized_run_identical(self, workloads, reference,
                                     monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        for name in ("Q1", "Q7", "Q8"):
            dataset = QUERY_DATASET[name]
            run = XFlux(PAPER_QUERIES[name]).run_xml(
                workloads.text(dataset), projection=True,
                schema=DATASET_SCHEMA[dataset])
            assert run.text() == reference[name], name


class TestMultiQueryDifferential:
    @pytest.mark.parametrize("dataset,names", [("X", XMARK_NAMES),
                                               ("D", DBLP_NAMES)])
    def test_multiplex_projection_identical(self, dataset, names,
                                            workloads, reference):
        mq = MultiQueryRun([PAPER_QUERIES[n] for n in names],
                           projection=True,
                           schema=DATASET_SCHEMA[dataset])
        mq.run_xml(workloads.text(dataset))
        assert mq.texts() == [reference[n] for n in names]
        summary = mq.stats()["projection"]
        assert summary["masked_pipelines"] > 0

    def test_masks_drop_events(self, workloads, reference):
        names = ["Q1", "Q2", "Q7"]
        mq = MultiQueryRun([PAPER_QUERIES[n] for n in names],
                           projection=True, schema="xmark")
        mq.run_xml(workloads.text("X"))
        assert mq.texts() == [reference[n] for n in names]
        assert mq.projection_summary()["mask_events_dropped"] > 0

    @pytest.mark.parametrize("workers", [1, 3])
    def test_sharded_projection_identical(self, workers, workloads,
                                          reference):
        for dataset, names in (("X", XMARK_NAMES), ("D", DBLP_NAMES)):
            smq = ShardedMultiQueryRun(
                [PAPER_QUERIES[n] for n in names], workers=workers,
                projection=True, schema=DATASET_SCHEMA[dataset])
            smq.run_xml(workloads.text(dataset))
            assert smq.texts() == [reference[n] for n in names]

    def test_sanitized_multiplex_identical(self, workloads, reference,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        names = ["Q1", "Q2", "Q3"]
        mq = MultiQueryRun([PAPER_QUERIES[n] for n in names],
                           projection=True, schema="xmark")
        mq.run_xml(workloads.text("X"))
        assert mq.texts() == [reference[n] for n in names]


class TestUpdateStreams:
    QUERIES = ['stream()//quote[name="IBM"]/price',
               'count(stream()//quote[name="IBM"])']

    @pytest.fixture(scope="class")
    def events(self):
        return StockTicker(n_updates=40, mutable_names=True,
                           name_update_fraction=0.4, seed=7).events()

    def test_multiplex_projection_is_a_noop(self, events):
        plain = MultiQueryRun(self.QUERIES, mutable_source=True)
        plain.run(events)
        projected = MultiQueryRun(self.QUERIES, mutable_source=True,
                                  projection=True)
        projected.run(events)
        assert projected.texts() == plain.texts()
        summary = projected.projection_summary()
        assert summary["union"]["universal"]
        assert not summary["tokenizer_pruning"]
        assert summary["mask_events_dropped"] == 0

    @pytest.mark.parametrize("workers", [1, 3])
    def test_sharded_projection_is_a_noop(self, events, workers):
        plain = MultiQueryRun(self.QUERIES, mutable_source=True)
        plain.run(events)
        smq = ShardedMultiQueryRun(self.QUERIES, workers=workers,
                                   mutable_source=True, projection=True,
                                   batch_events=37)
        smq.run(events)
        assert smq.texts() == plain.texts()

    def test_mask_disables_itself_on_update_events(self):
        # Defense in depth: even a mask built from a (mis-declared)
        # immutable plan must stop filtering the moment an update
        # bracket appears, and pass everything through untouched.
        from repro.events.model import SM, Event
        proj = QueryProjection(paths=frozenset({((CHILD, "keep"),)}))
        mask = ProjectionMask(ProjectionMatcher(proj), source_id=0)
        batch = [Event(SM, 0, tag="quote")]
        assert mask.filter(batch) == batch
        from repro.xmlio.tokenizer import tokenize
        later = tokenize("<drop><x/></drop>")
        assert mask.filter(later) == later  # permanently disabled


class TestMetricsEquality:
    def test_sharded_metrics_equal_single_process(self, workloads):
        names = ["Q1", "Q2", "Q7"]
        queries = [PAPER_QUERIES[n] for n in names]
        doc = workloads.text("X")
        mq = MultiQueryRun(queries, metrics=True, projection=True,
                           schema="xmark")
        mq.run_xml(doc)
        smq = ShardedMultiQueryRun(queries, workers=3, metrics=True,
                                   projection=True, schema="xmark")
        smq.run_xml(doc)
        m1, m2 = mq.metrics(), smq.metrics()
        assert m1 is not None and m2 is not None
        assert "projection" in m1
        assert m1["projection"] == m2["projection"]
        assert m1["projection"]["mask_events_dropped"] > 0

    def test_counters_reach_recorder_dict(self, workloads):
        run = XFlux(PAPER_QUERIES["Q1"]).run_xml(
            workloads.text("X"), projection=True, schema="xmark",
            metrics=True)
        metrics = run.metrics()
        assert metrics["projection"]["events_pruned"] == \
            run.projection_stats.events_pruned
