"""Differential-testing helpers shared across test modules."""

from __future__ import annotations

from repro import XFlux, parse_xml
from repro.baselines.dom_eval import evaluate_to_xml
from repro.xquery.parser import parse as parse_query


def flux_result(query: str, xml: str, **kwargs) -> str:
    """Run a query through the streaming engine; return the final text."""
    return XFlux(query, **kwargs).run_xml(xml).text()


def naive_result(query: str, xml: str) -> str:
    """Run a query through the blocking baseline; return its text."""
    return evaluate_to_xml(parse_query(query), parse_xml(xml))


def assert_query_matches_naive(query: str, xml: str) -> str:
    """The central oracle: streaming display == naive evaluation."""
    expected = naive_result(query, xml)
    actual = flux_result(query, xml)
    assert actual == expected, (
        "query {!r}\n  naive: {!r}\n  flux : {!r}".format(query, expected,
                                                          actual))
    return actual
