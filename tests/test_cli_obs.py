"""Observability CLI tests: stats/trace/export under the flag matrix.

The telemetry subcommands attach a recorder, and the compile layers are
documented to *disengage* rather than coexist with one: fusion requires
``recorder is None`` and prefix sharing requires no metrics and no
flight recorder.  These tests pin that the CLI keeps working — same
result, same payload shape — with ``REPRO_FUSE`` / ``REPRO_SHARE``
forced on and with ``--projection``, and that the export paths emit
artifacts the strict validators accept.
"""

import io
import json

import pytest

from repro.cli import main
from repro.obs.export import parse_openmetrics, validate_chrome_trace

SCALE = "0.02"


def _run(argv):
    out, err = io.StringIO(), io.StringIO()
    rc = main(argv, out=out, err=err)
    return rc, out.getvalue(), err.getvalue()


def _stats(name, *extra):
    rc, out, err = _run(["stats", name, "--scale", SCALE, *extra])
    assert rc == 0, err
    return json.loads(out)


def _trace(name, *extra):
    rc, out, err = _run(["trace", name, "--scale", SCALE, *extra])
    assert rc == 0, err
    return json.loads(out)


STATS_KEYS = {"query", "query_text", "result", "metrics", "per_stage"}
TRACE_KEYS = {"query", "query_text", "result", "trace", "metrics"}


class TestStatsShape:
    def test_stats_block_shape(self):
        payload = _stats("Q1")
        assert set(payload) == STATS_KEYS
        m = payload["metrics"]
        assert m["source_events"] > 0
        assert {"drain_batch", "update_latency", "tokenizer_chunk"} \
            <= set(m["histograms"])
        assert all(h["count"] >= 0 for h in m["histograms"].values())

    def test_stats_under_projection(self):
        payload = _stats("Q1", "--projection")
        assert set(payload) == STATS_KEYS
        m = payload["metrics"]
        assert m["projection"]["events_pruned"] > 0
        # The chunk histogram rides the projecting tokenizer.
        assert m["histograms"]["tokenizer_chunk"]["count"] > 0

    def test_stats_with_fuse_forced_on(self, monkeypatch):
        # Fusion requires recorder is None, so the telemetry run
        # disengages it; the CLI must neither crash nor change shape.
        baseline = _stats("Q2")
        monkeypatch.setenv("REPRO_FUSE", "1")
        fused = _stats("Q2")
        assert set(fused) == STATS_KEYS
        assert fused["result"] == baseline["result"]
        assert (fused["metrics"]["sink_events"]
                == baseline["metrics"]["sink_events"])

    def test_stats_with_share_forced_on(self, monkeypatch):
        # Sharing is a multi-query concern and disengages under
        # metrics anyway; the env flag must be inert here.
        monkeypatch.setenv("REPRO_SHARE", "1")
        payload = _stats("Q1")
        assert set(payload) == STATS_KEYS


class TestTraceShape:
    def test_trace_payload_shape(self):
        payload = _trace("Q3")
        assert set(payload) == TRACE_KEYS
        assert payload["trace"]["hops"]
        assert "epoch_wall_ns" in payload["trace"]

    @pytest.mark.parametrize("env", ["REPRO_FUSE", "REPRO_SHARE"])
    def test_trace_under_compile_flags(self, monkeypatch, env):
        baseline = _trace("Q3")
        monkeypatch.setenv(env, "1")
        flagged = _trace("Q3")
        assert set(flagged) == TRACE_KEYS
        assert flagged["result"] == baseline["result"]
        assert (len(flagged["trace"]["hops"])
                == len(baseline["trace"]["hops"]))

    def test_trace_under_projection(self):
        # Q1 is the prunable-by-schema query (see test_projection.py).
        payload = _trace("Q1", "--projection")
        assert set(payload) == TRACE_KEYS
        assert payload["metrics"]["projection"]["events_pruned"] > 0

    def test_trace_chrome_format(self):
        rc, out, err = _run(["trace", "Q3", "--scale", SCALE,
                             "--format", "chrome"])
        assert rc == 0, err
        chrome = json.loads(out)
        assert validate_chrome_trace(chrome) > 0


class TestExportCommand:
    def test_export_trace_validates(self):
        rc, out, err = _run(["export", "trace", "Q5",
                             "--scale", SCALE])
        assert rc == 0, err
        assert validate_chrome_trace(json.loads(out)) > 0

    def test_export_metrics_validates(self):
        rc, out, err = _run(["export", "metrics", "Q5",
                             "--scale", SCALE])
        assert rc == 0, err
        families = parse_openmetrics(out)
        assert any("drain_batch" in f for f in families)

    def test_export_metrics_under_projection(self):
        rc, out, err = _run(["export", "metrics", "Q1",
                             "--scale", SCALE, "--projection"])
        assert rc == 0, err
        families = parse_openmetrics(out)
        rows = {r["labels"]["counter"]: r["value"]
                for r in families["repro_projection"]}
        assert rows.get("events_pruned", 0) > 0

    def test_export_out_file(self, tmp_path):
        path = str(tmp_path / "q1.prom")
        rc, out, err = _run(["export", "metrics", "Q1",
                             "--scale", SCALE, "--out", path])
        assert rc == 0, err
        assert out.strip() == path
        with open(path) as fh:
            parse_openmetrics(fh.read())

    def test_export_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            _run(["export", "nonsense", "Q1"])

    def test_export_rejects_unknown_query(self):
        rc, out, err = _run(["export", "metrics", "Q99"])
        assert rc == 2
        assert "unknown paper query" in err


class TestMainFlightFlag:
    def test_flight_flag_runs_clean(self, tmp_path):
        doc = tmp_path / "d.xml"
        doc.write_text("<a><b>x</b><b>y</b></a>")
        rc, out, err = _run(["X//b", str(doc), "--flight"])
        assert rc == 0, err
        assert "<b>" in out
