"""Tests for the XQuery parser."""

import pytest

from repro.xquery import ast
from repro.xquery.parser import XQuerySyntaxError, parse


class TestPaths:
    def test_descendant_chain(self):
        q = parse("X//europe//item")
        assert isinstance(q, ast.Step)
        assert q.axis == ast.DESCENDANT and q.tag == "item"
        assert q.base.axis == ast.DESCENDANT and q.base.tag == "europe"
        assert isinstance(q.base.base, ast.Source)
        assert q.base.base.name == "X"

    def test_child_and_wildcard(self):
        q = parse("X/a/*")
        assert q.axis == ast.CHILD and q.tag is None
        assert q.base.tag == "a"

    def test_text_step(self):
        q = parse("$d/year/text()")
        assert q.axis == ast.TEXT
        assert q.base.tag == "year"
        assert isinstance(q.base.base, ast.VarRef)

    def test_parent_step(self):
        q = parse("X//item/..")
        assert q.axis == ast.PARENT

    def test_ancestor_steps(self):
        q = parse("X//item/ancestor::europe")
        assert q.axis == ast.ANCESTOR and q.tag == "europe"
        q = parse("X//item/ancestor::*")
        assert q.tag is None

    def test_stream_function_source(self):
        q = parse("stream()//biblio")
        assert isinstance(q.base, ast.Source)


class TestPredicates:
    def test_comparison_predicate(self):
        q = parse('X//item[location="Albania"]')
        assert isinstance(q, ast.Filter)
        cond = q.cond
        assert isinstance(cond, ast.Compare)
        assert cond.op == "=" and cond.literal == "Albania"

    def test_chained_predicates(self):
        q = parse('X//item[a="1"][b="2"]')
        assert isinstance(q, ast.Filter)
        assert isinstance(q.base, ast.Filter)

    def test_existence_predicate(self):
        q = parse("X//item[payment]")
        assert isinstance(q.cond, ast.Source)

    def test_numeric_literal_comparison(self):
        q = parse("X//item[price < 10]")
        assert q.cond.op == "<"
        assert q.cond.literal == "10"

    def test_relative_path_condition(self):
        q = parse('X//item[a/b="x"]')
        assert isinstance(q.cond.left, ast.Step)

    def test_contains_in_predicate(self):
        q = parse('X//r[contains(author,"Smith")]')
        assert isinstance(q.cond, ast.FunCall)
        assert q.cond.literal == "Smith"


class TestFLWOR:
    def test_full_flwor(self):
        q = parse('for $d in D//x where $d/a = "1" order by $d/k '
                  'descending return $d/v')
        assert isinstance(q, ast.FLWOR)
        assert q.var == "d"
        assert q.where is not None
        assert q.descending
        assert isinstance(q.ret, ast.Step)

    def test_ascending_keyword(self):
        q = parse("for $d in D//x order by $d/k ascending return $d")
        assert not q.descending

    def test_minimal_flwor(self):
        q = parse("for $d in D//x return $d")
        assert q.where is None and q.order_key is None

    def test_return_sequence(self):
        q = parse('for $d in D//x return ($d/a, ": ", $d/b, "\\n")')
        assert isinstance(q.ret, ast.SequenceExpr)
        assert len(q.ret.items) == 4
        assert q.ret.items[1].value == ": "
        assert q.ret.items[3].value == "\n"

    def test_missing_return_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse("for $d in D//x")


class TestConstructors:
    def test_simple_constructor(self):
        q = parse("<result>{ X//a }</result>")
        assert isinstance(q, ast.ElementCtor)
        assert q.tag == "result"
        assert isinstance(q.content[0], ast.Step)

    def test_constructor_with_flwor(self):
        q = parse("<r>{ for $x in X//a return $x }</r>")
        assert isinstance(q.content[0], ast.FLWOR)

    def test_nested_constructors(self):
        q = parse("<a><b>{ X//c }</b></a>")
        assert isinstance(q.content[0], ast.ElementCtor)
        assert q.content[0].tag == "b"

    def test_literal_text_content(self):
        q = parse("<a>hello</a>")
        assert isinstance(q.content[0], ast.StringLit)
        assert q.content[0].value == "hello"

    def test_mismatched_close_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse("<a>{ X//b }</c>")

    def test_unterminated_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse("<a>{ X//b }")


class TestFunctions:
    def test_count(self):
        q = parse("count(X//item)")
        assert isinstance(q, ast.FunCall) and q.name == "count"

    def test_sum_avg(self):
        assert parse("sum(X//p)").name == "sum"
        assert parse("avg(X//p)").name == "avg"

    def test_contains_where(self):
        q = parse('for $d in D//x where contains($d/a,"S") return $d')
        assert q.where.name == "contains"

    def test_unknown_function_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse("frobnicate(X//a)")


class TestLexicalDetails:
    def test_comments_skipped(self):
        q = parse("(: a comment :) X//a (: another :)")
        assert isinstance(q, ast.Step)

    def test_curly_quotes_from_pdf(self):
        q = parse('X//biblio[publisher = “Wiley”]')
        assert q.cond.literal == "Wiley"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse("X//a extra")

    def test_error_reports_position(self):
        with pytest.raises(XQuerySyntaxError) as err:
            parse("for $x\nin")
        assert "line" in str(err.value)

    def test_paper_query_1_through_9_parse(self):
        from repro.bench.harness import PAPER_QUERIES
        for text in PAPER_QUERIES.values():
            parse(text)

    def test_paper_intro_query_parses(self):
        parse('''<books>{
            for $b in stream()//biblio[publisher = "Wiley"]/books
            where $b/author/lastname = "Smith"
            order by $b/price
            return <book>{ $b/title, $b/price }</book>
            }</books>''')

    def test_uses_backward_axes_helper(self):
        from repro.xquery.ast import uses_backward_axes
        assert uses_backward_axes(parse("count(X//a/..)"))
        assert not uses_backward_axes(parse("count(X//a)"))
