"""Update-provenance tracing tests.

Hop-log invariants that must hold for *any* valid update stream, checked
under hypothesis-generated ticker workloads:

* global ``seq`` numbers are strictly increasing and monotonic
  timestamps never run backwards;
* within one region, hops are ordered source-side first: an ``enter``
  at stage *i* never follows an ``enter`` at a later stage for the same
  bracket instance, and ``emit`` (the sink) comes last in its chain;
* every ``translate`` link's target region subsequently appears
  downstream (the lineage is connected);
* chains reassembled from the links start at source-born regions.

Plus CLI smoke tests for ``python -m repro trace`` / ``stats`` /
``analyze --json`` / ``--metrics``.
"""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.data.stock import StockTicker
from repro.obs import SINK_STAGE, TraceLog
from repro.xquery.engine import XFlux

STOCK_QUERY = 'stream()//quote[name="IBM"]/price'


def _traced_run(seed, n_updates=30, name_fraction=0.3):
    events = StockTicker(n_updates=n_updates,
                         name_update_fraction=name_fraction,
                         seed=seed).events()
    run = XFlux(STOCK_QUERY, mutable_source=True).run(
        events, metrics=True, trace=True)
    return run.recorder.trace


class TestHopOrdering:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_seq_and_time_monotonic(self, seed):
        trace = _traced_run(seed)
        seqs = [h.seq for h in trace.hops]
        times = [h.t_ns for h in trace.hops]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert all(a <= b for a, b in zip(times, times[1:]))

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_region_hops_flow_downstream(self, seed):
        trace = _traced_run(seed)
        for region, hops in trace.by_region().items():
            stages = [h.stage for h in hops]
            # The sink is the end of the pipe: nothing after an emit.
            if SINK_STAGE in stages:
                assert stages.index(SINK_STAGE) == len(stages) - 1
            # Enter hops never revisit an earlier stage for one region
            # instance (regions are fresh numbers; one pass each).
            enters = [h.stage for h in hops if h.action == "enter"]
            assert enters == sorted(enters)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_translate_links_connected(self, seed):
        trace = _traced_run(seed)
        by_region = trace.by_region()
        for link in trace.links():
            assert link["to_region"] in by_region or any(
                h.to_region == link["to_region"]
                for h in trace.hops), link

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_chains_start_at_source_regions(self, seed):
        trace = _traced_run(seed)
        translated_to = {h.to_region for h in trace.hops
                         if h.action == "translate"}
        for chain in trace.chains():
            assert chain[0] not in translated_to
            assert len(chain) == len(set(chain))  # no cycles


class TestTraceLogUnit:
    def test_record_and_views(self):
        log = TraceLog()
        log.record(7, 9, 0, "enter")
        log.record(7, 9, 0, "translate", to_region=8)
        log.record(8, 9, 1, "enter")
        log.record(8, 9, SINK_STAGE, "emit")
        assert [h.seq for h in log.hops] == [0, 1, 2, 3]
        assert set(log.by_region()) == {7, 8}
        assert log.links() == [{"from_region": 7, "to_region": 8,
                                "stage": 0, "seq": 1}]
        assert log.chains() == [[7, 8]]
        d = log.to_dict()
        assert d["regions"] == 2 and len(d["hops"]) == 4

    def test_tee_fanout_heads_multiple_chains(self):
        log = TraceLog()
        log.record(1, 9, 0, "translate", to_region=2)
        log.record(1, 9, 1, "translate", to_region=3)
        assert sorted(log.chains()) == [[1, 2], [1, 3]]

    def test_cycle_defense(self):
        log = TraceLog()
        log.record(1, 9, 0, "translate", to_region=2)
        log.record(2, 9, 1, "translate", to_region=1)
        for chain in log.chains():
            assert len(chain) == len(set(chain))


class TestCLI:
    def test_trace_subcommand_standalone(self):
        out, err = io.StringIO(), io.StringIO()
        rc = cli_main(["trace", "Q3"], out=out, err=err)
        assert rc == 0, err.getvalue()
        payload = json.loads(out.getvalue())
        assert payload["query"] == "Q3"
        assert payload["trace"]["hops"]
        assert payload["metrics"]["stages"]

    def test_stats_subcommand_standalone(self):
        out, err = io.StringIO(), io.StringIO()
        rc = cli_main(["stats", "Q1"], out=out, err=err)
        assert rc == 0, err.getvalue()
        payload = json.loads(out.getvalue())
        assert payload["metrics"]["source_events"] > 0
        assert payload["per_stage"]

    def test_trace_out_file(self, tmp_path):
        out, err = io.StringIO(), io.StringIO()
        target = tmp_path / "trace.json"
        rc = cli_main(["trace", "Q1", "--out", str(target)],
                      out=out, err=err)
        assert rc == 0, err.getvalue()
        payload = json.loads(target.read_text())
        assert payload["query"] == "Q1"
        assert str(target) in out.getvalue()

    def test_trace_with_input_document(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<root><item><location>Albania</location>"
                       "<quantity>7</quantity></item></root>")
        out, err = io.StringIO(), io.StringIO()
        rc = cli_main(["trace", 'X//*[location="Albania"]/quantity',
                       "--input", str(doc)], out=out, err=err)
        assert rc == 0, err.getvalue()
        payload = json.loads(out.getvalue())
        assert "<quantity>7</quantity>" in payload["result"]

    def test_run_with_metrics_flag(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<root><a>1</a><a>2</a></root>")
        out, err = io.StringIO(), io.StringIO()
        rc = cli_main(["count(X//a)", str(doc), "--metrics"],
                      out=out, err=err)
        assert rc == 0
        assert out.getvalue().strip().startswith("2")
        metrics = json.loads(err.getvalue())
        assert metrics["source_events"] > 0

    def test_analyze_json(self):
        out, err = io.StringIO(), io.StringIO()
        rc = cli_main(["analyze", "Q3", "--json"], out=out, err=err)
        assert rc == 0, err.getvalue()
        payload = json.loads(out.getvalue())
        assert payload["plan"]["stages"] == len(payload["stages"])
        assert all("label" in s and "memory" in s
                   for s in payload["stages"])
        assert "fix_map" in payload

    def test_analyze_json_with_runtime_check(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<root><a>1</a></root>")
        out, err = io.StringIO(), io.StringIO()
        rc = cli_main(["analyze", "count(X//a)", "--json",
                       "--input", str(doc)], out=out, err=err)
        assert rc == 0, err.getvalue()
        payload = json.loads(out.getvalue())
        assert payload["runtime_check"]["agrees"] is True

    def test_bad_query_fails_cleanly(self):
        out, err = io.StringIO(), io.StringIO()
        rc = cli_main(["stats", "X//["], out=out, err=err)
        assert rc == 2
        assert "error" in err.getvalue()


class TestEpochMerge:
    """Cross-process timestamp rebasing (merge_trace_dicts).

    Each TraceLog pairs a monotonic epoch with a wall epoch at
    construction; merging rebases every log onto the shared wall clock
    by a per-log constant, so per-region ordering survives exactly and
    cross-log interleavings become comparable.
    """

    def _traced(self, seed):
        run = XFlux('stream()//quote[name="IBM"]/price').start(
            trace=True)
        run.feed_all(StockTicker(n_updates=40, seed=seed).events())
        run.finish()
        return run.metrics()["trace"]

    def test_log_carries_paired_epochs(self):
        d = TraceLog().to_dict()
        assert d["epoch_mono_ns"] > 0
        assert d["epoch_wall_ns"] > 0

    def test_merged_hops_globally_sorted_and_tagged(self):
        from repro.obs import merge_trace_dicts
        merged = merge_trace_dicts([self._traced(1), self._traced(2)])
        assert merged["logs"] == 2
        times = [h["t_ns"] for h in merged["hops"]]
        assert times == sorted(times)
        assert {h["log"] for h in merged["hops"]} == {0, 1}
        # Rebased onto the earliest wall epoch: nothing negative.
        assert all(t >= 0 for t in times)

    def test_merged_ordering_monotonic_per_region(self):
        """Within any (log, region) the merged hop order is exactly
        the original seq order — the rebasing offset is constant per
        log, so it can never reorder a region's own hops."""
        from repro.obs import merge_trace_dicts
        merged = merge_trace_dicts([self._traced(3), self._traced(4)])
        per_region = {}
        for h in merged["hops"]:
            per_region.setdefault((h["log"], h["region"]),
                                  []).append(h)
        assert per_region
        for key, hops in per_region.items():
            seqs = [h["seq"] for h in hops]
            assert seqs == sorted(seqs), key
            times = [h["t_ns"] for h in hops]
            assert times == sorted(times), key

    def test_skewed_worker_clocks_rebase_onto_one_timeline(self):
        """Simulated fork skew: same hops, wildly different monotonic
        zero points must land on the same wall timeline."""
        from repro.obs import merge_trace_dicts
        a = self._traced(5)
        b = dict(a)
        # Pretend log b came from a process whose monotonic clock is
        # 1000 s ahead but whose hops happened at the same wall time.
        skew = 1_000_000_000_000
        b["epoch_mono_ns"] = a["epoch_mono_ns"] + skew
        b["hops"] = [dict(h, t_ns=h["t_ns"] + skew) for h in a["hops"]]
        merged = merge_trace_dicts([a, b])
        for ha in merged["hops"]:
            if ha["log"] == 0:
                twin = next(h for h in merged["hops"]
                            if h["log"] == 1 and h["seq"] == ha["seq"])
                assert twin["t_ns"] == ha["t_ns"]

    def test_legacy_dicts_without_epochs_still_merge(self):
        from repro.obs import merge_trace_dicts
        legacy = {"hops": [{"region": 1, "kind": "sM", "stage": 0,
                            "action": "enter", "seq": 0, "t_ns": 5}],
                  "links": [], "regions": 1}
        merged = merge_trace_dicts([legacy])
        assert merged["hops"][0]["t_ns"] == 5
