"""Checkpoint/restore round trips (repro.fault.checkpoint).

The contract under test: snapshotting a live run mid-stream and
restoring the blob — into the same object or a freshly compiled twin —
then feeding the remaining events produces output *byte-identical* to
the uninterrupted run.  This determinism is what the shard supervisor's
restart-and-replay recovery rests on, so it is proved here for every
paper query, at every batch boundary, for plain documents and for
update-bearing streams.
"""

import os

import pytest

from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET, Workloads
from repro.data.stock import StockTicker
from repro.fault import CheckpointError, decode_checkpoint, \
    encode_checkpoint
from repro.xquery.engine import MultiQueryRun, QueryRun, XFlux

SCALE = 0.02
BOUNDARIES = 5      # checkpoints taken per stream


@pytest.fixture(scope="module")
def workloads():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE)


def _events_for(workloads, query):
    plan = XFlux(query).compile()
    dataset = None
    for name, text in PAPER_QUERIES.items():
        if text == query:
            dataset = QUERY_DATASET[name]
    return list(workloads.events(dataset, oids=plan.needs_oids))


def _boundaries(n_events):
    step = max(1, n_events // BOUNDARIES)
    return list(range(step, n_events, step))


class TestQueryRunRoundTrip:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_restore_at_every_boundary_is_byte_identical(self, workloads,
                                                         name):
        query = PAPER_QUERIES[name]
        events = _events_for(workloads, query)
        expected = XFlux(query).run(events).text()

        primary = XFlux(query).start()
        cut = 0
        for boundary in _boundaries(len(events)):
            primary.feed_all(events[cut:boundary])
            cut = boundary
            blob = primary.checkpoint()
            resumed = XFlux(query).start().restore(blob)
            resumed.feed_all(events[boundary:])
            assert resumed.finish().text() == expected, \
                "{} diverged after restore at event {}".format(
                    name, boundary)
            assert resumed.display is resumed.pipeline.sink
        # Checkpointing must be non-destructive: the primary run,
        # snapshotted at every boundary, still finishes correctly.
        primary.feed_all(events[cut:])
        assert primary.finish().text() == expected

    def test_update_stream_round_trip(self):
        query = 'stream()//quote[name="IBM"]/price'
        events = StockTicker(n_updates=60, mutable_names=True,
                             name_update_fraction=0.4, seed=11).events()
        engine = XFlux(query, mutable_source=True)
        expected = engine.run(events).text()
        half = len(events) // 2
        first = engine.start()
        first.feed_all(events[:half])
        resumed = engine.start().restore(first.checkpoint())
        resumed.feed_all(events[half:])
        assert resumed.finish().text() == expected

    def test_sanitize_and_metrics_survive(self, workloads):
        query = PAPER_QUERIES["Q1"]
        events = _events_for(workloads, query)
        expected = XFlux(query).run(events).text()
        half = len(events) // 2
        run = XFlux(query).start(sanitize=True, metrics=True)
        run.feed_all(events[:half])
        resumed = XFlux(query).start(sanitize=True, metrics=True)
        resumed.restore(run.checkpoint())
        resumed.feed_all(events[half:])
        assert resumed.finish().text() == expected
        assert resumed.metrics() is not None

    def test_wrong_query_rejected(self, workloads):
        events = _events_for(workloads, PAPER_QUERIES["Q1"])
        run = XFlux(PAPER_QUERIES["Q1"]).start()
        run.feed_all(events[:100])
        blob = run.checkpoint()
        other = XFlux(PAPER_QUERIES["Q5"]).start()
        with pytest.raises(CheckpointError):
            other.restore(blob)


class TestMultiQueryRunRoundTrip:
    def test_executor_round_trip_with_dedup(self, workloads):
        names = ["Q1", "Q2", "Q5"]
        queries = [PAPER_QUERIES[n] for n in names]
        queries.append(PAPER_QUERIES["Q1"])       # deduped duplicate
        mq_ref = MultiQueryRun(queries)
        mq_ref.run_xml(workloads.text("X"))
        from repro.xmlio.tokenizer import tokenize
        mq = MultiQueryRun(queries)
        events = list(tokenize(workloads.text("X"),
                               stream_id=mq.source_id,
                               emit_oids=mq.needs_oids))
        half = len(events) // 2
        mq.feed_all(events[:half])
        restored = MultiQueryRun.restore(mq.checkpoint(),
                                         queries=queries)
        restored.feed_all(events[half:])
        restored.finish()
        assert restored.texts() == mq_ref.texts()
        # Dedup aliasing survives the pickle: the duplicate query is
        # still served by the very same pipeline object.
        assert restored.query_run(3) is restored.query_run(0)

    def test_query_guard(self, workloads):
        mq = MultiQueryRun([PAPER_QUERIES["Q1"]])
        blob = mq.checkpoint()
        with pytest.raises(CheckpointError):
            MultiQueryRun.restore(blob, queries=[PAPER_QUERIES["Q2"]])
        assert MultiQueryRun.restore(blob) is not None

    @pytest.mark.skipif(os.environ.get("REPRO_SANITIZE") == "1",
                        reason="compile layers disengage under the "
                               "sanitizer (transparency covered in "
                               "test_fusion.py)")
    @pytest.mark.parametrize("dataset", ["X", "D"])
    def test_fused_shared_round_trip_at_every_boundary(self, workloads,
                                                       dataset):
        """Compile-layer state survives the envelope (fusion + sharing).

        The shared prefix pipeline, its routing sink (open-bracket
        depth, adopted region routes, partially filled feeds) and the
        fused drivers are all mid-stream state; restoring at any frame
        boundary and replaying the rest must land on the interpreted
        executor's bytes.
        """
        names = [n for n in PAPER_QUERIES
                 if QUERY_DATASET[n] == dataset]
        queries = [PAPER_QUERIES[n] for n in names]
        expected = MultiQueryRun(queries).run_xml(
            workloads.text(dataset)).texts()

        from repro.xmlio.tokenizer import tokenize
        probe = MultiQueryRun(queries, fuse=True, share_prefixes=True)
        assert probe.groups, "workload should form a shared group"
        events = list(tokenize(workloads.text(dataset),
                               stream_id=probe.source_id,
                               emit_oids=probe.needs_oids))
        primary = MultiQueryRun(queries, fuse=True, share_prefixes=True)
        cut = 0
        for boundary in _boundaries(len(events)):
            primary.feed_all(events[cut:boundary])
            cut = boundary
            restored = MultiQueryRun.restore(primary.checkpoint(),
                                             queries=queries)
            assert restored.groups and restored.share_prefixes
            restored.feed_all(events[boundary:])
            restored.finish()
            assert restored.texts() == expected, \
                "{} diverged after restore at event {}".format(
                    dataset, boundary)
        # Checkpointing must be non-destructive for the primary too.
        primary.feed_all(events[cut:])
        assert primary.finish().texts() == expected


class TestEnvelope:
    def test_round_trip(self):
        blob = encode_checkpoint("pipeline", {"a": 1}, {"x": [1, 2]})
        schema, state = decode_checkpoint(blob, "pipeline")
        assert schema == {"a": 1} and state == {"x": [1, 2]}

    def test_bad_magic(self):
        blob = encode_checkpoint("pipeline", {}, {})
        with pytest.raises(CheckpointError) as info:
            decode_checkpoint(b"XXXX" + blob[4:], "pipeline")
        assert "magic" in str(info.value)

    def test_wrong_kind(self):
        blob = encode_checkpoint("pipeline", {}, {})
        with pytest.raises(CheckpointError):
            decode_checkpoint(blob, "multiquery")

    def test_unknown_version(self):
        blob = encode_checkpoint("pipeline", {}, {})
        bumped = blob[:4] + bytes([blob[4] + 1]) + blob[5:]
        with pytest.raises(CheckpointError):
            decode_checkpoint(bumped, "pipeline")

    def test_truncated_payload(self):
        blob = encode_checkpoint("pipeline", {}, {"k": "v"})
        with pytest.raises(CheckpointError):
            decode_checkpoint(blob[:8], "pipeline")

    def test_unpicklable_state(self):
        with pytest.raises(CheckpointError):
            encode_checkpoint("pipeline", {}, {"f": lambda: None})


class TestEnvelopeDiagnostics:
    """Decode failures name the failing field and byte offset — a
    corrupted envelope points at the exact spot, not a generic error."""

    FIELDS = ("magic", "version", "payload", "kind", "schema")

    def test_bad_magic_reports_offset_zero(self):
        blob = encode_checkpoint("pipeline", {}, {})
        with pytest.raises(CheckpointError) as info:
            decode_checkpoint(b"YYYY" + blob[4:], "pipeline")
        assert info.value.field == "magic"
        assert info.value.offset == 0
        assert "[field=magic, byte offset 0]" in str(info.value)

    def test_short_magic_reports_blob_length(self):
        with pytest.raises(CheckpointError) as info:
            decode_checkpoint(b"XF", "pipeline")
        assert info.value.field == "magic"
        assert info.value.offset == 2

    def test_bad_version_reports_version_offset(self):
        blob = encode_checkpoint("pipeline", {}, {})
        bumped = blob[:4] + bytes([blob[4] + 7]) + blob[5:]
        with pytest.raises(CheckpointError) as info:
            decode_checkpoint(bumped, "pipeline")
        assert info.value.field == "version"
        assert info.value.offset == 4

    def test_corrupt_payload_reports_payload_offset(self):
        blob = encode_checkpoint("pipeline", {}, {"k": "v"})
        mangled = blob[:5] + b"\x00" + blob[6:]
        with pytest.raises(CheckpointError) as info:
            decode_checkpoint(mangled, "pipeline")
        assert info.value.field == "payload"
        assert info.value.offset == 5

    def test_kind_mismatch_reports_kind_field(self):
        blob = encode_checkpoint("pipeline", {}, {})
        with pytest.raises(CheckpointError) as info:
            decode_checkpoint(blob, "multiquery")
        assert info.value.field == "kind"
        assert info.value.offset == 5

    def test_non_bytes_blob(self):
        with pytest.raises(CheckpointError) as info:
            decode_checkpoint("not bytes", "pipeline")
        assert info.value.field == "magic"
        assert info.value.offset == 0

    def test_truncation_at_every_byte_stays_diagnosable(self):
        # Exhaustive: chopping the envelope at ANY byte must produce a
        # CheckpointError (never a bare pickle/struct exception) whose
        # offset and field point inside the blob.
        blob = encode_checkpoint("pipeline", {"q": "Q1"},
                                 {"state": [1, 2, 3]})
        for cut in range(len(blob)):
            with pytest.raises(CheckpointError) as info:
                decode_checkpoint(blob[:cut], "pipeline")
            assert info.value.field in self.FIELDS, cut
            assert info.value.offset is not None, cut
            assert 0 <= info.value.offset <= cut, cut

    def test_random_corruption_stays_diagnosable(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        blob = encode_checkpoint("pipeline", {"q": "Q1"},
                                 {"state": list(range(16))})

        @settings(max_examples=80, deadline=None)
        @given(pos=st.integers(min_value=0, max_value=len(blob) - 1),
               flip=st.integers(min_value=1, max_value=255))
        def check(pos, flip):
            mangled = (blob[:pos] + bytes([blob[pos] ^ flip])
                       + blob[pos + 1:])
            try:
                schema, state = decode_checkpoint(mangled, "pipeline")
            except CheckpointError as exc:
                assert exc.field in self.FIELDS
            else:
                # A flip deep in the pickle stream can decode to
                # *different* values without tripping the format guard
                # — pickle has no integrity check; that is the WAL
                # CRC's job, not the envelope's.
                assert isinstance(schema, dict)

        check()
