"""Stream-protocol sanitizer: boundary checking on real and broken streams.

Two halves: (a) the full paper-query suite and the update-stream e2e
paths run clean with checkers interposed at every stage boundary and
produce byte-identical results; (b) each protocol rule fires on a
minimal hand-built violation, with the structured error naming the rule.
"""

import pytest

from repro import tokenize
from repro.analysis import BoundaryChecker, check_stream
from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET
from repro.data import DBLPGenerator, XMarkGenerator
from repro.data.stock import StockTicker
from repro.events.errors import ProtocolViolation
from repro.events.model import (CD, EE, ES, SE, SS, Event, end_mutable,
                                freeze, hide, show, start_mutable)
from repro.xquery.engine import MultiQueryRun, QueryRun, XFlux


@pytest.fixture(scope="module")
def xmark_text():
    return XMarkGenerator(scale=0.03, seed=13,
                          albania_fraction=0.2).text()


@pytest.fixture(scope="module")
def dblp_text():
    return DBLPGenerator(scale=0.02, seed=13, smith_fraction=0.15).text()


class TestSanitizedRuns:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_paper_query_clean_and_identical(self, name, xmark_text,
                                             dblp_text):
        text = (dblp_text if QUERY_DATASET[name] == "D" else xmark_text)
        query = PAPER_QUERIES[name]
        plain = XFlux(query).run_xml(text).text()
        sanitized = XFlux(query).run_xml(text, sanitize=True).text()
        assert sanitized == plain

    @pytest.mark.parametrize("seed", [1, 5, 7])
    def test_update_stream_clean(self, seed):
        events = StockTicker(n_updates=30, mutable_names=True,
                             name_update_fraction=0.4,
                             seed=seed).events()
        query = 'stream()//quote[name="IBM"]/price'
        engine = XFlux(query, mutable_source=True)
        plain = engine.run(events).text()
        run = engine.start(sanitize=True)
        run.feed_all(events)
        run.finish()
        assert run.text() == plain

    def test_multiquery_sanitized(self, xmark_text):
        mq = MultiQueryRun(["X//item/quantity", "count(X//item)"],
                           sanitize=True)
        mq.run_xml(xmark_text)
        ref = MultiQueryRun(["X//item/quantity", "count(X//item)"])
        ref.run_xml(xmark_text)
        assert mq.texts() == ref.texts()

    def test_env_variable_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        run = XFlux("X//a").run_xml("<X><a>1</a></X>")
        assert run.pipeline._checkers is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        run = XFlux("X//a").run_xml("<X><a>1</a></X>")
        assert run.pipeline._checkers is None

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        run = XFlux("X//a").run_xml("<X><a>1</a></X>", sanitize=False)
        assert run.pipeline._checkers is None

    def test_violation_names_boundary(self):
        plan = XFlux("X//a").compile()
        run = QueryRun(plan, sanitize=True)
        with pytest.raises(ProtocolViolation) as info:
            # eS for a stream that was never opened.
            run.feed(Event(ES, plan.source_id))
        assert "source ->" in str(info.value)
        assert info.value.stage.startswith("source ->")
        # Structured stage identity: index 0 is source -> stage 0, and
        # the message reprints both the boundary and the event.
        assert info.value.stage_index == 0
        assert "boundary=0" in str(info.value)
        assert "event=" in str(info.value)

    def test_boundary_labels_use_stage_identities(self):
        from repro.analysis import boundary_checkers
        from repro.obs import stage_identities
        plan = XFlux('X//item[location="x"]/name').compile()
        checkers = boundary_checkers(plan.stages, sink=object())
        labels = [ident.label for ident in
                  stage_identities(plan.stages)]
        assert len(checkers) == len(plan.stages) + 1
        for i, checker in enumerate(checkers):
            assert checker.stage_index == i
            if i < len(labels):
                assert checker.label.endswith(labels[i])
            if i > 0:
                assert checker.label.startswith(labels[i - 1])


def _violation(events, rule):
    with pytest.raises(ProtocolViolation) as info:
        check_stream(events)
    assert info.value.rule == rule
    return info.value


class TestProtocolRules:
    def test_clean_minimal_stream(self):
        checker = check_stream(tokenize("<a><b>x</b></a>"))
        assert checker.count > 0

    def test_stream_opened_twice(self):
        _violation([Event(SS, 0), Event(SS, 0)], "stream-discipline")

    def test_stream_reopened_after_close(self):
        _violation([Event(SS, 0), Event(ES, 0), Event(SS, 0)],
                   "stream-discipline")

    def test_data_on_unknown_substream(self):
        _violation([Event(SS, 0), Event(CD, 7, text="x")],
                   "stream-discipline")

    def test_close_with_dangling_element(self):
        _violation([Event(SS, 0), Event(SE, 0, tag="a"), Event(ES, 0)],
                   "element-nesting")

    def test_tag_mismatch(self):
        _violation([Event(SS, 0), Event(SE, 0, tag="a"),
                    Event(EE, 0, tag="b")], "element-nesting")

    def test_dropped_end_element(self):
        _violation([Event(SS, 0), Event(SE, 0, tag="a"),
                    Event(SE, 0, tag="b"), Event(EE, 0, tag="b"),
                    Event(ES, 0)], "element-nesting")

    def test_oid_mismatch(self):
        _violation([Event(SS, 0), Event(SE, 0, tag="a", oid=5),
                    Event(EE, 0, tag="a", oid=6)], "oid-discipline")

    def test_unmatched_bracket_end(self):
        _violation([Event(SS, 0), end_mutable(0, 9)],
                   "bracket-discipline")

    def test_bracket_kind_mismatch(self):
        from repro.events.model import ER
        _violation([Event(SS, 0), start_mutable(0, 9),
                    Event(ER, 0, sub=9)], "bracket-discipline")

    def test_bracket_target_mismatch(self):
        _violation([Event(SS, 0), Event(SS, 1), start_mutable(0, 9),
                    end_mutable(1, 9)], "bracket-discipline")

    def test_bracket_sub_reused_while_open(self):
        _violation([Event(SS, 0), start_mutable(0, 9),
                    start_mutable(0, 9)], "bracket-discipline")

    def test_bracket_left_open(self):
        _violation([Event(SS, 0), start_mutable(0, 9), Event(ES, 0)],
                   "bracket-discipline")

    def test_unknown_target(self):
        _violation([Event(SS, 0), start_mutable(42, 9)],
                   "unknown-target")

    def test_data_into_frozen_region(self):
        _violation([Event(SS, 0), start_mutable(0, 9),
                    end_mutable(0, 9), freeze(9),
                    Event(CD, 9, text="x")], "frozen-region-data")

    def test_region_reuse_after_freeze(self):
        _violation([Event(SS, 0), start_mutable(0, 9),
                    end_mutable(0, 9), freeze(9),
                    start_mutable(0, 9)], "region-reuse-after-freeze")

    def test_hide_after_freeze(self):
        _violation([Event(SS, 0), start_mutable(0, 9),
                    end_mutable(0, 9), freeze(9), hide(9)],
                   "toggle-after-freeze")

    def test_show_after_freeze(self):
        _violation([Event(SS, 0), start_mutable(0, 9),
                    end_mutable(0, 9), freeze(9), show(9)],
                   "toggle-after-freeze")

    def test_freeze_while_bracket_open(self):
        _violation([Event(SS, 0), start_mutable(0, 9), freeze(9)],
                   "freeze-ordering")

    def test_void_update_on_frozen_target_is_legal(self):
        # Section V: updates targeting an already-frozen region are void
        # downstream but remain protocol-legal on the wire.
        check_stream([Event(SS, 0), start_mutable(0, 9),
                      end_mutable(0, 9), freeze(9),
                      start_mutable(9, 10), end_mutable(9, 10),
                      Event(ES, 0)])

    def test_double_freeze_is_idempotent(self):
        check_stream([Event(SS, 0), start_mutable(0, 9),
                      end_mutable(0, 9), freeze(9), freeze(9),
                      Event(ES, 0)])

    def test_non_lifo_bracket_close_is_legal(self):
        # Regions interleave by design (e.g. Concat's halves).
        check_stream([Event(SS, 0), start_mutable(0, 8),
                      start_mutable(0, 9), end_mutable(0, 8),
                      end_mutable(0, 9), Event(ES, 0)])

    def test_structured_fields(self):
        err = _violation([Event(SS, 0), Event(SS, 0)],
                         "stream-discipline")
        assert err.index == 1
        assert err.stream == 0
        assert err.event is not None and "sS" in err.event

    def test_finish_reports_unclosed_stream(self):
        checker = BoundaryChecker("test")
        checker.feed(Event(SS, 0))
        with pytest.raises(ProtocolViolation) as info:
            checker.finish()
        assert info.value.rule == "stream-discipline"
