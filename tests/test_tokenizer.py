"""Tests for the from-scratch streaming XML tokenizer."""

import pytest

from repro.events import CD, EE, ES, SE, SS
from repro.xmlio import XMLSyntaxError, XMLTokenizer, iter_tokenize, \
    tokenize, write_events


def kinds(events):
    return [e.kind for e in events]


class TestBasics:
    def test_single_element(self):
        evs = tokenize("<a>hi</a>")
        assert kinds(evs) == [SS, SE, CD, EE, ES]
        assert evs[1].tag == "a"
        assert evs[2].text == "hi"

    def test_nested_elements(self):
        evs = tokenize("<a><b>x</b><c/></a>")
        tags = [(e.abbrev, e.tag) for e in evs if e.tag]
        assert tags == [("sE", "a"), ("sE", "b"), ("eE", "b"),
                        ("sE", "c"), ("eE", "c"), ("eE", "a")]

    def test_self_closing_element(self):
        evs = tokenize("<a/>")
        assert kinds(evs) == [SS, SE, EE, ES]

    def test_stream_id_stamped(self):
        evs = tokenize("<a/>", stream_id=9)
        assert all(e.id == 9 for e in evs)

    def test_whitespace_between_elements_dropped(self):
        evs = tokenize("<a>\n  <b>x</b>\n</a>")
        assert kinds(evs) == [SS, SE, SE, CD, EE, EE, ES]

    def test_whitespace_kept_on_request(self):
        evs = tokenize("<a> <b/> </a>", keep_whitespace=True)
        texts = [e.text for e in evs if e.kind == CD]
        assert texts == [" ", " "]

    def test_mixed_content(self):
        evs = tokenize("<p>pre<b>mid</b>post</p>")
        texts = [e.text for e in evs if e.kind == CD]
        assert texts == ["pre", "mid", "post"]


class TestMarkupForms:
    def test_comments_skipped(self):
        evs = tokenize("<a><!-- note --><b/></a>")
        assert all(e.tag != "!--" for e in evs)
        assert sum(1 for e in evs if e.kind == SE) == 2

    def test_processing_instruction_skipped(self):
        evs = tokenize('<?xml version="1.0"?><a/>')
        assert kinds(evs) == [SS, SE, EE, ES]

    def test_doctype_skipped(self):
        evs = tokenize("<!DOCTYPE site><a/>")
        assert kinds(evs) == [SS, SE, EE, ES]

    def test_cdata_section(self):
        evs = tokenize("<a><![CDATA[<not> & markup]]></a>")
        assert evs[2].text == "<not> & markup"

    def test_attributes_reported_via_handler(self):
        seen = []
        tok = XMLTokenizer(attribute_handler=lambda t, n, v:
                           seen.append((t, n, v)))
        list(tok.tokenize('<a x="1" y = "two &amp; three"><b z="3"/></a>'))
        assert seen == [("a", "x", "1"), ("a", "y", "two & three"),
                        ("b", "z", "3")]

    def test_attributes_ignored_by_default(self):
        evs = tokenize('<a href="http://x">t</a>')
        assert kinds(evs) == [SS, SE, CD, EE, ES]


class TestEntities:
    def test_predefined_entities(self):
        evs = tokenize("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert evs[2].text == "<>&\"'"

    def test_numeric_references(self):
        evs = tokenize("<a>&#65;&#x42;</a>")
        assert evs[2].text == "AB"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            tokenize("<a>&nope;</a>")


class TestErrors:
    def test_mismatched_close(self):
        with pytest.raises(XMLSyntaxError):
            tokenize("<a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XMLSyntaxError):
            tokenize("<a><b></b>")

    def test_stray_close(self):
        with pytest.raises(XMLSyntaxError):
            tokenize("</a>")

    def test_text_outside_root(self):
        with pytest.raises(XMLSyntaxError):
            tokenize("oops<a/>")

    def test_unterminated_input(self):
        with pytest.raises(XMLSyntaxError):
            tokenize("<a>text")

    def test_unquoted_attribute(self):
        with pytest.raises(XMLSyntaxError):
            tokenize("<a x=1/>")

    def test_feed_after_close(self):
        tok = XMLTokenizer()
        list(tok.tokenize("<a/>"))
        with pytest.raises(XMLSyntaxError):
            tok.feed("<b/>")


class TestIncremental:
    def test_byte_at_a_time_equals_oneshot(self):
        doc = '<a m="1"><b>x &amp; y</b><!--c--><c/>tail</a>'
        whole = tokenize(doc)
        chunked = list(iter_tokenize(list(doc)))
        assert chunked == whole

    def test_chunk_split_inside_tag(self):
        parts = ["<roo", "t><chi", "ld>te", "xt</child></ro", "ot>"]
        evs = list(iter_tokenize(parts))
        assert [e.tag for e in evs if e.kind == SE] == ["root", "child"]

    def test_events_emitted_before_document_ends(self):
        tok = XMLTokenizer()
        early = tok.feed("<a><b>x</b>")
        assert sum(1 for e in early if e.kind == EE) == 1


class TestOids:
    def test_oids_shared_between_start_and_end(self):
        evs = tokenize("<a><b/><b/></a>", emit_oids=True)
        elems = [e for e in evs if e.kind in (SE, EE)]
        by_oid = {}
        for e in elems:
            by_oid.setdefault(e.oid, []).append(e.abbrev)
        assert all(v == ["sE", "eE"] for v in by_oid.values())
        assert len(by_oid) == 3

    def test_oids_off_by_default(self):
        evs = tokenize("<a/>")
        assert all(e.oid is None for e in evs)


def test_roundtrip_through_writer():
    doc = "<a><b>x</b><c>1 &amp; 2</c><d><e>deep</e></d></a>"
    assert write_events(tokenize(doc)) == doc
