"""Tests for the textual event-stream format (repro.events.serialize)."""

import pytest

from repro.events import (Event, EventSyntaxError, cdata, dumps,
                          event_to_text, freeze, hide, loads, show,
                          start_element, start_mutable, start_replace,
                          start_stream)


class TestRoundTrip:
    def test_simple_roundtrip(self):
        evs = [start_stream(0), start_element(0, "name"),
               cdata(0, "Smith"), Event.__new__(Event)]  # placeholder
        evs = evs[:3]
        assert loads(dumps(evs)) == evs

    def test_update_roundtrip(self):
        evs = loads('sM(0,1) cD(1,"x") eM(0,1) sR(1,2) cD(2,"y") eR(1,2) '
                    'freeze(2) hide(1) show(1)')
        assert loads(dumps(evs)) == evs

    def test_escapes_roundtrip(self):
        evs = [cdata(0, 'quote " backslash \\ newline \n end')]
        assert loads(dumps(evs)) == evs

    def test_multiline_dumps(self):
        evs = [cdata(0, str(i)) for i in range(20)]
        text = dumps(evs, per_line=5)
        assert len(text.splitlines()) == 4
        assert loads(text) == evs


class TestParsing:
    def test_paper_section3_example_parses(self):
        text = ('sM(0,1) cD(1,"x") eM(0,1) sR(1,2) cD(2,"y") eR(1,2) '
                'sA(2,3) cD(3,"z") eA(2,3) sB(1,3) cD(3,"w") eB(1,3)')
        evs = loads(text)
        assert len(evs) == 12
        assert evs[0] == start_mutable(0, 1)
        assert evs[3] == start_replace(1, 2)

    def test_commas_and_brackets_tolerated(self):
        evs = loads('[ sS(0), cD(0,"a"), eS(0) ]')
        assert len(evs) == 3

    def test_numeric_cdata_becomes_text(self):
        (e,) = loads("cD(1,0)")
        assert e.text == "0"

    def test_unknown_event_name(self):
        with pytest.raises(EventSyntaxError):
            loads("zZ(0)")

    def test_wrong_arity(self):
        with pytest.raises(EventSyntaxError):
            loads("sM(0)")
        with pytest.raises(EventSyntaxError):
            loads("freeze(0,1)")

    def test_garbage_rejected(self):
        with pytest.raises(EventSyntaxError):
            loads("not an event")

    def test_event_to_text_forms(self):
        assert event_to_text(start_element(0, "a")) == 'sE(0,"a")'
        assert event_to_text(freeze(7)) == "freeze(7)"
        assert event_to_text(start_mutable(1, 2)) == "sM(1,2)"
        assert event_to_text(hide(1)) == "hide(1)"
        assert event_to_text(show(1)) == "show(1)"
