"""Differential suite for the compile layers (repro.compile).

Two flag-gated optimizations are under test — stage fusion and
multi-query prefix sharing — and the contract for both is the same:
*byte-identical* answers to the interpreted, unshared pipelines, over
every paper query, in every flag combination, with and without the
protocol sanitizer, under sharding, and over update-bearing streams.
Where sharing engages, the total transformer-call count must *drop*
(the shared prefix evaluates once instead of once per member); where a
fault strikes, quarantine must detach exactly the right queries.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET, Workloads
from repro.compile import describe_sharing, fusion_partition
from repro.data.stock import StockTicker
from repro.fault import arm_stage_fault
from repro.parallel import ShardedMultiQueryRun
from repro.xquery.engine import MultiQueryRun, QueryRun, XFlux

SCALE = 0.02

# Under an ambient sanitizer the compile layers disengage by design
# (BoundaryChecker interposition observes stage boundaries): the byte-
# identity halves of these tests still run, but assertions that the
# layers *engaged* cannot hold and are gated or skipped.
SANITIZED = os.environ.get("REPRO_SANITIZE") == "1"

FLAG_MATRIX = [(False, False), (True, False), (False, True), (True, True)]
FLAG_IDS = ["plain", "fuse", "share", "both"]


@pytest.fixture(scope="module")
def workloads():
    return Workloads(xmark_scale=SCALE, dblp_scale=SCALE)


@pytest.fixture(scope="module")
def reference(workloads):
    return {name: XFlux(query).run_xml(
                workloads.text(QUERY_DATASET[name])).text()
            for name, query in PAPER_QUERIES.items()}


def _dataset_queries(dataset):
    return [(n, PAPER_QUERIES[n]) for n in PAPER_QUERIES
            if QUERY_DATASET[n] == dataset]


def _run_matrix(workloads, dataset, fuse, share, **kwargs):
    named = _dataset_queries(dataset)
    mq = MultiQueryRun([q for _, q in named], fuse=fuse,
                       share_prefixes=share, **kwargs)
    mq.run_xml(workloads.text(dataset))
    return named, mq


class TestSingleQueryFusion:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_fused_is_byte_and_call_identical(self, workloads, reference,
                                              name):
        query = PAPER_QUERIES[name]
        text = workloads.text(QUERY_DATASET[name])
        plain = XFlux(query).run_xml(text)
        fused = XFlux(query).run_xml(text, fuse=True)
        assert fused.text() == reference[name]
        # Fusion eliminates dispatch, never work: the per-stage
        # transformer accounting is unchanged.
        assert fused.stats()["transformer_calls"] == \
            plain.stats()["transformer_calls"]
        if not SANITIZED:
            assert fused.pipeline.fused

    def test_partition_covers_every_stage(self):
        for name, query in PAPER_QUERIES.items():
            plan = XFlux(query).compile()
            fusion = fusion_partition(plan)
            covered = sum(spec.end - spec.start
                          for spec in fusion.segments)
            assert covered == len(plan.stages), name

    def test_sanitize_still_byte_identical(self, workloads, reference,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        for name in ("Q2", "Q7", "Q9"):
            query = PAPER_QUERIES[name]
            text = workloads.text(QUERY_DATASET[name])
            run = XFlux(query).run_xml(text, fuse=True)
            assert run.text() == reference[name]


@pytest.mark.skipif(SANITIZED, reason="deopt requires engaged fusion")
class TestDeopt:
    def test_mid_batch_deopt_stays_byte_identical(self):
        """An update arriving at a dormant-flavor level deopts the
        generated batch frame mid-stream; the rest of the batch must
        run against the regenerated code and land on the interpreted
        bytes (the resume hand-off in ``FusedSegment``)."""
        query = 'S//quote[name="IBM"]/price'
        events = StockTicker(n_updates=120, mutable_names=True,
                             name_update_fraction=0.3, seed=3).events()
        expected = XFlux(query).run(events).text()
        fused = XFlux(query).start(fuse=True)
        fused.feed_all(events)
        fused.finish()
        assert fused.text() == expected
        info = fused.pipeline.fusion_info()
        assert info["deopts"] >= 1
        # The deopted level was demoted to active flavor for good.
        assert not any(any(s["dormant"]) for s in info["segments"])


class TestMultiQueryMatrix:
    @pytest.mark.parametrize("dataset", ["X", "D"])
    @pytest.mark.parametrize("fuse,share", FLAG_MATRIX, ids=FLAG_IDS)
    def test_byte_identical(self, workloads, reference, dataset, fuse,
                            share):
        named, mq = _run_matrix(workloads, dataset, fuse, share)
        for (name, _), text in zip(named, mq.texts()):
            assert text == reference[name], name

    @pytest.mark.skipif(SANITIZED, reason="sharing disengages")
    @pytest.mark.parametrize("dataset", ["X", "D"])
    def test_sharing_reduces_transformer_calls(self, workloads, dataset):
        _, plain = _run_matrix(workloads, dataset, False, False)
        _, shared = _run_matrix(workloads, dataset, False, True)
        assert shared.groups, "expected a shared group on {}".format(
            dataset)
        # The aggregate includes the shared prefix's own calls; the
        # deduplicated leading steps must still win overall.
        assert shared.stats()["transformer_calls"] < \
            plain.stats()["transformer_calls"]

    @pytest.mark.skipif(SANITIZED, reason="sharing disengages")
    def test_expected_groups_form(self, workloads):
        _, mq = _run_matrix(workloads, "X", False, True)
        [group] = mq.groups
        slots = sorted(s for s in group.member_indices)
        names = [_dataset_queries("X")[s][0] for s in slots]
        assert names == ["Q2", "Q4", "Q5", "Q6", "Q7"]
        _, mq = _run_matrix(workloads, "D", False, True)
        [group] = mq.groups
        assert len(group.member_indices) == 2    # Q8 and Q9

    @pytest.mark.parametrize("fuse,share", FLAG_MATRIX, ids=FLAG_IDS)
    def test_sanitize_env_still_byte_identical(self, workloads,
                                               reference, monkeypatch,
                                               fuse, share):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        named, mq = _run_matrix(workloads, "X", fuse, share)
        # Sharing is defined over un-observed stage boundaries; under
        # the sanitizer it must disengage rather than misbehave.
        assert not mq.groups
        for (name, _), text in zip(named, mq.texts()):
            assert text == reference[name], name

    @pytest.mark.parametrize("fuse,share", FLAG_MATRIX, ids=FLAG_IDS)
    def test_projection_stacks(self, workloads, reference, fuse, share):
        named, mq = _run_matrix(workloads, "X", fuse, share,
                                projection=True, schema="xmark")
        for (name, _), text in zip(named, mq.texts()):
            assert text == reference[name], name


class TestSharded:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_fused_shared_shards_byte_identical(self, workloads,
                                                reference, workers):
        named = _dataset_queries("X")
        smq = ShardedMultiQueryRun([q for _, q in named],
                                   workers=workers, fuse=True,
                                   share_prefixes=True)
        smq.run_xml(workloads.text("X"))
        for (name, _), text in zip(named, smq.texts()):
            assert text == reference[name], name


class TestUpdateStreams:
    QUERIES = ['S//quote[name="IBM"]/price',
               'S//quote[name="IBM"]/name',
               'count(S//quote[name="IBM"])',
               'S//quote/price']

    @pytest.fixture(scope="class")
    def events(self):
        return StockTicker(n_updates=300, mutable_names=True,
                           name_update_fraction=0.3, seed=7).events()

    @pytest.fixture(scope="class")
    def ticker_reference(self, events):
        return [XFlux(q, mutable_source=True).run(events).text()
                for q in self.QUERIES]

    @pytest.mark.parametrize("fuse,share", FLAG_MATRIX, ids=FLAG_IDS)
    def test_matrix_byte_identical(self, events, ticker_reference, fuse,
                                   share):
        mq = MultiQueryRun(self.QUERIES, mutable_source=True, fuse=fuse,
                           share_prefixes=share)
        mq.run(events)
        if share and not SANITIZED:
            assert mq.groups     # the //quote chain is shared
        assert mq.texts() == ticker_reference


@pytest.mark.skipif(SANITIZED,
                    reason="quarantine scope is defined over an "
                           "engaged shared group")
class TestQuarantineIsolation:
    def _fused_shared(self, workloads):
        named = _dataset_queries("X")
        mq = MultiQueryRun([q for _, q in named], fuse=True,
                           share_prefixes=True)
        assert mq.groups
        return named, mq

    def test_member_fault_detaches_only_that_query(self, workloads,
                                                   reference):
        named, mq = self._fused_shared(workloads)
        [group] = mq.groups
        victim_slot, victim_run = group.members[0]
        arm_stage_fault(victim_run, stage=0, at=5, query=victim_slot)
        mq.run_xml(workloads.text("X"))
        statuses = mq.statuses()
        assert statuses[victim_slot] == "quarantined"
        for slot, ((name, _), text) in enumerate(zip(named, mq.texts())):
            if slot == victim_slot:
                assert text is None
            else:
                assert statuses[slot] == "ok"
                assert text == reference[name], name
        assert victim_slot not in group.live

    def test_prefix_fault_detaches_exactly_the_members(self, workloads,
                                                       reference):
        named, mq = self._fused_shared(workloads)
        [group] = mq.groups

        def explode(events):
            raise RuntimeError("injected prefix fault")
        group.pipeline.feed_batch = explode

        mq.run_xml(workloads.text("X"))
        statuses = mq.statuses()
        members = set(group.member_indices)
        for slot, ((name, _), text) in enumerate(zip(named, mq.texts())):
            if slot in members:
                assert statuses[slot] == "quarantined"
                assert text is None
            else:
                assert statuses[slot] == "ok"
                assert text == reference[name], name
        assert group.dead


class TestDescribeSharing:
    def test_paper_query_trie(self):
        report = describe_sharing(list(PAPER_QUERIES.items()))
        assert report["queries"] == len(PAPER_QUERIES)
        shared = {p["prefix"]: set(p["queries"])
                  for p in report["prefixes"] if p["shared"]}
        assert {"Q2", "Q4", "Q5", "Q6", "Q7"} <= \
            set().union(*shared.values())
        assert any(set(q) == {"Q8", "Q9"} for q in shared.values())


# -- property: a forced common prefix never changes answers ----------------

_SUFFIX_TAGS = ["quantity", "location", "payment", "description",
                "name", "nonexistent"]
_reference_cache = {}


def _cached_reference(query, text):
    if query not in _reference_cache:
        _reference_cache[query] = XFlux(query).run_xml(text).text()
    return _reference_cache[query]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(suffixes=st.tuples(
    st.lists(st.sampled_from(_SUFFIX_TAGS), min_size=1, max_size=2),
    st.lists(st.sampled_from(_SUFFIX_TAGS), min_size=1, max_size=2)),
    predicate=st.booleans())
def test_forced_common_prefix_is_transparent(workloads, suffixes,
                                             predicate):
    base = ('X//item[location="Albania"]' if predicate else "X//item")
    queries = [base + "/" + "/".join(suffix) for suffix in suffixes]
    text = workloads.text("X")
    expected = [_cached_reference(q, text) for q in queries]
    mq = MultiQueryRun(queries, share_prefixes=True)
    mq.run_xml(text)
    assert mq.texts() == expected
    if queries[0] != queries[1] and not SANITIZED:
        # Distinct suffixes over one forced prefix must actually share.
        assert mq.groups
