"""Integration: the paper's nine benchmark queries on generated datasets.

These are the queries of Section VII, verbatim, run over the synthetic
XMark/DBLP substitutes at small scale and checked against the naive
oracle — plus against the SPEX baseline where the paper runs it.
"""

import pytest

from repro import XFlux, parse_xml, tokenize
from repro.baselines.dom_eval import evaluate_to_xml
from repro.baselines.spex import run_spex
from repro.bench.harness import (PAPER_QUERIES, QUERY_DATASET,
                                 SPEX_QUERIES)
from repro.data import DBLPGenerator, XMarkGenerator
from repro.xquery.parser import parse as parse_query


@pytest.fixture(scope="module")
def xmark_text():
    return XMarkGenerator(scale=0.03, seed=13,
                          albania_fraction=0.2).text()


@pytest.fixture(scope="module")
def dblp_text():
    return DBLPGenerator(scale=0.02, seed=13, smith_fraction=0.15).text()


def doc_for(name, xmark_text, dblp_text):
    return dblp_text if QUERY_DATASET[name] == "D" else xmark_text


@pytest.mark.parametrize("name", list(PAPER_QUERIES))
def test_query_matches_naive(name, xmark_text, dblp_text):
    text = doc_for(name, xmark_text, dblp_text)
    query = PAPER_QUERIES[name]
    expected = evaluate_to_xml(parse_query(query), parse_xml(text))
    actual = XFlux(query).run_xml(text).text()
    assert actual == expected, name


@pytest.mark.parametrize("name", SPEX_QUERIES)
def test_spex_agrees(name, xmark_text, dblp_text):
    text = doc_for(name, xmark_text, dblp_text)
    query = PAPER_QUERIES[name]
    flux = XFlux(query).run_xml(text).text()
    spex = run_spex(query, tokenize(text)).text()
    assert flux == spex, name


def test_q7_produces_nonempty_result(xmark_text):
    out = XFlux(PAPER_QUERIES["Q7"]).run_xml(xmark_text).text()
    assert out.startswith("<result>") and out.endswith("</result>")
    assert "<item>" in out


def test_q9_is_sorted_by_year(dblp_text):
    out = XFlux(PAPER_QUERIES["Q9"]).run_xml(dblp_text).text()
    years = [int(line.split(":")[0]) for line in out.splitlines() if line]
    assert years == sorted(years)
    assert years  # the Smith fraction guarantees hits


def test_counts_are_numeric(xmark_text):
    for name in ("Q4", "Q5", "Q6"):
        out = XFlux(PAPER_QUERIES[name]).run_xml(xmark_text).text()
        assert out.isdigit(), (name, out)


def test_memory_bounded_in_stream_length():
    """Section V's point: retained state does not grow with the input."""
    small = XMarkGenerator(scale=0.02, seed=13).text()
    large = XMarkGenerator(scale=0.10, seed=13).text()
    cells_small = XFlux(PAPER_QUERIES["Q1"]).run_xml(
        small).stats()["state_cells"]
    cells_large = XFlux(PAPER_QUERIES["Q1"]).run_xml(
        large).stats()["state_cells"]
    assert len(large) > 4 * len(small)
    assert cells_large <= cells_small * 2
