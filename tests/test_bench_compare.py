"""The bench-regression gate (benchmarks/compare.py): warn-only by
default, a hard failure under ``--strict`` — so PR runs on noisy
runners stay green while the nightly job catches sustained drift."""

import importlib.util
import json
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", os.path.join(_ROOT, "benchmarks", "compare.py"))
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _payload(rates, scale=0.1):
    return {
        "meta": {"git_commit": "abc1234", "git_dirty": False,
                 "xmark_scale": scale},
        "queries": [{"query": q, "events_per_s": r}
                    for q, r in rates.items()],
    }


class TestCompare:
    def test_equal_rates_pass(self):
        report = bench_compare.compare(
            _payload({"Q1": 100.0, "Q2": 50.0}),
            _payload({"Q1": 100.0, "Q2": 50.0}), threshold=1.30)
        assert report["geomean_slowdown"] == 1.0
        assert report["regression"] is False

    def test_uniform_2x_slowdown_is_a_regression(self):
        report = bench_compare.compare(
            _payload({"Q1": 100.0, "Q2": 50.0}),
            _payload({"Q1": 50.0, "Q2": 25.0}), threshold=1.30)
        assert report["geomean_slowdown"] == pytest.approx(2.0)
        assert report["regression"] is True

    def test_single_outlier_diluted_by_geomean(self):
        # One 1.5x-slower query among three steady ones keeps the
        # geomean under a 1.30 threshold — the gate scores the whole
        # workload, not the noisiest query.
        report = bench_compare.compare(
            _payload({"Q1": 100.0, "Q2": 100.0, "Q3": 100.0,
                      "Q4": 100.0}),
            _payload({"Q1": 100.0, "Q2": 100.0, "Q3": 100.0,
                      "Q4": 66.7}), threshold=1.30)
        assert report["slowdown_per_query"]["Q4"] > 1.30
        assert report["geomean_slowdown"] < 1.30
        assert report["regression"] is False

    def test_disjoint_queries_reported_not_scored(self):
        report = bench_compare.compare(
            _payload({"Q1": 100.0, "Q9": 10.0}),
            _payload({"Q1": 100.0, "Q5": 10.0}), threshold=1.30)
        assert report["missing_in_fresh"] == ["Q9"]
        assert report["missing_in_baseline"] == ["Q5"]
        assert list(report["slowdown_per_query"]) == ["Q1"]

    def test_scale_mismatch_flagged(self):
        report = bench_compare.compare(
            _payload({"Q1": 100.0}, scale=0.1),
            _payload({"Q1": 100.0}, scale=0.05), threshold=1.30)
        assert report["scale_mismatch"] is True


class TestMainExitCodes:
    def _run(self, tmp_path, monkeypatch, baseline, fresh, argv):
        path = tmp_path / "BENCH_queries.json"
        path.write_text(json.dumps(baseline))
        import repro.bench.harness
        import repro.bench.record
        monkeypatch.setattr(repro.bench.harness, "Workloads",
                            lambda **kw: None)
        monkeypatch.setattr(repro.bench.record, "bench_queries",
                            lambda workloads, repeats, queries: fresh)
        return bench_compare.main(["--baseline", str(path)] + argv)

    def test_regression_is_warn_only_by_default(self, tmp_path,
                                                monkeypatch, capsys):
        rc = self._run(tmp_path, monkeypatch,
                       _payload({"Q1": 100.0}), _payload({"Q1": 10.0}),
                       [])
        captured = capsys.readouterr()
        assert rc == 0
        assert "REGRESSION" in captured.err
        assert "warn-only" in captured.err

    def test_regression_fails_under_strict(self, tmp_path, monkeypatch,
                                           capsys):
        rc = self._run(tmp_path, monkeypatch,
                       _payload({"Q1": 100.0}), _payload({"Q1": 10.0}),
                       ["--strict"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.err
        assert "warn-only" not in captured.err

    def test_clean_run_passes_both_modes(self, tmp_path, monkeypatch,
                                         capsys):
        for argv in ([], ["--strict"]):
            rc = self._run(tmp_path, monkeypatch,
                           _payload({"Q1": 100.0}),
                           _payload({"Q1": 99.0}), argv)
            assert rc == 0
            assert "ok: within threshold" in capsys.readouterr().out

    def test_missing_baseline_is_an_error(self, tmp_path, capsys):
        rc = bench_compare.main(
            ["--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().err
