"""Crash-point exhaustiveness: SIGKILL the engine mid-run, recover
from the write-ahead log, and require byte-identity with a run that
never crashed.

Children fork, lead their own process group, and kill themselves from
inside ``WriteAheadLog.log_frame`` (``crash_after_frames``) — the frame
is durable, the dispatch never happens, exactly the torn moment the
write-ahead invariant is designed for.  The parent reaps the group
(sharded children leave worker orphans behind otherwise), recovers with
the original input re-supplied, and diffs.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import PAPER_QUERIES, QUERY_DATASET
from repro.bench.memory import STOCK_QUERY
from repro.data import DBLPGenerator, XMarkGenerator
from repro.data.stock import StockTicker
from repro.fault.inject import FaultPlan
from repro.fault.recover import recover
from repro.fault.wal import R_CKPT, iter_wal_records, scan_wal
from repro.xquery.engine import MultiQueryRun

_CTX = multiprocessing.get_context("fork")
BATCH = 64
CKPT_EVERY = 3


# ---------------------------------------------------------------- children

def _crash_multiquery(wal_dir, queries, text, crash_after,
                      mutable=False, fault=None):
    os.setpgrp()
    plan = FaultPlan.parse(fault) if fault else None
    mq = MultiQueryRun(queries, mutable_source=mutable, fault_plan=plan)
    mq.run_xml(text, durable=wal_dir, batch_events=BATCH,
               checkpoint_every=CKPT_EVERY, checkpoint_cost_factor=0.0,
               crash_after_frames=crash_after)


def _crash_ticker(wal_dir, crash_after):
    os.setpgrp()
    events = StockTicker(n_updates=400).events()
    mq = MultiQueryRun([STOCK_QUERY], mutable_source=True)
    mq.run_durable(events, wal_dir, batch_events=BATCH,
                   checkpoint_every=CKPT_EVERY,
                   checkpoint_cost_factor=0.0,
                   crash_after_frames=crash_after)


def _crash_sharded(wal_dir, queries, text, crash_after):
    os.setpgrp()
    from repro.parallel import ShardedMultiQueryRun
    smq = ShardedMultiQueryRun(
        queries, workers=3, batch_events=BATCH,
        checkpoint_interval=CKPT_EVERY, durable_dir=wal_dir,
        durable_opts={"crash_after_frames": crash_after})
    smq.run_xml(text)


def _crash(target, *args):
    """Fork, wait for the self-SIGKILL, reap the whole process group."""
    proc = _CTX.Process(target=target, args=args)
    proc.start()
    proc.join(180)
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):
        pass
    assert proc.exitcode == -signal.SIGKILL, \
        "child survived its crash point (exit {})".format(proc.exitcode)


# ---------------------------------------------------------------- fixtures

@pytest.fixture(scope="module")
def xmark_text():
    return XMarkGenerator(scale=0.02, seed=7,
                          albania_fraction=0.25).text()


@pytest.fixture(scope="module")
def dblp_text():
    return DBLPGenerator(scale=0.02, seed=7, smith_fraction=0.15).text()


def _clean(queries, text, mutable=False):
    mq = MultiQueryRun(queries, mutable_source=mutable)
    mq.run_xml(text)
    return mq.texts(), mq.statuses()


@pytest.fixture(scope="module")
def q3_profile(xmark_text, tmp_path_factory):
    """One uninterrupted durable Q3 run: reference texts plus the exact
    frame/checkpoint layout every crash point is chosen from."""
    wal_dir = str(tmp_path_factory.mktemp("q3-ref") / "wal")
    queries = [PAPER_QUERIES["Q3"]]
    mq = MultiQueryRun(queries)
    mq.run_xml(xmark_text, durable=wal_dir, batch_events=BATCH,
               checkpoint_every=CKPT_EVERY, checkpoint_cost_factor=0.0)
    state = scan_wal(wal_dir)
    ckpt_seqs = sorted({r.seq for r in iter_wal_records(wal_dir)
                        if r.rtype == R_CKPT})
    return {
        "queries": queries,
        "texts": mq.texts(),
        "statuses": mq.statuses(),
        "total_frames": state.last_frame,
        "ckpt_seqs": ckpt_seqs,
    }


def _boundary_crash_points(profile):
    """Every checkpoint boundary: the frame whose logging precedes the
    checkpoint, and the first frame after it — plus the stream's first
    and last frames."""
    total = profile["total_frames"]
    points = {1, total}
    for seq in profile["ckpt_seqs"]:
        if seq >= 1:
            points.add(seq)
        if seq + 1 <= total:
            points.add(seq + 1)
    return sorted(points)


# ------------------------------------------------------------------- tests

def test_q3_profile_has_multiple_checkpoints(q3_profile):
    # The exhaustive sweep below is only meaningful if the run actually
    # interleaves several checkpoint envelopes with the frames.
    assert q3_profile["total_frames"] >= 10
    assert len([s for s in q3_profile["ckpt_seqs"] if s > 0]) >= 3


def test_sigkill_at_every_checkpoint_boundary(q3_profile, xmark_text,
                                              tmp_path):
    points = _boundary_crash_points(q3_profile)
    for crash_after in points:
        wal_dir = str(tmp_path / "wal-{}".format(crash_after))
        _crash(_crash_multiquery, wal_dir, q3_profile["queries"],
               xmark_text, crash_after)
        result = recover(wal_dir, text=xmark_text)
        assert result.complete
        assert result.texts == q3_profile["texts"], \
            "crash at frame {} changed Q3's answer".format(crash_after)
        assert result.statuses == q3_profile["statuses"]
        # The restored checkpoint never post-dates the crash point.
        floor = result.checkpoint_seqs.get(None, 0)
        assert 0 <= floor <= crash_after
        assert result.bundle is not None


def test_ticker_update_stream_recovers(tmp_path):
    events = StockTicker(n_updates=400).events()
    clean = MultiQueryRun([STOCK_QUERY], mutable_source=True)
    clean.feed_all(events)
    clean.finish()
    total_frames = -(-len(events) // BATCH)
    for crash_after in (2, total_frames // 2, total_frames - 1):
        wal_dir = str(tmp_path / "wal-{}".format(crash_after))
        _crash(_crash_ticker, wal_dir, crash_after)
        result = recover(wal_dir, events=events)
        assert result.complete
        assert result.texts == clean.texts(), \
            "crash at frame {} changed the ticker answer".format(
                crash_after)


@pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
def test_each_paper_query_survives_one_crash(name, xmark_text,
                                             dblp_text, tmp_path):
    text = dblp_text if QUERY_DATASET[name] == "D" else xmark_text
    queries = [PAPER_QUERIES[name]]
    clean_texts, clean_statuses = _clean(queries, text)
    wal_dir = str(tmp_path / "wal")
    _crash(_crash_multiquery, wal_dir, queries, text, 5)
    result = recover(wal_dir, text=text)
    assert result.texts == clean_texts, name
    assert result.statuses == clean_statuses, name


def test_sharded_run_recovers_from_parent_wal(xmark_text, tmp_path):
    names = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"]
    queries = [PAPER_QUERIES[n] for n in names]
    clean_texts, clean_statuses = _clean(queries, xmark_text)
    wal_dir = str(tmp_path / "wal")
    _crash(_crash_sharded, wal_dir, queries, xmark_text, 6)
    result = recover(wal_dir, text=xmark_text)
    assert result.kind == "sharded"
    assert result.texts == clean_texts
    assert result.statuses == clean_statuses


def test_quarantine_in_checkpoint_survives_recovery(xmark_text,
                                                    tmp_path):
    # The fault fires at event 25 — inside the first frame, so every
    # checkpoint after it carries the quarantined state.  Restoring the
    # checkpoint alone must keep the poison pinned, original report and
    # all.
    queries = [PAPER_QUERIES["Q1"], PAPER_QUERIES["Q3"]]
    wal_dir = str(tmp_path / "wal")
    _crash(_crash_multiquery, wal_dir, queries, xmark_text, 8,
           False, "raise:query=0,stage=0,at=25")
    result = recover(wal_dir, text=xmark_text)
    assert result.statuses[0] == "quarantined"
    assert result.texts[0] is None
    assert result.error_reports[0].get("error_type") == "InjectedFault"
    # The healthy co-resident query is unaffected.
    clean_texts, _ = _clean([PAPER_QUERIES["Q3"]], xmark_text)
    assert result.texts[1] == clean_texts[0]


def test_quarantine_in_replayed_suffix_survives_recovery(xmark_text,
                                                         tmp_path):
    # The fault fires at event 400 — past the newest checkpoint the
    # crash leaves behind (frame 6 of 8 at cadence 3), so it lives only
    # in the replayed suffix.  The fault plan is part of the pickled
    # engine state, so deterministic replay re-fires it; either way the
    # poison must stay pinned after recovery.
    queries = [PAPER_QUERIES["Q1"], PAPER_QUERIES["Q3"]]
    wal_dir = str(tmp_path / "wal")
    _crash(_crash_multiquery, wal_dir, queries, xmark_text, 8,
           False, "raise:query=0,stage=0,at=400")
    result = recover(wal_dir, text=xmark_text)
    assert result.statuses[0] == "quarantined"
    assert result.texts[0] is None
    assert result.error_reports[0].get("error_type") == "InjectedFault"
    # The healthy co-resident query is unaffected.
    clean_texts, _ = _clean([PAPER_QUERIES["Q3"]], xmark_text)
    assert result.texts[1] == clean_texts[0]


def test_status_record_wins_when_replay_cannot_reproduce(xmark_text,
                                                         tmp_path):
    # A quarantine caused by something environmental (OOM kill, a
    # one-off I/O error) leaves no trace in the replayable state — only
    # the STATUS record proves it happened.  Simulate one by appending
    # a STATUS record to an otherwise-clean completed log: recovery's
    # replay finds the query healthy, but the log must win.
    import json

    from repro.events import codec
    from repro.fault.wal import R_STATUS, list_segments
    queries = [PAPER_QUERIES["Q1"], PAPER_QUERIES["Q3"]]
    wal_dir = str(tmp_path / "wal")
    mq = MultiQueryRun(queries)
    mq.run_xml(xmark_text, durable=wal_dir, batch_events=BATCH,
               checkpoint_every=CKPT_EVERY, checkpoint_cost_factor=0.0)
    last_frame = scan_wal(wal_dir).last_frame
    note = {"query": 0, "error_type": "EnvironmentalFault",
            "message": "worker killed"}
    body = json.dumps(note, sort_keys=True).encode("utf-8")
    with open(list_segments(wal_dir)[-1], "ab") as fh:
        fh.write(codec.frame_checked(bytes([R_STATUS]) + body,
                                     last_frame))
    result = recover(wal_dir, text=xmark_text)
    assert result.statuses[0] == "quarantined"
    assert result.texts[0] is None
    report = result.error_reports[0]
    assert report.get("recovered_from_log") is True
    assert report.get("error_type") == "EnvironmentalFault"
    assert result.statuses[1] == "ok"


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_random_crash_offsets_never_change_the_answer(
        seed, q3_profile, xmark_text, tmp_path_factory):
    total = q3_profile["total_frames"]
    crash_after = 1 + (seed * 2654435761) % total
    wal_dir = str(tmp_path_factory.mktemp("rand") / "wal")
    _crash(_crash_multiquery, wal_dir, q3_profile["queries"],
           xmark_text, crash_after)
    result = recover(wal_dir, text=xmark_text)
    assert result.texts == q3_profile["texts"]
    assert result.statuses == q3_profile["statuses"]


def test_recovery_without_input_restores_logged_prefix(q3_profile,
                                                       xmark_text,
                                                       tmp_path):
    # No text= re-supplied: recovery restores exactly the logged
    # position and reports the run incomplete rather than guessing.
    wal_dir = str(tmp_path / "wal")
    crash_after = q3_profile["total_frames"] // 2
    _crash(_crash_multiquery, wal_dir, q3_profile["queries"],
           xmark_text, crash_after)
    result = recover(wal_dir)
    assert not result.complete
    assert result.events_resumed == 0
    assert result.frames_replayed + result.checkpoint_seqs.get(None, 0) \
        == crash_after
