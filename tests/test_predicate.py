"""Tests for general predicates and where-clauses (paper Section VI-B)."""

import pytest

from repro.core import Collector, Context, Display, Pipeline
from repro.events import loads
from repro.operators import (ChildStep, CompareLiteral, ContainsLiteral,
                             ExistsFlag, ForTuples, InlinePipeline,
                             Predicate, SCOPE_TUPLE, StringValue)
from repro.xmlio import tokenize


def eq_condition(ctx, tag, literal, op="="):
    c_in, c1, c2, c_out = (ctx.fresh_id() for _ in range(4))
    return InlinePipeline([
        ChildStep(ctx, c_in, c1, tag),
        StringValue(ctx, c1, c2),
        CompareLiteral(ctx, c2, c_out, op, literal),
    ], c_in, c_out)


def run_pred(ctx, src_events, condition, assume_fixed=True, **kwargs):
    out = ctx.fresh_id()
    disp = Display(out)
    pipe = Pipeline(ctx, [Predicate(ctx, 0, out, condition,
                                    assume_fixed=assume_fixed, **kwargs)],
                    disp)
    pipe.run(src_events)
    return disp, pipe


class TestFixedDecisions:
    def test_keeps_matching_items(self, ctx):
        disp, _ = run_pred(
            ctx, loads('sS(0) sE(0,"q") sE(0,"name") cD(0,"A") '
                       'eE(0,"name") eE(0,"q") eS(0)'),
            eq_condition(ctx, "name", "A"))
        assert disp.text() == "<q><name>A</name></q>"

    def test_drops_non_matching_items(self, ctx):
        disp, _ = run_pred(
            ctx, loads('sS(0) sE(0,"q") sE(0,"name") cD(0,"B") '
                       'eE(0,"name") eE(0,"q") eS(0)'),
            eq_condition(ctx, "name", "A"))
        assert disp.text() == ""

    def test_emits_optimistically_then_retracts(self, ctx):
        out = ctx.fresh_id()
        disp = Display(out)
        pipe = Pipeline(ctx, [Predicate(ctx, 0, out,
                                        eq_condition(ctx, "name", "A"),
                                        assume_fixed=True)], disp)
        snapshots = []
        for e in loads('sS(0) sE(0,"q") sE(0,"name") cD(0,"B") '
                       'eE(0,"name") eE(0,"q") eS(0)'):
            pipe.feed(e)
            snapshots.append(disp.text())
        pipe.finish()
        # The item was displayed while open (optimism) and erased at the
        # decision point.
        assert any("<q>" in s for s in snapshots)
        assert disp.text() == ""

    def test_fixed_decisions_freeze(self, ctx):
        col = Collector()
        out = ctx.fresh_id()
        pipe = Pipeline(ctx, [Predicate(ctx, 0, out,
                                        eq_condition(ctx, "name", "A"),
                                        assume_fixed=True)], col)
        pipe.run(loads('sS(0) sE(0,"q") sE(0,"name") cD(0,"A") '
                       'eE(0,"name") eE(0,"q") eS(0)'))
        assert any(e.abbrev == "freeze" for e in col.events)
        assert pipe.wrappers[0].live_regions() == 0

    def test_multiple_condition_hits_still_one_item(self, ctx):
        disp, _ = run_pred(
            ctx, loads('sS(0) sE(0,"q") sE(0,"name") cD(0,"A") '
                       'eE(0,"name") sE(0,"name") cD(0,"A") eE(0,"name") '
                       'eE(0,"q") eS(0)'),
            eq_condition(ctx, "name", "A"))
        assert disp.text().count("<q>") == 1


class TestConditionForms:
    def test_exists(self, ctx):
        c_in, c1, c_out = (ctx.fresh_id() for _ in range(3))
        cond = InlinePipeline([ChildStep(ctx, c_in, c1, "opt"),
                               ExistsFlag(ctx, c1, c_out)], c_in, c_out)
        disp, _ = run_pred(
            ctx, loads('sS(0) sE(0,"a") sE(0,"opt") eE(0,"opt") eE(0,"a") '
                       'sE(0,"b") eE(0,"b") eS(0)'), cond)
        assert disp.text() == "<a><opt></opt></a>"

    def test_contains(self, ctx):
        c_in, c1, c2, c_out = (ctx.fresh_id() for _ in range(4))
        cond = InlinePipeline([ChildStep(ctx, c_in, c1, "t"),
                               StringValue(ctx, c1, c2),
                               ContainsLiteral(ctx, c2, c_out, "mit")],
                              c_in, c_out)
        disp, _ = run_pred(
            ctx, loads('sS(0) sE(0,"a") sE(0,"t") cD(0,"Smith") eE(0,"t") '
                       'eE(0,"a") sE(0,"b") sE(0,"t") cD(0,"Doe") '
                       'eE(0,"t") eE(0,"b") eS(0)'), cond)
        assert disp.text() == '<a><t>Smith</t></a>'

    def test_numeric_comparison(self, ctx):
        cond = eq_condition(ctx, "n", "10", op="<")
        disp, _ = run_pred(
            ctx, loads('sS(0) sE(0,"a") sE(0,"n") cD(0,"9") eE(0,"n") '
                       'eE(0,"a") sE(0,"b") sE(0,"n") cD(0,"11") '
                       'eE(0,"n") eE(0,"b") eS(0)'), cond)
        assert disp.text() == '<a><n>9</n></a>'

    def test_inline_pipeline_rejects_non_inert(self, ctx):
        from repro.operators import CountItems
        with pytest.raises(ValueError):
            InlinePipeline([CountItems(ctx, 1, 2)], 1, 2)


class TestRevocableDecisions:
    STOCK = ('sS(0) '
             'sE(0,"q") sM(0,10) sE(10,"name") cD(10,"IBM") eE(10,"name") '
             'eM(0,10) eE(0,"q") '
             'sE(0,"q") sM(0,20) sE(20,"name") cD(20,"MSFT") '
             'eE(20,"name") eM(0,20) eE(0,"q") '
             '{updates} eS(0)')

    def test_update_flips_predicate_on(self, ctx):
        updates = 'sR(20,31) sE(31,"name") cD(31,"IBM") eE(31,"name") eR(20,31)'
        disp, _ = run_pred(ctx,
                           loads(self.STOCK.format(updates=updates)),
                           eq_condition(ctx, "name", "IBM"),
                           assume_fixed=False)
        assert disp.text().count("<q>") == 2

    def test_update_flips_predicate_off(self, ctx):
        updates = ('sR(10,31) sE(31,"name") cD(31,"AAPL") eE(31,"name") '
                   'eR(10,31)')
        disp, _ = run_pred(ctx,
                           loads(self.STOCK.format(updates=updates)),
                           eq_condition(ctx, "name", "IBM"),
                           assume_fixed=False)
        assert disp.text().count("<q>") == 0

    def test_flip_on_then_off(self, ctx):
        updates = (
            'sR(20,31) sE(31,"name") cD(31,"IBM") eE(31,"name") eR(20,31) '
            'sR(31,32) sE(32,"name") cD(32,"AAPL") eE(32,"name") eR(31,32)')
        disp, _ = run_pred(ctx,
                           loads(self.STOCK.format(updates=updates)),
                           eq_condition(ctx, "name", "IBM"),
                           assume_fixed=False)
        assert disp.text().count("<q>") == 1

    def test_revocable_decisions_do_not_freeze(self, ctx):
        col = Collector()
        out = ctx.fresh_id()
        pipe = Pipeline(ctx, [Predicate(ctx, 0, out,
                                        eq_condition(ctx, "name", "IBM"),
                                        assume_fixed=False)], col)
        pipe.run(loads(self.STOCK.format(updates="")))
        # Mutable-name quotes stay revocable: no freeze of item regions.
        hidden = [e for e in col.events if e.abbrev == "hide"]
        assert hidden  # MSFT hidden
        frozen = {e.id for e in col.events if e.abbrev == "freeze"}
        assert not any(h.id in frozen for h in hidden)


class TestTupleScope:
    def test_where_clause_filters_tuples(self, ctx):
        out = ctx.fresh_id()
        t = ctx.fresh_id()
        disp = Display(out)
        Pipeline(ctx, [
            ChildStep(ctx, 0, 5, "item"),
            ForTuples(ctx, 5, t),
            Predicate(ctx, t, out, eq_condition(ctx, "k", "yes"),
                      scope=SCOPE_TUPLE, assume_fixed=True),
        ], disp).run(tokenize(
            "<r><item><k>yes</k><v>1</v></item>"
            "<item><k>no</k><v>2</v></item>"
            "<item><k>yes</k><v>3</v></item></r>"))
        assert disp.text() == ("<item><k>yes</k><v>1</v></item>"
                               "<item><k>yes</k><v>3</v></item>")

    def test_tuple_markers_survive_on_output(self, ctx):
        col = Collector()
        out, t = ctx.fresh_id(), ctx.fresh_id()
        Pipeline(ctx, [
            ChildStep(ctx, 0, 5, "item"),
            ForTuples(ctx, 5, t),
            Predicate(ctx, t, out, eq_condition(ctx, "k", "yes"),
                      scope=SCOPE_TUPLE, assume_fixed=True),
        ], col).run(tokenize("<r><item><k>yes</k></item></r>"))
        assert sum(1 for e in col.events
                   if e.abbrev == "sT" and e.id == out) == 1

    def test_bad_scope_rejected(self, ctx):
        with pytest.raises(ValueError):
            Predicate(ctx, 0, 1, eq_condition(ctx, "x", "y"),
                      scope="bogus")
