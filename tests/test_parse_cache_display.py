"""Regression: the module-level AST cache must not couple engine runs.

``parse_cached`` shares one AST across every :class:`~repro.XFlux`
constructed for the same query text.  Each engine run must still own its
display state: the ``Display.text()`` memo of one run must never serve
(or be invalidated by) events fed to another run compiled from the same
cached AST.
"""

from repro.xquery.engine import XFlux
from repro.xquery.parser import parse_cached

from tests.helpers import naive_result

QUERY = "X//item/quantity"
DOC_A = "<X><item><quantity>1</quantity></item></X>"
DOC_B = ("<X><item><quantity>7</quantity></item>"
         "<item><quantity>8</quantity></item></X>")


def test_same_query_shares_one_ast():
    a, b = XFlux(QUERY), XFlux(QUERY)
    assert a.ast is b.ast
    assert a.ast is parse_cached(QUERY)


def test_cached_ast_runs_stay_independent():
    run_a = XFlux(QUERY).run_xml(DOC_A)
    text_a = run_a.text()           # populates run_a's display memo
    run_b = XFlux(QUERY).run_xml(DOC_B)
    assert run_b.text() == naive_result(QUERY, DOC_B)
    # The earlier run's memoized answer must be untouched by the later
    # run that reused the cached AST.
    assert run_a.text() == text_a == naive_result(QUERY, DOC_A)
    assert run_a.display is not run_b.display


def test_interleaved_continuous_runs_do_not_share_memo():
    from repro import tokenize
    engine_a, engine_b = XFlux(QUERY), XFlux(QUERY)
    run_a, run_b = engine_a.start(), engine_b.start()
    events_a = list(tokenize(DOC_A))
    events_b = list(tokenize(DOC_B))
    # Interleave, polling text() after every event so each display's
    # memo is repeatedly populated while the *other* run advances.
    for i in range(max(len(events_a), len(events_b))):
        if i < len(events_a):
            run_a.feed(events_a[i])
            run_a.text()
        if i < len(events_b):
            run_b.feed(events_b[i])
            run_b.text()
    run_a.finish()
    run_b.finish()
    assert run_a.text() == naive_result(QUERY, DOC_A)
    assert run_b.text() == naive_result(QUERY, DOC_B)


def test_memo_invalidated_within_one_run():
    run = XFlux(QUERY).start()
    from repro import tokenize
    events = list(tokenize(DOC_B))
    seen = []
    for e in events:
        run.feed(e)
        seen.append(run.text())
    run.finish()
    assert run.text() == naive_result(QUERY, DOC_B)
    # The poll sequence must have progressed (memo not stuck on the
    # first answer).
    assert seen[0] != seen[-1] or len(set(seen)) > 1
