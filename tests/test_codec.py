"""Tests for the binary event codec (repro.events.codec).

The codec is the IPC wire format of the sharding layer; correctness is
established differentially against the textual format: any stream the
paper's notation can express must survive a binary round trip unchanged,
including every update kind and arbitrarily hostile text.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import Event, Kind, dumps, loads
from repro.events.codec import (CodecError, decode_batch, decode_event,
                                encode_batch, encode_event, encode_frame,
                                iter_frames, read_frame, write_frame)
from repro.events.model import (cdata, end_element, end_insert_after,
                                end_insert_before, end_mutable, end_replace,
                                end_stream, end_tuple, freeze, hide, show,
                                start_element, start_insert_after,
                                start_insert_before, start_mutable,
                                start_replace, start_stream, start_tuple)

ALL_KINDS_SAMPLE = [
    start_stream(0), end_stream(0), start_tuple(3), end_tuple(3),
    start_element(0, "item"), end_element(0, "item"),
    cdata(0, "Albania"),
    start_mutable(0, 1), end_mutable(0, 1),
    start_replace(1, 2), end_replace(1, 2),
    start_insert_before(1, 3), end_insert_before(1, 3),
    start_insert_after(2, 4), end_insert_after(2, 4),
    freeze(1), hide(2), show(2),
]


def roundtrip(events):
    return decode_batch(encode_batch(events))


class TestRoundTrip:
    def test_every_kind(self):
        got = roundtrip(ALL_KINDS_SAMPLE)
        assert got == ALL_KINDS_SAMPLE
        assert [e.kind for e in got] == [e.kind for e in ALL_KINDS_SAMPLE]

    def test_single_event_api(self):
        for e in ALL_KINDS_SAMPLE:
            buf = encode_event(e)
            back, pos = decode_event(buf)
            assert pos == len(buf)
            assert back == e

    def test_oids_survive(self):
        evs = [start_element(0, "a", oid=7), cdata(0, "x", oid=8),
               end_element(0, "a", oid=7), start_element(0, "b")]
        got = roundtrip(evs)
        assert [e.oid for e in got] == [7, 8, 7, None]

    def test_hostile_text(self):
        texts = ['quote " backslash \\ newline \n end', "", "\t\r\n",
                 "α βγ — π≈3.14159 💡", '""""\\\\\\', "\x00nul",
                 "a" * 70000]
        evs = [cdata(0, t) for t in texts]
        got = roundtrip(evs)
        assert [e.text for e in got] == texts

    def test_hostile_tags(self):
        evs = [start_element(0, t) for t in ("a", "ns:tag", "x-ü")]
        assert roundtrip(evs) == evs

    def test_agrees_with_textual_format(self):
        # Any stream the textual notation expresses must survive binary.
        text = ('sS(0) sE(0,"a") sM(0,1) cD(1,"x \\" y") eM(0,1) '
                'sR(1,2) cD(2,"z") eR(1,2) freeze(2) hide(1) show(1) '
                'eE(0,"a") eS(0)')
        evs = loads(text)
        assert roundtrip(evs) == evs
        assert loads(dumps(roundtrip(evs))) == evs

    def test_negative_ids(self):
        evs = [Event(Kind.CDATA, -5, text="x"), Event(Kind.FREEZE, -1)]
        assert roundtrip(evs) == evs

    def test_empty_batch(self):
        assert roundtrip([]) == []


# One strategy per field shape; events are built by kind so the generated
# field combinations are exactly the legal ones.
_ids = st.integers(min_value=-2**31, max_value=2**31 - 1)
_texts = st.text(max_size=40)
_tags = st.text(min_size=1, max_size=20)
_oids = st.one_of(st.none(), _ids)


def _event_strategy():
    plain = st.sampled_from([Kind.START_STREAM, Kind.END_STREAM,
                             Kind.START_TUPLE, Kind.END_TUPLE])
    control = st.sampled_from([Kind.FREEZE, Kind.HIDE, Kind.SHOW])
    brackets = st.sampled_from([Kind.START_MUTABLE, Kind.END_MUTABLE,
                                Kind.START_REPLACE, Kind.END_REPLACE,
                                Kind.START_INSERT_BEFORE,
                                Kind.END_INSERT_BEFORE,
                                Kind.START_INSERT_AFTER,
                                Kind.END_INSERT_AFTER])
    return st.one_of(
        st.builds(lambda k, i: Event(k, i), plain, _ids),
        st.builds(lambda k, i: Event(k, i), control, _ids),
        st.builds(lambda k, i, s: Event(k, i, sub=s), brackets, _ids, _ids),
        st.builds(lambda i, t, o: Event(Kind.START_ELEMENT, i, tag=t,
                                        oid=o), _ids, _tags, _oids),
        st.builds(lambda i, t, o: Event(Kind.END_ELEMENT, i, tag=t,
                                        oid=o), _ids, _tags, _oids),
        st.builds(lambda i, t, o: Event(Kind.CDATA, i, text=t, oid=o),
                  _ids, _texts, _oids),
    )


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_event_strategy(), max_size=30))
    def test_roundtrip_random_streams(self, evs):
        got = roundtrip(evs)
        assert got == evs
        assert [e.oid for e in got] == [e.oid for e in evs]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_event_strategy(), max_size=20))
    def test_binary_equals_textual_roundtrip(self, evs):
        # The two formats must agree on everything the textual one
        # preserves (the textual format drops oids).
        assert loads(dumps(evs)) == roundtrip(evs)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_event_strategy(), max_size=12), st.data())
    def test_truncation_always_detected(self, evs, data):
        payload = encode_batch(evs)
        if len(payload) <= 4:
            return
        cut = data.draw(st.integers(min_value=4, max_value=len(payload) - 1))
        with pytest.raises(CodecError):
            decode_batch(payload[:cut])


class TestErrors:
    def test_truncated_batch_header(self):
        with pytest.raises(CodecError):
            decode_batch(b"\x01")

    def test_trailing_garbage(self):
        with pytest.raises(CodecError):
            decode_batch(encode_batch([freeze(1)]) + b"\x00")

    def test_unknown_kind_byte(self):
        with pytest.raises(CodecError):
            decode_event(bytes([0x1E, 0, 0, 0, 0]))

    def test_invalid_utf8(self):
        bad = encode_event(cdata(0, "ab"))
        bad = bad[:-2] + b"\xff\xfe"
        with pytest.raises(CodecError):
            decode_event(bad)

    def test_unencodable_event(self):
        with pytest.raises(CodecError):
            encode_event(Event(Kind.START_ELEMENT, 0, tag=None))
        with pytest.raises(CodecError):
            encode_event(Event(Kind.CDATA, 2**40, text="x"))


class TestFrames:
    def test_frame_roundtrip(self):
        buf = io.BytesIO()
        write_frame(buf, encode_batch(ALL_KINDS_SAMPLE))
        write_frame(buf, encode_batch([freeze(1)]))
        buf.seek(0)
        frames = []
        while True:
            p = read_frame(buf)
            if p is None:
                break
            frames.append(decode_batch(p))
        assert frames == [ALL_KINDS_SAMPLE, [freeze(1)]]

    def test_encode_frame_matches_write_frame(self):
        buf = io.BytesIO()
        write_frame(buf, encode_batch(ALL_KINDS_SAMPLE))
        assert buf.getvalue() == encode_frame(ALL_KINDS_SAMPLE)

    def test_empty_frame_is_sentinel(self):
        buf = io.BytesIO()
        write_frame(buf, encode_batch([freeze(1)]))
        write_frame(buf, b"")
        write_frame(buf, encode_batch([hide(2)]))
        buf.seek(0)
        # iter_frames stops at the sentinel, not at EOF.
        assert [decode_batch(p) for p in iter_frames(buf)] == [[freeze(1)]]

    def test_clean_eof_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_truncated_frame_header(self):
        with pytest.raises(CodecError):
            read_frame(io.BytesIO(b"\x10\x00"))

    def test_truncated_frame_payload(self):
        whole = encode_frame(ALL_KINDS_SAMPLE)
        for cut in (5, len(whole) // 2, len(whole) - 1):
            with pytest.raises(CodecError):
                read_frame(io.BytesIO(whole[:cut]))
