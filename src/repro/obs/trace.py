"""Update-provenance tracing: where does an update spend its time?

An update region born at the source (or inside an operator) travels the
pipeline as a bracket: each stage either forwards it, consumes it, or
*translates* it into a fresh output-space region
(:class:`~repro.core.wrapper.UpdateWrapper`'s policies).  The trace log
records one **hop** per observation of a bracket start:

* ``enter``  — the bracket arrived at a stage's wrapper;
* ``translate`` — the stage re-emitted it as a new region number
  (``to_region`` carries the output-space id, forming the provenance
  link old -> new);
* ``emit``  — a bracket start reached the display sink.

Every hop carries the region number, the update kind (``sM``/``sR``/
``sB``/``sA``), the stage index (``-1`` for the sink), a global
monotonically increasing sequence number, and a monotonic wall-clock
timestamp (``time.monotonic_ns``).  Hops of one region are therefore
totally ordered, and chains across translations can be reassembled from
the links — the JSON the ``python -m repro trace`` subcommand prints
groups both views.

Tracing rides on the instrumented drain (it implies metrics recording)
and obeys the same contract: with tracing off there is no per-event
cost, and with it on the output stream is untouched.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..events.model import Kind

#: Stage index used for sink ("emit") hops.
SINK_STAGE = -1

_KIND_ABBREV = {int(Kind.START_MUTABLE): "sM",
                int(Kind.START_REPLACE): "sR",
                int(Kind.START_INSERT_BEFORE): "sB",
                int(Kind.START_INSERT_AFTER): "sA"}


class Hop:
    """One observation of an update bracket at a pipeline station."""

    __slots__ = ("region", "kind", "stage", "action", "to_region",
                 "seq", "t_ns")

    def __init__(self, region: int, kind: int, stage: int, action: str,
                 seq: int, t_ns: int,
                 to_region: Optional[int] = None) -> None:
        self.region = region
        self.kind = kind
        self.stage = stage
        self.action = action
        self.to_region = to_region
        self.seq = seq
        self.t_ns = t_ns

    def to_dict(self) -> dict:
        d = {
            "region": self.region,
            "kind": _KIND_ABBREV.get(self.kind, str(self.kind)),
            "stage": self.stage,
            "action": self.action,
            "seq": self.seq,
            "t_ns": self.t_ns,
        }
        if self.to_region is not None:
            d["to_region"] = self.to_region
        return d

    def __repr__(self) -> str:
        extra = ("" if self.to_region is None
                 else " -> {}".format(self.to_region))
        return "Hop({} {} @stage {}{}, seq {})".format(
            _KIND_ABBREV.get(self.kind, self.kind), self.action,
            self.stage, extra, self.seq)


class TraceLog:
    """Append-only provenance log shared by one pipeline run.

    Hop timestamps are ``time.monotonic_ns`` readings, whose zero point
    is per-process: comparing raw ``t_ns`` values across shard workers
    is meaningless.  Each log therefore records a paired epoch at
    construction — one monotonic reading and one wall-clock reading
    taken back to back (a worker constructs its logs after fork, so
    the epoch is per-worker by construction).  :func:`merge_trace_dicts`
    uses the pair to rebase every log onto the shared wall clock, which
    preserves each log's internal ordering exactly (a constant offset)
    while making cross-process interleavings comparable.
    """

    def __init__(self) -> None:
        self.hops: List[Hop] = []
        self._seq = 0
        self.epoch_mono_ns = time.monotonic_ns()
        self.epoch_wall_ns = time.time_ns()

    def record(self, region: int, kind: int, stage: int, action: str,
               to_region: Optional[int] = None) -> None:
        seq = self._seq
        self._seq = seq + 1
        self.hops.append(Hop(region, kind, stage, action, seq,
                             time.monotonic_ns(), to_region))

    # -- views ------------------------------------------------------------

    def by_region(self) -> Dict[int, List[Hop]]:
        """Hops grouped by region number, each group in seq order."""
        groups: Dict[int, List[Hop]] = {}
        for hop in self.hops:
            groups.setdefault(hop.region, []).append(hop)
        return groups

    def links(self) -> List[dict]:
        """The translation edges: (from_region, to_region, stage)."""
        return [{"from_region": h.region, "to_region": h.to_region,
                 "stage": h.stage, "seq": h.seq}
                for h in self.hops if h.action == "translate"]

    def chains(self) -> List[List[int]]:
        """Region lineages, source-side first, following translations.

        A region translated at several stages (TEE fan-out) heads
        several chains; chains are returned in first-seen order.
        """
        succ: Dict[int, List[int]] = {}
        targets = set()
        for h in self.hops:
            if h.action == "translate" and h.to_region is not None:
                succ.setdefault(h.region, []).append(h.to_region)
                targets.add(h.to_region)
        roots = [r for r in self._first_seen_order() if r not in targets]
        chains: List[List[int]] = []

        def walk(region: int, prefix: List[int]) -> None:
            path = prefix + [region]
            nexts = succ.get(region)
            if not nexts:
                chains.append(path)
                return
            for nxt in nexts:
                if nxt in path:       # defensive: never cycle
                    chains.append(path)
                    continue
                walk(nxt, path)

        for root in roots:
            walk(root, [])
        return chains

    def _first_seen_order(self) -> List[int]:
        seen: Dict[int, None] = {}
        for h in self.hops:
            seen.setdefault(h.region, None)
            if h.to_region is not None:
                seen.setdefault(h.to_region, None)
        return list(seen)

    def to_dict(self) -> dict:
        return {
            "hops": [h.to_dict() for h in self.hops],
            "links": self.links(),
            "chains": self.chains(),
            "regions": len(self.by_region()),
            "epoch_mono_ns": self.epoch_mono_ns,
            "epoch_wall_ns": self.epoch_wall_ns,
        }


def merge_trace_dicts(trace_dicts) -> dict:
    """Merge per-pipeline trace dicts onto one comparable timeline.

    Each input log's hop timestamps are rebased from its private
    monotonic clock to the shared wall clock via the paired epoch the
    log captured at construction: ``t - epoch_mono + epoch_wall``,
    shifted so the earliest epoch is zero.  Rebasing adds a constant
    per log, so within any one log — and therefore within any one
    region, which lives entirely in one pipeline — the hop order is
    unchanged; across logs the interleaving becomes meaningful.

    Hops gain a ``log`` index (region numbers are per-pipeline and may
    collide across logs) and are returned sorted by rebased time.
    """
    dicts = [d for d in trace_dicts if d]
    epochs = [d.get("epoch_wall_ns") for d in dicts]
    known = [e for e in epochs if e is not None]
    base_wall = min(known) if known else 0
    hops: List[dict] = []
    links: List[dict] = []
    regions = 0
    for log_idx, d in enumerate(dicts):
        mono = d.get("epoch_mono_ns")
        wall = d.get("epoch_wall_ns")
        # Legacy dicts without epochs keep raw stamps (offset zero).
        offset = (wall - base_wall - mono
                  if mono is not None and wall is not None else 0)
        for hop in d.get("hops", ()):
            h = dict(hop)
            h["t_ns"] = h.get("t_ns", 0) + offset
            h["log"] = log_idx
            hops.append(h)
        for link in d.get("links", ()):
            ln = dict(link)
            ln["log"] = log_idx
            links.append(ln)
        regions += d.get("regions", 0)
    hops.sort(key=lambda h: (h["t_ns"], h["log"], h.get("seq", 0)))
    return {
        "logs": len(dicts),
        "hops": hops,
        "links": links,
        "regions": regions,
        "epoch_wall_ns": base_wall,
    }
