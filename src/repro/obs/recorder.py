"""Per-stage pipeline metrics: the observable side of Sections IV-V.

The paper's central empirical claim is qualitative about *trajectories*
— blocking operators are unblocked with a small memory footprint, and
``freeze`` reclaims state mid-stream — yet end-of-run aggregates
(total transformer calls, final state cells) cannot show either.  This
module records what happens *while* the stream flows:

* **per-stage event flow** — events in/out, classified as regular data,
  update brackets (sU/eU), and control (freeze/hide/show);
* **wrapper life cycle** — the dormant -> active transition of each
  stage's :class:`~repro.core.wrapper.UpdateWrapper`, freezes observed,
  and the state cells each freeze reclaimed;
* **memory-footprint time series** — live state cells and open region
  counts per stage, sampled every ``sample_interval`` source events
  (plus one final sample at end-of-stream), giving the footprint
  trajectory that ``BENCH_memory.json`` exports.

**Zero overhead when disabled.**  A pipeline without a recorder runs
the exact same batched drain loop as before — the *only* cost is one
``is None`` test per batch when the driver picks the drain variant.
No per-event branch, no null-object method calls on the hot path.  The
:class:`MetricsRecorder` is attached at pipeline construction
(``Pipeline(..., recorder=...)``, ``QueryRun(..., metrics=True)``, the
``--metrics`` flag, or ``REPRO_METRICS=1``); the instrumented drain is
a separate method used only then.

Recorders serialize to plain dicts (:meth:`MetricsRecorder.to_dict`)
so shard workers can ship them over the frame-protocol result pipe;
:func:`merge_metrics` recombines worker dicts into the totals a
single-process run would have produced (counters add, peaks combine,
timelines stay per-pipeline).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from ..events.model import FREEZE, SHOW, SM
from .histogram import DRAIN_BATCH, UPDATE_LATENCY, LogHistogram

_FIRST_UPDATE = int(SM)
_FREEZE = int(FREEZE)
_N_KINDS = int(SHOW) + 1

#: Event-class labels, index-aligned with ``Kind`` values: regular data
#: events, update brackets (sU/eU), control events (freeze/hide/show).
KIND_CLASS = tuple(
    "data" if k < _FIRST_UPDATE else
    ("bracket" if k < _FREEZE else "control")
    for k in range(_N_KINDS))

EVENT_CLASSES = ("data", "bracket", "control")


def metrics_default() -> bool:
    """Opt into metrics recording via the REPRO_METRICS env variable."""
    return os.environ.get("REPRO_METRICS", "") not in ("", "0")


class StageIdentity:
    """Stable identity of one pipeline stage, shared by every observer.

    The telemetry layer, the protocol sanitizer, and the static plan
    analyzer all need to name the same stage the same way; this is the
    one place the naming lives.  ``label`` is the human-facing form
    (``"PredicateFilter[2]"``), ``index`` the machine-facing one.
    """

    __slots__ = ("index", "name", "label", "transformer")

    def __init__(self, index: int, transformer: object) -> None:
        self.index = index
        self.name = type(transformer).__name__
        self.label = "{}[{}]".format(self.name, index)
        self.transformer = repr(transformer)

    def __repr__(self) -> str:
        return "StageIdentity({})".format(self.label)


def stage_identities(stages: Sequence) -> List[StageIdentity]:
    """One :class:`StageIdentity` per transformer, in pipeline order."""
    return [StageIdentity(i, t) for i, t in enumerate(stages)]


class StageMetrics:
    """Counters and the footprint timeline for one pipeline stage."""

    __slots__ = ("identity", "in_counts", "out_counts", "activations",
                 "activated_at", "freezes", "cells_reclaimed", "samples",
                 "peak_cells", "peak_regions", "recorder")

    def __init__(self, identity: StageIdentity,
                 recorder: "MetricsRecorder") -> None:
        self.identity = identity
        self.recorder = recorder
        #: Kind-indexed event counts crossing into / out of this stage.
        self.in_counts = [0] * _N_KINDS
        self.out_counts = [0] * _N_KINDS
        self.activations = 0
        #: Source-event sequence number at the dormant -> active flip.
        self.activated_at: Optional[int] = None
        self.freezes = 0
        self.cells_reclaimed = 0
        #: ``[source_seq, state_cells, live_regions]`` triples.
        self.samples: List[List[int]] = []
        self.peak_cells = 0
        self.peak_regions = 0

    # -- wrapper hooks (called from UpdateWrapper when obs is set) --------

    def on_activated(self) -> None:
        self.activations += 1
        if self.activated_at is None:
            self.activated_at = self.recorder.source_events

    def on_freeze(self, cells_reclaimed: int) -> None:
        self.freezes += 1
        self.cells_reclaimed += cells_reclaimed

    # -- sampling ---------------------------------------------------------

    def sample(self, seq: int, cells: int, regions: int) -> None:
        self.samples.append([seq, cells, regions])
        if cells > self.peak_cells:
            self.peak_cells = cells
        if regions > self.peak_regions:
            self.peak_regions = regions

    # -- serialization ----------------------------------------------------

    def _classed(self, counts: List[int]) -> Dict[str, int]:
        by_class = dict.fromkeys(EVENT_CLASSES, 0)
        for kind, n in enumerate(counts):
            by_class[KIND_CLASS[kind]] += n
        return by_class

    def to_dict(self) -> dict:
        return {
            "index": self.identity.index,
            "label": self.identity.label,
            "events_in": self._classed(self.in_counts),
            "events_out": self._classed(self.out_counts),
            "activations": self.activations,
            "activated_at": self.activated_at,
            "freezes": self.freezes,
            "cells_reclaimed": self.cells_reclaimed,
            "peak_cells": self.peak_cells,
            "peak_regions": self.peak_regions,
            "samples": [list(s) for s in self.samples],
        }


class MetricsRecorder:
    """Collects per-stage metrics for one pipeline run.

    Args:
        sample_interval: source events between footprint samples.  Each
            sample walks every stage's retained state (the same walk
            ``Pipeline.state_cells`` does), so small intervals trade
            run time for timeline resolution.
        trace: also record update-provenance hops (see
            :mod:`repro.obs.trace`).
        flight: keep a bounded ring of recent source events for
            post-mortem bundles (see :mod:`repro.obs.flightrec`).
            ``True`` uses the default capacity; an int sets it.
    """

    enabled = True

    def __init__(self, sample_interval: int = 256,
                 trace: bool = False,
                 flight=False) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1, got {}"
                             .format(sample_interval))
        self.sample_interval = sample_interval
        self.stages: List[StageMetrics] = []
        self.source_events = 0
        self.sink_counts = [0] * _N_KINDS
        #: Stream-projection counters (events pruned, bytes skipped,
        #: mask drops) — a *live* dict reference installed by the owning
        #: executor, so counter mutations show up in to_dict() without a
        #: per-event hook here.  None when no projection is active.
        self.projection: Optional[Dict[str, int]] = None
        #: Latency histograms the instrumented drain feeds.  Executors
        #: may add more (the tokenizer chunk histogram lives at the
        #: executor level, exactly like the projection counters, so
        #: shared-tokenizer latencies are counted once).
        self.histograms: Dict[str, LogHistogram] = {
            DRAIN_BATCH: LogHistogram(),
            UPDATE_LATENCY: LogHistogram(),
        }
        self._wrappers: Sequence = ()
        self.tracing = trace
        if trace:
            from .trace import TraceLog
            self.trace: Optional["TraceLog"] = TraceLog()
        else:
            self.trace = None
        if flight:
            from .flightrec import DEFAULT_CAPACITY, FlightRecorder
            capacity = (DEFAULT_CAPACITY if flight is True
                        else int(flight))
            self.flight: Optional["FlightRecorder"] = \
                FlightRecorder(capacity)
        else:
            self.flight = None

    def attach(self, wrappers: Sequence, stages: Sequence) -> None:
        """Bind to a pipeline's wrappers (called by ``Pipeline``)."""
        identities = stage_identities(stages)
        self.stages = [StageMetrics(ident, self) for ident in identities]
        self._wrappers = tuple(wrappers)
        for wrapper, sm in zip(wrappers, self.stages):
            wrapper.obs = sm

    # -- sampling ---------------------------------------------------------

    def sample_now(self) -> None:
        """Take one footprint sample of every attached stage."""
        seq = self.source_events
        for wrapper, sm in zip(self._wrappers, self.stages):
            cells, regions = wrapper.account()
            sm.sample(seq, cells, regions)

    def count_source(self, n: int = 1) -> bool:
        """Advance the source-event counter; True when a sample is due."""
        before = self.source_events
        self.source_events = before + n
        return (before // self.sample_interval
                != self.source_events // self.sample_interval)

    # -- serialization ----------------------------------------------------

    def sink_dict(self) -> Dict[str, int]:
        by_class = dict.fromkeys(EVENT_CLASSES, 0)
        for kind, n in enumerate(self.sink_counts):
            by_class[KIND_CLASS[kind]] += n
        return by_class

    def to_dict(self) -> dict:
        out = {
            "sample_interval": self.sample_interval,
            "source_events": self.source_events,
            "sink_events": self.sink_dict(),
            "stages": [sm.to_dict() for sm in self.stages],
            "peak_cells_total": sum(sm.peak_cells for sm in self.stages),
            "cells_reclaimed_total": sum(sm.cells_reclaimed
                                         for sm in self.stages),
            "freezes_total": sum(sm.freezes for sm in self.stages),
            "activations_total": sum(sm.activations
                                     for sm in self.stages),
            "histograms": {name: h.to_dict()
                           for name, h in self.histograms.items()},
        }
        if self.projection is not None:
            out["projection"] = dict(self.projection)
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        if self.flight is not None:
            out["flight"] = self.flight.to_dict()
        return out


class _NullRecorder:
    """Disabled-path sentinel: drivers test ``recorder is None`` or this
    flag once per batch and never touch telemetry again."""

    enabled = False
    tracing = False
    flight = None

    def __repr__(self) -> str:
        return "NULL_RECORDER"


NULL_RECORDER = _NullRecorder()


def _sum_classed(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    return {k: a.get(k, 0) + b.get(k, 0) for k in EVENT_CLASSES}


def merge_metrics(dicts: Sequence[dict]) -> dict:
    """Combine recorder dicts from independent pipelines into totals.

    Used by the sharded executor to reassemble per-worker metrics: the
    merged counters equal what a single process running every pipeline
    would report.  Stage lists are concatenated (stages of different
    pipelines are distinct); classed event counts and reclaim counters
    add; ``peak_cells_total`` adds (each pipeline's stages hold their
    peaks concurrently); source-event counts take the maximum, because
    every pipeline saw the same shared input stream.
    """
    merged = {
        "sample_interval": None,
        "source_events": 0,
        "sink_events": dict.fromkeys(EVENT_CLASSES, 0),
        "stages": [],
        "peak_cells_total": 0,
        "cells_reclaimed_total": 0,
        "freezes_total": 0,
        "activations_total": 0,
        "pipelines": 0,
    }
    projection: Dict[str, int] = {}
    histogram_maps: List[Dict[str, dict]] = []
    flights: List[dict] = []
    traces: List[dict] = []
    for d in dicts:
        if d is None:
            continue
        # A worker may ship an already-merged dict; honour its count.
        merged["pipelines"] += d.get("pipelines", 1)
        if merged["sample_interval"] is None:
            merged["sample_interval"] = d.get("sample_interval")
        merged["source_events"] = max(merged["source_events"],
                                      d.get("source_events", 0))
        merged["sink_events"] = _sum_classed(merged["sink_events"],
                                             d.get("sink_events", {}))
        merged["stages"].extend(d.get("stages", ()))
        for key in ("peak_cells_total", "cells_reclaimed_total",
                    "freezes_total", "activations_total"):
            merged[key] += d.get(key, 0)
        for key, value in d.get("projection", {}).items():
            projection[key] = projection.get(key, 0) + value
        if d.get("histograms"):
            histogram_maps.append(d["histograms"])
        if d.get("flight"):
            flights.append(d["flight"])
        if d.get("trace"):
            traces.append(d["trace"])
    if projection:
        merged["projection"] = projection
    if histogram_maps:
        # Bucket-by-bucket: the merged state equals one histogram fed
        # every observation, so sharded totals are exact.
        from .histogram import merge_histogram_dicts
        merged["histograms"] = merge_histogram_dicts(histogram_maps)
    if flights:
        from .flightrec import merge_flight_dicts
        merged["flight"] = merge_flight_dicts(flights)
    if traces:
        from .trace import merge_trace_dicts
        merged["trace"] = merge_trace_dicts(traces)
    return merged
