"""Standard-format exports: Chrome trace-event JSON and OpenMetrics.

PR 4's telemetry stays useful only if it leaves the process in formats
other tools read.  This module renders the two recorder products:

* :func:`trace_to_chrome` — a :class:`~repro.obs.trace.TraceLog` dict
  (or a :func:`~repro.obs.trace.merge_trace_dicts` result) as Chrome
  trace-event / Perfetto JSON: one track (thread) per pipeline stage,
  update-provenance hops as complete events, translations as flow
  arrows between tracks, and region lineage as async spans — load the
  file in ``chrome://tracing`` or https://ui.perfetto.dev.
* :func:`metrics_to_openmetrics` — a
  :class:`~repro.obs.recorder.MetricsRecorder` dict (merged or not) in
  OpenMetrics / Prometheus text exposition format, histograms included
  (cumulative ``le`` buckets on the log2 edges).

The paired validators (:func:`validate_chrome_trace`,
:func:`parse_openmetrics`) are what the obs-smoke CI job and the tests
run against the rendered artifacts, so "externally valid" is checked
by the same code that defines it.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .histogram import bucket_upper

#: Thread id layout inside each pipeline's (pid) track group: the sink
#: renders as thread 1, stage ``i`` as thread ``i + 2``.
_SINK_TID = 1


def _tid(stage: int) -> int:
    return _SINK_TID if stage < 0 else stage + 2


def _hop_name(hop: dict) -> str:
    name = "{} {}".format(hop.get("action", "hop"),
                          hop.get("kind", "?"))
    to_region = hop.get("to_region")
    if to_region is not None:
        return "{} r{}->r{}".format(name, hop.get("region"), to_region)
    return "{} r{}".format(name, hop.get("region"))


def trace_to_chrome(trace: dict,
                    stage_labels: Optional[Dict[int, str]] = None
                    ) -> dict:
    """Render a trace dict as a Chrome trace-event JSON object.

    Accepts both a single :meth:`TraceLog.to_dict` and a merged
    :func:`merge_trace_dicts` result; in the merged form each source
    log becomes its own process (``pid``), so shard-worker pipelines
    sit side by side with per-stage tracks inside each.

    Timestamps: hop ``t_ns`` values divided to microseconds (the trace
    format's unit).  Raw single-log dicts carry monotonic stamps — fine
    within one log; merged dicts are already rebased.
    """
    events: List[dict] = []
    hops = trace.get("hops", ())
    pids = set()
    tids = {}           # (pid, tid) -> label
    for hop in hops:
        pid = hop.get("log", 0)
        stage = hop.get("stage", 0)
        pids.add(pid)
        tid = _tid(stage)
        if (pid, tid) not in tids:
            if stage < 0:
                label = "sink"
            elif stage_labels and stage in stage_labels:
                label = stage_labels[stage]
            else:
                label = "stage {}".format(stage)
            tids[(pid, tid)] = label
    for pid in sorted(pids):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0,
                       "args": {"name": "pipeline {}".format(pid)}})
    for (pid, tid), label in sorted(tids.items()):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": label}})

    # One complete event per hop; region spans and flow arrows ride on
    # the same timestamps.
    region_first: Dict[tuple, dict] = {}
    region_last: Dict[tuple, dict] = {}
    flow_id = 0
    pending_flows: Dict[tuple, List[int]] = {}
    for hop in hops:
        pid = hop.get("log", 0)
        stage = hop.get("stage", 0)
        ts = hop.get("t_ns", 0) / 1000.0
        tid = _tid(stage)
        args = {"region": hop.get("region"),
                "kind": hop.get("kind"),
                "seq": hop.get("seq")}
        if hop.get("to_region") is not None:
            args["to_region"] = hop["to_region"]
        events.append({"name": _hop_name(hop), "ph": "X", "cat": "hop",
                       "ts": ts, "dur": 1, "pid": pid, "tid": tid,
                       "args": args})
        rkey = (pid, hop.get("region"))
        region_first.setdefault(rkey, hop)
        region_last[rkey] = hop
        # A pending flow arrow lands on the target region's next hop.
        for fid in pending_flows.pop(rkey, ()):
            events.append({"name": "translate", "ph": "f", "bp": "e",
                           "cat": "flow", "id": fid, "ts": ts,
                           "pid": pid, "tid": tid})
        if hop.get("action") == "translate" \
                and hop.get("to_region") is not None:
            flow_id += 1
            events.append({"name": "translate", "ph": "s",
                           "cat": "flow", "id": flow_id, "ts": ts,
                           "pid": pid, "tid": tid})
            pending_flows.setdefault(
                (pid, hop["to_region"]), []).append(flow_id)
    # Region lineage as async spans: b at first sighting, e at last.
    for rkey, first in region_first.items():
        pid, region = rkey
        last = region_last[rkey]
        span_id = "r{}.{}".format(pid, region)
        base = {"name": "region {}".format(region), "cat": "region",
                "id": span_id, "pid": pid}
        events.append(dict(base, ph="b",
                           ts=first.get("t_ns", 0) / 1000.0,
                           tid=_tid(first.get("stage", 0))))
        events.append(dict(base, ph="e",
                           ts=last.get("t_ns", 0) / 1000.0,
                           tid=_tid(last.get("stage", 0))))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.export",
            "regions": trace.get("regions"),
            "logs": trace.get("logs", 1),
        },
    }


def validate_chrome_trace(obj: dict) -> int:
    """Check the trace-event required keys; return the event count.

    Every event needs ``name``/``ph``/``pid``/``tid``; every
    non-metadata event needs a numeric ``ts``; complete events need a
    ``dur``; flow and async events need an ``id``.  Raises
    ``ValueError`` on the first violation.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("not a chrome trace: missing traceEvents")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                raise ValueError(
                    "event {} missing {!r}: {!r}".format(i, key, e))
        ph = e["ph"]
        if ph != "M":
            if not isinstance(e.get("ts"), (int, float)):
                raise ValueError(
                    "event {} has no numeric ts: {!r}".format(i, e))
        if ph == "X" and not isinstance(e.get("dur"), (int, float)):
            raise ValueError("complete event {} has no dur".format(i))
        if ph in ("s", "t", "f", "b", "n", "e") and "id" not in e:
            raise ValueError(
                "flow/async event {} has no id".format(i))
    return len(events)


# -- OpenMetrics ----------------------------------------------------------

def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(**kv) -> str:
    inner = ",".join('{}="{}"'.format(k, _escape_label(v))
                     for k, v in kv.items() if v is not None)
    return "{" + inner + "}" if inner else ""


def _histogram_lines(name: str, hist: dict, out: List[str]) -> None:
    out.append("# TYPE {} histogram".format(name))
    buckets = {int(k): v for k, v in hist.get("buckets", {}).items()}
    cumulative = 0
    for idx in sorted(buckets):
        cumulative += buckets[idx]
        le = bucket_upper(idx) / 1e9
        out.append('{}_bucket{{le="{:.10g}"}} {}'.format(
            name, le, cumulative))
    out.append('{}_bucket{{le="+Inf"}} {}'.format(
        name, hist.get("count", 0)))
    out.append("{}_sum {:.10g}".format(name, hist.get("sum", 0) / 1e9))
    out.append("{}_count {}".format(name, hist.get("count", 0)))


def metrics_to_openmetrics(metrics: dict, prefix: str = "repro") -> str:
    """Render a recorder dict in OpenMetrics text exposition format.

    Counters get the mandated ``_total`` suffix; latency histograms are
    exposed in seconds on the exact log2 bucket edges, so scraped
    distributions merge the same way the in-process ones do.
    """
    out: List[str] = []

    def counter(name: str, value, **labels) -> None:
        out.append("{}_{}_total{} {}".format(
            prefix, name, _labels(**labels), value))

    def gauge(name: str, value, **labels) -> None:
        out.append("{}_{}{} {}".format(
            prefix, name, _labels(**labels), value))

    out.append("# TYPE {}_source_events counter".format(prefix))
    counter("source_events", metrics.get("source_events", 0))
    out.append("# TYPE {}_sink_events counter".format(prefix))
    for cls, n in sorted(metrics.get("sink_events", {}).items()):
        counter("sink_events", n, **{"class": cls})
    for total in ("activations", "freezes", "cells_reclaimed"):
        key = "{}_total".format(total)
        out.append("# TYPE {}_{} counter".format(prefix, total))
        counter(total, metrics.get(key, 0))
    out.append("# TYPE {}_peak_cells gauge".format(prefix))
    gauge("peak_cells", metrics.get("peak_cells_total", 0))
    out.append("# TYPE {}_pipelines gauge".format(prefix))
    gauge("pipelines", metrics.get("pipelines", 1))

    stages = metrics.get("stages", ())
    if stages:
        out.append("# TYPE {}_stage_events_in counter".format(prefix))
        for s in stages:
            for cls, n in sorted(s.get("events_in", {}).items()):
                counter("stage_events_in", n, stage=s.get("index"),
                        label=s.get("label"), **{"class": cls})
        out.append("# TYPE {}_stage_events_out counter".format(prefix))
        for s in stages:
            for cls, n in sorted(s.get("events_out", {}).items()):
                counter("stage_events_out", n, stage=s.get("index"),
                        label=s.get("label"), **{"class": cls})
        out.append("# TYPE {}_stage_peak_cells gauge".format(prefix))
        for s in stages:
            gauge("stage_peak_cells", s.get("peak_cells", 0),
                  stage=s.get("index"), label=s.get("label"))

    for key, value in sorted(metrics.get("projection", {}).items()):
        if not out or not out[-1].startswith(
                "# TYPE {}_projection".format(prefix)):
            out.append("# TYPE {}_projection counter".format(prefix))
        counter("projection", value, counter=key)

    for name, hist in sorted(metrics.get("histograms", {}).items()):
        _histogram_lines(
            "{}_{}_latency_seconds".format(prefix, name), hist, out)

    flight = metrics.get("flight")
    if flight:
        out.append("# TYPE {}_flight_events_seen counter".format(prefix))
        counter("flight_events_seen", flight.get("events_seen", 0))

    out.append("# EOF")
    return "\n".join(out) + "\n"


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^{}]*\})?'
    r'\s+(?P<value>[^\s]+)\s*$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_openmetrics(text: str) -> Dict[str, List[dict]]:
    """Strict-enough OpenMetrics parser for validation.

    Checks: every sample line parses as ``name{labels} value`` with a
    float value, every sample's family has a preceding ``# TYPE``
    declaration, histogram ``le`` buckets are cumulative
    (non-decreasing, ``+Inf`` equal to ``_count``), and the exposition
    ends with ``# EOF``.  Returns family name -> list of samples
    (each ``{"name", "labels", "value"}``).  Raises ``ValueError``.
    """
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise ValueError("exposition does not end with # EOF")
    families: Dict[str, str] = {}
    samples: Dict[str, List[dict]] = {}
    for lineno, line in enumerate(lines[:-1], 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                families[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(
                "line {}: unparseable sample {!r}".format(lineno, line))
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ValueError("line {}: non-float value {!r}".format(
                lineno, m.group("value")))
        labels = dict(_LABEL_RE.findall(m.group("labels") or ""))
        family = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise ValueError(
                "line {}: sample {!r} has no # TYPE declaration"
                .format(lineno, name))
        samples.setdefault(family, []).append(
            {"name": name, "labels": labels, "value": value})
    for family, kind in families.items():
        if kind != "histogram":
            continue
        rows = samples.get(family, [])
        buckets = [r for r in rows if r["name"].endswith("_bucket")]
        counts = [r for r in rows if r["name"].endswith("_count")]
        last = -1.0
        inf_count = None
        for r in buckets:
            if r["value"] < last:
                raise ValueError(
                    "histogram {} buckets not cumulative".format(family))
            last = r["value"]
            if r["labels"].get("le") == "+Inf":
                inf_count = r["value"]
        if buckets and inf_count is None:
            raise ValueError(
                "histogram {} has no +Inf bucket".format(family))
        if counts and inf_count is not None \
                and counts[0]["value"] != inf_count:
            raise ValueError(
                "histogram {}: +Inf bucket != _count".format(family))
    return samples


def stage_labels_from_metrics(metrics: Optional[dict]
                              ) -> Dict[int, str]:
    """Stage index -> label map for :func:`trace_to_chrome` tracks."""
    labels: Dict[int, str] = {}
    for s in (metrics or {}).get("stages", ()):
        idx = s.get("index")
        if idx is not None and idx not in labels:
            labels[idx] = s.get("label", "stage {}".format(idx))
    return labels
