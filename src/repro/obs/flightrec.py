"""Flight recorder: a bounded ring of recent events, dumped on failure.

When a pipeline is quarantined or a shard worker dies, the error report
says *what* broke but not what the stream looked like on the way in.
The flight recorder fills that gap: a ``collections.deque(maxlen=N)``
of the most recent source events, kept by reference (one append per
event, no rendering) on the instrumented drain only — the unobserved
hot path never sees it, preserving the zero-overhead-when-disabled
contract of :mod:`repro.obs.recorder`.

On ``ProtocolViolation``, an injected fault, or any other quarantine,
:func:`build_bundle` renders the ring plus the stage identities
(``static_facts()``), the metrics + histogram snapshot, and the fault
plan (seed included) into one JSON-able post-mortem dict.  The shard
supervisor produces the parent-side analogue (:func:`shard_bundle`)
on every worker recovery — restart, inline takeover, or quarantine —
recording exactly how many journal frames the recovery replayed.  The
chaos CLI writes both kinds to its report directory, and CI uploads
them as artifacts.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import List, Optional

#: Default ring capacity: enough context to see the failing construct's
#: whole neighbourhood, small enough to render into every bundle.
DEFAULT_CAPACITY = 256

BUNDLE_KIND = "flight-recorder-bundle"
BUNDLE_VERSION = 1


class FlightRecorder:
    """Bounded ring buffer of the most recent source events."""

    __slots__ = ("capacity", "events_seen", "_ring")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got {}"
                             .format(capacity))
        self.capacity = capacity
        self.events_seen = 0
        self._ring: deque = deque(maxlen=capacity)

    def note(self, event) -> None:
        """Remember one event (by reference — no rendering here)."""
        self.events_seen += 1
        self._ring.append(event)

    def snapshot(self) -> List[str]:
        """Render the retained events oldest-first (repr form)."""
        return [repr(e) for e in self._ring]

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "events_seen": self.events_seen,
            "recorded": len(self._ring),
        }

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return "FlightRecorder({}/{}, {} seen)".format(
            len(self._ring), self.capacity, self.events_seen)


def flight_default() -> bool:
    """Opt into flight recording via the REPRO_FLIGHT env variable."""
    import os
    return os.environ.get("REPRO_FLIGHT", "") not in ("", "0")


def merge_flight_dicts(dicts) -> dict:
    """Combine per-pipeline flight summaries into totals.

    Event *counts* add exactly (each pipeline observed the shared
    stream once); the rendered rings themselves stay per-pipeline in
    the bundles and are not concatenated here.
    """
    merged = {"capacity": 0, "events_seen": 0, "recorded": 0,
              "pipelines": 0}
    for d in dicts:
        if not d:
            continue
        merged["pipelines"] += d.get("pipelines", 1)
        merged["capacity"] = max(merged["capacity"],
                                 d.get("capacity", 0))
        merged["events_seen"] += d.get("events_seen", 0)
        merged["recorded"] += d.get("recorded", 0)
    return merged


def _stage_facts(recorder) -> List[dict]:
    """Stage identities + compile-time facts from an attached recorder."""
    facts = []
    for wrapper, sm in zip(recorder._wrappers, recorder.stages):
        entry = {"index": sm.identity.index,
                 "label": sm.identity.label}
        try:
            entry["static_facts"] = wrapper.t.static_facts()
        except Exception:
            pass
        facts.append(entry)
    return facts


def build_bundle(reason: str, recorder=None, error: Optional[dict] = None,
                 fault_plan=None, **extra) -> dict:
    """Assemble one post-mortem bundle (plain JSON-able dict).

    Args:
        reason: what triggered the dump (``"quarantine"``,
            ``"protocol-violation"``, ...).
        recorder: the failed pipeline's
            :class:`~repro.obs.recorder.MetricsRecorder`, if any —
            contributes the event ring, stage ``static_facts()``
            identities, and the metrics + histogram snapshot.
        error: a :func:`repro.fault.error_report` dict.
        fault_plan: the :class:`~repro.fault.FaultPlan` in force, if
            any — its spec and seed make the failure replayable.
    """
    bundle = {
        "bundle": BUNDLE_KIND,
        "version": BUNDLE_VERSION,
        "reason": reason,
        "created_unix": time.time(),
    }
    if error is not None:
        bundle["error"] = error
    if fault_plan is not None:
        bundle["fault_plan"] = fault_plan.to_spec()
        bundle["fault_seed"] = fault_plan.seed
    if recorder is not None:
        flight = recorder.flight
        if flight is not None:
            bundle["flight"] = flight.to_dict()
            bundle["last_events"] = flight.snapshot()
        bundle["stages"] = _stage_facts(recorder)
        bundle["metrics"] = recorder.to_dict()
        bundle["histograms"] = {
            name: h.summary()
            for name, h in recorder.histograms.items()}
    bundle.update(extra)
    return bundle


def shard_bundle(reason: str, shard: int, report: dict,
                 restarts: int, replayed_frames: int,
                 last_ckpt_seq: int, seq_target: int,
                 quarantined: bool, fault_plan=None) -> dict:
    """The supervisor-side bundle for one worker recovery.

    ``replayed_frames`` is the shard's cumulative replay counter *after*
    this recovery's journal replay — the differential tests hold it
    equal to the ``fault_tolerance`` counters the run reports.
    """
    bundle = build_bundle(reason, error=report, fault_plan=fault_plan,
                          shard=shard, restarts=restarts,
                          replayed_frames=replayed_frames,
                          last_checkpoint_seq=last_ckpt_seq,
                          replay_target_seq=seq_target,
                          quarantined=quarantined)
    return bundle


def write_bundle(bundle: dict, path: str) -> str:
    """Write one bundle as pretty-printed JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path
