"""Pipeline telemetry: per-stage metrics, footprint timelines, tracing.

Opt-in observability over the update-stream pipeline, with a strict
zero-overhead-when-disabled contract (see :mod:`repro.obs.recorder`).

* :class:`MetricsRecorder` — per-stage event-flow counters, wrapper
  life-cycle events, and memory-footprint time series;
* :class:`TraceLog` — update-provenance hops (enter/translate/emit);
* :class:`LogHistogram` — fixed-bucket log2 latency distributions
  (drain batches, update->display deltas, tokenizer chunks);
* :class:`FlightRecorder` — bounded ring of recent events, dumped as
  post-mortem bundles on quarantine / shard failure;
* :func:`stage_identities` — the shared stage naming the sanitizer and
  the static analyzer reuse;
* :func:`merge_metrics` — recombine shard-worker recorder dicts
  (counters add, histogram buckets add, traces rebase onto one clock);
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON and
  OpenMetrics renderers over the recorded state.
"""

from .export import (metrics_to_openmetrics, parse_openmetrics,
                     stage_labels_from_metrics, trace_to_chrome,
                     validate_chrome_trace)
from .flightrec import (DEFAULT_CAPACITY, FlightRecorder, build_bundle,
                        flight_default, merge_flight_dicts, shard_bundle,
                        write_bundle)
from .histogram import (DRAIN_BATCH, TOKENIZER_CHUNK, UPDATE_LATENCY,
                        LogHistogram, merge_histogram_dicts,
                        summarize_histogram_dict)
from .recorder import (EVENT_CLASSES, KIND_CLASS, NULL_RECORDER,
                       MetricsRecorder, StageIdentity, StageMetrics,
                       merge_metrics, metrics_default, stage_identities)
from .trace import SINK_STAGE, Hop, TraceLog, merge_trace_dicts

__all__ = [
    "EVENT_CLASSES",
    "KIND_CLASS",
    "NULL_RECORDER",
    "MetricsRecorder",
    "StageIdentity",
    "StageMetrics",
    "merge_metrics",
    "metrics_default",
    "stage_identities",
    "SINK_STAGE",
    "Hop",
    "TraceLog",
    "merge_trace_dicts",
    "DRAIN_BATCH",
    "TOKENIZER_CHUNK",
    "UPDATE_LATENCY",
    "LogHistogram",
    "merge_histogram_dicts",
    "summarize_histogram_dict",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "build_bundle",
    "flight_default",
    "merge_flight_dicts",
    "shard_bundle",
    "write_bundle",
    "metrics_to_openmetrics",
    "parse_openmetrics",
    "stage_labels_from_metrics",
    "trace_to_chrome",
    "validate_chrome_trace",
]
