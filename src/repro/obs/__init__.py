"""Pipeline telemetry: per-stage metrics, footprint timelines, tracing.

Opt-in observability over the update-stream pipeline, with a strict
zero-overhead-when-disabled contract (see :mod:`repro.obs.recorder`).

* :class:`MetricsRecorder` — per-stage event-flow counters, wrapper
  life-cycle events, and memory-footprint time series;
* :class:`TraceLog` — update-provenance hops (enter/translate/emit);
* :func:`stage_identities` — the shared stage naming the sanitizer and
  the static analyzer reuse;
* :func:`merge_metrics` — recombine shard-worker recorder dicts.
"""

from .recorder import (EVENT_CLASSES, KIND_CLASS, NULL_RECORDER,
                       MetricsRecorder, StageIdentity, StageMetrics,
                       merge_metrics, metrics_default, stage_identities)
from .trace import SINK_STAGE, Hop, TraceLog

__all__ = [
    "EVENT_CLASSES",
    "KIND_CLASS",
    "NULL_RECORDER",
    "MetricsRecorder",
    "StageIdentity",
    "StageMetrics",
    "merge_metrics",
    "metrics_default",
    "stage_identities",
    "SINK_STAGE",
    "Hop",
    "TraceLog",
]
