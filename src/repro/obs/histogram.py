"""Fixed-bucket log2 latency histograms (HDR-style, exact merges.)

Latency distributions are the missing half of the telemetry story: the
counters in :mod:`repro.obs.recorder` say *how much* flowed, these
histograms say *how long* it took — per-batch drain latency, per-update
end-to-end update->display latency, and tokenizer chunk latency.

The bucketing is the classic power-of-two scheme: a nanosecond value
``v`` lands in bucket ``v.bit_length()`` (bucket 0 holds exactly 0, and
bucket ``i`` holds ``[2**(i-1), 2**i - 1]``), so bucket boundaries are
identical in every process forever — no configuration to agree on, no
rebucketing on merge.  That makes the merge *exact*: adding two
histograms bucket-by-bucket gives byte-identical state to having
recorded every observation into one histogram, which is the property
:func:`repro.obs.merge_metrics` relies on to make sharded totals equal
single-process totals.

``count``/``sum``/``min``/``max`` are tracked exactly; quantiles are
resolved to the containing bucket's upper edge (<= 2x relative error by
construction), clamped to the exact observed extremes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

#: Enough buckets for any int64 nanosecond value (2**63 ns ~ 292 years).
N_BUCKETS = 64

#: Histogram names a :class:`~repro.obs.recorder.MetricsRecorder`
#: pre-binds; executors may add more (e.g. ``tokenizer_chunk``).
DRAIN_BATCH = "drain_batch"
UPDATE_LATENCY = "update_latency"
TOKENIZER_CHUNK = "tokenizer_chunk"


def bucket_index(value: int) -> int:
    """The bucket a (non-negative) nanosecond value lands in."""
    if value <= 0:
        return 0
    idx = value.bit_length()
    return idx if idx < N_BUCKETS else N_BUCKETS - 1


def bucket_upper(index: int) -> int:
    """Inclusive upper edge of a bucket, in the recorded unit (ns)."""
    return 0 if index == 0 else (1 << index) - 1


class LogHistogram:
    """One latency distribution with exact, order-independent merging."""

    __slots__ = ("counts", "count", "total", "min_value", "max_value")

    def __init__(self) -> None:
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None

    def record(self, value: int) -> None:
        """Add one observation (nanoseconds; negatives clamp to 0)."""
        if value < 0:
            value = 0
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    # -- summaries --------------------------------------------------------

    def percentile(self, q: float) -> Optional[int]:
        """The value at quantile ``q`` (0 < q <= 1), bucket resolution.

        Returns the upper edge of the bucket holding the ``ceil(q *
        count)``-th smallest observation, clamped to the exact observed
        ``[min, max]`` range; ``None`` on an empty histogram.
        """
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1], got {}"
                             .format(q))
        if self.count == 0:
            return None
        rank = int(q * self.count)
        if rank * 1.0 != q * self.count:
            rank += 1
        rank = max(1, min(rank, self.count))
        seen = 0
        for idx, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                value = bucket_upper(idx)
                return max(self.min_value, min(value, self.max_value))
        return self.max_value

    def mean(self) -> Optional[float]:
        return None if self.count == 0 else self.total / self.count

    def summary(self) -> dict:
        """Exact count/sum/min/max plus p50/p95/p99, all nanoseconds."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    # -- serialization / merging ------------------------------------------

    def to_dict(self) -> dict:
        return {
            "scheme": "log2-ns",
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            # Sparse: JSON keys are strings either way, so store them
            # that way from the start and merges never re-coerce.
            "buckets": {str(i): n for i, n in enumerate(self.counts)
                        if n},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LogHistogram":
        h = cls()
        h.merge_dict(d)
        return h

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        counts = self.counts
        for i, n in enumerate(other.counts):
            if n:
                counts[i] += n
        self.count += other.count
        self.total += other.total
        self._merge_extremes(other.min_value, other.max_value)
        return self

    def merge_dict(self, d: dict) -> "LogHistogram":
        counts = self.counts
        for key, n in d.get("buckets", {}).items():
            counts[int(key)] += n
        self.count += d.get("count", 0)
        self.total += d.get("sum", 0)
        self._merge_extremes(d.get("min"), d.get("max"))
        return self

    def _merge_extremes(self, lo: Optional[int],
                        hi: Optional[int]) -> None:
        if lo is not None and (self.min_value is None
                               or lo < self.min_value):
            self.min_value = lo
        if hi is not None and (self.max_value is None
                               or hi > self.max_value):
            self.max_value = hi

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return "LogHistogram(count={}, max={})".format(self.count,
                                                       self.max_value)


def merge_histogram_dicts(dicts: Iterable[Dict[str, dict]]
                          ) -> Dict[str, dict]:
    """Merge name-keyed histogram-dict mappings bucket-by-bucket.

    Input items are ``{"drain_batch": hist_dict, ...}`` mappings (one
    per pipeline / worker); the result carries each name's exact
    combined state — the same dict a single histogram fed every
    observation would serialize to.
    """
    merged: Dict[str, LogHistogram] = {}
    for mapping in dicts:
        if not mapping:
            continue
        for name, hist_dict in mapping.items():
            merged.setdefault(name, LogHistogram()).merge_dict(hist_dict)
    return {name: h.to_dict() for name, h in merged.items()}


def summarize_histogram_dict(d: dict) -> dict:
    """Percentile summary of a serialized histogram dict."""
    return LogHistogram.from_dict(d).summary()
