"""Stage fusion: compile runs of pipeline stages into one closure.

The interpreted driver (:meth:`repro.core.pipeline.Pipeline._drain`)
pays a fixed per-event tax at every stage boundary: a work-list
iteration, a routing-key classification, a handler-table double
subscript, and stack traffic for multi-output stages.  Profiling the
paper queries puts that dispatch layer at roughly 40% of wall time —
none of it does query work.

This module removes the tax without touching operator semantics.  Using
the static analyzer's facts (:func:`repro.analysis.static_plan.
analyze_plan`), each compiled plan is partitioned into maximal runs of
streaming stages; each run of two or more becomes a
:class:`FusedSegment` whose driver is *generated source code*: one
``def`` with a nested ``for`` loop per stage, the per-stage dispatch
inlined.  The generated body replicates the routed interpreter exactly:

* an **active-flavor** level performs the same ``id in tracked`` probe
  and ``handlers[kind]`` dispatch the interpreter performs — against the
  *live* wrapper tables, whose identities never change (the dormant ->
  active transition mutates them in place) — so it is valid in every
  wrapper state;
* a **dormant-flavor** level (only where the analyzer guarantees no
  update event can ever arrive, and only while the wrapper really is
  dormant) skips the wrapper shim entirely and calls the transformer's
  ``process`` directly, preserving the ``calls`` accounting;
* any update-kind event entering a level is handed to an interpreted
  tail drive (:meth:`FusedSegment._tail`) that mirrors ``_drain`` over
  the remaining levels; if that event activated a wrapper a
  dormant-flavor level was generated for, the segment regenerates
  itself with the activated stage demoted to active flavor (a *deopt*),
  so the fast path is never consulted in a stale state.

Exit events leave through the caller-supplied ``emit`` continuation
*as they are produced*, never batched: stages allocate fresh stream
ids on the data path (e.g. a predicate opening an item region), so an
exit must traverse the whole rest of the chain before the segment
computes its next exit or the global id-allocation order — and with it
the raw event stream — would diverge from the interpreter.

Fusion changes neither the event stream nor the per-stage call counts:
the differential suite (``tests/test_fusion.py``) holds fused runs
byte- and call-identical to interpreted runs.  Generated closures are
rebuilt — never pickled — across checkpoint/restore
(:meth:`FusedSegment.__setstate__`).
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.wrapper import _FIRST_UPDATE, LIVE, UpdateWrapper
from ..events.model import FREEZE

_FREEZE = int(FREEZE)

#: Longest run compiled into one closure.  One ``for`` block per stage
#: plus the batch variant's source-event loop must fit CPython's
#: 20-block static nesting limit, so the cap is 19 — crossing a chunk
#: boundary costs a closure frame per *exit* event (far rarer than
#: source events once the leading steps have filtered), while losing
#: the in-frame source loop would cost a frame per source event.
MAX_SEGMENT = 19


class SegmentSpec:
    """One planned segment: a half-open stage range plus dormancy facts."""

    def __init__(self, start: int, end: int,
                 dormant: Sequence[bool]) -> None:
        self.start = start
        self.end = end
        self.dormant = tuple(dormant)

    @property
    def fused(self) -> bool:
        return self.end - self.start >= 2

    def __repr__(self) -> str:
        return "SegmentSpec({}..{}, dormant={})".format(
            self.start, self.end, list(self.dormant))


class FusionPlan:
    """The fusion partition of one compiled plan."""

    def __init__(self, segments: List[SegmentSpec], n_stages: int) -> None:
        self.segments = segments
        self.n_stages = n_stages

    @property
    def fused(self) -> bool:
        """Does at least one segment span two or more stages?"""
        return any(s.fused for s in self.segments)

    def __repr__(self) -> str:
        return "FusionPlan({} stages -> {} units)".format(
            self.n_stages, len(self.segments))


def fusion_partition(plan, report=None, max_segment: int = MAX_SEGMENT,
                     assume_updates: bool = False) -> FusionPlan:
    """Partition ``plan`` into maximal fusible runs.

    A stage joins a run when it streams (``paper_blocking`` stages — the
    ones a conventional evaluator buffers on — stay interpreted as
    single-stage units, where the wrapper's full bracket bookkeeping is
    the dominant cost anyway) and passes foreign events through (the
    routing contract fusion inlines).  ``assume_updates=True`` demotes
    every dormant guarantee to active flavor — used for suffix plans in
    shared-prefix groups, whose *input* already carries brackets the
    per-plan analyzer cannot see.
    """
    from ..analysis.static_plan import analyze_plan
    if report is None:
        report = analyze_plan(plan)
    n = len(plan.stages)
    fusible = []
    dormant = []
    for sr in report.stages:
        t = sr.transformer
        fusible.append(bool(t.passes_foreign)
                       and not sr.facts.get("paper_blocking"))
        dormant.append(sr.dormant and not assume_updates)
    segments: List[SegmentSpec] = []
    i = 0
    while i < n:
        if not fusible[i]:
            segments.append(SegmentSpec(i, i + 1, (False,)))
            i += 1
            continue
        j = i
        while j < n and fusible[j] and j - i < max_segment:
            j += 1
        segments.append(SegmentSpec(i, j, dormant[i:j]))
        i = j
    return FusionPlan(segments, n)


def _generate_source(wrappers: Sequence[UpdateWrapper],
                     flavors: Sequence[str],
                     batch: bool = False) -> str:
    """Emit the fused driver's source for one segment.

    One nested loop level per stage; ``emit`` receives the exit events
    one at a time, in exactly the depth-first order the interpreter's
    LIFO work list would let them cross this boundary.

    Active levels inline the interpreter's complete routing block for
    *every* event kind — key classification, the freeze fix-map write,
    the tracked-probe, the handler-table dispatch — so update traffic
    (predicate item brackets, freezes, hides) stays on the generated
    path; ``_tail`` is reached only through dormant levels, where an
    update's arrival falsifies the dormancy assumption and forces a
    deopt.  For data events the tracked-probe returns the facet, and
    all three facet bodies of ``UpdateWrapper._active_data`` — live
    input (0), region with its own state copy (2), raw/shared region
    content (1) — are transcribed inline, eliminating the wrapper shim
    call for the entire data stream: the probe's facet feeds the state
    swap, region configuration, and relabel logic directly.  The
    handler table remains the dispatch for every update kind (where it
    also performs the dormant wrapper's activation).  The exit level
    applies the sink-position freeze fix, making the segment safe to
    aim straight at the sink.
    """
    n = len(wrappers)
    head = ("def _fused_batch(events, emit," if batch
            else "def _fused(e0, emit,")
    extra = ""
    if batch and "dormant" in flavors:
        extra = " SEG=SEG, G=G, _res=_res,"
    lines = [head + " _tail=_tail, fixf=fixf, LIVE=LIVE," + extra]
    binds = []
    for k, (w, flavor) in enumerate(zip(wrappers, flavors)):
        if flavor == "dormant":
            binds.append("w{0}=w{0}, t{0}=t{0}, p{0}=p{0}, I{0}=I{0}"
                         .format(k))
        else:
            binds.append(
                "H{0}=H{0}, R{0}=R{0}, w{0}=w{0}, t{0}=t{0}, p{0}=p{0}, "
                "E{0}=E{0}, RC{0}=RC{0}, RT{0}=RT{0}, RI{0}=RI{0}, "
                "IN{0}=IN{0}, g{0}=g{0}, ss{0}=ss{0}, rc{0}=rc{0}, "
                "rl{0}=rl{0}, L{0}=L{0}".format(k))
    lines.append("           " + ",\n           ".join(binds) + "):")
    indent = "    "
    # The batch variant hoists the per-event driver call into the
    # generated function itself.  A dormant level's tail divert can
    # deopt mid-batch (regenerating the segment's closures), which
    # would leave this running frame on stale code — so wherever a
    # divert exists the frame compares the segment's build generation
    # after the diverting event completes and, on mismatch, hands the
    # *rest of the iterator* to the per-event resume path.  That is
    # exactly the granularity the per-event driver has: a deopt takes
    # effect at the next source event, never mid-event.
    base = 1
    dormant_tail = any(f == "dormant" for f in flavors[1:])
    if batch:
        lines.append(indent + "events = iter(events)")
        lines.append(indent + "for e0 in events:")
        base = 2

    def put(depth: int, text: str) -> None:
        lines.append(indent * (depth + base) + text)

    for k, (w, flavor) in enumerate(zip(wrappers, flavors)):
        put(k, "k{0} = e{0}.kind".format(k))
        if flavor == "dormant":
            put(k, "if k{0} >= {1}:".format(k, _FIRST_UPDATE))
            put(k + 1, "_tail({0}, e{0}, emit)".format(k))
            if batch and k == 0:
                # The divert may have deopted this very frame; the rest
                # of the batch must run against the regenerated code.
                put(k + 1, "if SEG._gen != G:")
                put(k + 2, "_res(events, emit)")
                put(k + 2, "return")
                put(k + 1, "continue")
            else:
                put(k + 1, "return" if k == 0 else "continue")
            ids = sorted(w.input_ids)
            if len(ids) == 1:
                put(k, "if e{0}.id == {1}:".format(k, ids[0]))
                put(k + 1, "w{0}.calls += 1".format(k))
                put(k + 1, "t{0}.current_input_root = {1}".format(k,
                                                                  ids[0]))
                put(k + 1, "r{0} = p{0}(e{0})".format(k))
            else:
                put(k, "if e{0}.id in I{0}:".format(k))
                put(k + 1, "w{0}.calls += 1".format(k))
                put(k + 1, "t{0}.current_input_root = e{0}.id".format(k))
                put(k + 1, "r{0} = p{0}(e{0})".format(k))
            put(k, "else:")
            put(k + 1, "r{0} = (e{0},)".format(k))
        else:
            put(k, "if k{0} < {1}:".format(k, _FIRST_UPDATE))
            # Data path: one tracked-probe yields the facet (or a skip),
            # and each facet branch transcribes the corresponding body
            # of _active_data verbatim — including `calls` accounting
            # and the lazy state swap.  The facet-0 branch is also the
            # dormant wrapper's data path: while dormant, `tracked`
            # still maps exactly the input ids to facet 0, `_loaded`
            # stays LIVE, and the extra writes are no-ops by the
            # wrapper's init invariants.
            put(k + 1, "f{0} = R{0}.get(e{0}.id)".format(k))
            put(k + 1, "if f{0} is None:".format(k))
            put(k + 2, "r{0} = (e{0},)".format(k))
            put(k + 1, "elif f{0} == 0:".format(k))
            put(k + 2, "w{0}.calls += 1".format(k))
            # Runtime-dormant short-circuit: an active *flavor* only
            # means the analyzer could not rule updates out; until one
            # actually arrives the wrapper is still dormant and this is
            # exactly `_dormant_data`'s tracked branch (the facet body
            # below degenerates to it — `_loaded` is LIVE, the region
            # fields hold their class defaults — so the extra loads and
            # stores are pure overhead on the no-update fast path).
            put(k + 2, "if w{0}._dormant:".format(k))
            put(k + 3, "t{0}.current_input_root = e{0}.id".format(k))
            put(k + 3, "r{0} = p{0}(e{0})".format(k))
            put(k + 2, "else:")
            put(k + 3, "ld{0} = w{0}._loaded".format(k))
            put(k + 3, "if ld{0} is not LIVE:".format(k))
            put(k + 4, "rs{0} = w{0}._resident".format(k))
            put(k + 4, "if rs{0} is None:".format(k))
            put(k + 5, "rs{0} = g{0}()".format(k))
            put(k + 4, "E{0}[ld{0}] = rs{0}".format(k))
            put(k + 4, "s{0} = E{0}[LIVE]".format(k))
            put(k + 4, "if s{0} is not rs{0}:".format(k))
            put(k + 5, "ss{0}(s{0})".format(k))
            put(k + 4, "w{0}._loaded = LIVE".format(k))
            put(k + 3, "t{0}.region_mutable = False".format(k))
            put(k + 3, "t{0}.current_input_root = e{0}.id".format(k))
            put(k + 3, "t{0}.current_region = None".format(k))
            put(k + 3, "w{0}._resident = None".format(k))
            put(k + 3, "r{0} = p{0}(e{0})".format(k))
            put(k + 1, "elif f{0} == 2:".format(k))
            put(k + 2, "w{0}.calls += 1".format(k))
            put(k + 2, "ld{0} = w{0}._loaded".format(k))
            put(k + 2, "if e{0}.id != ld{0}:".format(k))
            put(k + 3, "rs{0} = w{0}._resident".format(k))
            put(k + 3, "if rs{0} is None:".format(k))
            put(k + 4, "rs{0} = g{0}()".format(k))
            put(k + 3, "E{0}[ld{0}] = rs{0}".format(k))
            put(k + 3, "s{0} = E{0}[e{0}.id]".format(k))
            put(k + 3, "if s{0} is not rs{0}:".format(k))
            put(k + 4, "ss{0}(s{0})".format(k))
            put(k + 3, "w{0}._loaded = e{0}.id".format(k))
            put(k + 2, "t{0}.region_mutable = True".format(k))
            put(k + 2, "cfg{0} = RC{0}.get(e{0}.id)".format(k))
            put(k + 2, "if cfg{0} is None:".format(k))
            put(k + 3, "cfg{0} = RC{0}[e{0}.id] = (RT{0}.get(e{0}.id), "
                       "rc{0}(e{0}.id), RI{0}.get(e{0}.id))".format(k))
            put(k + 2, "t{0}.current_input_root, "
                       "t{0}.current_region_chain, info{0} = cfg{0}"
                .format(k))
            put(k + 2, "t{0}.current_region = e{0}.id".format(k))
            put(k + 2, "w{0}._resident = None".format(k))
            put(k + 2, "o{0} = p{0}(e{0})".format(k))
            put(k + 2, "if not o{0} or t{0}.suppress_region_output:"
                .format(k))
            put(k + 3, "r{0} = ()".format(k))
            put(k + 2, "elif info{0} is None:".format(k))
            put(k + 3, "r{0} = o{0}".format(k))
            put(k + 2, "elif len(o{0}) == 1:".format(k))
            put(k + 3, "v{0} = o{0}[0]".format(k))
            put(k + 3, "if v{0}.kind < {1}:".format(k, _FIRST_UPDATE))
            put(k + 4, "N{0} = IN{0}.get(e{0}.id)".format(k))
            put(k + 4, "if N{0} is not None and v{0}.id in N{0}:"
                .format(k))
            put(k + 5, "r{0} = o{0}".format(k))
            put(k + 4, "elif info{0}[2] or v{0}.id in info{0}[1]:"
                .format(k))
            put(k + 5, "r{0} = (v{0}.relabel(info{0}[0]),)".format(k))
            put(k + 4, "else:")
            put(k + 5, "r{0} = o{0}".format(k))
            put(k + 3, "else:")
            put(k + 4, "r{0} = rl{0}(o{0}, e{0}.id)".format(k))
            put(k + 2, "else:")
            put(k + 3, "r{0} = rl{0}(o{0}, e{0}.id)".format(k))
            put(k + 1, "else:")
            put(k + 2, "w{0}.calls += 1".format(k))
            put(k + 2, "if w{0}._loaded is not LIVE:".format(k))
            put(k + 3, "L{0}(LIVE)".format(k))
            put(k + 2, "t{0}.region_mutable = True".format(k))
            put(k + 2, "t{0}.current_input_root = RT{0}.get(e{0}.id)"
                .format(k))
            put(k + 2, "t{0}.current_region = e{0}.id".format(k))
            put(k + 2, "w{0}._resident = None".format(k))
            put(k + 2, "r{0} = p{0}(e{0})".format(k))
            put(k, "else:")
            # Key carry: when the event object is unchanged from the
            # previous level (a passthrough, or a handler returning the
            # event itself), its routing key is too, and a FREEZE was
            # already recorded in the fix map at first classification
            # (``freeze`` is a set discard — idempotent, so skipping
            # the repeat is exact).  Only valid after an active level:
            # a dormant level diverts update kinds to the tail drive,
            # so the carried key would never have been computed.
            carry = k > 0 and flavors[k - 1] != "dormant"
            if carry:
                put(k + 1, "if e{0} is e{1}:".format(k, k - 1))
                put(k + 2, "key{0} = key{1}".format(k, k - 1))
                put(k + 1, "elif k{0} >= {1}:".format(k, _FREEZE))
            else:
                put(k + 1, "if k{0} >= {1}:".format(k, _FREEZE))
            put(k + 2, "if k{0} == {1}:".format(k, _FREEZE))
            put(k + 3, "fixf(e{0}.id)".format(k))
            put(k + 2, "key{0} = e{0}.id".format(k))
            put(k + 1, "elif k{0} & 1:".format(k))
            put(k + 2, "key{0} = e{0}.id".format(k))
            put(k + 1, "else:")
            put(k + 2, "key{0} = e{0}.sub".format(k))
            put(k + 1, "r{0} = H{0}[k{0}](e{0}) "
                       "if key{0} in R{0} else (e{0},)".format(k))
        put(k, "for e{0} in r{1}:".format(k + 1, k))
    put(n, "if e{0}.kind == {1}:".format(n, _FREEZE))
    put(n + 1, "fixf(e{0}.id)".format(n))
    put(n, "emit(e{0})".format(n))
    if batch and dormant_tail:
        # A divert below level 0 cannot return straight out of its
        # nested loops (siblings of the diverted event still traverse
        # this frame, matching the per-event driver); the generation
        # check lands once per source event instead.
        put(0, "if SEG._gen != G:")
        put(1, "_res(events, emit)")
        put(1, "return")
    return "\n".join(lines) + "\n"


class FusedSegment:
    """A run of stages compiled into one generated driver closure.

    The pipeline drives the segment as one unit: ``_impl(event, emit)``
    pushes one event through every fused level, handing each exit to
    ``emit`` immediately.  All state lives in the wrapped stages; the
    closure binds only objects whose identity is stable for the
    wrappers' lifetime (handler tables, tracked maps, transformers), so
    regenerating it is always safe and checkpoints simply drop it.
    """

    def __init__(self, wrappers: Sequence[UpdateWrapper], start: int,
                 spec_dormant: Sequence[bool], ctx) -> None:
        self.wrappers = list(wrappers)
        self.start = start
        self.spec_dormant = tuple(spec_dormant)
        self.ctx = ctx
        self.deopts = 0
        self._gen = 0
        self._init_tables()
        self._build()

    def _init_tables(self) -> None:
        self._tables = [w.handlers for w in self.wrappers]
        self._routes = [w.tracked for w in self.wrappers]

    # -- code generation ----------------------------------------------------

    def _flavors(self) -> List[str]:
        return ["dormant" if (spec and w.dormant) else "active"
                for spec, w in zip(self.spec_dormant, self.wrappers)]

    def _build(self) -> None:
        flavors = self._flavors()
        self._gen_dormant = [f == "dormant" for f in flavors]
        self._dormant_watch = tuple(
            w for g, w in zip(self._gen_dormant, self.wrappers) if g)
        source = _generate_source(self.wrappers, flavors)
        self.source = source
        # ``fix.freeze`` is exactly a discard on the not-fixed set (see
        # MutabilityRegistry) and the set is assigned once for the
        # context's lifetime, so the generated code binds the C-level
        # method and skips a Python frame per freeze classification.
        namespace = {"_tail": self._tail,
                     "fixf": self.ctx.fix._not_fixed.discard,
                     "LIVE": LIVE}
        for k, w in enumerate(self.wrappers):
            namespace["w{}".format(k)] = w
            namespace["t{}".format(k)] = w.t
            namespace["p{}".format(k)] = w.t.process
            namespace["I{}".format(k)] = w.input_ids
            namespace["H{}".format(k)] = w.handlers
            namespace["R{}".format(k)] = w.tracked
            # Facet-inline binds: every dict was assigned exactly once
            # in UpdateWrapper.__init__ and is only ever mutated in
            # place, so capturing the objects is safe for the wrapper's
            # lifetime (same contract the routed interpreter relies on).
            namespace["E{}".format(k)] = w.end
            namespace["RC{}".format(k)] = w._rcfg
            namespace["RT{}".format(k)] = w._root
            namespace["RI{}".format(k)] = w._region_info
            namespace["IN{}".format(k)] = w._inner
            namespace["g{}".format(k)] = w.t.get_state
            namespace["ss{}".format(k)] = w.t.set_state
            namespace["rc{}".format(k)] = w._region_chain
            namespace["rl{}".format(k)] = w._relabel_out
            namespace["L{}".format(k)] = w._load
        exec(compile(source, "<fused-segment>", "exec"), namespace)
        self._impl = namespace["_fused"]
        # The whole-batch entry point runs the source-event loop inside
        # the generated frame.  Chunks with dormant levels can deopt
        # mid-batch: the frame captures this build's generation and, the
        # moment a divert regenerates the segment, hands the rest of the
        # event iterator to :meth:`_resume` (per-event drive against the
        # always-fresh ``_impl``).
        self._gen += 1
        namespace["SEG"] = self
        namespace["G"] = self._gen
        namespace["_res"] = self._resume
        bsource = _generate_source(self.wrappers, flavors, batch=True)
        try:
            exec(compile(bsource, "<fused-segment-batch>", "exec"),
                 namespace)
        except SyntaxError:
            # The extra source-event loop can push a deep chunk past
            # CPython's static block-nesting limit; the per-event
            # resume loop is the same drive minus the in-frame loop.
            self._impl_batch = self._resume
        else:
            self._impl_batch = namespace["_fused_batch"]

    # -- driving ------------------------------------------------------------

    def feed(self, ev) -> list:
        """Convenience drive: one event in, the flat exit list out."""
        out: list = []
        self._impl(ev, out.append)
        return out

    def _resume(self, it, emit) -> None:
        """Finish a batch whose generated frame went stale mid-stream.

        ``it`` is the batch iterator, positioned after the deopting
        event; each remaining event re-reads ``_impl`` (a further deopt
        swaps it again), which is the per-event driver's granularity.
        """
        for ev in it:
            self._impl(ev, emit)

    def _tail(self, k: int, ev, emit) -> None:
        """Interpreted drive of ``ev`` through levels ``k..end``.

        The update-kind slow path: an exact mirror of
        ``Pipeline._drain`` (routing, fix-map writes, LIFO ordering)
        restricted to this segment's stages, exits handed to ``emit``
        as they surface.  If handling the event activated a wrapper the
        generated code still treats as dormant, the closure is
        regenerated before the next event (deopt) — the fast path never
        runs against a stale dormancy assumption.
        """
        tables = self._tables
        routes = self._routes
        n = len(tables)
        fix_freeze = self.ctx.fix.freeze
        stack: List[tuple] = []
        push = stack.append
        pop = stack.pop
        idx = k
        while True:
            kind = ev.kind
            if kind < _FIRST_UPDATE:
                key = ev.id
            elif kind >= _FREEZE:
                if kind == _FREEZE:
                    fix_freeze(ev.id)
                key = ev.id
            elif kind & 1:
                key = ev.id
            else:
                key = ev.sub
            while idx < n and key not in routes[idx]:
                idx += 1
            if idx < n:
                out = tables[idx][kind](ev)
                m = len(out)
                if m:
                    idx += 1
                    if m > 1:
                        i = m - 1
                        while i > 0:
                            push((idx, out[i]))
                            i -= 1
                    ev = out[0]
                    continue
            else:
                emit(ev)
            if not stack:
                break
            idx, ev = pop()
        for w in self._dormant_watch:
            if not w.dormant:
                self.deopts += 1
                self._build()
                break

    # -- introspection / checkpointing --------------------------------------

    def describe(self) -> dict:
        return {
            "start": self.start,
            "end": self.start + len(self.wrappers),
            "stages": [type(w.t).__name__ for w in self.wrappers],
            "dormant": list(self._gen_dormant),
            "deopts": self.deopts,
        }

    def __getstate__(self) -> dict:
        # Generated artifacts (the closure, its source, the bound tail)
        # never travel: a restored segment regenerates them against the
        # restored wrappers' current dormancy.
        return {"wrappers": self.wrappers, "start": self.start,
                "spec_dormant": self.spec_dormant, "ctx": self.ctx,
                "deopts": self.deopts}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._gen = 0
        self._init_tables()
        self._build()

    def __repr__(self) -> str:
        return "FusedSegment(stages {}..{}, {} dormant)".format(
            self.start, self.start + len(self.wrappers),
            sum(self._gen_dormant))
