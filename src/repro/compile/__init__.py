"""Plan compilation layers: stage fusion and multi-query prefix sharing.

Two flag-gated optimizations over the interpreted pipeline, both held
byte-identical to it by the differential suite:

* :mod:`repro.compile.fusion` — partition a compiled plan into maximal
  streaming runs and generate one driver closure per run, eliminating
  the per-stage dispatch tax (``--fuse`` / ``REPRO_FUSE``);
* :mod:`repro.compile.sharing` — factor the common leading
  axis/predicate chains of a multi-query batch into a shared prefix
  trie evaluated once, fanning out to per-query suffixes
  (``--share-prefixes``).
"""

from .fusion import (FusedSegment, FusionPlan, SegmentSpec,
                     fusion_partition)
from .sharing import (QueryChain, SharedGroup, build_shared_groups,
                      describe_sharing, extract_chain)

__all__ = [
    "FusedSegment",
    "FusionPlan",
    "QueryChain",
    "SegmentSpec",
    "SharedGroup",
    "build_shared_groups",
    "describe_sharing",
    "extract_chain",
    "fusion_partition",
]
