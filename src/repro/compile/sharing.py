"""Multi-query common-prefix sharing (paper Section I, serving scenario).

The nine benchmark queries mostly walk the same leading axes over the
same document: five of them open with ``//item``, four of those filter
it with ``[location="Albania"]``, and both DBLP queries open with
``//inproceedings``.  The PR-2 multiplexer still evaluates each of
those identical leading chains once *per query*.  This module factors
them out:

1. each unique query's AST is decomposed into a *chain* — the leading
   Step/Filter spine over the source — plus the wrapper expressions
   around it (aggregates, element constructors, FLWOR clauses);
2. the chains' shareable prefixes (leading forward links only) are
   interned into a trie; every trie node crossed by two or more queries
   is *materialized*;
3. all materialized nodes compile into ONE shared prefix pipeline over
   one shared :class:`~repro.core.transformer.Context` — nested nodes
   chain off their parent's output stream, sibling consumers of a
   stream are fed through explicit :class:`~repro.operators.Tee` copies
   (step operators consume their input);
4. each shared query's *suffix* (remaining links plus wrappers) is
   rebuilt over an :class:`~repro.xquery.ast.Prebound` leaf carrying
   its attachment node's output stream and compiled into its own
   member pipeline.

At run time a :class:`SharedGroup` feeds each input batch through the
prefix pipeline once, collects the complete output stream, and hands
every member pipeline the slice of it that member can observe.  The
cut is exactly a stage boundary of the monolithic plan: everything a
member's suffix stages would have seen in an independent run arrives
in the same order (the prefix driver's depth-first LIFO propagation is
the same one the monolithic pipeline uses), so results are
byte-identical by construction — ``tests/test_fusion.py`` holds this
differentially.

Ordering of the backward-axis clone: queries with one parent/ancestor
step need a verbatim copy of the source for their candidate branch.
The shared clone :class:`~repro.operators.Tee` is the *first* prefix
stage; because Tee emits the original first and the driver is
depth-first, the clone copy of an input event reaches the collector
only after the event's entire per-branch cascade — reproducing the
monolithic layout where the clone branch's stages sit after every
main-branch stage ("an incoming element's events always reach the
join before their clone copies").

Exclusions keep the equivalence argument simple: queries with more
than one backward step (the single clone stream can be consumed only
once), ``ignore_updates`` queries (their stripper would strip the
prefix-*generated* update brackets, which carry real content), and
whole executors running under sanitize / always-active / telemetry
(those observers are defined over per-query stage boundaries).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import Pipeline
from ..core.transformer import Context
from ..core.wrapper import _FIRST_UPDATE
from ..events.model import FREEZE
from ..operators import Tee
from ..xquery import ast
from ..xquery.compiler import Compiler, Plan

_FREEZE = int(FREEZE)

#: Input events per prefix pass.  The prefix's output stream (roughly
#: 3x the input: the clone copy, the relabeled chain streams, the
#: region brackets) is materialized per chunk, so the chunk size bounds
#: the working set — one huge batch would thrash the cache that the
#: monolithic pipelines keep warm by never materializing intermediates.
CHUNK_EVENTS = 4096

__all__ = [
    "QueryChain",
    "SharedGroup",
    "build_shared_groups",
    "describe_sharing",
    "extract_chain",
]


# -- chain extraction ---------------------------------------------------------


class QueryChain:
    """A query decomposed around its leading path chain.

    Attributes:
        wrappers: expression nodes around the chain, outermost first
            (FunCall aggregates, ElementCtor, the FLWOR whose binding
            sequence the chain is).
        links: the Step/Filter spine, source side first.
        shareable: how many leading links are shareable (the run of
            forward steps and filters before the first backward step).
    """

    def __init__(self, wrappers: List[ast.Expr], links: List[ast.Expr],
                 shareable: int) -> None:
        self.wrappers = wrappers
        self.links = links
        self.shareable = shareable

    def suffix_expr(self, depth: int, stream_id: int) -> ast.Expr:
        """Rebuild the query with links[:depth] replaced by a Prebound.

        Remaining links are re-folded over the Prebound leaf and the
        wrapper spine is re-wrapped outside-in.  Only fresh nodes are
        allocated on the rebuilt spine — condition/where/return
        subtrees are shared by reference (the compiler never mutates
        the AST, so sharing is safe; parse_cached relies on the same
        property).
        """
        node: ast.Expr = ast.Prebound(stream_id)
        for link in self.links[depth:]:
            if isinstance(link, ast.Step):
                node = ast.Step(node, link.axis, link.tag)
            else:
                node = ast.Filter(node, link.cond)
        for w in reversed(self.wrappers):
            if isinstance(w, ast.FunCall):
                node = ast.FunCall(w.name, [node], w.literal)
            elif isinstance(w, ast.ElementCtor):
                node = ast.ElementCtor(w.tag, [node])
            else:  # FLWOR: the chain was its binding sequence
                node = ast.FLWOR(w.var, node, w.where, w.order_key,
                                 w.descending, w.ret, w.lets)
        return node


def extract_chain(expr: ast.Expr) -> Optional[QueryChain]:
    """Decompose ``expr``; None when no Source-rooted chain exists."""
    wrappers: List[ast.Expr] = []
    cur = expr
    while True:
        if isinstance(cur, ast.FunCall) and len(cur.args) == 1:
            wrappers.append(cur)
            cur = cur.args[0]
        elif isinstance(cur, ast.ElementCtor) and len(cur.content) == 1:
            wrappers.append(cur)
            cur = cur.content[0]
        elif isinstance(cur, ast.FLWOR):
            wrappers.append(cur)
            cur = cur.seq
            break  # below the binding sequence there is no wrapper
        else:
            break
    rev: List[ast.Expr] = []
    while isinstance(cur, (ast.Step, ast.Filter)):
        rev.append(cur)
        cur = cur.base
    if not isinstance(cur, ast.Source):
        return None
    links = list(reversed(rev))
    shareable = 0
    for link in links:
        if isinstance(link, ast.Step) and link.axis in (ast.PARENT,
                                                        ast.ANCESTOR):
            break
        if isinstance(link, ast.Filter) and ast.uses_backward_axes(
                link.cond):
            break
        shareable += 1
    return QueryChain(wrappers, links, shareable)


def _backward_count(expr: ast.Expr) -> int:
    return sum(1 for n in expr.walk()
               if isinstance(n, ast.Step)
               and n.axis in (ast.PARENT, ast.ANCESTOR))


def _link_key(link: ast.Expr) -> tuple:
    if isinstance(link, ast.Step):
        return ("step", link.axis, link.tag)
    return ("filter", repr(link.cond))


def _fold_link(link: ast.Expr, stream_id: int) -> ast.Expr:
    """The link applied to an already-materialized stream."""
    base = ast.Prebound(stream_id)
    if isinstance(link, ast.Step):
        return ast.Step(base, link.axis, link.tag)
    return ast.Filter(base, link.cond)


def _format_link(link: ast.Expr) -> str:
    if isinstance(link, ast.Step):
        if link.axis == ast.CHILD:
            return "/" + (link.tag or "*")
        if link.axis == ast.DESCENDANT:
            return "//" + (link.tag or "*")
        if link.axis == ast.TEXT:
            return "/text()"
    return "[{!r}]".format(link.cond)


# -- the prefix trie ----------------------------------------------------------


class PrefixNode:
    """One interned prefix: the link chain from the root to here."""

    def __init__(self, link: Optional[ast.Expr],
                 parent: Optional["PrefixNode"], depth: int) -> None:
        self.link = link
        self.parent = parent
        self.depth = depth
        self.children: Dict[tuple, "PrefixNode"] = {}
        self.queries: List[int] = []   # indices passing through
        self.members: List[int] = []   # indices attached here
        self.stream: Optional[int] = None  # output stream, once compiled

    @property
    def materialized(self) -> bool:
        """Evaluated once in the shared pipeline (crossed by >= 2)."""
        return self.depth >= 1 and len(self.queries) >= 2

    def path(self) -> str:
        parts: List[str] = []
        node: Optional["PrefixNode"] = self
        while node is not None and node.link is not None:
            parts.append(_format_link(node.link))
            node = node.parent
        return "".join(reversed(parts))


def _build_trie(chains: Dict[int, QueryChain]) -> PrefixNode:
    root = PrefixNode(None, None, 0)
    for i in sorted(chains):
        ch = chains[i]
        node = root
        for link in ch.links[:ch.shareable]:
            key = _link_key(link)
            child = node.children.get(key)
            if child is None:
                child = PrefixNode(link, node, node.depth + 1)
                node.children[key] = child
            child.queries.append(i)
            node = child
    return root


def _assign_members(root: PrefixNode,
                    chains: Dict[int, QueryChain]) -> Dict[int,
                                                           PrefixNode]:
    """Attach each query at its deepest materialized prefix node."""
    attach: Dict[int, PrefixNode] = {}
    for i in sorted(chains):
        ch = chains[i]
        node = root
        for link in ch.links[:ch.shareable]:
            nxt = node.children.get(_link_key(link))
            if nxt is None or not nxt.materialized:
                break
            node = nxt
        if node is not root:
            attach[i] = node
            node.members.append(i)
    return attach


# -- shared group compilation -------------------------------------------------


class _FeedClass:
    """Members with identical input-stream sets share one feed slice."""

    __slots__ = ("keep_ids", "slots")

    def __init__(self, keep_ids: frozenset, slots: List[int]) -> None:
        self.keep_ids = keep_ids
        self.slots = slots

    def __getstate__(self) -> Tuple[frozenset, List[int]]:
        return (self.keep_ids, self.slots)

    def __setstate__(self, state: Tuple[frozenset, List[int]]) -> None:
        self.keep_ids, self.slots = state


class RoutingSink:
    """Prefix sink that routes output straight into per-class feeds.

    A member observes the data events of its static input streams (the
    attachment node's output, plus the shared clone for backward-axis
    members).  Region streams are attributed dynamically: a start
    bracket ``sX(id=p, sub=r)`` says region ``r``'s content rides on
    parent stream ``p``, so ``r`` inherits ``p``'s consumer classes the
    moment the bracket appears (nested regions chain the same way).
    Update-control events route by the same keys the pipeline router
    uses — parent id for starts, ``sub`` for ends, id for freezes — and
    anything unattributable falls back to every class while a bracket
    is open (sinks ignore foreign streams, so over-delivery is safe;
    under-delivery never happens because content is always introduced
    by a bracket on an already-routed stream).  Everything else —
    chiefly the full-document clone stream for members that never
    consume it, and sibling-branch region content — is dropped here,
    before any member pipeline pays per-event dispatch for it.
    Routing as the events exit the last prefix stage avoids
    materializing the combined output stream at all.

    Adopted region entries stay in the routing table for the group's
    lifetime (content may trail the region's freeze); the table grows
    by one small entry per region, mirroring the context fix-map.
    """

    def __init__(self, route: Dict[int, tuple], n_classes: int) -> None:
        #: stream id -> class positions observing it (static streams
        #: plus dynamically adopted region streams).
        self.route = route
        self.feeds: List[list] = [[] for _ in range(n_classes)]
        #: Open update-bracket depth; persists across chunks and
        #: batches (a bracket may span a batch cut).  Only consulted
        #: for the unattributable fallback.
        self.depth = 0
        self.events_out = 0

    def process(self, e) -> None:
        self.events_out += 1
        kind = e.kind
        route = self.route
        feeds = self.feeds
        if kind < _FIRST_UPDATE:
            hit = route.get(e.id)
            if hit is not None:
                for ci in hit:
                    feeds[ci].append(e)
            elif self.depth:
                for f in feeds:
                    f.append(e)
            return
        if kind < _FREEZE:
            if kind & 1:    # sM/sR/sB/sA: region e.sub rides on e.id
                self.depth += 1
                hit = route.get(e.id)
                if hit is not None and e.sub is not None:
                    route[e.sub] = hit
            else:           # eM/eR/eB/eA: routed downstream by e.sub
                self.depth -= 1
                hit = route.get(e.sub)
        else:               # freeze / hide / fix: routed by e.id
            hit = route.get(e.id)
        if hit is None:
            for f in feeds:
                f.append(e)
        else:
            for ci in hit:
                feeds[ci].append(e)

    def clear(self) -> None:
        for f in self.feeds:
            del f[:]


class SharedGroup:
    """One shared prefix pipeline plus the member runs it feeds.

    The group owns quarantine granularity (ISSUE acceptance): a member
    pipeline failure detaches exactly that member; a *prefix* failure
    detaches every member, because all of them consume its output.
    """

    def __init__(self, pipeline: Pipeline, sink: RoutingSink,
                 members: List[tuple], classes: List[_FeedClass],
                 clone_id: Optional[int], prefixes: List[str]) -> None:
        self.pipeline = pipeline
        self.sink = sink
        self.members = members  # [(run index, QueryRun)], index order
        self.member_indices = [i for i, _ in members]
        self.classes = classes
        self.clone_id = clone_id
        self.prefixes = prefixes  # materialized prefix paths (describe)
        self._class_of = {s: ci for ci, cls in enumerate(classes)
                          for s in cls.slots}
        self.live = set(self.member_indices)
        self.dead = False
        #: Optional group-level projection mask (the union of member
        #: *full-plan* projections — suffix plans must not be projected
        #: individually, their paths are relative to the prefix).
        self.mask = None
        self.events_fed = 0

    # -- feeding --------------------------------------------------------------

    def _fail_all(self, exc: BaseException) -> List[tuple]:
        self.dead = True
        failed = sorted(self.live)
        self.live.clear()
        return [(i, exc) for i in failed]

    def feed_batch(self, events, quarantine: bool = True) -> List[tuple]:
        """One input batch through prefix then members.

        Returns the newly failed members as ``[(run index, exc), ...]``
        (empty on the happy path).  With ``quarantine=False`` the first
        exception propagates instead.
        """
        if self.dead or not self.live:
            return []
        if self.mask is not None:
            events = self.mask.filter(events)
        if not isinstance(events, (list, tuple)):
            events = list(events)
        failures: List[tuple] = []
        sink = self.sink
        class_of = self._class_of
        for lo in range(0, len(events), CHUNK_EVENTS):
            chunk = events[lo:lo + CHUNK_EVENTS]
            self.events_fed += len(chunk)
            sink.clear()
            try:
                self.pipeline.feed_batch(chunk)
            except Exception as exc:
                if not quarantine:
                    raise
                return failures + self._fail_all(exc)
            feeds = sink.feeds
            for i, run in self.members:
                if i not in self.live:
                    continue
                try:
                    run.pipeline.feed_batch(feeds[class_of[i]])
                except Exception as exc:
                    if not quarantine:
                        raise
                    self.live.discard(i)
                    failures.append((i, exc))
            if not self.live:
                break
        return failures

    def finish(self, quarantine: bool = True) -> List[tuple]:
        """Flush the prefix, feed the tail to members, flush members."""
        if self.dead or not self.live:
            return []
        sink = self.sink
        sink.clear()
        try:
            self.pipeline.finish()
        except Exception as exc:
            if not quarantine:
                raise
            return self._fail_all(exc)
        feeds = sink.feeds
        failures: List[tuple] = []
        class_of = self._class_of
        for i, run in self.members:
            if i not in self.live:
                continue
            try:
                run.pipeline.feed_batch(feeds[class_of[i]])
                run.finish()
            except Exception as exc:
                if not quarantine:
                    raise
                self.live.discard(i)
                failures.append((i, exc))
        return failures

    # -- accounting -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "members": list(self.member_indices),
            "prefixes": list(self.prefixes),
            "prefix_stages": len(self.pipeline.wrappers),
            "prefix_calls": self.pipeline.total_calls(),
            "events_fed": self.events_fed,
            "events_out": self.sink.events_out,
            "dead": self.dead,
        }

    def __repr__(self) -> str:
        return "SharedGroup({} members, {} prefix stages)".format(
            len(self.members), len(self.pipeline.wrappers))


def build_shared_groups(engines: Sequence[tuple], make_run,
                        fuse: bool = False) -> List[SharedGroup]:
    """Plan, compile, and wire the shared groups of one executor.

    Args:
        engines: ``(run index, XFlux)`` pairs — the executor's unique
            query slots, in slot order.
        make_run: ``make_run(plan, engine) -> QueryRun`` factory
            carrying the executor's flags; member plans are compiled
            here (against the shared group context) and handed to it.
        fuse: also fuse the prefix pipeline's stage runs (the member
            pipelines are fused by the factory when the executor asks).

    Slots that end up in no group are left for the caller to compile
    independently.
    """
    chains: Dict[int, QueryChain] = {}
    engine_map = dict(engines)
    buckets: Dict[bool, List[int]] = {}
    for slot, eng in engines:
        if eng.ignore_updates:
            continue
        ch = extract_chain(eng.ast)
        if ch is None or ch.shareable == 0:
            continue
        if _backward_count(eng.ast) > 1:
            continue
        chains[slot] = ch
        buckets.setdefault(bool(eng.mutable_source), []).append(slot)
    groups: List[SharedGroup] = []
    for mutable in sorted(buckets):
        slots = buckets[mutable]
        sub = {s: chains[s] for s in slots}
        root = _build_trie(sub)
        attach = _assign_members(root, sub)
        if not attach:
            continue
        groups.append(_compile_group(root, attach, sub, mutable,
                                     engine_map, make_run, fuse))
    return groups


def _compile_group(root: PrefixNode, attach: Dict[int, PrefixNode],
                   chains: Dict[int, QueryChain], mutable: bool,
                   engine_map: dict, make_run,
                   fuse: bool) -> SharedGroup:
    ctx = Context()
    ctx.ids.reserve(0)
    shared_slots = sorted(attach)
    cloned = {s for s in shared_slots
              if _backward_count(engine_map[s].ast) == 1}
    stages: List = []
    clone_id: Optional[int] = None
    if cloned:
        # First stage: the shared source clone for backward members.
        # Depth-first propagation then lands each event's clone copy in
        # the collector only after the event's full per-branch cascade,
        # matching the monolithic clone-branch-last layout.
        clone_id = ctx.fresh_id()
        stages.append(Tee(ctx, 0, clone_id))
    prefixes: List[str] = []

    last_stream = [0]

    def emit(node: PrefixNode, input_id: int) -> None:
        compiler = Compiler(ctx=ctx, source_id=0, mutable_source=mutable)
        node.stream = compiler._compile(_fold_link(node.link, input_id),
                                        per_tuple=False)
        last_stream[0] = node.stream
        stages.extend(compiler.stages)
        prefixes.append(node.path())
        kids = [c for c in node.children.values() if c.materialized]
        for pos, kid in enumerate(kids):
            # Step operators consume their input, so every consumer but
            # one needs its own Tee copy; the last child may take the
            # stream itself only when no member reads it from the
            # collector.
            if pos == len(kids) - 1 and not node.members:
                kid_input = node.stream
            else:
                kid_input = ctx.fresh_id()
                stages.append(Tee(ctx, node.stream, kid_input))
            emit(kid, kid_input)

    mat_roots = [c for c in root.children.values() if c.materialized]
    for pos, child in enumerate(mat_roots):
        if pos == len(mat_roots) - 1:
            child_input = 0
        else:
            child_input = ctx.fresh_id()
            stages.append(Tee(ctx, 0, child_input))
        emit(child, child_input)

    members: List[tuple] = []
    class_map: Dict[frozenset, _FeedClass] = {}
    classes: List[_FeedClass] = []
    for s in shared_slots:
        node = attach[s]
        clone = clone_id if s in cloned else None
        compiler = Compiler(ctx=ctx, source_id=0, mutable_source=mutable,
                            clone_source=clone)
        plan = compiler.compile(
            chains[s].suffix_expr(node.depth, node.stream))
        members.append((s, make_run(plan, engine_map[s])))
        keep = frozenset({node.stream} if clone is None
                         else {node.stream, clone})
        cls = class_map.get(keep)
        if cls is None:
            cls = class_map[keep] = _FeedClass(keep, [])
            classes.append(cls)
        cls.slots.append(s)

    route: Dict[int, List[int]] = {}
    for ci, cls in enumerate(classes):
        for sid in cls.keep_ids:
            route.setdefault(sid, []).append(ci)
    sink = RoutingSink({sid: tuple(cis) for sid, cis in route.items()},
                       len(classes))
    prefix_plan = Plan(stages, 0, last_stream[0], ctx, bool(cloned),
                       mutable_source=mutable)
    fusion = None
    if fuse:
        from .fusion import fusion_partition
        # The prefix's own source really is the raw input, so the
        # analyzer's dormancy facts apply as-is: for an immutable
        # source the leading clone Tee / descendant scan keep the
        # dormant fast path (the stages that see the generated
        # brackets are classified by the analyzer).  Member suffix
        # plans can NOT do this — their nominal source stream is fed
        # the prefix output, brackets included, which is why make_run
        # passes fusion_assume_updates=True for them.
        fusion = fusion_partition(prefix_plan, assume_updates=mutable)
    pipeline = Pipeline(ctx, stages, sink, fusion=fusion)

    return SharedGroup(pipeline, sink, members, classes, clone_id,
                       prefixes)


# -- introspection (repro analyze --fusion) -----------------------------------


def describe_sharing(named_queries: Sequence[tuple],
                     mutable_source: bool = False) -> dict:
    """The joint shared-prefix trie of a query batch, as plain data.

    Args:
        named_queries: ``(name, query text or AST)`` pairs.

    Returns a dict mirroring the analyzer's ``report_to_dict`` shape:
    a ``prefixes`` list (one entry per trie node, with the queries
    crossing it and whether it is evaluated once), plus per-query
    attachment info.
    """
    from ..xquery.parser import parse_cached
    names = [n for n, _ in named_queries]
    chains: Dict[int, QueryChain] = {}
    excluded: Dict[str, str] = {}
    for i, (name, q) in enumerate(named_queries):
        expr = parse_cached(q) if isinstance(q, str) else q
        ch = extract_chain(expr)
        if ch is None or ch.shareable == 0:
            excluded[name] = "no shareable leading chain"
            continue
        if _backward_count(expr) > 1:
            excluded[name] = "more than one backward step"
            continue
        chains[i] = ch
    root = _build_trie(chains)
    attach = _assign_members(root, chains)
    prefix_rows: List[dict] = []

    def walk(node: PrefixNode) -> None:
        if node.link is not None:
            prefix_rows.append({
                "prefix": node.path(),
                "depth": node.depth,
                "queries": [names[i] for i in node.queries],
                "count": len(node.queries),
                "shared": node.materialized,
            })
        for child in node.children.values():
            walk(child)

    walk(root)
    return {
        "queries": len(named_queries),
        "eligible": len(chains),
        "shared": len(attach),
        "prefixes": prefix_rows,
        "attachments": {
            names[i]: attach[i].path() for i in sorted(attach)},
        "excluded": excluded,
    }
