"""Stream-protocol sanitizer: validate inter-stage event invariants.

Every pair of adjacent pipeline stages (plus the tokenizer->first-stage
and last-stage->display boundaries) speaks the update-stream protocol of
Sections II-III.  The sanitizer is an opt-in checker interposed at each
boundary (``run_xml(..., sanitize=True)``, ``REPRO_SANITIZE=1``, or
``python -m repro --sanitize``) that validates the per-substream
invariants and raises a structured
:class:`~repro.events.errors.ProtocolViolation` naming the offending
boundary, event, and substream:

* **stream discipline** — ``sS(i)`` at most once per stream number, data
  only on open streams or open update brackets, ``eS`` only with all
  elements and tuples of that substream closed;
* **well-nesting** — ``sE``/``eE`` close LIFO per substream with
  matching tags, ``sT``/``eT`` balance, and an ``eE`` carrying a node
  identity must close the ``sE`` with the same identity (oid
  discipline);
* **bracket discipline** — ``sM/sR/sB/sA`` introduce a fresh (or
  fully-closed) substream number, never one that is an open stream, an
  open bracket, or a frozen region; ``eU`` must match the open bracket's
  kind *and* target; brackets may close non-LIFO (regions interleave by
  design) but never with dangling elements;
* **freeze/hide/show ordering** — freeze and toggles only address known
  region numbers; no data and no toggle ever follows a region's freeze
  (``freeze`` is irrevocable, Section III); hide/show are idempotent.

The checker is deliberately per-boundary: each stage's output must be a
valid update stream *on its own*, which is exactly the compositionality
argument of the paper's pipeline construction.
"""

from __future__ import annotations

from typing import Dict, List, NoReturn, Optional, Sequence, Set, Tuple

from ..events.errors import ProtocolViolation
from ..events.model import (EE, ES, ET, FREEZE, HIDE, SE, SHOW, SM, SS, ST,
                            Event, matching_start)

_FIRST_UPDATE = int(SM)
_ABBREV_START = {int(k): a for k, a in
                 ((SM, "sM"), (int(SM) + 2, "sR"), (int(SM) + 4, "sB"),
                  (int(SM) + 6, "sA"))}


class BoundaryChecker:
    """Validate the event stream crossing one pipeline boundary."""

    def __init__(self, label: str,
                 stage_index: Optional[int] = None) -> None:
        self.label = label
        #: Boundary index (0 = source -> stage 0, n = last stage ->
        #: sink); ``None`` for standalone checks.  Carried into every
        #: :class:`~repro.events.errors.ProtocolViolation`.
        self.stage_index = stage_index
        self.count = 0
        self.open_streams: Set[int] = set()
        self.closed_streams: Set[int] = set()
        #: substream id -> stack of (tag, oid) for its open elements.
        self.elems: Dict[int, List[Tuple[Optional[str], Optional[int]]]] \
            = {}
        self.tuples: Dict[int, int] = {}   # substream id -> open tuples
        #: open bracket sub -> (start kind, target id)
        self.open_brackets: Dict[int, Tuple[int, int]] = {}
        self.ever_subs: Set[int] = set()
        self.frozen: Set[int] = set()
        self.hidden: Set[int] = set()

    # -- error helper -----------------------------------------------------

    def _fail(self, message: str, rule: str, e: Optional[Event],
              stream: Optional[int] = None) -> NoReturn:
        raise ProtocolViolation(message, rule=rule, stage=self.label,
                                event=e, index=self.count, stream=stream,
                                stage_index=self.stage_index)

    def _known(self, i: int) -> bool:
        return i in self.open_streams or i in self.open_brackets

    def _region_known(self, i: int) -> bool:
        return (i in self.ever_subs or i in self.open_streams
                or i in self.closed_streams)

    # -- the checker -------------------------------------------------------

    def feed(self, e: Event) -> None:
        kind = e.kind
        if kind < _FIRST_UPDATE:
            self._data(e, kind)
        elif kind == FREEZE:
            self._freeze(e)
        elif kind in (HIDE, SHOW):
            self._toggle(e, kind)
        elif e.kind.value & 1:  # sM/sR/sB/sA (odd kinds >= 7)
            self._bracket_start(e)
        else:
            self._bracket_end(e)
        self.count += 1

    def _data(self, e: Event, kind: int) -> None:
        i = e.id
        if kind == SS:
            if i in self.open_streams:
                self._fail("stream {} opened twice".format(i),
                           "stream-discipline", e, stream=i)
            if i in self.closed_streams:
                self._fail("stream {} reopened after its eS".format(i),
                           "stream-discipline", e, stream=i)
            self.open_streams.add(i)
            return
        if i in self.frozen:
            self._fail("data event on frozen region {}".format(i),
                       "frozen-region-data", e, stream=i)
        if not self._known(i):
            self._fail("event on substream {} which is neither an open "
                       "stream nor an open update bracket".format(i),
                       "stream-discipline", e, stream=i)
        if kind == ES:
            if self.elems.get(i):
                self._fail("eS({}) with {} unclosed element(s)".format(
                    i, len(self.elems[i])), "element-nesting", e,
                    stream=i)
            if self.tuples.get(i):
                self._fail("eS({}) with an open tuple".format(i),
                           "tuple-nesting", e, stream=i)
            self.open_streams.discard(i)
            self.closed_streams.add(i)
        elif kind == ST:
            self.tuples[i] = self.tuples.get(i, 0) + 1
        elif kind == ET:
            if not self.tuples.get(i):
                self._fail("eT({}) without an open tuple".format(i),
                           "tuple-nesting", e, stream=i)
            self.tuples[i] -= 1
        elif kind == SE:
            self.elems.setdefault(i, []).append((e.tag, e.oid))
        elif kind == EE:
            stack = self.elems.get(i)
            if not stack:
                self._fail("eE({}) with no open element".format(i),
                           "element-nesting", e, stream=i)
            tag, oid = stack.pop()
            if tag is not None and e.tag is not None and tag != e.tag:
                self._fail("eE tag {!r} closes sE tag {!r} on substream "
                           "{}".format(e.tag, tag, i), "element-nesting",
                           e, stream=i)
            if oid is not None and e.oid is not None and oid != e.oid:
                self._fail("eE node identity {} closes sE identity {} "
                           "on substream {}".format(e.oid, oid, i),
                           "oid-discipline", e, stream=i)
        # CD: substream membership was the only constraint.

    def _bracket_start(self, e: Event) -> None:
        sub, target = e.sub, e.id
        if sub is None:
            self._fail("update start without a substream number",
                       "bracket-discipline", e)
        if sub in self.open_brackets:
            self._fail("bracket substream {} opened twice".format(sub),
                       "bracket-discipline", e, stream=sub)
        if sub in self.frozen:
            self._fail("bracket reuses frozen region {}".format(sub),
                       "region-reuse-after-freeze", e, stream=sub)
        if sub in self.open_streams:
            self._fail("bracket substream {} clashes with an open "
                       "stream".format(sub), "bracket-discipline", e,
                       stream=sub)
        if self.elems.get(sub):
            self._fail("bracket substream {} reopened with dangling "
                       "elements".format(sub), "element-nesting", e,
                       stream=sub)
        if not self._region_known(target) and target not in self.frozen:
            self._fail("update targets unknown region {}".format(target),
                       "unknown-target", e, stream=target)
        # Updates targeting frozen regions are void but legal
        # (Section V: the consumer ignores them downstream).
        self.open_brackets[sub] = (int(e.kind), target)
        self.ever_subs.add(sub)

    def _bracket_end(self, e: Event) -> None:
        sub = e.sub
        entry = self.open_brackets.get(sub) if sub is not None else None
        if entry is None:
            self._fail("bracket end for substream {} which has no open "
                       "bracket".format(sub), "bracket-discipline", e,
                       stream=sub)
        start_kind, target = entry
        if int(matching_start(e.kind)) != start_kind:
            self._fail("{} closes a {} bracket on substream {}".format(
                e.abbrev, _ABBREV_START.get(start_kind, start_kind),
                sub), "bracket-discipline", e, stream=sub)
        if target != e.id:
            self._fail("bracket on substream {} closes with target {} "
                       "but opened with target {}".format(sub, e.id,
                                                          target),
                       "bracket-discipline", e, stream=sub)
        if self.elems.get(sub):
            self._fail("bracket {} closes with {} unclosed element(s)"
                       .format(sub, len(self.elems[sub])),
                       "element-nesting", e, stream=sub)
        if self.tuples.get(sub):
            self._fail("bracket {} closes with an open tuple".format(sub),
                       "tuple-nesting", e, stream=sub)
        del self.open_brackets[sub]

    def _freeze(self, e: Event) -> None:
        i = e.id
        if i in self.frozen:
            return  # freeze is idempotent
        if not self._region_known(i):
            self._fail("freeze of unknown region {}".format(i),
                       "unknown-target", e, stream=i)
        if i in self.open_brackets:
            self._fail("freeze of region {} while its bracket is still "
                       "open".format(i), "freeze-ordering", e, stream=i)
        self.frozen.add(i)

    def _toggle(self, e: Event, kind: int) -> None:
        i = e.id
        if i in self.frozen:
            self._fail("{} of region {} after its freeze".format(
                e.abbrev, i), "toggle-after-freeze", e, stream=i)
        if not self._region_known(i):
            self._fail("{} of unknown region {}".format(e.abbrev, i),
                       "unknown-target", e, stream=i)
        if kind == HIDE:
            self.hidden.add(i)
        else:
            self.hidden.discard(i)

    def finish(self) -> None:
        """End-of-stream checks: everything opened must have closed."""
        if self.open_brackets:
            self._fail("update bracket(s) left open at end of stream: "
                       "{}".format(sorted(self.open_brackets)),
                       "bracket-discipline", None,
                       stream=min(self.open_brackets))
        if self.open_streams:
            self._fail("stream(s) never closed: {}".format(
                sorted(self.open_streams)), "stream-discipline", None,
                stream=min(self.open_streams))
        dangling = {i: len(s) for i, s in self.elems.items() if s}
        if dangling:
            self._fail("unclosed elements at end of stream: {}".format(
                dangling), "element-nesting", None,
                stream=min(dangling))


def boundary_checkers(stages: Sequence, sink) -> List[BoundaryChecker]:
    """One checker per pipeline boundary, with human-readable labels.

    Boundary ``0`` sits between the event source (tokenizer or caller)
    and the first stage; boundary ``n`` between the last stage and the
    display sink.
    """
    from ..obs.recorder import stage_identities
    names = [ident.label for ident in stage_identities(stages)]
    sink_name = type(sink).__name__.lower()
    endpoints = ["source"] + names + [sink_name]
    return [BoundaryChecker("{} -> {}".format(a, b), stage_index=i)
            for i, (a, b) in enumerate(zip(endpoints, endpoints[1:]))]


def check_stream(events, label: str = "stream",
                 finish: bool = True) -> BoundaryChecker:
    """Run one checker over a complete event sequence (test helper)."""
    checker = BoundaryChecker(label)
    for e in events:
        checker.feed(e)
    if finish:
        checker.finish()
    return checker
