"""Document schemas: element content models for static analysis.

The projection layer (PR 6) introduced :class:`ElementSchema` as a bare
``tag -> children`` reachability map with two hand-coded instances
(xmark / dblp).  The type checker (``analysis/types.py``) needs more —
content-model *cardinality* (which child positions may repeat, i.e. the
schema's mutable regions for insert effects), text content, a known
root, and a closed-world flag that licenses emptiness proofs — and it
needs to run against *any* document class, so this module promotes the
class and adds a small generic DTD parser
(:meth:`ElementSchema.from_dtd`).

The supported DTD subset is the classic element-declaration language:

``<!ELEMENT tag EMPTY | ANY | (#PCDATA) | (#PCDATA|a|b)* | regexp>``

where ``regexp`` combines element names with ``,`` (sequence), ``|``
(choice), parentheses, and the occurrence markers ``?``, ``*``, ``+``.
``<!ATTLIST>``/``<!ENTITY>``/``<!NOTATION>`` declarations and comments
are skipped; anything else is a :class:`SchemaError` (the CLI maps it to
a structured non-zero exit).  The regexp is *flattened* to the three
facts the analyses consume per tag: the set of child element tags, the
subset of those that may occur more than once (a ``*``/``+`` position —
the only places where a schema-valid stream update may insert
siblings), and whether character data is allowed.
"""

from __future__ import annotations

import os
import re
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, \
    Tuple, Union


class SchemaError(ValueError):
    """A DTD source could not be read or parsed."""


class ElementSchema:
    """DTD-like refinement: which elements can occur under which.

    Args:
        children: ``tag -> iterable of child tags``.  Tags absent from
            the map are *unknown*: the analyses stay conservative under
            them.  The transitive descendant-reachability closure is
            precomputed once.
        repeatable: optional ``tag -> child tags that may occur more
            than once`` under that tag (the schema's *mutable regions*
            for insert effects).  When omitted, every child is assumed
            repeatable — the conservative default for hand-built maps.
        text: optional iterable of tags whose content model allows
            character data (``#PCDATA``).  ``None`` means unknown:
            every tag may contain text.
        root: the document root tag, when known (a DTD's first declared
            element by convention).
        closed: when true, the map declares *every* element the document
            class can contain, so a tag outside it provably never occurs
            — the premise of static-emptiness proofs.  Hand-built maps
            default to the open-world reading.
    """

    def __init__(self, children: Mapping[str, Iterable[str]],
                 repeatable: Optional[Mapping[str, Iterable[str]]] = None,
                 text: Optional[Iterable[str]] = None,
                 root: Optional[str] = None,
                 closed: bool = False) -> None:
        self._children: Dict[str, FrozenSet[str]] = {
            tag: frozenset(kids) for tag, kids in children.items()}
        self._repeatable: Dict[str, FrozenSet[str]] = (
            {tag: self._children[tag] for tag in self._children}
            if repeatable is None
            else {tag: frozenset(kids) for tag, kids in repeatable.items()})
        self._text: Optional[FrozenSet[str]] = (
            None if text is None else frozenset(text))
        self.root: Optional[str] = root
        self.closed: bool = closed
        self._descendants: Dict[str, FrozenSet[str]] = {}
        for tag in self._children:
            self._descendants[tag] = self._close(tag)

    def _close(self, tag: str) -> FrozenSet[str]:
        seen: set = set()
        frontier = list(self._children.get(tag, ()))
        while frontier:
            t = frontier.pop()
            if t in seen:
                continue
            seen.add(t)
            frontier.extend(self._children.get(t, ()))
        return frozenset(seen)

    # -- reachability --------------------------------------------------------

    def children(self, tag: str) -> Optional[FrozenSet[str]]:
        return self._children.get(tag)

    def descendants(self, tag: str) -> Optional[FrozenSet[str]]:
        return self._descendants.get(tag)

    @property
    def tags(self) -> FrozenSet[str]:
        """Every declared element tag."""
        return frozenset(self._children)

    def children_map(self) -> Dict[str, FrozenSet[str]]:
        """The raw ``tag -> children`` map (for round-trip fixtures)."""
        return dict(self._children)

    # -- content-model cardinality / text ------------------------------------

    def is_repeatable(self, parent: str, child: str) -> bool:
        """May ``child`` occur more than once under ``parent``?

        Unknown parents answer ``True`` (conservative: an insert there
        cannot be ruled out).
        """
        if parent not in self._children:
            return True
        return child in self._repeatable.get(parent, frozenset())

    def repeatable_under(self, parent: str) -> Optional[FrozenSet[str]]:
        if parent not in self._children:
            return None
        return self._repeatable.get(parent, frozenset())

    def rigid_under(self, parent: str) -> FrozenSet[str]:
        """Children of ``parent`` whose count the content model fixes."""
        kids = self._children.get(parent)
        if kids is None:
            return frozenset()
        return kids - self._repeatable.get(parent, frozenset())

    def rigid_parents(self, child: str) -> FrozenSet[str]:
        """Declared parents under which ``child`` may *not* repeat."""
        return frozenset(p for p, kids in self._children.items()
                         if child in kids and not self.is_repeatable(p, child))

    def allows_text(self, tag: str) -> bool:
        """May ``tag`` contain character data?  Unknown tags: yes."""
        if self._text is None or tag not in self._children:
            return True
        return tag in self._text

    # -- DTD parsing ---------------------------------------------------------

    @classmethod
    def from_dtd(cls, source: Union[str, "os.PathLike[str]"]
                 ) -> "ElementSchema":
        """Parse a DTD file (or inline DTD text) into a closed schema.

        ``source`` is treated as a path when it names an existing file
        or ends in ``.dtd``; otherwise it is parsed as DTD text.  The
        first declared element becomes the schema root.
        """
        text = _read_dtd_source(source)
        decls = _parse_dtd(text)
        children = {tag: kids for tag, (kids, _, _) in decls.items()}
        repeatable = {tag: rep for tag, (_, rep, _) in decls.items()}
        has_text = frozenset(tag for tag, (_, _, pcdata) in decls.items()
                             if pcdata)
        root = next(iter(decls)) if decls else None
        return cls(children, repeatable=repeatable, text=has_text,
                   root=root, closed=True)


def _read_dtd_source(source: Union[str, "os.PathLike[str]"]) -> str:
    path: Optional[str] = None
    if isinstance(source, str):
        if os.path.exists(source) or source.endswith(".dtd"):
            path = source
    else:
        path = os.fspath(source)
    if path is None:
        return str(source)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        raise SchemaError("cannot read DTD {!r}: {}".format(path, exc))


_COMMENT = re.compile(r"<!--.*?-->", re.DOTALL)
_DECL = re.compile(r"<!([A-Z]+)\s+(.*?)>", re.DOTALL)
_NAME = re.compile(r"[A-Za-z_:][A-Za-z0-9_.:-]*")


def _parse_dtd(text: str
               ) -> "Dict[str, Tuple[Tuple[str, ...], FrozenSet[str], bool]]":
    """``tag -> (children, repeatable children, allows #PCDATA)``."""
    stripped = _COMMENT.sub(" ", text)
    decls: Dict[str, Tuple[Tuple[str, ...], FrozenSet[str], bool]] = {}
    pos = 0
    for match in _DECL.finditer(stripped):
        if stripped[pos:match.start()].strip():
            raise SchemaError("unexpected DTD content: {!r}".format(
                stripped[pos:match.start()].strip()[:60]))
        pos = match.end()
        keyword, body = match.group(1), match.group(2).strip()
        if keyword in ("ATTLIST", "ENTITY", "NOTATION"):
            continue
        if keyword != "ELEMENT":
            raise SchemaError(
                "unsupported declaration <!{} ...>".format(keyword))
        name_match = _NAME.match(body)
        if name_match is None:
            raise SchemaError(
                "malformed <!ELEMENT ...>: {!r}".format(body[:60]))
        tag = name_match.group(0)
        if tag in decls:
            raise SchemaError("duplicate <!ELEMENT {}>".format(tag))
        model = body[name_match.end():].strip()
        if not model:
            raise SchemaError("<!ELEMENT {}> has no content model".format(tag))
        decls[tag] = _parse_content_model(tag, model)
    if stripped[pos:].strip():
        raise SchemaError("unexpected DTD content: {!r}".format(
            stripped[pos:].strip()[:60]))
    if not decls:
        raise SchemaError("no <!ELEMENT ...> declarations found")
    return decls


def _parse_content_model(tag: str, model: str
                         ) -> Tuple[Tuple[str, ...], FrozenSet[str], bool]:
    if model == "EMPTY":
        return (), frozenset(), False
    if model == "ANY":
        raise SchemaError(
            "<!ELEMENT {} ANY> is unsupported: ANY defeats the closed-"
            "world reachability the analyses depend on".format(tag))
    tokens = _tokenize_model(tag, model)
    parser = _ModelParser(tag, tokens)
    children, repeated, pcdata = parser.parse()
    return tuple(children), frozenset(repeated), pcdata


_MODEL_TOKEN = re.compile(r"\s*(#PCDATA|[(),|?*+]|[A-Za-z_:][A-Za-z0-9_.:-]*)")


def _tokenize_model(tag: str, model: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(model):
        match = _MODEL_TOKEN.match(model, pos)
        if match is None:
            raise SchemaError("<!ELEMENT {}>: cannot tokenize {!r}".format(
                tag, model[pos:pos + 20]))
        token = match.group(1)
        if token:
            tokens.append(token)
        pos = match.end()
    return tokens


class _ModelParser:
    """Recursive-descent content-model parser, flattening as it goes.

    Returns, for the whole model, the ordered child-name list, the set
    of children that may occur more than once, and the #PCDATA flag.
    A child counts as repeatable when it (or any enclosing group) is
    starred (``*``/``+``) or when the model mentions it twice.
    """

    def __init__(self, tag: str, tokens: List[str]) -> None:
        self.tag = tag
        self.tokens = tokens
        self.pos = 0
        self.children: List[str] = []
        self.counts: Dict[str, int] = {}
        self.repeated: set = set()
        self.pcdata = False

    def _fail(self, why: str) -> "SchemaError":
        return SchemaError("<!ELEMENT {}>: {}".format(self.tag, why))

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise self._fail("unexpected end of content model")
        self.pos += 1
        return token

    def parse(self) -> Tuple[List[str], set, bool]:
        self._particle(repeat=False)
        if self._peek() is not None:
            raise self._fail("trailing tokens {!r}".format(
                self.tokens[self.pos:]))
        for name, count in self.counts.items():
            if count > 1:
                self.repeated.add(name)
        return self.children, self.repeated, self.pcdata

    def _particle(self, repeat: bool) -> None:
        token = self._next()
        if token == "(":
            self._group(repeat)
        elif token == "#PCDATA":
            self.pcdata = True
        elif _NAME.fullmatch(token):
            self._record(token, self._occurrence(repeat))
        else:
            raise self._fail("unexpected token {!r}".format(token))

    def _group(self, repeat: bool) -> None:
        # Members first; the group's own ?/*/+ follows the ")".
        members_start = len(self.children)
        self._particle(repeat)
        while self._peek() in (",", "|"):
            self._next()
            self._particle(repeat)
        if self._next() != ")":
            raise self._fail("expected ')'")
        if self._occurrence(repeat):
            for name in self.children[members_start:]:
                self.repeated.add(name)

    def _occurrence(self, repeat: bool) -> bool:
        """Consume a ?/*/+ marker; return 'may occur more than once'."""
        token = self._peek()
        if token in ("?", "*", "+"):
            self._next()
            return repeat or token in ("*", "+")
        return repeat

    def _record(self, name: str, repeated: bool) -> None:
        if name not in self.counts:
            self.children.append(name)
        self.counts[name] = self.counts.get(name, 0) + 1
        if repeated:
            self.repeated.add(name)


def known_schema(name: "Optional[Union[str, ElementSchema]]"
                 ) -> Optional[ElementSchema]:
    """Resolve a schema argument.

    Accepts ``None`` / an :class:`ElementSchema` (passed through), the
    workload names ``"xmark"`` / ``"dblp"``, or a path to a ``.dtd``
    file (parsed with :meth:`ElementSchema.from_dtd`).
    """
    if name is None or isinstance(name, ElementSchema):
        return name
    if name == "xmark":
        from ..data.xmark import document_schema
    elif name == "dblp":
        from ..data.dblp import document_schema
    elif name.endswith(".dtd") or os.path.sep in name:
        return ElementSchema.from_dtd(name)
    else:
        raise ValueError("unknown schema {!r} (expected 'xmark', 'dblp', "
                         "a .dtd path, or an ElementSchema)".format(name))
    return document_schema()
