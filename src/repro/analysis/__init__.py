"""Static plan analysis and stream-protocol sanitation.

Two complementary checkers for compiled pipelines:

* :mod:`~repro.analysis.static_plan` — analyze a compiled plan *without
  running it*: derive which update brackets each stage will track and
  declare, precompute the fix map (which region numbers stay mutable
  after end-of-stream), classify per-stage memory behaviour, and lint
  the plan (dormant fast paths, no-op stages, undeclared terminal
  regions).
* :mod:`~repro.analysis.sanitize` — validate the event protocol at every
  stage boundary at run time (``sanitize=True`` / ``REPRO_SANITIZE=1``).
* :mod:`~repro.analysis.types` — schema-aware regular-expression type
  inference over compiled plans: per-stage element languages, static
  emptiness proofs, dead-stage elimination, and update-effect checks
  against an :class:`~repro.analysis.schema.ElementSchema` (built by
  hand or parsed from a DTD).
"""

from .sanitize import BoundaryChecker, boundary_checkers, check_stream
from .schema import ElementSchema, SchemaError, known_schema
from .static_plan import (BracketFamily, PlanReport, StageReport,
                          analyze_plan, analyze_query, render_report,
                          report_to_dict, verify_against_runtime)
from .types import (StageTypeReport, StreamType, TypeCheckError,
                    TypeReport, constant_empty_plan, infer_types,
                    optimize_plan, verify_types_against_runtime)

__all__ = [
    "BoundaryChecker",
    "boundary_checkers",
    "check_stream",
    "BracketFamily",
    "PlanReport",
    "StageReport",
    "analyze_plan",
    "analyze_query",
    "render_report",
    "report_to_dict",
    "verify_against_runtime",
    "ElementSchema",
    "SchemaError",
    "known_schema",
    "StreamType",
    "StageTypeReport",
    "TypeReport",
    "TypeCheckError",
    "infer_types",
    "optimize_plan",
    "constant_empty_plan",
    "verify_types_against_runtime",
]
