"""Regular-expression type inference and effect checking over plans.

Cheney's *Regular Expression Subtyping for XML Query and Update
Languages* (PAPERS.md) types XQuery/XQuery-Update expressions against a
regular-expression schema; this module is the stream-algebra analogue
for compiled XFlux plans.  Every virtual stream of a plan carries a
forest of items; under a document schema (:class:`ElementSchema`) we can
bound, per stream, which element labels and text that forest may
contain.  The abstraction is deliberately coarse — a stream type is the
star-closure ``(l1 | l2 | ... | #text)*`` over a finite label set —
because that is exactly what the three consumers need:

* **emptiness**: a stream whose label set is empty provably carries no
  content, so a step whose tag is unreachable under the schema makes
  every downstream forest empty.  The compiler replaces such dead
  stages with :class:`~repro.core.transformer.StructuralRelay` (and a
  statically-empty *plan* with a single relay), the multi-query
  executor never feeds provably-empty members, and the projection
  layer's reachability closure is the same judgment in path form.
* **per-stage types**: ``repro analyze --types`` surfaces each stage's
  inferred input/output languages next to its declared
  :meth:`~repro.core.transformer.StateTransformer.type_facts`.
* **effect checks**: each stage's declared ``sM/sR/sB/sA`` bracket
  specs are validated structurally (malformed kinds, freeze modes,
  dangling parent references, unknown compile-time targets — the class
  of mistakes the runtime sanitizer can only reject mid-stream) and
  against the schema's *mutability regions*: an insert effect anchored
  at elements whose content-model position is fixed (no ``*``/``+``)
  is flagged, and an effect targeting a statically-empty stream can
  never fire.

Soundness (DESIGN.md section 12): types only ever over-approximate — a
non-empty inferred type promises nothing, but an *empty* inferred type
is a proof, provided the schema is authoritative for the tags it
declares (undeclared tags stay unknown and poison precision, never
soundness).  Inference is refused for mutable-source plans: an update
stream may insert elements at positions the static document type does
not predict.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterable, List,
                    Optional, Sequence, Tuple, Union)

from ..core.transformer import StateTransformer, StructuralRelay
from ..events.model import CD, SE
from ..obs.recorder import stage_identities
from .schema import ElementSchema, known_schema

if TYPE_CHECKING:  # plan types only; imported lazily at run time
    from ..xquery.compiler import Plan

__all__ = [
    "StreamType", "StageTypeReport", "TypeReport", "TypeCheckError",
    "infer_types", "optimize_plan", "constant_empty_plan",
    "verify_types_against_runtime",
]


class TypeCheckError(ValueError):
    """Type inference cannot be applied to this plan."""


class StreamType:
    """The content language of one virtual stream: ``(l1|...|#text)*``.

    Attributes:
        labels: element tags the forest may contain at top level, with
            schema-governed content (they came from the document).
        ctors: element tags whose *content* is not schema-governed —
            query-constructed elements, or document elements reached
            through a part of the schema that is unknown.  Navigating
            into them loses precision, never soundness.
        text: whether top-level character data may occur.
        top: unknown language — anything may occur (the lattice top).
    """

    __slots__ = ("labels", "ctors", "text", "top")

    def __init__(self, labels: Iterable[str] = (),
                 ctors: Iterable[str] = (),
                 text: bool = False, top: bool = False) -> None:
        self.labels: FrozenSet[str] = frozenset(labels)
        self.ctors: FrozenSet[str] = frozenset(ctors)
        self.text = bool(text)
        self.top = bool(top)

    @property
    def is_empty(self) -> bool:
        return not (self.top or self.text or self.labels or self.ctors)

    def union(self, other: "StreamType") -> "StreamType":
        if self.top or other.top:
            return TOP
        return StreamType(self.labels | other.labels,
                          self.ctors | other.ctors,
                          self.text or other.text)

    def describe(self) -> str:
        if self.top:
            return "any*"
        if self.is_empty:
            return "()"
        atoms = sorted(self.labels)
        atoms += sorted("<{}>".format(t) for t in self.ctors)
        if self.text:
            atoms.append("#text")
        return "({})*".format(" | ".join(atoms))

    def size(self) -> int:
        """Number of atoms in the language (for the experiments table)."""
        return len(self.labels) + len(self.ctors) + (1 if self.text else 0)

    def to_dict(self) -> dict:
        return {
            "labels": sorted(self.labels),
            "ctors": sorted(self.ctors),
            "text": self.text,
            "top": self.top,
            "empty": self.is_empty,
            "describe": self.describe(),
        }

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, StreamType)
                and self.labels == other.labels
                and self.ctors == other.ctors
                and self.text == other.text and self.top == other.top)

    def __hash__(self) -> int:
        return hash((self.labels, self.ctors, self.text, self.top))

    def __repr__(self) -> str:
        return "StreamType({})".format(self.describe())


EMPTY_TYPE = StreamType()
TEXT_TYPE = StreamType(text=True)
TOP = StreamType(top=True)


def _navigate(base: StreamType, axis: str, tag: Optional[str],
              schema: Optional[ElementSchema]) -> StreamType:
    """Transfer function of a child/descendant step."""
    if base.is_empty:
        return EMPTY_TYPE
    labels: set = set()
    unknown = base.top or bool(base.ctors)
    if schema is None:
        unknown = unknown or bool(base.labels)
    else:
        for label in base.labels:
            reach = (schema.children(label) if axis == "child"
                     else schema.descendants(label))
            if reach is None:
                unknown = True
            else:
                labels |= reach
    if tag is not None:
        labels &= {tag}
    if unknown:
        if tag is None:
            return TOP
        return StreamType(labels, ctors=(tag,))
    return StreamType(labels)


class StageTypeReport:
    """Inferred types for one stage."""

    def __init__(self, index: int, label: str, kind: str,
                 inputs: "List[Tuple[int, StreamType]]",
                 output_id: int, output: StreamType,
                 dead: bool, proof: Optional[str]) -> None:
        self.index = index
        self.label = label
        self.kind = kind
        self.inputs = inputs
        self.output_id = output_id
        self.output = output
        #: Provably-empty output *and* replaceable by a StructuralRelay.
        self.dead = dead
        self.proof = proof

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "inputs": [{"stream": sid, "type": t.to_dict()}
                       for sid, t in self.inputs],
            "output_stream": self.output_id,
            "output": self.output.to_dict(),
            "dead": self.dead,
            "proof": self.proof,
        }


class TypeReport:
    """The complete inference result for one plan."""

    def __init__(self, plan, schema: Optional[ElementSchema],
                 schema_label: Optional[str],
                 stream_types: Dict[int, StreamType],
                 stages: List[StageTypeReport],
                 proofs: List[str],
                 effect_lints: List[dict]) -> None:
        self.plan = plan
        self.schema = schema
        self.schema_label = schema_label
        self.stream_types = stream_types
        self.stages = stages
        self.proofs = proofs
        self.effect_lints = effect_lints
        self.source_type = stream_types.get(plan.source_id, TOP)
        self.result_type = stream_types.get(plan.result_id, TOP)
        #: The whole plan provably produces no visible content.
        self.statically_empty = self.result_type.is_empty

    @property
    def dead_stages(self) -> List[int]:
        return [s.index for s in self.stages if s.dead]

    def to_dict(self) -> dict:
        return {
            "schema": self.schema_label,
            "closed_schema": bool(self.schema is not None
                                  and self.schema.closed),
            "source_type": self.source_type.to_dict(),
            "result_type": self.result_type.to_dict(),
            "statically_empty": self.statically_empty,
            "dead_stages": self.dead_stages,
            "stages": [s.to_dict() for s in self.stages],
            "proofs": list(self.proofs),
            "effect_lints": list(self.effect_lints),
        }

    def render(self) -> str:
        lines = ["type report (schema: {})".format(
            self.schema_label or
            ("<inline>" if self.schema is not None else "none"))]
        lines.append("  source {}: {}".format(
            self.plan.source_id, self.source_type.describe()))
        for s in self.stages:
            ins = ", ".join("{}:{}".format(sid, t.describe())
                            for sid, t in s.inputs)
            marker = "  [dead]" if s.dead else ""
            lines.append("  [{:2d}] {:<28} {} -> {}:{}{}".format(
                s.index, s.label, ins or "-", s.output_id,
                s.output.describe(), marker))
        lines.append("  result {}: {}".format(
            self.plan.result_id, self.result_type.describe()))
        lines.append("  statically empty: {}".format(
            "YES" if self.statically_empty else "no"))
        if self.proofs:
            lines.append("  emptiness proofs:")
            for p in self.proofs:
                lines.append("    - {}".format(p))
        if self.effect_lints:
            lines.append("  effect lints:")
            for lint in self.effect_lints:
                lines.append("    - [{}] stage {} ({}): {}".format(
                    lint["severity"], lint["stage"], lint["label"],
                    lint["message"]))
        return "\n".join(lines)


# -- inference ---------------------------------------------------------------

#: Stages whose event behaviour on a provably-empty output is exactly a
#: structural relay (forward sS/eS/sT/eT, nothing else), making them
#: replaceable by :class:`StructuralRelay`.  Predicates ("filter") emit
#: optimistic regions that are retracted by item end, so their *final*
#: output is empty but their event stream is not — they are proven
#: empty (and replaced) too, which suppresses only transient output.
_RELAY_SAFE_KINDS = frozenset(("step", "filter", "text", "flag", "empty"))


def _condition_type(cond, item_type: StreamType,
                    schema: Optional[ElementSchema]) -> StreamType:
    """Type the output of one predicate condition chain."""
    stages = getattr(cond, "stages", None)
    if stages:
        local: Dict[int, StreamType] = {cond.input_id: item_type}
        for stage in stages:
            _transfer(stage, local, schema)
        return local.get(cond.output_id, TOP)
    # A fused condition with no retained chain: it matches child
    # elements of the item by tag (None = wildcard) and emits a flag.
    base = _navigate(item_type, "child", getattr(cond, "tag", None), schema)
    return EMPTY_TYPE if base.is_empty else TEXT_TYPE


def _transfer(stage: StateTransformer, types: Dict[int, StreamType],
              schema: Optional[ElementSchema],
              proofs: Optional[List[str]] = None,
              label: str = "") -> StreamType:
    """Apply one stage's declared type transfer; update ``types``."""
    facts = stage.type_facts()
    kind = facts.get("kind", "opaque")
    ins = [types.get(sid, EMPTY_TYPE) for sid in stage.input_ids]
    joined = EMPTY_TYPE
    for t in ins:
        joined = joined.union(t)
    if kind == "step":
        out = _navigate(joined, facts.get("axis", "child"),
                        facts.get("tag"), schema)
        if proofs is not None and out.is_empty and not joined.is_empty:
            tag = facts.get("tag")
            proofs.append(
                "{}: no {} named {!r} reachable from {} under the schema"
                .format(label, facts.get("axis", "child"),
                        tag if tag is not None else "*",
                        joined.describe()))
    elif kind == "copy":
        out = joined
    elif kind == "filter":
        out = joined
        conditions = getattr(stage, "conditions", ())
        combine = facts.get("combine", "and")
        if not joined.is_empty and conditions:
            dead_conds = [i for i, cond in enumerate(conditions)
                          if _condition_type(cond, joined, schema).is_empty]
            never_true = (bool(dead_conds) if combine == "and"
                          else len(dead_conds) == len(conditions))
            if never_true:
                out = EMPTY_TYPE
                if proofs is not None:
                    proofs.append(
                        "{}: condition{} {} can never be true (condition "
                        "path is empty under the schema)".format(
                            label, "s" if len(dead_conds) > 1 else "",
                            dead_conds))
    elif kind in ("text", "flag", "literal"):
        out = EMPTY_TYPE if joined.is_empty else TEXT_TYPE
    elif kind == "union":
        out = joined
    elif kind == "construct":
        tag = facts.get("tag", "")
        if facts.get("always"):
            out = StreamType(ctors=(tag,))
        else:
            out = EMPTY_TYPE if joined.is_empty \
                else StreamType(ctors=(tag,))
    elif kind == "aggregate":
        out = TEXT_TYPE
    elif kind == "join":
        keep = facts.get("keep", 0)
        requires = facts.get("requires", 1)
        required = (ins[requires] if requires < len(ins) else TOP)
        out = EMPTY_TYPE if required.is_empty else \
            (ins[keep] if keep < len(ins) else TOP)
        if proofs is not None and out.is_empty and not joined.is_empty:
            proofs.append("{}: join input {} is empty — no ancestor can "
                          "ever match".format(label, requires))
    elif kind == "empty":
        out = EMPTY_TYPE
    else:  # "opaque" and anything unknown
        out = TOP
    types[stage.output_id] = out
    return out


def infer_types(plan: "Plan", schema=None,
                schema_label: Optional[str] = None) -> TypeReport:
    """Run type inference over a compiled plan.

    Args:
        plan: a :class:`repro.xquery.compiler.Plan` for an immutable
            source (mutable update sources are refused: inserted
            content is not bounded by the document type).
        schema: anything :func:`repro.analysis.schema.known_schema`
            accepts (``None`` types everything as unknown).
        schema_label: display name recorded in the report.
    """
    if plan.mutable_source:
        raise TypeCheckError(
            "type inference is unsound for mutable update sources: "
            "embedded sM/sR/sB/sA updates may insert content the "
            "static document type does not bound (compile the plan "
            "without --updates to analyze it)")
    if schema_label is None and isinstance(schema, str):
        schema_label = schema
    schema = known_schema(schema)
    types: Dict[int, StreamType] = {}
    if schema is not None and schema.root is not None:
        types[plan.source_id] = StreamType(labels=(schema.root,))
    else:
        types[plan.source_id] = TOP
    identities = stage_identities(plan.stages)
    proofs: List[str] = []
    # Forward dataflow over the stage list.  Stream numbers are
    # single-assignment and the compiler emits producers before
    # consumers, but iterate to a fixpoint anyway — the transfer is
    # deterministic, so repeated passes converge on a DAG.
    for _ in range(len(plan.stages) + 1):
        changed = False
        round_proofs: List[str] = []
        for idx, stage in enumerate(plan.stages):
            before = types.get(stage.output_id)
            _transfer(stage, types, schema, proofs=round_proofs,
                      label="stage [{}] {}".format(
                          idx, identities[idx].label))
            if types.get(stage.output_id) != before:
                changed = True
        proofs = round_proofs
        if not changed:
            break
    stage_reports: List[StageTypeReport] = []
    for idx, stage in enumerate(plan.stages):
        facts = stage.type_facts()
        kind = facts.get("kind", "opaque")
        out = types.get(stage.output_id, TOP)
        dead = out.is_empty and kind in _RELAY_SAFE_KINDS \
            and len(stage.input_ids) == 1
        stage_reports.append(StageTypeReport(
            index=idx, label=identities[idx].label, kind=kind,
            inputs=[(sid, types.get(sid, EMPTY_TYPE))
                    for sid in stage.input_ids],
            output_id=stage.output_id, output=out,
            dead=dead, proof=None))
    effect_lints = _check_effects(plan, types, schema, identities)
    return TypeReport(plan, schema, schema_label, types, stage_reports,
                      proofs, effect_lints)


# -- effect checking ---------------------------------------------------------

_VALID_BRACKET_KINDS = frozenset(("sM", "sR", "sB", "sA"))
_VALID_FREEZE = frozenset(("always", "never", "conditional", "derived"))
_VALID_PER = frozenset(("stream", "item", "tuple", "match", "nested"))


def _resolve_anchor(specs: Sequence[dict], spec: dict) -> Optional[int]:
    """The compile-time stream a spec's insert position anchors at.

    A concrete integer target answers directly; a ``"dynamic"`` target
    with a ``parent`` reference anchors inside the parent spec's region,
    so the parent's target stream is the anchor.
    """
    seen = 0
    while True:
        target = spec.get("target")
        if isinstance(target, int):
            return target
        parent = spec.get("parent")
        if not isinstance(parent, int) or not 0 <= parent < len(specs):
            return None
        spec = specs[parent]
        seen += 1
        if seen > len(specs):  # cyclic parent chain (malformed)
            return None


def _check_effects(plan: "Plan", types: Dict[int, StreamType],
                   schema: Optional[ElementSchema],
                   identities) -> List[dict]:
    """Validate declared bracket specs structurally and against the
    schema's mutability regions."""
    lints: List[dict] = []

    def add(severity: str, idx: int, spec_idx: int, message: str) -> None:
        lints.append({
            "severity": severity, "stage": idx,
            "label": identities[idx].label, "spec": spec_idx,
            "message": message,
        })

    for idx, stage in enumerate(plan.stages):
        specs = tuple(stage.static_facts().get("brackets", ()))
        for j, spec in enumerate(specs):
            kind = spec.get("kind")
            if kind not in _VALID_BRACKET_KINDS:
                add("error", idx, j,
                    "unknown bracket kind {!r} (expected one of {})"
                    .format(kind, sorted(_VALID_BRACKET_KINDS)))
                continue
            if spec.get("freeze") not in _VALID_FREEZE:
                add("error", idx, j, "invalid freeze mode {!r}".format(
                    spec.get("freeze")))
            if spec.get("per") not in _VALID_PER:
                add("error", idx, j, "invalid cardinality {!r}".format(
                    spec.get("per")))
            for field in ("target", "sub"):
                value = spec.get(field)
                if isinstance(value, int):
                    if not 0 <= value < plan.first_runtime_id:
                        add("error", idx, j,
                            "{} {} is not a compile-time id (watermark "
                            "{})".format(field, value,
                                         plan.first_runtime_id))
                elif value != "dynamic":
                    add("error", idx, j,
                        "{} must be a stream number or 'dynamic', got "
                        "{!r}".format(field, value))
            parent = spec.get("parent")
            if parent is not None and (
                    not isinstance(parent, int) or not 0 <= parent < j):
                add("error", idx, j,
                    "parent must reference an earlier spec of the same "
                    "stage, got {!r}".format(parent))
            # Cross with inferred types: a declared effect on a
            # statically-empty stream can never fire at run time.
            target = spec.get("target")
            if isinstance(target, int) and target in types \
                    and types[target].is_empty:
                add("note", idx, j,
                    "declared {} effect targets statically-empty stream "
                    "{}; it can never fire".format(kind, target))
                continue
            # Schema mutability regions: an insert effect anchored at
            # elements holding a fixed content-model position is not
            # schema-preserving if applied at their document position.
            if kind in ("sB", "sA") and schema is not None:
                anchor = _resolve_anchor(specs, spec)
                anchor_type = types.get(anchor) if anchor is not None \
                    else None
                if anchor_type is None:
                    continue
                rigid = {label: sorted(schema.rigid_parents(label))
                         for label in sorted(anchor_type.labels)
                         if schema.rigid_parents(label)}
                if rigid:
                    add("note", idx, j,
                        "{} insert anchored at {} — rigid content-model "
                        "position{} ({}); a document insert here would "
                        "violate the schema".format(
                            kind,
                            "/".join(sorted(rigid)),
                            "s" if len(rigid) > 1 else "",
                            "; ".join("{} fixed under {}".format(
                                label, ", ".join(parents))
                                for label, parents in rigid.items())))
    return lints


# -- plan optimization -------------------------------------------------------

def constant_empty_plan(plan: "Plan") -> "Plan":
    """A byte-equivalent replacement for a statically-empty plan.

    One :class:`StructuralRelay` forwards the source's structural
    events to the result stream; by the emptiness proof the original
    stage chain never contributed visible content beyond that.
    Document-order oids are no longer read by anyone, so the tokenizer
    may stop emitting them.
    """
    from ..xquery.compiler import Plan
    relay = StructuralRelay(plan.ctx, (plan.source_id,), plan.result_id)
    return Plan([relay], plan.source_id, plan.result_id, plan.ctx,
                needs_oids=False, mutable_source=False)


def optimize_plan(plan: "Plan", schema=None,
                  report: Optional[TypeReport] = None) -> "Plan":
    """Drop provably-dead stages; collapse statically-empty plans.

    Returns ``plan`` unchanged when nothing is provable (no schema, a
    mutable source, or no empty stream).  Otherwise returns a new plan
    sharing the context: dead stages are replaced by
    :class:`StructuralRelay` (adjacent relays merged), and a
    statically-empty plan becomes :func:`constant_empty_plan`.
    """
    if plan.mutable_source:
        return plan
    if report is None:
        try:
            report = infer_types(plan, schema)
        except TypeCheckError:
            return plan
    if report.statically_empty:
        return constant_empty_plan(plan)
    dead = set(report.dead_stages)
    if not dead:
        return plan
    from ..xquery.compiler import Plan
    stages: List[StateTransformer] = []
    for idx, stage in enumerate(plan.stages):
        if idx in dead:
            stages.append(StructuralRelay(plan.ctx, stage.input_ids,
                                          stage.output_id))
        else:
            stages.append(stage)
    stages = _merge_relays(stages, plan)
    return Plan(stages, plan.source_id, plan.result_id, plan.ctx,
                needs_oids=plan.needs_oids,
                mutable_source=plan.mutable_source)


def _merge_relays(stages: List[StateTransformer],
                  plan: "Plan") -> List[StateTransformer]:
    """Collapse relay chains: relay A feeding only relay B becomes one."""
    consumers: Dict[int, int] = {plan.result_id: 1}
    for stage in stages:
        for sid in stage.input_ids:
            consumers[sid] = consumers.get(sid, 0) + 1
    merged = True
    while merged:
        merged = False
        by_output = {stage.output_id: i for i, stage in enumerate(stages)
                     if isinstance(stage, StructuralRelay)}
        for i, stage in enumerate(stages):
            if not isinstance(stage, StructuralRelay):
                continue
            if len(stage.input_ids) != 1:
                continue
            src = stage.input_ids[0]
            j = by_output.get(src)
            if j is None or consumers.get(src, 0) != 1:
                continue
            upstream = stages[j]
            stages[j] = StructuralRelay(plan.ctx, upstream.input_ids,
                                        stage.output_id)
            del stages[i]
            merged = True
            break
    return stages


# -- runtime cross-check -----------------------------------------------------

def verify_types_against_runtime(report: TypeReport, recorder
                                 ) -> List[str]:
    """Check inferred emptiness against observed per-stage traffic.

    For every stage whose output type is provably empty and whose kind
    emits only what is visible (steps, text/flag extractors — not
    predicates, whose optimistic regions are retracted later), the
    recorded output stream must contain no element or character events.
    Emptiness that *flows through* a filter is transient too: a stage
    downstream of an empty-typed predicate still receives and forwards
    the predicate's optimistic regions, so only stages whose emptiness
    is established without crossing a filter are held to zero traffic.
    Returns human-readable contradictions (empty list = consistent).
    """
    problems: List[str] = []
    metrics = {sm.identity.index: sm for sm in recorder.stages}
    transient: set = set()
    for s in report.stages:
        if s.output.is_empty and (
                s.kind == "filter"
                or any(sid in transient for sid, _ in s.inputs)):
            transient.add(s.output_id)
    for s in report.stages:
        if not s.output.is_empty or s.kind not in ("step", "text",
                                                   "flag", "empty"):
            continue
        if s.output_id in transient:
            continue
        sm = metrics.get(s.index)
        if sm is None:
            continue
        elements = sm.out_counts[SE]
        cdata = sm.out_counts[CD]
        if elements or cdata:
            problems.append(
                "stage [{}] {} typed empty but emitted {} sE / {} cD "
                "events".format(s.index, s.label, elements, cdata))
    return problems
