"""Plan-driven stream projection: which element paths can a query touch?

The paper's engine tokenizes every byte of the input even though a
compiled query can only ever *observe* a small family of element paths
(Koch et al., "Schema-based Scheduling of Event Processors and Buffer
Minimization for Queries on Structured Data Streams", see PAPERS.md).
This module closes that gap statically:

* :func:`derive_projection` walks a compiled plan's dataflow and reads
  each stage's ``static_facts()["projection"]`` declaration to compute a
  conservative set of *paths* — sequences of ``(axis, tag)`` steps with
  axis ``child`` or ``descendant`` — such that keeping (a) every element
  on a prefix of some path ("spine" elements) and (b) the **whole
  subtree** of every path endpoint is guaranteed to preserve the query's
  result byte-for-byte.
* :class:`ProjectionMatcher` compiles those paths into a tiny per-depth
  NFA the tokenizer consults once per start tag: when no state survives
  an element, no remaining step of any path can match at or below it, so
  the whole subtree is invisible to the query and may be skipped.
* :class:`ProjectionMask` applies the same matcher per query inside the
  multi-query fan-out: the shared tokenizer prunes with the *union*
  projection, the mask then cuts each pipeline's dispatch down to the
  events its own query can reach.
* :class:`ElementSchema` is the optional DTD/schema refinement hook: a
  ``tag -> children`` map whose descendant-reachability closure lets the
  matcher retire ``descendant::t`` states under elements that provably
  cannot contain a ``t``, which is what makes ``//``-led queries
  prunable at all.

Soundness fallbacks (DESIGN.md section 10): the *universal* projection
(no pruning) is used whenever the plan reads a **mutable update source**
(``sM``/``sR``/``sB``/``sA`` brackets can re-parent stream regions, so no
static path argument survives), whenever the plan needs document-order
oids (skipping would renumber them), and whenever any stage declares an
``opaque`` projection fact or none the analyzer recognizes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Tuple

from ..events.model import CD, EE, SE, UPDATE_KINDS, Event

#: Path-step axes.
CHILD = "child"
DESCENDANT = "descendant"

#: A path step: (axis, tag); ``tag is None`` means any element.
Step = Tuple[str, Optional[str]]
#: A path: steps from (but excluding) the document root.
Path = Tuple[Step, ...]

#: Matcher verdicts for a start tag.
SKIP = 0      # no path step can match at or below this element
KEEP = 1      # on the spine of some path: emit, keep matching children
ACCEPT = 2    # a path endpoint: keep the whole subtree verbatim


def format_path(path: Path) -> str:
    """Render a path XPath-style (``/site//item``)."""
    if not path:
        return "/"
    return "".join(("/" if axis == CHILD else "//") + (tag or "*")
                   for axis, tag in path)


class QueryProjection:
    """The conservative path set one compiled plan can touch.

    ``universal`` means "keep everything" — either because analysis was
    defeated (``reason`` says why) or because the paths degenerate to the
    whole document.  ``paths`` is empty iff ``universal``.
    """

    __slots__ = ("paths", "universal", "reason")

    def __init__(self, paths: FrozenSet[Path] = frozenset(),
                 universal: bool = False,
                 reason: Optional[str] = None) -> None:
        self.paths = frozenset() if universal else frozenset(paths)
        self.universal = universal
        self.reason = reason

    @classmethod
    def make_universal(cls, reason: str) -> "QueryProjection":
        return cls(universal=True, reason=reason)

    def describe(self) -> List[str]:
        return sorted(format_path(p) for p in self.paths)

    def to_dict(self) -> dict:
        out = {"universal": self.universal, "paths": self.describe()}
        if self.reason:
            out["reason"] = self.reason
        return out

    def __repr__(self) -> str:
        if self.universal:
            return "QueryProjection(universal: {})".format(self.reason)
        return "QueryProjection({})".format(", ".join(self.describe()))


def derive_projection(plan) -> QueryProjection:
    """Derive the projection of a compiled :class:`~repro.xquery.compiler.Plan`.

    Runs a forward dataflow over ``plan.stages``: every stream id is
    mapped to the set of paths its element content can originate from,
    seeded with the empty path on the source stream.  Each stage's
    ``static_facts()["projection"]`` declaration is one of:

    * ``{"kind": "step", "axis": ..., "tag": ...}`` — navigation; output
      paths are the input paths extended by one step.
    * ``{"kind": "plumbing"}`` — copies/reorders/wraps its input without
      reading element content (tees, concatenation, tuple machinery);
      output paths equal input paths and the input needs no anchoring.
    * ``{"kind": "content"}`` — reads its input's content (predicates
      with their inline condition pipelines, string values, aggregates);
      the input paths become *anchors* whose endpoint subtrees must be
      kept whole.  This is the conservative default for stages with no
      declaration.
    * ``{"kind": "opaque"}`` — defeats path analysis (backward axes);
      the whole derivation falls back to universal.

    The result-stream paths are always anchored (the display prints
    them).  The returned projection's ``paths`` are the anchors.
    """
    if plan.mutable_source:
        return QueryProjection.make_universal(
            "mutable update source: sM/sR/sB/sA brackets can re-parent "
            "regions, so no static path argument is sound")
    if plan.needs_oids:
        return QueryProjection.make_universal(
            "plan needs document-order oids (backward axis); skipping "
            "subtrees would renumber them")
    paths: Dict[int, set] = {plan.source_id: {()}}
    anchors: set = set()
    # Stages are appended producer-before-consumer, but iterate to a
    # fixpoint so the derivation never depends on that invariant.
    for _ in range(len(plan.stages) + 1):
        changed = False
        for stage in plan.stages:
            spec = stage.static_facts().get("projection") \
                or {"kind": "content"}
            kind = spec.get("kind", "content")
            ins = [paths[i] for i in stage.input_ids if i in paths]
            if not ins:
                continue
            merged = set().union(*ins)
            if kind == "opaque":
                return QueryProjection.make_universal(
                    "stage {} declares an opaque projection{}".format(
                        type(stage).__name__,
                        ": " + spec["note"] if spec.get("note") else ""))
            if kind == "step":
                axis = spec.get("axis")
                if axis not in (CHILD, DESCENDANT):
                    return QueryProjection.make_universal(
                        "stage {} declares unknown step axis {!r}".format(
                            type(stage).__name__, axis))
                step = (axis, spec.get("tag"))
                out_paths = {p + (step,) for p in merged}
            elif kind == "plumbing":
                out_paths = merged
            elif kind == "content":
                anchors |= merged
                out_paths = merged
            else:
                return QueryProjection.make_universal(
                    "stage {} declares unknown projection kind {!r}"
                    .format(type(stage).__name__, kind))
            cur = paths.setdefault(stage.output_id, set())
            if not out_paths <= cur:
                cur |= out_paths
                changed = True
        if not changed:
            break
    anchors |= paths.get(plan.result_id, set())
    if not anchors:
        # Nothing source-derived reaches a reader or the result: the
        # query is constant w.r.t. the document, keep nothing but the
        # root spine.  Conservatively keep everything instead — this
        # only arises for degenerate plans.
        return QueryProjection.make_universal(
            "no source-derived stream is consumed")
    if any(p == () for p in anchors):
        return QueryProjection.make_universal(
            "the query touches the whole document")
    return QueryProjection(paths=frozenset(anchors))


def union_projection(
        projections: Iterable[QueryProjection]) -> QueryProjection:
    """The least projection covering every query (for the shared scan)."""
    merged: set = set()
    for proj in projections:
        if proj.universal:
            return QueryProjection.make_universal(proj.reason or
                                                  "member is universal")
        merged |= proj.paths
    if not merged:
        return QueryProjection.make_universal("no projections to union")
    return QueryProjection(paths=frozenset(merged))


# ElementSchema was born here (PR 6) as a bare reachability map; the
# type checker grew it into a full content-model schema with a generic
# DTD parser, so it now lives in analysis/schema.py.  Re-exported for
# back-compat: existing callers import it from this module.
from .schema import ElementSchema, known_schema  # noqa: E402,F401


class ProjectionMatcher:
    """The per-depth NFA over a projection's paths.

    One matcher is immutable/shareable; per-stream scanning state lives
    in the :class:`MatcherCursor` from :meth:`cursor`.  Transition
    results are cached per (state-set, tag), so steady-state matching is
    one dict lookup per start tag.

    ``prunable`` is the static go/no-go: a ``descendant`` step with no
    schema to retire it survives every element, so the state set can
    never empty and nothing would ever be skipped — callers should then
    not install the matcher at all (zero overhead instead of a no-op
    scan).
    """

    def __init__(self, projection: QueryProjection,
                 schema: Optional[ElementSchema] = None) -> None:
        self.projection = projection
        self.schema = known_schema(schema)
        # Sort key tolerates wildcard steps (tag None sorts first).
        self.paths: Tuple[Path, ...] = tuple(sorted(
            projection.paths,
            key=lambda p: [(axis, tag or "") for axis, tag in p]))
        self.initial: FrozenSet[Tuple[int, int]] = frozenset(
            (pi, 0) for pi in range(len(self.paths)))
        self._cache: Dict[Tuple[FrozenSet, str],
                          Tuple[FrozenSet, bool]] = {}
        self.prunable = self._prunable()

    def _prunable(self) -> bool:
        if self.projection.universal or not self.paths:
            return False
        for path in self.paths:
            if all(tag is None for _, tag in path):
                return False  # accepts every element of some depth
        if self.schema is None:
            return all(path[0][0] == CHILD for path in self.paths)
        return True

    def cursor(self) -> "MatcherCursor":
        return MatcherCursor(self)

    # -- transitions ---------------------------------------------------------

    def transition(self, states: FrozenSet[Tuple[int, int]],
                   tag: str) -> Tuple[FrozenSet[Tuple[int, int]], bool]:
        """States surviving into ``tag``'s child context + acceptance."""
        key = (states, tag)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        nxt: set = set()
        accepted = False
        paths = self.paths
        for pi, si in states:
            axis, step_tag = paths[pi][si]
            if axis == DESCENDANT and self._viable(pi, si, tag):
                nxt.add((pi, si))          # descendant steps self-loop
            if step_tag is None or step_tag == tag:
                si2 = si + 1
                if si2 == len(paths[pi]):
                    accepted = True        # endpoint: keep the subtree
                elif self._viable(pi, si2, tag):
                    nxt.add((pi, si2))
        result = (frozenset(nxt), accepted)
        self._cache[key] = result
        return result

    def _viable(self, pi: int, si: int, tag: str) -> bool:
        """Can step ``si`` of path ``pi`` match strictly below ``tag``?"""
        schema = self.schema
        if schema is None:
            return True
        axis, step_tag = self.paths[pi][si]
        allowed = (schema.children(tag) if axis == CHILD
                   else schema.descendants(tag))
        if allowed is None:
            return True  # unknown tag: stay conservative
        return bool(allowed) if step_tag is None else step_tag in allowed


class MatcherCursor:
    """Mutable per-stream scanning state over a :class:`ProjectionMatcher`.

    Protocol: call :meth:`enter` on every start tag *outside* skipped
    and accepted subtrees; call :meth:`leave` on the matching end tag of
    every element :meth:`enter` returned ``KEEP`` for.  ``SKIP`` and
    ``ACCEPT`` verdicts push nothing (the caller handles those subtrees
    with plain depth counting).
    """

    __slots__ = ("_matcher", "_stack")

    def __init__(self, matcher: ProjectionMatcher) -> None:
        self._matcher = matcher
        self._stack: List[FrozenSet[Tuple[int, int]]] = []

    def enter(self, tag: str) -> int:
        # Paths are rooted at the root *element*, which consumes no step:
        # the engine's first ChildStep matches children of the root, and
        # descendant steps never match the root either.  So the root is
        # kept unconditionally (it is on every path's spine) and its
        # children transition from the initial state set.
        if not self._stack:
            self._stack.append(self._matcher.initial)
            return KEEP
        states, accepted = self._matcher.transition(self._stack[-1], tag)
        if accepted:
            return ACCEPT
        if not states:
            return SKIP
        self._stack.append(states)
        return KEEP

    def leave(self) -> None:
        self._stack.pop()


class ProjectionStats:
    """Pruning counters (one per tokenizer; shipped into metrics)."""

    __slots__ = ("events_pruned", "bytes_skipped", "subtrees_skipped",
                 "events_emitted")

    def __init__(self) -> None:
        self.events_pruned = 0
        self.bytes_skipped = 0
        self.subtrees_skipped = 0
        self.events_emitted = 0

    def pruned_ratio(self) -> float:
        total = self.events_pruned + self.events_emitted
        return (self.events_pruned / total) if total else 0.0

    def counter_dict(self) -> Dict[str, int]:
        """The raw integer counters (mergeable; no derived ratios)."""
        return {
            "events_pruned": self.events_pruned,
            "bytes_skipped": self.bytes_skipped,
            "subtrees_skipped": self.subtrees_skipped,
            "events_emitted": self.events_emitted,
        }

    def to_dict(self) -> dict:
        return {
            "events_pruned": self.events_pruned,
            "bytes_skipped": self.bytes_skipped,
            "subtrees_skipped": self.subtrees_skipped,
            "events_emitted": self.events_emitted,
            "pruned_ratio": round(self.pruned_ratio(), 6),
        }


class ProjectionMask:
    """Per-query event filter for the multi-query fan-out.

    The shared tokenizer prunes with the union projection; each mask
    then drops, per pipeline, the subtrees *its* query cannot reach
    before the events enter that pipeline's dispatch loop.  Only plain
    data events (``sE``/``eE``/``cD``) on the source stream are ever
    filtered; the moment any update-control event shows up the mask
    disables itself permanently and passes everything through — pruning
    a mutable stream is never sound (DESIGN.md section 10).
    """

    def __init__(self, matcher: ProjectionMatcher, source_id: int) -> None:
        self._cursor = matcher.cursor()
        self.source_id = source_id
        self._skip_depth = 0
        self._keep_depth = 0
        self._disabled = False
        #: Live counters; the owning run's MetricsRecorder references
        #: this dict directly, so mutation here is visible in to_dict().
        self.counters = {"mask_events_dropped": 0,
                         "mask_events_passed": 0}

    def filter(self, batch: Sequence[Event]) -> List[Event]:
        if self._disabled:
            return list(batch)
        out: List[Event] = []
        append = out.append
        dropped = 0
        cursor = self._cursor
        source_id = self.source_id
        for e in batch:
            kind = e.kind
            if kind in UPDATE_KINDS:
                self._disabled = True
                rest = list(batch[len(out) + dropped:])
                self.counters["mask_events_dropped"] += dropped
                self.counters["mask_events_passed"] += len(out) + len(rest)
                return out + rest
            if e.id != source_id or kind not in (SE, EE, CD):
                append(e)
            elif kind == SE:
                if self._skip_depth:
                    self._skip_depth += 1
                    dropped += 1
                    continue
                if self._keep_depth:
                    self._keep_depth += 1
                    append(e)
                    continue
                verdict = cursor.enter(e.tag)
                if verdict == SKIP:
                    self._skip_depth = 1
                    dropped += 1
                    continue
                if verdict == ACCEPT:
                    self._keep_depth = 1
                append(e)
            elif kind == EE:
                if self._skip_depth:
                    self._skip_depth -= 1
                    dropped += 1
                    continue
                if self._keep_depth:
                    self._keep_depth -= 1
                else:
                    cursor.leave()
                append(e)
            else:  # CD
                if self._skip_depth:
                    dropped += 1
                    continue
                append(e)
        self.counters["mask_events_dropped"] += dropped
        self.counters["mask_events_passed"] += len(out)
        return out
