"""Static plan analysis: precompute Section V's fix map without running.

Every :class:`~repro.core.transformer.StateTransformer` declares compile-
time facts about itself (:meth:`~repro.core.transformer.StateTransformer.
static_facts`): whether a conventional evaluator would block on it, the
Koch-style memory class of its state, and — crucially — the *bracket
families* it originates: which update brackets it emits, targeting what,
with what freeze discipline and cardinality.

:func:`analyze_plan` pushes those families through the compiled stage
list the same way the runtime pushes the brackets themselves:

* a stage *tracks* an arriving family when the family's target chain
  reaches one of the stage's input streams (computed to a fixed point,
  because bracket chains such as nested concatenations are declared out
  of nesting order);
* a tracked family's substream id is *declared* in the mutability map —
  exactly mirroring ``UpdateWrapper._on_update_start``, which calls
  ``fix.declare_mutable`` / ``fix.inherit`` for tracked targets only;
* the stage's update policy then decides how the family continues:
  TRANSPARENT/RAW forward it, TRANSLATE replaces it by a fresh
  dynamically-numbered family (declared at the translating stage, frozen
  exactly when its source freezes), TEE does both, CONSUME/SHARED end it.

The result is a :class:`PlanReport`: a per-stage memory estimate, the
statically predicted fix map — which region numbers remain in
``ctx.fix`` after a complete run — and a lint list (dormant-fast-path
guarantees, dead stages, unbounded-state warnings).
:func:`verify_against_runtime` compares the prediction against the live
``MutabilityRegistry`` of a finished run, using
``Plan.first_runtime_id`` to separate compile-time ids from
runtime-allocated ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Union

from ..core.transformer import StateTransformer
from ..core.wrapper import UpdatePolicy
from ..xquery.compiler import Plan

#: ``per`` cardinalities that describe content-covering regions — the
#: ones a slaved ("derived") output region follows the freezes of.
_REGION_PERS = frozenset(("item", "tuple", "match", "nested"))

_STATE_RANK = {"constant": 0, "per-region": 1, "buffering": 2,
               "unbounded": 3}


class BracketFamily:
    """One statically-known family of update brackets in flight.

    A family stands for *all* runtime instances of one bracket spec: the
    per-tuple regions of a concatenation are one family with
    ``per="tuple"``.  ``sub`` is the concrete region number for specs
    that reuse a compile-time id, or ``None`` for ids allocated while
    events flow.  ``target`` is a stream number, or the family whose
    (dynamic) sub this family nests into.
    """

    def __init__(self, origin: int, kind: str,
                 target: Union[int, "BracketFamily"], sub: Optional[int],
                 freeze: str, per: str,
                 translated_from: Optional["BracketFamily"] = None,
                 synthetic: bool = False) -> None:
        self.origin = origin          # stage index; -1 = the source
        self.kind = kind              # "sM" | "sR" | "sB" | "sA"
        self.target = target
        self.sub = sub
        self.freeze = freeze          # "always" | "never" | "conditional"
        self.per = per
        self.translated_from = translated_from
        self.synthetic = synthetic
        #: Stage indices whose wrapper enters ``sub`` into the fix map.
        self.declared_at: List[int] = []

    @property
    def declared(self) -> bool:
        return bool(self.declared_at)

    def describe(self) -> str:
        sub = "dynamic" if self.sub is None else str(self.sub)
        tgt = (self.target if not isinstance(self.target, BracketFamily)
               else "region of [{}]".format(self.target.origin))
        src = ("" if self.translated_from is None
               else ", translated from [{}]".format(
                   self.translated_from.origin))
        return "{} per {} (target {}, sub {}, freeze {}{})".format(
            self.kind, self.per, tgt, sub, self.freeze, src)

    def __repr__(self) -> str:
        return "BracketFamily({})".format(self.describe())


class StageReport:
    """Analysis results for one pipeline stage."""

    def __init__(self, index: int, transformer: StateTransformer,
                 facts: dict) -> None:
        self.index = index
        self.transformer = transformer
        self.facts = facts
        self.updates_arrive = False     # any family crosses the input
        self.tracked: List[BracketFamily] = []
        self.declared: List[BracketFamily] = []
        self.policies: Dict[int, str] = {}  # id(family) -> policy name
        self.own: List[BracketFamily] = []
        self.translated: List[BracketFamily] = []
        self.lints: List[str] = []

    @property
    def name(self) -> str:
        return type(self.transformer).__name__

    @property
    def dormant(self) -> bool:
        """No update event can ever reach this stage."""
        return not self.updates_arrive

    @property
    def effective_state(self) -> str:
        """Stage memory class including the wrapper's region copies."""
        base = self.facts.get("state_class", "constant")
        if self.tracked and _STATE_RANK.get(base, 0) < 1:
            return "per-region"
        return base


class PlanReport:
    """The full static analysis of one compiled plan."""

    def __init__(self, plan: Plan) -> None:
        self.plan = plan
        self.stages: List[StageReport] = []
        self.families: List[BracketFamily] = []
        #: Compile-time region numbers predicted to remain in the fix map
        #: after a complete run (declared somewhere, never frozen).
        self.persistent_static: List[int] = []
        #: Compile-time region numbers that *may* remain (freeze depends
        #: on runtime data; only possible for mutable-source plans).
        self.conditional_static: List[int] = []
        #: Declared families with runtime-allocated subs that are never
        #: frozen: each instance leaves one runtime id in the fix map.
        self.dynamic_persistent: List[BracketFamily] = []
        #: Same, but with data-dependent freezes.
        self.dynamic_conditional: List[BracketFamily] = []
        self.lints: List[str] = []

    def stage(self, index: int) -> StageReport:
        return self.stages[index]

    def render(self) -> str:
        return render_report(self)


def _spec_families(index: int, t: StateTransformer, facts: dict,
                   derived_freeze: str) -> List[BracketFamily]:
    """Instantiate a stage's declared bracket specs as families."""
    fams: List[BracketFamily] = []
    for spec in facts.get("brackets", ()):
        target: Union[int, BracketFamily] = spec["target"]
        if target == "dynamic":
            # A spec may nest inside an earlier spec of the same stage.
            target = fams[spec["parent"]]
        sub = spec["sub"]
        freeze = spec["freeze"]
        if freeze == "derived":
            freeze = derived_freeze
        fams.append(BracketFamily(
            index, spec["kind"], target,
            None if sub == "dynamic" else sub, freeze, spec["per"]))
    return fams


def _combine_freeze(region_sources: Sequence[BracketFamily],
                    mutable_source: bool) -> str:
    """Resolve a ``derived`` freeze: slaved to the covering regions.

    An output region slaved to its input regions seals exactly when they
    all seal; with no revocable input regions at all, the decision is
    final the moment the region closes (immutable source), or unknowable
    statically (mutable source).
    """
    sources = [f for f in region_sources if f.per in _REGION_PERS]
    if not sources:
        return "conditional" if mutable_source else "always"
    freezes = {f.freeze for f in sources}
    if "never" in freezes:
        return "never"
    if "conditional" in freezes:
        return "conditional"
    return "always"


def _chain_walk(fam: BracketFamily,
                sub_owner: Dict[int, BracketFamily]) -> int:
    """Follow a family's target chain up to a concrete stream number."""
    target = fam.target
    seen: Set[int] = set()
    while True:
        if isinstance(target, BracketFamily):
            if id(target) in seen:
                return -1
            seen.add(id(target))
            target = target.target
            continue
        owner = sub_owner.get(target)
        if owner is None or id(owner) in seen:
            return target
        seen.add(id(owner))
        target = owner.target


def _parent_family(fam: BracketFamily,
                   sub_owner: Dict[int, BracketFamily]
                   ) -> Optional[BracketFamily]:
    if isinstance(fam.target, BracketFamily):
        return fam.target
    return sub_owner.get(fam.target)


def analyze_plan(plan: Plan) -> PlanReport:
    """Statically derive the fix map and per-stage report for ``plan``."""
    report = PlanReport(plan)
    in_flight: List[BracketFamily] = []
    if plan.mutable_source:
        src = BracketFamily(-1, "sM", plan.source_id, None,
                            "conditional", "item", synthetic=True)
        src.declared_at.append(-1)  # source brackets are declared on
        #                             arrival at whichever stage tracks
        #                             the source stream
        in_flight.append(src)
        report.families.append(src)

    for index, t in enumerate(plan.stages):
        facts = t.static_facts()
        sr = StageReport(index, t, facts)
        report.stages.append(sr)
        sr.updates_arrive = bool(in_flight)

        sub_owner: Dict[int, BracketFamily] = {
            f.sub: f for f in in_flight if f.sub is not None}

        # -- fixed-point tracking: mirror _on_update_start's track test.
        # The family list is in (origin stage, spec) order, which need
        # not match bracket nesting order, so iterate until stable.
        tracked_ids: Set[int] = set(t.input_ids)
        tracked: Set[int] = set()        # id(family)
        changed = True
        while changed:
            changed = False
            for f in in_flight:
                if id(f) in tracked:
                    continue
                target = f.target
                hit = (id(target) in tracked
                       if isinstance(target, BracketFamily)
                       else target in tracked_ids)
                if not hit:
                    continue
                tracked.add(id(f))
                sr.tracked.append(f)
                changed = True
                # Fix-map entry: sM subs are declared unconditionally;
                # sR/sB/sA inherit — their sub is mutable only when the
                # enclosing region is itself in the map.
                if f.kind == "sM":
                    declared = True
                else:
                    parent = _parent_family(f, sub_owner)
                    declared = parent is not None and parent.declared
                if declared:
                    f.declared_at.append(index)
                    sr.declared.append(f)
                    if f.sub is not None:
                        tracked_ids.add(f.sub)

        # -- the stage's own bracket families (freeze resolved now: a
        # "derived" seal follows the regions declared at this stage).
        derived = _combine_freeze(sr.declared, plan.mutable_source)
        sr.own = _spec_families(index, t, facts, derived)
        report.families.extend(sr.own)

        # -- continuation: policy decides how tracked families travel.
        translation: Dict[int, BracketFamily] = {}

        def translate(f: BracketFamily) -> BracketFamily:
            parent = _parent_family(f, sub_owner)
            target: Union[int, BracketFamily] = t.output_id
            if parent is not None and id(parent) in translation:
                target = translation[id(parent)]
            g = BracketFamily(index, f.kind, target, None, f.freeze,
                              f.per, translated_from=f)
            # The translating wrapper itself declares j_out
            # (fix.declare_mutable / fix.inherit at bracket emission).
            if f.kind == "sM" or (parent is None or parent.declared):
                g.declared_at.append(index)
            translation[id(f)] = g
            return g

        # Translate parents before children so nesting is preserved.
        def chain_depth(f: BracketFamily) -> int:
            depth = 0
            parent = _parent_family(f, sub_owner)
            seen: Set[int] = set()
            while parent is not None and id(parent) not in seen:
                seen.add(id(parent))
                depth += 1
                parent = _parent_family(parent, sub_owner)
            return depth

        for f in sorted((f for f in in_flight if id(f) in tracked),
                        key=chain_depth):
            policy = t.update_policy(_chain_walk(f, sub_owner))
            sr.policies[id(f)] = policy.name
            if policy in (UpdatePolicy.TRANSLATE, UpdatePolicy.TEE):
                g = translate(f)
                sr.translated.append(g)
                report.families.append(g)

        out: List[BracketFamily] = []
        for f in in_flight:
            if id(f) not in tracked:
                out.append(f)           # foreign traffic passes through
                continue
            policy = sr.policies[id(f)]
            if policy in ("TRANSPARENT", "RAW"):
                out.append(f)
            elif policy == "TEE":
                out.append(f)
                out.append(translation[id(f)])
            elif policy == "TRANSLATE":
                out.append(translation[id(f)])
            # CONSUME / SHARED: the family ends here.
        out.extend(sr.own)
        in_flight = out

    _collect_fix_map(report)
    _collect_lints(report, in_flight)
    return report


def _collect_fix_map(report: PlanReport) -> None:
    first_runtime = report.plan.first_runtime_id
    static_never: Set[int] = set()
    static_cond: Set[int] = set()
    for f in report.families:
        if not f.declared or f.origin < 0:
            continue
        if f.sub is not None and f.sub < first_runtime:
            if f.freeze == "never":
                static_never.add(f.sub)
            elif f.freeze == "conditional":
                static_cond.add(f.sub)
        elif f.sub is None:
            if f.freeze == "never":
                report.dynamic_persistent.append(f)
            elif f.freeze == "conditional":
                report.dynamic_conditional.append(f)
    report.persistent_static = sorted(static_never)
    report.conditional_static = sorted(static_cond - static_never)


def _collect_lints(report: PlanReport,
                   final_flight: List[BracketFamily]) -> None:
    plan = report.plan
    stages = plan.stages
    consumed: Set[int] = {plan.result_id}
    for t in stages:
        consumed.update(t.input_ids)

    for sr in report.stages:
        t = sr.transformer
        if t.output_id not in consumed:
            sr.lints.append(
                "stage [{}] {} is a no-op for this plan: its output "
                "stream {} is never consumed".format(
                    sr.index, sr.name, t.output_id))
        if sr.dormant:
            sr.lints.append(
                "updates can never reach stage [{}] {} — the dormant "
                "fast path is guaranteed".format(sr.index, sr.name))
        elif not sr.tracked:
            sr.lints.append(
                "stage [{}] {} forwards all update traffic untouched "
                "(wrapper holds no region state)".format(
                    sr.index, sr.name))
        if sr.facts.get("state_class") == "unbounded":
            sr.lints.append(
                "stage [{}] {} keeps unbounded state: {}".format(
                    sr.index, sr.name,
                    sr.facts.get("notes", "grows with the stream")))
        report.lints.extend(sr.lints)

    if report.persistent_static:
        report.lints.append(
            "regions {} stay open to updates for the whole run "
            "(never frozen); their consumers retain per-region state "
            "indefinitely".format(report.persistent_static))
    undeclared = [f for f in final_flight
                  if not f.declared and not f.synthetic]
    if undeclared:
        report.lints.append(
            "{} bracket famil{} reach the display without any stage "
            "tracking them (terminal regions, absent from the fix "
            "map)".format(len(undeclared),
                          "y" if len(undeclared) == 1 else "ies"))


def verify_against_runtime(plan: Plan,
                           report: Optional[PlanReport] = None
                           ) -> List[str]:
    """Compare the static fix-map prediction with a finished run.

    Call after feeding a complete stream through a pipeline built from
    ``plan``.  Returns a list of disagreement descriptions (empty when
    the prediction matches).  For immutable-source plans the comparison
    is exact; for mutable sources, conditionally-frozen regions are
    allowed on either side.
    """
    if report is None:
        report = analyze_plan(plan)
    leftover = set(plan.ctx.fix._not_fixed)
    first_runtime = plan.first_runtime_id
    static_left = {i for i in leftover if i < first_runtime}
    dyn_left = {i for i in leftover if i >= first_runtime}
    predicted = set(report.persistent_static)
    conditional = set(report.conditional_static)
    problems: List[str] = []

    unexpected = static_left - predicted - conditional
    if unexpected:
        problems.append(
            "runtime fix map holds compile-time ids the analyzer did "
            "not predict: {}".format(sorted(unexpected)))
    missing = predicted - static_left
    if missing and not plan.mutable_source:
        problems.append(
            "analyzer predicted never-frozen compile-time ids that the "
            "runtime froze or never declared: {}".format(sorted(missing)))
    may_have_dynamic = bool(report.dynamic_persistent
                            or report.dynamic_conditional
                            or plan.mutable_source)
    if dyn_left and not may_have_dynamic:
        problems.append(
            "runtime fix map holds {} runtime-allocated ids but the "
            "analyzer predicted none".format(len(dyn_left)))
    if (not dyn_left and report.dynamic_persistent
            and not plan.mutable_source):
        problems.append(
            "analyzer predicted persistent runtime-id regions ({}) but "
            "the runtime fix map holds none".format(
                [f.describe() for f in report.dynamic_persistent]))
    return problems


def render_report(report: PlanReport) -> str:
    """Human-readable per-stage report, fix-map prediction, and lints."""
    plan = report.plan
    lines = [
        "plan: {} stages, source stream {} -> result {}, {} source; "
        "runtime ids start at {}".format(
            len(plan.stages), plan.source_id, plan.result_id,
            "mutable" if plan.mutable_source else "immutable",
            plan.first_runtime_id)]
    for sr in report.stages:
        lines.append("[{}] {!r}".format(sr.index, sr.transformer))
        wrapper = ("dormant" if sr.dormant else
                   "{} famil{} tracked".format(
                       len(sr.tracked),
                       "y" if len(sr.tracked) == 1 else "ies"))
        blocking = (", blocking without updates"
                    if sr.facts.get("paper_blocking") else "")
        lines.append("    memory: {} (wrapper {}){}".format(
            sr.effective_state, wrapper, blocking))
        for f in sr.tracked:
            lines.append("    tracks: {} from [{}] via {}{}".format(
                f.describe(), f.origin, sr.policies[id(f)],
                "" if f in sr.declared or f.declared else
                " (not declared)"))
        for f in sr.own:
            lines.append("    emits: {}".format(f.describe()))
        notes = sr.facts.get("notes")
        if notes:
            lines.append("    note: {}".format(notes))
    lines.append("static fix map after a complete run:")
    lines.append("  never-frozen compile-time regions: {}".format(
        ", ".join(map(str, report.persistent_static)) or "none"))
    if report.conditional_static:
        lines.append("  conditionally-frozen compile-time regions: {}"
                     .format(", ".join(map(str,
                                           report.conditional_static))))
    if report.dynamic_persistent:
        lines.append("  never-frozen runtime-id regions:")
        for f in report.dynamic_persistent:
            lines.append("    - {} (stage [{}])".format(f.describe(),
                                                        f.origin))
    else:
        lines.append("  never-frozen runtime-id regions: none")
    if report.dynamic_conditional:
        lines.append("  conditionally-frozen runtime-id regions: {}"
                     .format(len(report.dynamic_conditional)))
    if report.lints:
        lines.append("lints:")
        for lint in report.lints:
            lines.append("  - {}".format(lint))
    return "\n".join(lines)


def _family_to_dict(f: BracketFamily) -> dict:
    target = (f.target if not isinstance(f.target, BracketFamily)
              else {"region_of_stage": f.target.origin})
    return {
        "origin": f.origin,
        "kind": f.kind,
        "target": target,
        "sub": f.sub,
        "freeze": f.freeze,
        "per": f.per,
        "translated_from": (None if f.translated_from is None
                            else f.translated_from.origin),
        "declared_at": list(f.declared_at),
        "synthetic": f.synthetic,
    }


def report_to_dict(report: PlanReport) -> dict:
    """The machine-readable form of :func:`render_report`.

    Stage naming reuses the telemetry layer's
    :class:`~repro.obs.recorder.StageIdentity` labels, so ``analyze
    --json`` output joins against metrics / trace JSON on ``label``.
    """
    from ..obs.recorder import stage_identities
    plan = report.plan
    idents = stage_identities(plan.stages)
    stages = []
    for sr, ident in zip(report.stages, idents):
        stages.append({
            "index": sr.index,
            "label": ident.label,
            "transformer": repr(sr.transformer),
            "memory": sr.effective_state,
            "dormant": sr.dormant,
            "blocking": bool(sr.facts.get("paper_blocking")),
            "tracked": [dict(_family_to_dict(f),
                             policy=sr.policies[id(f)])
                        for f in sr.tracked],
            "emits": [_family_to_dict(f) for f in sr.own],
            "notes": sr.facts.get("notes"),
            "lints": list(sr.lints),
        })
    return {
        "plan": {
            "stages": len(plan.stages),
            "source_id": plan.source_id,
            "result_id": plan.result_id,
            "mutable_source": plan.mutable_source,
            "first_runtime_id": plan.first_runtime_id,
        },
        "stages": stages,
        "fix_map": {
            "persistent_static": list(report.persistent_static),
            "conditional_static": list(report.conditional_static),
            "dynamic_persistent": [_family_to_dict(f)
                                   for f in report.dynamic_persistent],
            "dynamic_conditional": [_family_to_dict(f)
                                    for f in
                                    report.dynamic_conditional],
        },
        "lints": list(report.lints),
    }


def analyze_query(query: str, mutable_source: bool = False) -> PlanReport:
    """Compile ``query`` and analyze the resulting plan."""
    from ..xquery.engine import XFlux
    return analyze_plan(XFlux(query,
                              mutable_source=mutable_source).compile())
