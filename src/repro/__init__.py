"""repro: a reproduction of "Efficient Processing of XML Update Streams".

This package implements the XFlux streaming XQuery engine described in
Leonidas Fegaras' ICDE 2008 paper, from the event model up: tokenized XML
update streams, state-transformer pipelines with a generic update-handling
wrapper (state adjustment, Section IV), mutability analysis (Section V),
and the unblocked operators of Section VI (concatenation, general
predicates, descendant-or-self, sorting, backward axes, aggregation).

Quick start::

    from repro import XFlux
    result = XFlux('X//book[author="Smith"]/title').run_xml(xml_text)
    print(result.text())
"""

from .core import (Collector, Context, Display, EventMultiplexer,
                   MutabilityRegistry, Pipeline, RegionTree,
                   StateTransformer, UpdateWrapper, apply_updates)
from .events import Event, IdGenerator, Kind
from .xmlio import XMLTokenizer, parse as parse_xml, tokenize, write_events
from .xquery import (CompileError, MultiQueryRun, Plan, QueryRun, XFlux,
                     XQuerySyntaxError)
from .xquery import parse as parse_query

__version__ = "1.0.0"

__all__ = [
    "XFlux", "QueryRun", "MultiQueryRun", "Plan", "parse_query",
    "XQuerySyntaxError", "CompileError",
    "Event", "Kind", "IdGenerator",
    "tokenize", "XMLTokenizer", "parse_xml", "write_events",
    "Pipeline", "Display", "Context", "StateTransformer", "UpdateWrapper",
    "MutabilityRegistry", "RegionTree", "apply_updates", "Collector",
    "EventMultiplexer",
    "__version__",
]
