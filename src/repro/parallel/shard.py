"""Process-pool sharding of the multi-query executor.

The single-process :class:`~repro.xquery.engine.MultiQueryRun` removes
the redundant tokenizer passes but still evaluates every pipeline on one
core; per-query transformer work is untouched and dominates.  Sharding
partitions the *query set* — not the stream — across worker processes:

* the parent tokenizes (or deserializes) the input exactly once;
* each event batch is encoded exactly once with the binary codec and
  the same frame bytes are written to every worker's pipe (encoding
  cost is O(stream), independent of the worker count);
* each worker decodes the frames and drives an ordinary
  ``MultiQueryRun`` over its shard, so per-query semantics, results and
  accounting are identical to the single-process executor;
* at end-of-stream the parent collects per-query texts and stats over a
  result connection and reassembles them in submission order.

Workers are forked (query texts and flags travel by memory inheritance,
not pickling).  On platforms without ``fork`` the class degrades to an
in-process executor that still round-trips every batch through the
codec, so behaviour — including codec failures — is uniform everywhere.

Shard assignment is greedy balanced-load: queries are placed
heaviest-first onto the least-loaded shard, using caller-supplied cost
weights when available (the bench harness feeds back measured
single-process times) and uniform weights otherwise.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Iterable, List, Optional, Sequence

from ..events import codec
from ..events.model import Event
from ..xmlio.tokenizer import tokenize
from ..xquery.engine import MultiQueryRun


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def _fork_context():
    try:
        import multiprocessing
        return multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return None


def shard_queries(n_queries: int, workers: int,
                  weights: Optional[Sequence[float]] = None
                  ) -> List[List[int]]:
    """Partition query indices into at most ``workers`` balanced shards.

    Greedy longest-processing-time: heaviest query first, always onto
    the least-loaded shard.  Within a shard the original submission
    order is kept.  Empty shards are dropped.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1, got {}".format(workers))
    w = list(weights) if weights is not None else [1.0] * n_queries
    if len(w) != n_queries:
        raise ValueError("got {} weights for {} queries".format(
            len(w), n_queries))
    shards: List[List[int]] = [[] for _ in range(min(workers, n_queries))]
    loads = [0.0] * len(shards)
    for i in sorted(range(n_queries), key=lambda i: -w[i]):
        k = loads.index(min(loads))
        loads[k] += w[i]
        shards[k].append(i)
    for shard in shards:
        shard.sort()
    return [s for s in shards if s]


def _worker_main(rfd: int, result_conn, queries: List[str],
                 engine_kwargs: Dict) -> None:
    """Worker entry: decode frames from ``rfd``, run the shard, report."""
    result = {"ok": False, "error": "worker exited before end-of-stream"}
    try:
        mq = MultiQueryRun(queries, **engine_kwargs)
        with os.fdopen(rfd, "rb", buffering=1 << 16) as reader:
            for payload in codec.iter_frames(reader):
                mq.feed_all(codec.decode_batch(payload))
        mq.finish()
        result = {"ok": True, "texts": mq.texts(), "stats": mq.stats()}
    except BaseException as exc:  # report, don't hang the parent
        result = {"ok": False, "error": "{}: {}".format(
            type(exc).__name__, exc)}
    try:
        result_conn.send(result)
    finally:
        result_conn.close()


class _ForkShard:
    """Parent-side handle of one forked worker."""

    def __init__(self, ctx, indices: List[int], queries: List[str],
                 engine_kwargs: Dict) -> None:
        self.indices = indices
        rfd, wfd = os.pipe()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(rfd, send_conn, queries, engine_kwargs), daemon=True)
        self.process.start()
        os.close(rfd)
        send_conn.close()
        self.writer = os.fdopen(wfd, "wb", buffering=1 << 16)
        self.conn = recv_conn
        self.alive = True
        self.bytes_shipped = 0

    def ship(self, frame: bytes) -> None:
        if not self.alive:
            return
        try:
            self.writer.write(frame)
            self.bytes_shipped += len(frame)
        except BrokenPipeError:
            # The worker died; its error surfaces in collect().
            self.alive = False

    def collect(self, timeout: Optional[float]) -> Dict:
        try:
            if self.alive:
                codec.write_frame(self.writer, b"")  # end-of-stream
                self.writer.flush()
        except BrokenPipeError:
            pass
        finally:
            self.writer.close()
        if self.conn.poll(timeout):
            result = self.conn.recv()
        else:
            result = {"ok": False,
                      "error": "worker produced no result within {}s"
                      .format(timeout)}
        self.conn.close()
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()
        return result

    def abort(self) -> None:
        try:
            self.writer.close()
        except OSError:
            pass
        self.conn.close()
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()


class _InlineShard:
    """Fallback shard on platforms without fork: same codec round trip,
    same result shape, executed in the parent process."""

    def __init__(self, indices: List[int], queries: List[str],
                 engine_kwargs: Dict) -> None:
        self.indices = indices
        self.mq = MultiQueryRun(queries, **engine_kwargs)
        self.bytes_shipped = 0
        self._failed: Optional[str] = None

    def ship(self, frame: bytes) -> None:
        if self._failed is not None:
            return
        self.bytes_shipped += len(frame)
        try:
            payload = codec.read_frame(io.BytesIO(frame))
            self.mq.feed_all(codec.decode_batch(payload))
        except Exception as exc:
            self._failed = "{}: {}".format(type(exc).__name__, exc)

    def collect(self, timeout: Optional[float]) -> Dict:
        if self._failed is not None:
            return {"ok": False, "error": self._failed}
        try:
            self.mq.finish()
        except Exception as exc:
            return {"ok": False, "error": "{}: {}".format(
                type(exc).__name__, exc)}
        return {"ok": True, "texts": self.mq.texts(),
                "stats": self.mq.stats()}

    def abort(self) -> None:
        pass


class ShardedMultiQueryRun:
    """Evaluate N standing queries sharded across worker processes.

    Mirrors the :class:`~repro.xquery.engine.MultiQueryRun` interface
    (``feed`` / ``feed_all`` / ``finish`` / ``run_xml`` / ``texts`` /
    ``stats``); results are in submission order regardless of shard
    placement.

    Args:
        queries: query *texts* (workers compile their own plans; plans
            and engines are not shippable).
        workers: shard count; defaults to :func:`available_workers`.
        weights: optional per-query cost estimates for shard balancing.
        batch_events: events buffered per broadcast frame.
        mutable_source / ignore_updates / validate / always_active:
            forwarded to each worker's ``MultiQueryRun``.
    """

    def __init__(self, queries: Sequence[str],
                 workers: Optional[int] = None,
                 weights: Optional[Sequence[float]] = None,
                 batch_events: int = 4096,
                 mutable_source: bool = False,
                 ignore_updates: bool = False,
                 validate: bool = False,
                 always_active: bool = False,
                 metrics: Optional[bool] = None,
                 sample_interval: int = 256) -> None:
        self.query_texts: List[str] = []
        for q in queries:
            if not isinstance(q, str):
                raise TypeError(
                    "sharded execution needs query texts, got {!r}"
                    .format(type(q).__name__))
            self.query_texts.append(q)
        if batch_events < 1:
            raise ValueError("batch_events must be >= 1")
        self.workers = workers if workers is not None else \
            available_workers()
        engine_kwargs = dict(mutable_source=mutable_source,
                             ignore_updates=ignore_updates,
                             validate=validate,
                             always_active=always_active,
                             metrics=metrics,
                             sample_interval=sample_interval)
        # Compile in the parent first: fail fast on a bad query before
        # any process is forked, and learn the stream metadata the
        # tokenizer needs (oids, source stream number).  The probe never
        # runs, so it records nothing.
        probe = MultiQueryRun(self.query_texts,
                              **dict(engine_kwargs, metrics=False))
        self.needs_oids = probe.needs_oids
        self.source_id = probe.source_id
        self.shards_indices = shard_queries(len(self.query_texts),
                                            self.workers, weights)
        ctx = _fork_context()
        self.mode = "fork" if ctx is not None else "inline"
        self._shards = []
        for indices in self.shards_indices:
            shard_queries_ = [self.query_texts[i] for i in indices]
            if ctx is not None:
                self._shards.append(_ForkShard(ctx, indices,
                                               shard_queries_,
                                               engine_kwargs))
            else:
                self._shards.append(_InlineShard(indices, shard_queries_,
                                                 engine_kwargs))
        self._batch_events = batch_events
        self._buffer: List[Event] = []
        self.events_in = 0
        self.frames = 0
        self._results: Optional[List[Dict]] = None
        self._texts: Optional[List[str]] = None

    # -- feeding ---------------------------------------------------------------

    def feed(self, event: Event) -> None:
        self._buffer.append(event)
        if len(self._buffer) >= self._batch_events:
            self._flush()

    def feed_all(self, events: Iterable[Event]) -> None:
        buffer = self._buffer
        limit = self._batch_events
        for e in events:
            buffer.append(e)
            if len(buffer) >= limit:
                self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        # Encode once; every worker receives the identical frame bytes.
        frame = codec.encode_frame(self._buffer)
        self.events_in += len(self._buffer)
        self.frames += 1
        self._buffer.clear()
        for shard in self._shards:
            shard.ship(frame)

    def finish(self, timeout: Optional[float] = 120.0
               ) -> "ShardedMultiQueryRun":
        """Flush, signal end-of-stream, and gather worker results."""
        if self._results is not None:
            return self
        self._flush()
        self._results = [shard.collect(timeout) for shard in self._shards]
        failures = [r["error"] for r in self._results if not r["ok"]]
        if failures:
            raise RuntimeError(
                "{} of {} shard workers failed: {}".format(
                    len(failures), len(self._shards), "; ".join(failures)))
        texts: List[Optional[str]] = [None] * len(self.query_texts)
        for shard, result in zip(self._shards, self._results):
            for local_i, orig_i in enumerate(shard.indices):
                texts[orig_i] = result["texts"][local_i]
        self._texts = texts  # type: ignore[assignment]
        return self

    def run(self, events: Iterable[Event]) -> "ShardedMultiQueryRun":
        self.feed_all(events)
        return self.finish()

    def run_xml(self, text: str) -> "ShardedMultiQueryRun":
        """Evaluate over an XML document: one parent-side tokenizer pass."""
        events = tokenize(text, stream_id=self.source_id,
                          emit_oids=self.needs_oids)
        return self.run(events)

    def abort(self) -> None:
        """Tear down workers without collecting results."""
        for shard in self._shards:
            shard.abort()
        if self._results is None:
            self._results = []

    def __enter__(self) -> "ShardedMultiQueryRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif self._results is None:
            self.finish()

    # -- results ---------------------------------------------------------------

    def texts(self) -> List[str]:
        """Final answers in submission order (available after finish)."""
        if self._texts is None:
            raise RuntimeError("results are available after finish()")
        return list(self._texts)

    def text(self, i: int) -> str:
        return self.texts()[i]

    def stats(self) -> dict:
        """Aggregate executor metrics plus the per-query breakdown."""
        if self._results is None:
            raise RuntimeError("stats are available after finish()")
        per_query: List[Optional[dict]] = [None] * len(self.query_texts)
        calls = cells = 0
        for shard, result in zip(self._shards, self._results):
            shard_stats = result["stats"]
            calls += shard_stats["transformer_calls"]
            cells += shard_stats["state_cells"]
            for local_i, orig_i in enumerate(shard.indices):
                per_query[orig_i] = shard_stats["per_query"][local_i]
        out = {
            "queries": len(self.query_texts),
            "workers": len(self._shards),
            "mode": self.mode,
            "shards": [list(s.indices) for s in self._shards],
            "events_in": self.events_in,
            "frames": self.frames,
            "bytes_shipped": sum(s.bytes_shipped for s in self._shards),
            "transformer_calls": calls,
            "state_cells": cells,
            "per_query": per_query,
        }
        merged = self.metrics()
        if merged is not None:
            out["metrics"] = merged
        return out

    def metrics(self) -> Optional[dict]:
        """Telemetry merged across shard workers (None when off).

        Worker recorders serialize to plain dicts, travel home on the
        result pipe inside each worker's stats payload, and are merged
        here — the totals equal what a single-process
        ``MultiQueryRun(..., metrics=True)`` over the same queries and
        stream reports.
        """
        if self._results is None:
            raise RuntimeError("metrics are available after finish()")
        from ..obs import merge_metrics
        dicts = [r["stats"]["metrics"] for r in self._results
                 if r.get("stats") and "metrics" in r["stats"]]
        return merge_metrics(dicts) if dicts else None

    def __repr__(self) -> str:
        return "ShardedMultiQueryRun({} queries, {} workers, {})".format(
            len(self.query_texts), len(self._shards), self.mode)
