"""Process-pool sharding of the multi-query executor, with supervision.

The single-process :class:`~repro.xquery.engine.MultiQueryRun` removes
the redundant tokenizer passes but still evaluates every pipeline on one
core; per-query transformer work is untouched and dominates.  Sharding
partitions the *query set* — not the stream — across worker processes:

* the parent tokenizes (or deserializes) the input exactly once;
* each event batch is encoded exactly once as a checked codec frame
  (sequence number + CRC32) and the same frame bytes are written to
  every worker's pipe (encoding cost is O(stream), independent of the
  worker count);
* each worker decodes the frames and drives an ordinary
  ``MultiQueryRun`` over its shard, so per-query semantics, results and
  accounting are identical to the single-process executor;
* at end-of-stream the parent collects per-query texts and stats over a
  result connection and reassembles them in submission order.

Fault tolerance (DESIGN.md section 9) is layered on top without
changing the data path:

* workers acknowledge applied frames and ship periodic checkpoints
  (pickled executor state) back over the result connection;
* the parent keeps a bounded journal of broadcast frames newer than the
  oldest live checkpoint.  A dead worker — crash, kill, codec failure
  from a corrupt frame, sequence gap from a dropped frame — is
  respawned from its last checkpoint and the journal suffix is
  replayed.  Replay is deterministic, so recovered output is
  byte-identical to an uninterrupted run (``tests/test_fault.py``);
* when the restart budget is exhausted the parent takes the shard over
  inline (restore + replay in-process); only if that also fails are the
  shard's queries quarantined with captured error reports — sibling
  shards are never aborted.  ``quarantine=False`` restores fail-fast
  :class:`ShardError` propagation instead.

Workers are forked (query texts and flags travel by memory inheritance,
not pickling).  On platforms without ``fork`` the class degrades to an
in-process executor that still round-trips every batch through the
codec and runs the same sequence discipline and journal recovery, so
behaviour — including fault injection — is uniform everywhere.

Shard assignment is greedy balanced-load: queries are placed
heaviest-first onto the least-loaded shard, using caller-supplied cost
weights when available (the bench harness feeds back measured
single-process times) and uniform weights otherwise.
"""

from __future__ import annotations

import errno
import io
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..events import codec
from ..events.model import Event
from ..fault import FaultPlan, arm_stage_fault, error_report
from ..xmlio.tokenizer import tokenize
from ..xquery.engine import MultiQueryRun, _metrics_default


class ShardError(RuntimeError):
    """A shard failed past every recovery path (or quarantine is off)."""


def available_workers() -> int:
    """Usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def _fork_context():
    try:
        import multiprocessing
        return multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return None


def shard_queries(n_queries: int, workers: int,
                  weights: Optional[Sequence[float]] = None
                  ) -> List[List[int]]:
    """Partition query indices into at most ``workers`` balanced shards.

    Greedy longest-processing-time: heaviest query first, always onto
    the least-loaded shard.  Within a shard the original submission
    order is kept.  Empty shards are dropped.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1, got {}".format(workers))
    w = list(weights) if weights is not None else [1.0] * n_queries
    if len(w) != n_queries:
        raise ValueError("got {} weights for {} queries".format(
            len(w), n_queries))
    shards: List[List[int]] = [[] for _ in range(min(workers, n_queries))]
    loads = [0.0] * len(shards)
    for i in sorted(range(n_queries), key=lambda i: -w[i]):
        k = loads.index(min(loads))
        loads[k] += w[i]
        shards[k].append(i)
    for shard in shards:
        shard.sort()
    return [s for s in shards if s]


class _Journal:
    """Bounded in-memory log of broadcast frames, for worker replay.

    Frames arrive with contiguous 1-based sequence numbers.  The parent
    prunes up to the oldest checkpoint any live worker could restart
    from; beyond that the ``limit`` evicts oldest-first, and a recovery
    that would need an evicted frame raises (the shard is then
    quarantined — bounded memory is chosen over unbounded replay).
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("journal_limit must be >= 1")
        self.limit = limit
        self._frames: Dict[int, bytes] = {}
        self._lo = 1            # smallest retained sequence number
        self.evicted_to = 0     # sequence numbers <= this are gone

    def append(self, seq: int, frame: bytes) -> None:
        self._frames[seq] = frame
        while len(self._frames) > self.limit:
            del self._frames[self._lo]
            self.evicted_to = self._lo
            self._lo += 1

    def prune(self, upto: int) -> None:
        """Discard frames with seq <= ``upto`` (checkpoint-covered)."""
        while self._lo <= upto and self._frames:
            self._frames.pop(self._lo, None)
            self._lo += 1
        if upto > self.evicted_to:
            self.evicted_to = upto

    def frame(self, seq: int) -> bytes:
        try:
            return self._frames[seq]
        except KeyError:
            raise ShardError(
                "journal no longer holds frame {} (evicted up to {}, "
                "limit {})".format(seq, self.evicted_to, self.limit))

    def stats(self) -> dict:
        return {"frames": len(self._frames), "limit": self.limit,
                "evicted_to": self.evicted_to}


class _WalJournal:
    """Journal facade backed by the write-ahead log (durable runs).

    Durable mode logs every frame to disk *before* dispatch, so the
    in-memory journal is redundant: ``append`` and ``prune`` are no-ops
    (retention is governed by the WAL's checkpoint-gated truncation)
    and worker restarts replay the frame bytes straight out of the
    log — disk-authoritative, identical bytes by construction
    (:meth:`~repro.fault.wal.WriteAheadLog.frame_bytes`).
    """

    def __init__(self, wal) -> None:
        self.wal = wal

    def append(self, seq: int, frame: bytes) -> None:
        pass                    # logged ahead of dispatch in _flush

    def prune(self, upto: int) -> None:
        pass                    # WAL truncation is checkpoint-gated

    def frame(self, seq: int) -> bytes:
        from ..fault.wal import WalError
        try:
            return self.wal.frame_bytes(seq)
        except WalError as exc:
            raise ShardError(
                "write-ahead log cannot replay frame {}: {}".format(
                    seq, exc))

    def stats(self) -> dict:
        return {"frames": self.wal.frames, "limit": None,
                "evicted_to": self.wal.floor(), "wal": True}


class _ShardEngine:
    """Sequence-disciplined frame consumer driving one shard's executor.

    Shared by worker processes and the parent's inline paths so the
    recovery semantics are identical everywhere: duplicate frames
    (seq <= applied) are dropped, gaps raise a structured
    :class:`~repro.events.codec.CodecError`, and construction either
    starts fresh (arming any scripted stage faults) or restores a
    checkpoint (armed faults ride inside the blob).
    """

    def __init__(self, queries: List[str], engine_kwargs: Dict,
                 global_indices: List[int],
                 stage_faults: List[Tuple[int, int, int]],
                 ckpt_blob: Optional[bytes] = None,
                 start_seq: int = 0,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if ckpt_blob is not None:
            self.mq = MultiQueryRun.restore(ckpt_blob, queries=queries)
        else:
            self.mq = MultiQueryRun(queries, **engine_kwargs)
            for local_q, stage, at in stage_faults:
                arm_stage_fault(self.mq.query_run(local_q), stage, at,
                                query=global_indices[local_q])
        # Shard-layer faults are armed above with global indices, so
        # the plan is NOT passed to MultiQueryRun (it would re-arm with
        # local ones) — it is installed only for quarantine bundles.
        if fault_plan is not None:
            self.mq.mux.fault_plan = fault_plan
        self.applied = start_seq
        self.duplicates_dropped = 0

    def apply(self, seq: Optional[int], payload: bytes) -> bool:
        """Apply one frame; False if it was a duplicate.

        Raises :class:`~repro.events.codec.CodecError` on a sequence
        gap — the caller treats that exactly like a corrupt frame
        (restart + replay fills the hole from the journal).
        """
        if seq is None:
            seq = self.applied + 1      # legacy unchecked frame
        if seq <= self.applied:
            self.duplicates_dropped += 1
            return False
        if seq != self.applied + 1:
            raise codec.CodecError(
                "frame sequence gap: expected {}, got {}".format(
                    self.applied + 1, seq),
                reason="sequence-gap", expected=self.applied + 1, got=seq)
        self.mq.feed_all(codec.decode_batch(payload))
        self.applied = seq
        return True

    def apply_frame_bytes(self, frame: bytes) -> bool:
        """Decode one raw frame (either format) and apply it."""
        result = codec.read_frame_ex(io.BytesIO(frame))
        if result is None or not result[1]:
            return False
        return self.apply(result[0], result[1])

    def checkpoint(self) -> bytes:
        return self.mq.checkpoint()

    def result(self) -> Dict:
        mq = self.mq.finish()
        return {"ok": True, "texts": mq.texts(), "stats": mq.stats(),
                "statuses": mq.statuses(),
                "error_reports": mq.error_reports(),
                "frames_applied": self.applied,
                "duplicates_dropped": self.duplicates_dropped}


def _worker_main(rfd: int, result_conn, queries: List[str],
                 engine_kwargs: Dict, global_indices: List[int],
                 stage_faults: List[Tuple[int, int, int]],
                 ack_interval: int, checkpoint_interval: int,
                 ckpt_blob: Optional[bytes], start_seq: int,
                 fault_plan: Optional[FaultPlan] = None) -> None:
    """Worker entry: decode frames from ``rfd``, run the shard, report.

    Protocol (worker -> parent over ``result_conn``)::

        ("ack", seq)            frame ``seq`` applied
        ("ckpt", seq, blob)     checkpoint covering frames <= seq
        ("done", result)        end-of-stream result payload
        ("fail", report)        structured failure; the worker exits

    A restarted worker gets the last checkpoint (``ckpt_blob`` +
    ``start_seq``) and sees the missed frames again via journal replay.
    """
    applied = start_seq
    try:
        engine = _ShardEngine(queries, engine_kwargs, global_indices,
                              stage_faults, ckpt_blob=ckpt_blob,
                              start_seq=start_seq,
                              fault_plan=fault_plan)
        since_ack = since_ckpt = 0
        with os.fdopen(rfd, "rb", buffering=1 << 16) as reader:
            for seq, payload in codec.iter_frames_ex(reader):
                if not engine.apply(seq, payload):
                    continue
                applied = engine.applied
                since_ack += 1
                since_ckpt += 1
                if since_ack >= ack_interval:
                    result_conn.send(("ack", applied))
                    since_ack = 0
                if since_ckpt >= checkpoint_interval:
                    result_conn.send(("ckpt", applied,
                                      engine.checkpoint()))
                    since_ckpt = 0
        result_conn.send(("done", engine.result()))
    except BaseException as exc:  # report, don't hang the parent
        try:
            result_conn.send(("fail", error_report(
                exc, frames_applied=applied,
                shard_queries=list(queries))))
        except Exception:
            pass
    finally:
        try:
            result_conn.close()
        except Exception:
            pass


_FRAME_FAULTS = ("drop", "corrupt", "dup")


class _FaultMixin:
    """Per-shard fault-plan bookkeeping shared by both shard flavours."""

    def _init_faults(self, shard_no: int, indices: List[int],
                     fault_plan: Optional[FaultPlan]) -> None:
        self.no = shard_no
        self.plan = fault_plan
        self.stage_faults = (fault_plan.stage_faults(indices)
                             if fault_plan else [])
        self.kill_after = (fault_plan.kill_after(shard_no)
                           if fault_plan else None)
        self._kill_fired = False
        self._fired: set = set()
        #: Post-mortem bundles, one per recovery action (see
        #: :mod:`repro.obs.flightrec`).  Parent-side state — recovery
        #: is rare, so building these is off every hot path.
        self.flight_bundles: List[dict] = []

    def _record_bundle(self, reason: str, report: dict) -> None:
        """Capture one recovery as a flight-recorder bundle."""
        from ..obs.flightrec import shard_bundle
        self.flight_bundles.append(shard_bundle(
            reason, shard=self.no, report=report,
            restarts=self.restarts,
            replayed_frames=self.replayed_frames,
            last_ckpt_seq=self.last_ckpt_seq,
            seq_target=self.seq_target,
            quarantined=self.quarantined,
            fault_plan=self.plan))

    def _frame_actions(self, seq: int) -> List[str]:
        """Unfired scripted actions for this frame; marks them fired.

        Each action fires at most once — replayed frames never re-fire
        a fault, which is what lets recovery converge.
        """
        if self.plan is None:
            return []
        out = []
        for kind in self.plan.frame_actions(self.no, seq):
            if (kind, seq) not in self._fired:
                self._fired.add((kind, seq))
                out.append(kind)
        return out

    def _kill_due(self) -> bool:
        if (self.kill_after is not None and not self._kill_fired
                and self.frames_delivered >= self.kill_after):
            self._kill_fired = True
            return True
        return False


class _ForkShard(_FaultMixin):
    """Parent-side supervisor of one forked worker.

    Owns the worker's lifecycle: spawn, health checks on every
    delivery, restart-from-checkpoint with journal replay and
    exponential backoff, inline takeover when the restart budget runs
    out, quarantine as the last resort.  All file descriptors are
    closed and the child reaped on every exit path.
    """

    def __init__(self, ctx, shard_no: int, indices: List[int],
                 queries: List[str], engine_kwargs: Dict,
                 fault_plan: Optional[FaultPlan], sup: Dict) -> None:
        self.ctx = ctx
        self.indices = indices
        self.queries = queries
        self.engine_kwargs = engine_kwargs
        self.sup = sup
        self._init_faults(shard_no, indices, fault_plan)
        self.bytes_shipped = 0
        self.frames_delivered = 0   # fault-visible deliveries (kill clock)
        self.seq_target = 0         # newest broadcast seq (replay bound)
        self.last_ack = 0
        self.last_ckpt_seq = 0
        self.ckpt_blob: Optional[bytes] = None
        self.checkpoints = 0
        self.restarts = 0
        self.replayed_frames = 0
        self.duplicates_dropped = 0
        self.inline: Optional[_ShardEngine] = None
        self.inline_takeover = 0
        self.quarantined = False
        self.quarantine_report: Optional[dict] = None
        self.process = None
        self.writer = None
        self.conn = None
        self._spawn(None, 0)

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, ckpt_blob: Optional[bytes], start_seq: int) -> None:
        rfd, wfd = os.pipe()
        recv_conn, send_conn = self.ctx.Pipe(duplex=False)
        try:
            self.process = self.ctx.Process(
                target=_worker_main,
                args=(rfd, send_conn, self.queries, self.engine_kwargs,
                      self.indices, self.stage_faults,
                      self.sup["ack_interval"],
                      self.sup["checkpoint_interval"],
                      ckpt_blob, start_seq, self.plan),
                daemon=True)
            self.process.start()
        except BaseException:
            os.close(wfd)
            recv_conn.close()
            raise
        finally:
            os.close(rfd)
            send_conn.close()
        self.writer = os.fdopen(wfd, "wb", buffering=1 << 16)
        self.conn = recv_conn

    def _reap(self) -> None:
        """Close this worker's fds and wait the child out (no zombies)."""
        if self.writer is not None:
            try:
                self.writer.close()
            except OSError:
                pass
            self.writer = None
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            self.process.join(1.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join()
            self.process = None

    def abort(self) -> None:
        self._reap()

    # -- supervision ----------------------------------------------------------

    def _pump(self) -> Optional[tuple]:
        """Drain pending worker messages; return a terminal one, if any."""
        if self.conn is None:
            return None
        try:
            while self.conn.poll(0):
                msg = self.conn.recv()
                kind = msg[0]
                if kind == "ack":
                    self.last_ack = max(self.last_ack, msg[1])
                elif kind == "ckpt":
                    self.last_ckpt_seq = msg[1]
                    self.ckpt_blob = msg[2]
                    self.last_ack = max(self.last_ack, msg[1])
                    self.checkpoints += 1
                else:           # "done" / "fail"
                    return msg
        except (EOFError, OSError):
            pass
        return None

    def _recover(self, journal: _Journal, report: dict) -> bool:
        """Bring the shard back after a worker death.

        Restart budget first (respawn from the last checkpoint, replay
        the journal suffix), inline takeover second, quarantine last.
        Returns True when the shard can keep consuming frames.
        """
        while self.restarts < self.sup["max_restarts"]:
            self._reap()
            if self.restarts:
                time.sleep(self.sup["restart_backoff"]
                           * (2 ** (self.restarts - 1)))
            self.restarts += 1
            try:
                self._spawn(self.ckpt_blob, self.last_ckpt_seq)
                self._replay(journal)
            except ShardError:
                break           # journal evicted: restart cannot help
            except OSError:
                continue
            self._record_bundle("worker-restart", report)
            return True
        self._reap()
        if self._takeover(journal):
            self._record_bundle("inline-takeover", report)
            return True
        self.quarantined = True
        self.quarantine_report = report
        self._record_bundle("shard-quarantine", report)
        return False

    def _replay(self, journal: _Journal) -> None:
        """Re-ship the exact journal bytes the restarted worker missed.

        Replay bypasses fault actions and the kill clock: a fault fires
        once against the live stream, never again against its replay.
        """
        for seq in range(self.last_ckpt_seq + 1, self.seq_target + 1):
            frame = journal.frame(seq)
            self.writer.write(frame)
            self.bytes_shipped += len(frame)
            self.replayed_frames += 1
        self.writer.flush()

    def _takeover(self, journal: _Journal) -> bool:
        """Adopt the shard into the parent process (last-ditch recovery)."""
        try:
            engine = _ShardEngine(
                self.queries, self.engine_kwargs, self.indices,
                [] if self.ckpt_blob is not None else self.stage_faults,
                ckpt_blob=self.ckpt_blob, start_seq=self.last_ckpt_seq,
                fault_plan=self.plan)
            for seq in range(self.last_ckpt_seq + 1, self.seq_target + 1):
                engine.apply_frame_bytes(journal.frame(seq))
                self.replayed_frames += 1
        except Exception:
            return False
        self.inline = engine
        self.inline_takeover = 1
        return True

    # -- data path ------------------------------------------------------------

    def deliver(self, seq: int, frame: bytes, journal: _Journal) -> None:
        """Ship one broadcast frame, applying any scripted faults."""
        self.seq_target = seq
        if self.quarantined:
            return
        if self.inline is not None:
            try:
                self.inline.apply_frame_bytes(frame)
            except Exception as exc:
                self.quarantined = True
                self.quarantine_report = error_report(
                    exc, shard=self.no, phase="inline-takeover")
                self._record_bundle("shard-quarantine",
                                    self.quarantine_report)
            return
        terminal = self._pump()
        if terminal is not None and terminal[0] == "fail":
            self._recover(journal, terminal[1])
            return              # _replay already covered this frame
        if self.process is not None and not self.process.is_alive():
            self._recover(journal, {
                "error_type": "WorkerDied",
                "message": "worker exited unexpectedly before "
                           "end-of-stream"})
            return
        actions = self._frame_actions(seq)
        if "drop" in actions:
            return              # the gap (or tail check) triggers recovery
        out = (self.plan.corrupt_bytes(frame, seq)
               if "corrupt" in actions else frame)
        for _ in range(2 if "dup" in actions else 1):
            if not self._write(out, journal):
                return
        self.frames_delivered += 1
        if self._kill_due():
            self.process.kill()

    def _write(self, data: bytes, journal: _Journal) -> bool:
        try:
            self.writer.write(data)
            self.writer.flush()
            self.bytes_shipped += len(data)
            return True
        except OSError as exc:
            if exc.errno not in (None, errno.EPIPE):
                raise
            return self._recover(journal, error_report(
                exc, shard=self.no, phase="ship"))

    # -- completion -----------------------------------------------------------

    def _send_eos(self) -> bool:
        try:
            codec.write_frame(self.writer, b"")
            self.writer.flush()
            return True
        except OSError:
            return False

    def collect(self, timeout: Optional[float], journal: _Journal,
                total_frames: int) -> Dict:
        """Signal end-of-stream and gather this shard's result.

        Every failure observed here — worker death, a ``fail`` message,
        a timeout, a frames-applied shortfall (a dropped tail frame
        leaves no gap for the worker to notice) — goes through the same
        :meth:`_recover` ladder before giving up.
        """
        if self.quarantined:
            return self._quarantine_result()
        if self.inline is None and not self._send_eos():
            self._recover_and_resend(journal, {
                "error_type": "WorkerDied",
                "message": "worker gone at end-of-stream"})
        if self.inline is not None:
            return self._inline_result()
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            if self.quarantined:
                return self._quarantine_result()
            if self.inline is not None:
                return self._inline_result()
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                self.restarts = self.sup["max_restarts"]  # no respawn loop
                self._recover(journal, {
                    "error_type": "TimeoutError",
                    "message": "worker produced no result within {}s"
                    .format(timeout)})
                continue
            try:
                ready = self.conn.poll(
                    0.05 if remaining is None else min(remaining, 0.05))
            except (EOFError, OSError):
                ready = False
            if not ready:
                if self.process is not None and not self.process.is_alive():
                    if self._pump_terminal_after_death(journal):
                        continue
                continue
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                if self._recover_and_resend(journal, {
                        "error_type": "WorkerDied",
                        "message": "result connection closed"}):
                    if deadline is not None:
                        deadline = time.monotonic() + timeout
                continue
            kind = msg[0]
            if kind == "ack":
                self.last_ack = max(self.last_ack, msg[1])
            elif kind == "ckpt":
                self.last_ckpt_seq, self.ckpt_blob = msg[1], msg[2]
                self.checkpoints += 1
            elif kind == "fail":
                if self._recover_and_resend(journal, msg[1]) \
                        and deadline is not None:
                    deadline = time.monotonic() + timeout
            else:               # "done"
                result = msg[1]
                if result.get("frames_applied", total_frames) \
                        != total_frames:
                    if self._recover_and_resend(journal, {
                            "error_type": "FramesLost",
                            "message":
                                "worker applied {} of {} frames".format(
                                    result.get("frames_applied"),
                                    total_frames)}) \
                            and deadline is not None:
                        deadline = time.monotonic() + timeout
                    continue
                self.duplicates_dropped = result.get(
                    "duplicates_dropped", 0)
                self._reap()
                return result

    def _pump_terminal_after_death(self, journal: _Journal) -> bool:
        """A dead worker with nothing readable left: recover.

        Returns True so the collect loop re-evaluates shard state.
        """
        self._recover(journal, {
            "error_type": "WorkerDied",
            "message": "worker exited without a result"})
        if not self.quarantined and self.inline is None:
            self._send_eos()
        return True

    def _recover_and_resend(self, journal: _Journal,
                            report: dict) -> bool:
        if not self._recover(journal, report):
            return False
        if self.inline is None:
            self._send_eos()
        return True

    def _inline_result(self) -> Dict:
        try:
            result = self.inline.result()
        except Exception as exc:
            self.quarantined = True
            self.quarantine_report = error_report(
                exc, shard=self.no, phase="inline-finish")
            self._record_bundle("shard-quarantine",
                                self.quarantine_report)
            return self._quarantine_result()
        self.duplicates_dropped = result["duplicates_dropped"]
        return result

    def _quarantine_result(self) -> Dict:
        report = self.quarantine_report or {
            "error_type": "ShardError", "message": "shard quarantined"}
        return {"ok": False, "quarantined": True,
                "error": "{}: {}".format(report.get("error_type"),
                                         report.get("message")),
                "report": report}


class _InlineShard(_FaultMixin):
    """Fallback shard on platforms without fork.

    Runs the same :class:`_ShardEngine`, the same codec round trip, the
    same sequence discipline and journal-replay recovery as a forked
    worker — a ``kill`` fault becomes a simulated crash (the engine is
    discarded and rebuilt from its last checkpoint), so chaos tests
    exercise identical recovery paths everywhere.
    """

    def __init__(self, shard_no: int, indices: List[int],
                 queries: List[str], engine_kwargs: Dict,
                 fault_plan: Optional[FaultPlan], sup: Dict) -> None:
        self.indices = indices
        self.queries = queries
        self.engine_kwargs = engine_kwargs
        self.sup = sup
        self._init_faults(shard_no, indices, fault_plan)
        self.engine: Optional[_ShardEngine] = _ShardEngine(
            queries, engine_kwargs, indices, self.stage_faults,
            fault_plan=fault_plan)
        self.bytes_shipped = 0
        self.frames_delivered = 0
        self.seq_target = 0
        self.last_ckpt_seq = 0
        self.ckpt_blob: Optional[bytes] = None
        self.checkpoints = 0
        self.restarts = 0
        self.replayed_frames = 0
        self.duplicates_dropped = 0
        self.inline_takeover = 0
        self.quarantined = False
        self.quarantine_report: Optional[dict] = None
        self._since_ckpt = 0

    def deliver(self, seq: int, frame: bytes, journal: _Journal) -> None:
        self.seq_target = seq
        if self.quarantined:
            return
        actions = self._frame_actions(seq)
        if "drop" in actions:
            return
        out = (self.plan.corrupt_bytes(frame, seq)
               if "corrupt" in actions else frame)
        for _ in range(2 if "dup" in actions else 1):
            self.bytes_shipped += len(out)
            try:
                if not self.engine.apply_frame_bytes(out):
                    continue
            except Exception as exc:
                self._recover(journal, error_report(exc, shard=self.no))
                if self.quarantined:
                    return
                continue
            self._since_ckpt += 1
            if self._since_ckpt >= self.sup["checkpoint_interval"]:
                self._take_checkpoint()
        self.frames_delivered += 1
        if self._kill_due():
            self.engine = None  # simulated crash: state is gone
            self._recover(journal, {"error_type": "SimulatedKill",
                                    "message": "kill fault (inline mode)"})

    def _take_checkpoint(self) -> None:
        try:
            self.ckpt_blob = self.engine.checkpoint()
        except Exception:
            return              # unpicklable state: recovery replays all
        self.last_ckpt_seq = self.engine.applied
        self.checkpoints += 1
        self._since_ckpt = 0

    def _recover(self, journal: _Journal, report: dict) -> None:
        if self.restarts >= self.sup["max_restarts"]:
            self.quarantined = True
            self.quarantine_report = report
            self.engine = None
            self._record_bundle("shard-quarantine", report)
            return
        self.restarts += 1
        try:
            engine = _ShardEngine(
                self.queries, self.engine_kwargs, self.indices,
                [] if self.ckpt_blob is not None else self.stage_faults,
                ckpt_blob=self.ckpt_blob, start_seq=self.last_ckpt_seq,
                fault_plan=self.plan)
            for seq in range(self.last_ckpt_seq + 1, self.seq_target + 1):
                engine.apply_frame_bytes(journal.frame(seq))
                self.replayed_frames += 1
        except Exception as exc:
            self.quarantined = True
            self.quarantine_report = error_report(
                exc, shard=self.no, phase="replay")
            self.engine = None
            self._record_bundle("shard-quarantine",
                                self.quarantine_report)
            return
        self.engine = engine
        self._record_bundle("worker-restart", report)

    def collect(self, timeout: Optional[float], journal: _Journal,
                total_frames: int) -> Dict:
        if not self.quarantined and self.engine is not None \
                and self.engine.applied != total_frames:
            self._recover(journal, {
                "error_type": "FramesLost",
                "message": "applied {} of {} frames".format(
                    self.engine.applied, total_frames)})
        if self.quarantined:
            report = self.quarantine_report or {}
            return {"ok": False, "quarantined": True,
                    "error": "{}: {}".format(report.get("error_type"),
                                             report.get("message")),
                    "report": report}
        try:
            result = self.engine.result()
        except Exception as exc:
            report = error_report(exc, shard=self.no, phase="finish")
            self.quarantined = True
            self.quarantine_report = report
            self._record_bundle("shard-quarantine", report)
            return {"ok": False, "quarantined": True,
                    "error": "{}: {}".format(report["error_type"],
                                             report["message"]),
                    "report": report}
        self.duplicates_dropped = result["duplicates_dropped"]
        return result

    def abort(self) -> None:
        pass


class ShardedMultiQueryRun:
    """Evaluate N standing queries sharded across supervised workers.

    Mirrors the :class:`~repro.xquery.engine.MultiQueryRun` interface
    (``feed`` / ``feed_all`` / ``finish`` / ``run_xml`` / ``texts`` /
    ``stats`` / ``statuses`` / ``error_reports``); results are in
    submission order regardless of shard placement.

    Args:
        queries: query *texts* (workers compile their own plans; plans
            and engines are not shippable).
        workers: shard count; defaults to :func:`available_workers`.
        weights: optional per-query cost estimates for shard balancing.
        batch_events: events buffered per broadcast frame.
        mutable_source / ignore_updates / validate / always_active:
            forwarded to each worker's ``MultiQueryRun``.
        quarantine: with the default True, unrecoverable failures
            quarantine the affected queries (``texts()`` reports None
            for them) instead of raising; False restores fail-fast
            :class:`ShardError` propagation.
        fault_plan: a :class:`~repro.fault.FaultPlan` to inject
            scripted failures; defaults to the ``REPRO_FAULTS``
            environment hook.
        max_restarts: worker respawn budget per shard.
        restart_backoff: base of the exponential restart delay
            (seconds; the k-th restart waits ``backoff * 2**(k-1)``).
        ack_interval / checkpoint_interval: frames between worker
            acknowledgements / shipped checkpoints.
        journal_limit: maximum broadcast frames retained for replay.
        projection: enable plan-driven stream projection.  The parent's
            tokenizer prunes with the union projection (one pass, like
            the single-process executor); each worker's ``MultiQueryRun``
            builds the same per-query masks for its shard, so mask
            counters shipped home merge to the single-process totals.
        schema: optional DTD refinement for the projection matchers
            (name ``"xmark"``/``"dblp"`` or an ``ElementSchema``; must
            be picklable to cross the fork boundary).
        fuse / share_prefixes: compile-layer switches, forwarded to
            each worker's ``MultiQueryRun`` (stage fusion and shared
            prefix tries are per-process — a shard's members can only
            share with co-resident queries).
        durable_dir: directory for a write-ahead log
            (:mod:`repro.fault.wal`).  The parent owns the WAL: every
            broadcast frame is durably logged *before* any worker sees
            it, worker checkpoints are mirrored into the log as
            per-shard CKPT records, and worker restarts replay from
            the log instead of the in-memory journal.  After SIGKILL
            of the whole parent, :func:`repro.fault.recover.recover`
            on the directory reproduces the run byte-identically.
            Not combinable with ``projection`` (the log must hold the
            full stream a recovery can resume from).
        durable_opts: passed to
            :class:`~repro.fault.wal.WriteAheadLog` (``segment_bytes``,
            ``fsync``, ``crash_after_frames``).
    """

    def __init__(self, queries: Sequence[str],
                 workers: Optional[int] = None,
                 weights: Optional[Sequence[float]] = None,
                 batch_events: int = 4096,
                 mutable_source: bool = False,
                 ignore_updates: bool = False,
                 validate: bool = False,
                 always_active: bool = False,
                 metrics: Optional[bool] = None,
                 sample_interval: int = 256,
                 quarantine: bool = True,
                 fault_plan: Optional[FaultPlan] = None,
                 max_restarts: int = 2,
                 restart_backoff: float = 0.05,
                 ack_interval: int = 1,
                 checkpoint_interval: int = 16,
                 journal_limit: int = 1024,
                 projection: bool = False,
                 schema=None,
                 fuse: Optional[bool] = None,
                 share_prefixes: Optional[bool] = None,
                 flight: Optional[bool] = None,
                 durable_dir: Optional[str] = None,
                 durable_opts: Optional[Dict] = None) -> None:
        self.query_texts: List[str] = []
        for q in queries:
            if not isinstance(q, str):
                raise TypeError(
                    "sharded execution needs query texts, got {!r}"
                    .format(type(q).__name__))
            self.query_texts.append(q)
        if batch_events < 1:
            raise ValueError("batch_events must be >= 1")
        self.workers = workers if workers is not None else \
            available_workers()
        self.quarantine = quarantine
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.fault_plan = fault_plan
        sup = {"max_restarts": max_restarts,
               "restart_backoff": restart_backoff,
               "ack_interval": ack_interval,
               "checkpoint_interval": checkpoint_interval}
        engine_kwargs = dict(mutable_source=mutable_source,
                             ignore_updates=ignore_updates,
                             validate=validate,
                             always_active=always_active,
                             metrics=metrics,
                             sample_interval=sample_interval,
                             quarantine=quarantine,
                             projection=projection,
                             schema=schema,
                             fuse=fuse,
                             share_prefixes=share_prefixes,
                             flight=flight)
        # The parent resolves the telemetry default the same way the
        # forked workers will (same environment), so parent-side
        # executor state — the tokenizer chunk histogram — is recorded
        # exactly when the workers record.
        self._parent_metrics = (_metrics_default() if metrics is None
                                else bool(metrics))
        # Compile in the parent first: fail fast on a bad query before
        # any process is forked, and learn the stream metadata the
        # tokenizer needs (oids, source stream number, projection).  The
        # probe never runs, so it records nothing.
        probe = MultiQueryRun(self.query_texts,
                              **dict(engine_kwargs, metrics=False))
        self.needs_oids = probe.needs_oids
        self.source_id = probe.source_id
        #: Union projection / tokenizer matcher, mirrored off the probe
        #: so the parent's run_xml prunes exactly like the
        #: single-process executor's would.
        self.projection = probe.projection
        self._projection_matcher = probe.projection_matcher
        self.projection_stats = None
        #: Parent-side tokenizer chunk-latency histogram (run_xml).
        self.chunk_latency = None
        self.shards_indices = shard_queries(len(self.query_texts),
                                            self.workers, weights)
        ctx = _fork_context()
        self.mode = "fork" if ctx is not None else "inline"
        self._journal = _Journal(journal_limit)
        self._wal = None
        self._wal_ckpt_logged: Dict[int, int] = {}
        if durable_dir is not None:
            if projection:
                raise ValueError("durable runs do not combine with "
                                 "tokenizer projection")
            from ..fault.wal import WriteAheadLog, jsonable_kwargs
            self._wal = WriteAheadLog(durable_dir,
                                      **(durable_opts or {}))
            self._wal.begin({
                "kind": "sharded",
                "queries": list(self.query_texts),
                "shards": [list(s) for s in self.shards_indices],
                "engine": jsonable_kwargs(engine_kwargs),
                "batch_events": batch_events,
                "needs_oids": self.needs_oids,
                "source_id": self.source_id,
                "workers": len(self.shards_indices),
            })
            self._wal.register_shards(range(len(self.shards_indices)))
            # Replay serves from the WAL, not the bounded in-memory
            # journal — durable frames are never evicted before their
            # checkpoint floor passes them.
            self._journal = _WalJournal(self._wal)
        self._shards = []
        for shard_no, indices in enumerate(self.shards_indices):
            shard_queries_ = [self.query_texts[i] for i in indices]
            if ctx is not None:
                self._shards.append(_ForkShard(
                    ctx, shard_no, indices, shard_queries_,
                    engine_kwargs, fault_plan, sup))
            else:
                self._shards.append(_InlineShard(
                    shard_no, indices, shard_queries_, engine_kwargs,
                    fault_plan, sup))
        self._batch_events = batch_events
        self._buffer: List[Event] = []
        self.events_in = 0
        self.frames = 0
        self._results: Optional[List[Dict]] = None
        self._texts: Optional[List[Optional[str]]] = None
        self._statuses: Optional[List[str]] = None
        self._error_reports: Optional[Dict[int, dict]] = None

    # -- feeding ---------------------------------------------------------------

    def feed(self, event: Event) -> None:
        self._buffer.append(event)
        if len(self._buffer) >= self._batch_events:
            self._flush()

    def feed_all(self, events: Iterable[Event]) -> None:
        buffer = self._buffer
        limit = self._batch_events
        for e in events:
            buffer.append(e)
            if len(buffer) >= limit:
                self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        # Encode once; every worker receives the identical frame bytes.
        seq = self.frames + 1
        payload = codec.encode_batch(self._buffer)
        frame = codec.frame_checked(payload, seq)
        self.events_in += len(self._buffer)
        self.frames = seq
        self._buffer.clear()
        if self._wal is not None:
            # Write-ahead: the frame is durably on disk before any
            # worker can see it, so a crash of this parent at any point
            # leaves a log that covers everything dispatched.
            self._wal.log_frame(seq, payload)
        journal = self._journal
        journal.append(seq, frame)
        for shard in self._shards:
            shard.deliver(seq, frame, journal)
        self._prune_journal()
        if self._wal is not None:
            self._log_worker_checkpoints()

    def _log_worker_checkpoints(self) -> None:
        """Mirror newly arrived worker checkpoints into the WAL.

        Each CKPT record advances that shard's replay floor; once every
        shard has a logged checkpoint the WAL can rotate and truncate
        (bounded log).
        """
        for shard in self._shards:
            blob = shard.ckpt_blob
            seq = shard.last_ckpt_seq
            if blob is None or seq <= self._wal_ckpt_logged.get(
                    shard.no, 0):
                continue
            self._wal.checkpoint(blob, seq, shard=shard.no)
            self._wal_ckpt_logged[shard.no] = seq

    def _prune_journal(self) -> None:
        """Drop frames every possible future replay is past."""
        floors = [s.last_ckpt_seq for s in self._shards
                  if isinstance(s, _ForkShard) and not s.quarantined
                  and s.inline is None]
        self._journal.prune(min(floors) if floors else self.frames)

    def finish(self, timeout: Optional[float] = 120.0
               ) -> "ShardedMultiQueryRun":
        """Flush, signal end-of-stream, and gather worker results."""
        if self._results is not None:
            return self
        self._flush()
        journal = self._journal
        self._results = [shard.collect(timeout, journal, self.frames)
                         for shard in self._shards]
        failures = [r["error"] for r in self._results if not r["ok"]]
        if failures and not self.quarantine:
            raise ShardError(
                "{} of {} shard workers failed: {}".format(
                    len(failures), len(self._shards), "; ".join(failures)))
        n = len(self.query_texts)
        texts: List[Optional[str]] = [None] * n
        statuses = ["quarantined"] * n
        reports: Dict[int, dict] = {}
        for shard, result in zip(self._shards, self._results):
            if result["ok"]:
                for local_i, orig_i in enumerate(shard.indices):
                    texts[orig_i] = result["texts"][local_i]
                    statuses[orig_i] = result["statuses"][local_i]
                for local_i, report in result["error_reports"].items():
                    reports[shard.indices[local_i]] = report
            else:
                for orig_i in shard.indices:
                    reports[orig_i] = result["report"]
        self._texts = texts
        self._statuses = statuses
        self._error_reports = reports
        if self._wal is not None:
            self._log_worker_checkpoints()
            for i, status in enumerate(statuses):
                if status == "quarantined":
                    self._wal.status(i, reports.get(i, {}), self.frames)
            self._wal.eos()
            self._wal.close()
        return self

    def run(self, events: Iterable[Event]) -> "ShardedMultiQueryRun":
        self.feed_all(events)
        return self.finish()

    def run_xml(self, text: str) -> "ShardedMultiQueryRun":
        """Evaluate over an XML document: one parent-side tokenizer pass."""
        tok_hist = None
        if self._parent_metrics:
            from ..obs.histogram import LogHistogram
            tok_hist = LogHistogram()
        if self._projection_matcher is not None:
            from ..xmlio.tokenizer import XMLTokenizer
            tok = XMLTokenizer(stream_id=self.source_id,
                               projection=self._projection_matcher)
            tok.chunk_histogram = tok_hist
            events = list(tok.tokenize(text))
            self.projection_stats = tok.projection_stats
            self.chunk_latency = tok_hist
            return self.run(events)
        if tok_hist is not None:
            from ..xmlio.tokenizer import XMLTokenizer
            tok = XMLTokenizer(stream_id=self.source_id,
                               emit_oids=self.needs_oids)
            tok.chunk_histogram = tok_hist
            events = list(tok.tokenize(text))
            self.chunk_latency = tok_hist
            return self.run(events)
        events = tokenize(text, stream_id=self.source_id,
                          emit_oids=self.needs_oids)
        return self.run(events)

    def abort(self) -> None:
        """Tear down workers without collecting results."""
        for shard in self._shards:
            shard.abort()
        if self._results is None:
            self._results = []

    def __enter__(self) -> "ShardedMultiQueryRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif self._results is None:
            self.finish()

    # -- results ---------------------------------------------------------------

    def texts(self) -> List[Optional[str]]:
        """Final answers in submission order (available after finish).

        Quarantined queries report ``None`` — see :meth:`statuses` and
        :meth:`error_reports` for what happened to them.
        """
        if self._texts is None:
            raise RuntimeError("results are available after finish()")
        return list(self._texts)

    def text(self, i: int) -> Optional[str]:
        return self.texts()[i]

    def statuses(self) -> List[str]:
        """Per-query health, submission order: ``"ok"``/``"quarantined"``."""
        if self._statuses is None:
            raise RuntimeError("statuses are available after finish()")
        return list(self._statuses)

    def error_reports(self) -> Dict[int, dict]:
        """Query index -> captured error report for quarantined queries."""
        if self._error_reports is None:
            raise RuntimeError("reports are available after finish()")
        return dict(self._error_reports)

    def stats(self) -> dict:
        """Aggregate executor metrics plus the per-query breakdown."""
        if self._results is None:
            raise RuntimeError("stats are available after finish()")
        per_query: List[Optional[dict]] = [None] * len(self.query_texts)
        calls = cells = 0
        for shard, result in zip(self._shards, self._results):
            if result["ok"]:
                shard_stats = result["stats"]
                calls += shard_stats["transformer_calls"]
                cells += shard_stats["state_cells"]
                for local_i, orig_i in enumerate(shard.indices):
                    per_query[orig_i] = shard_stats["per_query"][local_i]
            else:
                for orig_i in shard.indices:
                    per_query[orig_i] = {"status": "quarantined"}
        out = {
            "queries": len(self.query_texts),
            "workers": len(self._shards),
            "mode": self.mode,
            "shards": [list(s.indices) for s in self._shards],
            "events_in": self.events_in,
            "frames": self.frames,
            "bytes_shipped": sum(s.bytes_shipped for s in self._shards),
            "transformer_calls": calls,
            "state_cells": cells,
            "per_query": per_query,
            "statuses": self.statuses(),
            "fault_tolerance": self.fault_stats(),
        }
        if self.projection is not None:
            proj = {
                "union": self.projection.to_dict(),
                "tokenizer_pruning": self._projection_matcher is not None,
            }
            if self.projection_stats is not None:
                proj["tokenizer"] = self.projection_stats.to_dict()
            out["projection"] = proj
        merged = self.metrics()
        if merged is not None:
            out["metrics"] = merged
        return out

    def fault_stats(self) -> dict:
        """Supervision counters: what the fault-tolerance layer did."""
        shards = self._shards
        return {
            "restarts": sum(s.restarts for s in shards),
            "replayed_frames": sum(s.replayed_frames for s in shards),
            "inline_takeovers": sum(s.inline_takeover for s in shards),
            "duplicates_dropped": sum(s.duplicates_dropped
                                      for s in shards),
            "checkpoints": sum(s.checkpoints for s in shards),
            "quarantined_queries": (self._statuses or []).count(
                "quarantined"),
            "fault_plan": (self.fault_plan.to_spec()
                           if self.fault_plan else None),
            "journal": self._journal.stats(),
            "flight_bundles": sum(len(s.flight_bundles)
                                  for s in shards),
        }

    def flight_bundles(self) -> List[dict]:
        """Post-mortem bundles from every shard recovery, shard order.

        One bundle per recovery action (worker restart, inline
        takeover, quarantine); each records the cumulative
        ``replayed_frames`` counter as of that recovery, so the last
        bundle of a run agrees with :meth:`fault_stats`.  The chaos CLI
        writes these to its report directory.
        """
        return [b for s in self._shards for b in s.flight_bundles]

    def metrics(self) -> Optional[dict]:
        """Telemetry merged across shard workers (None when off).

        Worker recorders serialize to plain dicts, travel home on the
        result pipe inside each worker's stats payload, and are merged
        here — the totals equal what a single-process
        ``MultiQueryRun(..., metrics=True)`` over the same queries and
        stream reports.
        """
        if self._results is None:
            raise RuntimeError("metrics are available after finish()")
        from ..obs import merge_metrics
        dicts = [r["stats"]["metrics"] for r in self._results
                 if r.get("stats") and "metrics" in r["stats"]]
        if not dicts:
            return None
        merged = merge_metrics(dicts)
        # Tokenizer pruning happened once, in the parent — add its
        # counters exactly once so the totals match a single-process
        # projection run over the same stream.
        if self.projection_stats is not None:
            proj = merged.setdefault("projection", {})
            for key, value in self.projection_stats.counter_dict().items():
                proj[key] = proj.get(key, 0) + value
        # Same discipline for the parent's tokenizer chunk histogram.
        if self.chunk_latency is not None:
            merged.setdefault("histograms", {})["tokenizer_chunk"] = \
                self.chunk_latency.to_dict()
        return merged

    def __repr__(self) -> str:
        return "ShardedMultiQueryRun({} queries, {} workers, {})".format(
            len(self.query_texts), len(self._shards), self.mode)
