"""Multi-core sharding of the multi-query executor.

One process per shard of the standing-query set; the parent tokenizes
the input once, encodes each event batch once with the binary codec
(:mod:`repro.events.codec`) and broadcasts the frames to every worker
over OS pipes.  See :class:`ShardedMultiQueryRun`.
"""

from .shard import ShardedMultiQueryRun, available_workers, shard_queries

__all__ = ["ShardedMultiQueryRun", "shard_queries", "available_workers"]
