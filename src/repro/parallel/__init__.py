"""Multi-core sharding of the multi-query executor.

One process per shard of the standing-query set; the parent tokenizes
the input once, encodes each event batch once with the binary codec
(:mod:`repro.events.codec`) and broadcasts the frames to every worker
over OS pipes.  Workers are supervised: they acknowledge frames, ship
periodic checkpoints, and are restarted from the last checkpoint with
journal replay when they die (see :class:`ShardedMultiQueryRun` and
DESIGN.md section 9).
"""

from .shard import (ShardedMultiQueryRun, ShardError, available_workers,
                    shard_queries)

__all__ = ["ShardedMultiQueryRun", "ShardError", "shard_queries",
           "available_workers"]
