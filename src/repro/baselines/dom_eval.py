"""Naive, blocking XQuery evaluation over the in-memory mini-DOM.

This is the stand-in for conventional processors (the paper mentions Galax
and Saxon): parse the whole document into a tree, then evaluate.  It serves
two roles here:

* the **correctness oracle** — for every query in the supported subset,
  the streaming engine's final display must equal this evaluator's result
  (and, with updates, equal this evaluator over the eagerly-updated
  document);
* the **blocking baseline** for benchmarks — zero output until the entire
  input has been materialized, with memory proportional to the document.

Ordering intentionally mirrors the streaming engine's documented
semantics: descendant steps produce nested matches in postorder (the
paper's simplification), and backward steps produce candidates in the
clone's postorder with duplicates removed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

from ..operators.functions import compare_values
from ..operators.sorting import sort_key
from ..operators.aggregate import _format_number, _parse_number
from ..xmlio.dom import Element, Node, Text, forest_to_xml
from ..xquery import ast


class EvalError(ValueError):
    """Raised for queries outside the supported subset."""


def evaluate(expr: ast.Expr, root: Element) -> List[Node]:
    """Evaluate a query AST against a document tree; returns a forest."""
    return _Evaluator(root).eval(expr, {})


def evaluate_to_xml(expr: ast.Expr, root: Element) -> str:
    """Evaluate and serialize like the streaming result display."""
    return forest_to_xml(evaluate(expr, root))


def descendants_postorder(node: Element,
                          tag: Optional[str]) -> Iterator[Element]:
    """Proper descendants, nested matches before their enclosing match.

    This is the order the paper's ``//`` operator emits: an inner match is
    retroactively inserted *before* its enclosing match, while unrelated
    siblings keep document order.
    """
    for child in node.children:
        if isinstance(child, Element):
            yield from _postorder_matches(child, tag)


def _postorder_matches(node: Element,
                       tag: Optional[str]) -> Iterator[Element]:
    for child in node.children:
        if isinstance(child, Element):
            yield from _postorder_matches(child, tag)
    if tag is None or node.tag == tag:
        yield node


class _Evaluator:
    def __init__(self, root: Element) -> None:
        self.root = root

    # -- dispatch ------------------------------------------------------------

    def eval(self, expr: ast.Expr, env: dict) -> List[Node]:
        if isinstance(expr, ast.Source):
            return [self.root]
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise EvalError("unbound variable ${}".format(expr.name))
            return list(env[expr.name])
        if isinstance(expr, ast.Step):
            return self._eval_step(expr, env)
        if isinstance(expr, ast.Filter):
            base = self.eval(expr.base, env)
            return [n for n in base
                    if isinstance(n, Element)
                    and self._condition(expr.cond, n, env)]
        if isinstance(expr, ast.FLWOR):
            return self._eval_flwor(expr, env)
        if isinstance(expr, ast.ElementCtor):
            return [self._construct(expr, env)]
        if isinstance(expr, ast.SequenceExpr):
            out: List[Node] = []
            for item in expr.items:
                out.extend(self.eval(item, env))
            return out
        if isinstance(expr, ast.StringLit):
            return [Text(expr.value)]
        if isinstance(expr, ast.FunCall):
            return self._eval_funcall(expr, env)
        raise EvalError("unsupported expression {!r}".format(expr))

    # -- steps ------------------------------------------------------------------

    def _eval_step(self, expr: ast.Step, env: dict) -> List[Node]:
        if expr.axis in (ast.PARENT, ast.ANCESTOR):
            return self._eval_backward(expr, env)
        base = self.eval(expr.base, env)
        out: List[Node] = []
        for node in base:
            if not isinstance(node, Element):
                continue
            if expr.axis == ast.CHILD:
                out.extend(node.child_elements(expr.tag))
            elif expr.axis == ast.DESCENDANT:
                out.extend(descendants_postorder(node, expr.tag))
            elif expr.axis == ast.TEXT:
                out.extend(c for c in node.children if isinstance(c, Text))
            else:
                raise EvalError("unsupported axis {!r}".format(expr.axis))
        return out

    def _eval_backward(self, expr: ast.Step, env: dict) -> List[Node]:
        incoming = [n for n in self.eval(expr.base, env)
                    if isinstance(n, Element)]
        out: List[Node] = []
        for candidate in descendants_postorder(self.root, expr.tag):
            if any(self._encloses(candidate, c, expr.axis)
                   for c in incoming):
                out.append(candidate)
        return out

    @staticmethod
    def _encloses(candidate: Element, node: Element, axis: str) -> bool:
        """Is ``candidate`` a proper ancestor (or parent) of ``node``?"""
        if node is candidate:
            return False
        if axis == ast.PARENT:
            return node.parent is candidate
        return any(a is candidate for a in node.ancestors())

    # -- predicates ----------------------------------------------------------------

    def _condition(self, cond: ast.Expr, context: Element,
                   env: dict) -> bool:
        if isinstance(cond, ast.BoolExpr):
            op = all if cond.op == "and" else any
            return op(self._condition(item, context, env)
                      for item in cond.items)
        if isinstance(cond, ast.Compare):
            values = self._condition_values(cond.left, context, env)
            return any(compare_values(cond.op, v, cond.literal)
                       for v in values)
        if isinstance(cond, ast.FunCall) and cond.name == "contains":
            values = self._condition_values(cond.args[0], context, env)
            return any((cond.literal or "") in v for v in values)
        values = self._condition_nodes(cond, context, env)
        return bool(values)

    def _condition_nodes(self, expr: ast.Expr, context: Element,
                         env: dict) -> List[Node]:
        if isinstance(expr, (ast.VarRef,)):
            return [context]
        if isinstance(expr, ast.Source):
            return context.child_elements(expr.name)
        if isinstance(expr, ast.Step):
            bases = self._condition_nodes(expr.base, context, env)
            out: List[Node] = []
            for node in bases:
                if not isinstance(node, Element):
                    continue
                if expr.axis == ast.CHILD:
                    out.extend(node.child_elements(expr.tag))
                elif expr.axis == ast.DESCENDANT:
                    out.extend(descendants_postorder(node, expr.tag))
                elif expr.axis == ast.TEXT:
                    out.extend(c for c in node.children
                               if isinstance(c, Text))
                else:
                    raise EvalError(
                        "unsupported condition axis {!r}".format(expr.axis))
            return out
        raise EvalError("unsupported condition {!r}".format(expr))

    def _condition_values(self, expr: ast.Expr, context: Element,
                          env: dict) -> List[str]:
        return [n.string_value for n in
                self._condition_nodes(expr, context, env)]

    # -- FLWOR ------------------------------------------------------------------------

    def _eval_flwor(self, expr: ast.FLWOR, env: dict) -> List[Node]:
        seq = self.eval(expr.seq, env)
        bindings: List[Node] = []
        for item in seq:
            if expr.where is not None:
                if not isinstance(item, Element):
                    continue
                if not self._condition(expr.where, item, env):
                    continue
            bindings.append(item)
        if expr.order_key is not None:
            def key_of(item: Node):
                key_nodes = self._key_nodes(expr.order_key, item, env)
                return sort_key(key_nodes[0].string_value
                                if key_nodes else "")
            # Python's sort is stable even with reverse=True, matching the
            # streaming sort's tie behaviour (arrival order).
            bindings = sorted(bindings, key=key_of,
                              reverse=expr.descending)
        out: List[Node] = []
        for item in bindings:
            inner = dict(env)
            inner[expr.var] = [item]
            for name, let_expr in expr.lets:
                inner[name] = self.eval(let_expr, inner)
            out.extend(self.eval(expr.ret, inner))
        return out

    def _key_nodes(self, expr: ast.Expr, item: Node,
                   env: dict) -> List[Node]:
        if isinstance(expr, ast.VarRef):
            return [item]
        if isinstance(expr, ast.Step):
            bases = self._key_nodes(expr.base, item, env)
            out: List[Node] = []
            for node in bases:
                if not isinstance(node, Element):
                    continue
                if expr.axis == ast.CHILD:
                    out.extend(node.child_elements(expr.tag))
                elif expr.axis == ast.DESCENDANT:
                    out.extend(descendants_postorder(node, expr.tag))
                elif expr.axis == ast.TEXT:
                    out.extend(c for c in node.children
                               if isinstance(c, Text))
                else:
                    raise EvalError("unsupported key axis")
            return out
        raise EvalError("unsupported sort key {!r}".format(expr))

    # -- construction / aggregates ---------------------------------------------------------

    def _construct(self, expr: ast.ElementCtor, env: dict) -> Element:
        el = Element(expr.tag)
        for item in expr.content:
            for node in self.eval(item, env):
                el.append(_copy_node(node))
        return el

    def _eval_funcall(self, expr: ast.FunCall, env: dict) -> List[Node]:
        if expr.name == "count":
            return [Text(str(len(self.eval(expr.args[0], env))))]
        if expr.name in ("sum", "avg"):
            items = self.eval(expr.args[0], env)
            total, n = 0.0, 0
            for item in items:
                n += 1
                value = _parse_number(item.string_value)
                if value is not None:
                    total += value
            if expr.name == "sum":
                return [Text(_format_number(total))]
            return [Text("" if n == 0 else _format_number(total / n))]
        if expr.name in ("min", "max"):
            values = [v for v in
                      (_parse_number(i.string_value)
                       for i in self.eval(expr.args[0], env))
                      if v is not None]
            if not values:
                return [Text("")]
            pick = min(values) if expr.name == "min" else max(values)
            return [Text(_format_number(pick))]
        raise EvalError("unsupported function {!r}".format(expr.name))


def _copy_node(node: Node) -> Node:
    if isinstance(node, Element):
        return node.copy()
    assert isinstance(node, Text)
    return Text(node.text)
