"""An automata-based streaming XPath evaluator (the SPEX stand-in).

The paper compares XFlux against SPEX, "a good representative of the
automata-based systems" that are "optimal for a restricted subset of XPath
(with simple predicates and without backward steps)".  This module
implements that approach from scratch:

* the XPath is compiled into an NFA over location steps (child steps
  advance by one state, descendant steps add a self-loop), simulated with
  a *set* of active states pushed per element — the standard lazy-DFA-free
  formulation ([8], [9] in the paper);
* the whole path is matched holistically — unlike XFlux's compositional
  one-step-at-a-time translation, ``//*[p]/q`` is evaluated without ever
  re-emitting each element once per depth, which is exactly why the paper
  measures SPEX far ahead on its query 3;
* simple predicates ``[relpath = "lit"]`` / ``[relpath]`` /
  ``[contains(relpath, "lit")]`` attach to steps; a candidate element is
  buffered until its end, then emitted iff its pending predicates matched
  (the "transducers augmented with buffers" of the related work).

Supported queries: absolute paths of child/descendant steps with simple
predicates, optionally wrapped in ``count(...)`` — the restricted subset
the paper runs SPEX on (its queries 1, 2, 3 and 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..events.model import CD, EE, SE, Event
from ..operators.functions import compare_values
from ..xmlio.writer import escape_text
from ..xquery import ast


class SpexError(ValueError):
    """Raised when a query is outside the automata-friendly subset."""


class SimplePredicate:
    """A step predicate: relative child path + optional comparison."""

    def __init__(self, path: Sequence[Tuple[str, Optional[str]]],
                 op: Optional[str], literal: Optional[str],
                 contains: bool = False) -> None:
        self.path = list(path)  # [(axis, tag), ...]
        self.op = op
        self.literal = literal
        self.contains = contains

    def __repr__(self) -> str:
        return "SimplePredicate({}, {} {!r})".format(
            self.path, "contains" if self.contains else self.op,
            self.literal)


class PathStep:
    """One location step of the compiled path."""

    __slots__ = ("axis", "tag", "predicates")

    def __init__(self, axis: str, tag: Optional[str],
                 predicates: List[SimplePredicate]) -> None:
        self.axis = axis  # "child" | "descendant"
        self.tag = tag
        self.predicates = predicates

    def matches(self, tag: str) -> bool:
        return self.tag is None or self.tag == tag


def compile_path(expr: ast.Expr) -> Tuple[List[PathStep], bool]:
    """Compile a query AST to (steps, is_count).

    Raises :class:`SpexError` outside the subset.
    """
    is_count = False
    if isinstance(expr, ast.FunCall) and expr.name == "count":
        is_count = True
        expr = expr.args[0]
    steps_rev: List[PathStep] = []
    node = expr
    while True:
        predicates: List[SimplePredicate] = []
        while isinstance(node, ast.Filter):
            for pred in reversed(_compile_predicates(node.cond)):
                predicates.insert(0, pred)
            node = node.base
        if isinstance(node, ast.Step):
            if node.axis == ast.CHILD:
                axis = "child"
            elif node.axis == ast.DESCENDANT:
                axis = "descendant"
            else:
                raise SpexError(
                    "automata baseline supports forward child/descendant "
                    "steps only, got {!r}".format(node.axis))
            steps_rev.append(PathStep(axis, node.tag, predicates))
            node = node.base
        elif isinstance(node, ast.Source):
            if predicates:
                raise SpexError("predicates on the root are unsupported")
            break
        else:
            raise SpexError("unsupported expression {!r}".format(node))
    return list(reversed(steps_rev)), is_count


def _compile_predicates(cond: ast.Expr):
    if isinstance(cond, ast.BoolExpr):
        if cond.op != "and":
            raise SpexError("automata baseline supports conjunctions only")
        return [_compile_predicate(item) for item in cond.items]
    return [_compile_predicate(cond)]


def _compile_predicate(cond: ast.Expr) -> SimplePredicate:
    if isinstance(cond, ast.Compare):
        return SimplePredicate(_rel_path(cond.left), cond.op, cond.literal)
    if isinstance(cond, ast.FunCall) and cond.name == "contains":
        return SimplePredicate(_rel_path(cond.args[0]), None,
                               cond.literal, contains=True)
    return SimplePredicate(_rel_path(cond), None, None)


def _rel_path(expr: ast.Expr) -> List[Tuple[str, Optional[str]]]:
    steps: List[Tuple[str, Optional[str]]] = []
    node = expr
    while isinstance(node, ast.Step):
        if node.axis == ast.CHILD:
            steps.insert(0, ("child", node.tag))
        elif node.axis == ast.DESCENDANT:
            steps.insert(0, ("descendant", node.tag))
        else:
            raise SpexError("unsupported predicate axis")
        node = node.base
    if isinstance(node, ast.Source):
        steps.insert(0, ("child", node.name))
    elif not isinstance(node, ast.VarRef):
        raise SpexError("unsupported predicate path {!r}".format(node))
    return steps


class _PredicateRun:
    """Predicate evaluation attached to one open candidate element."""

    __slots__ = ("pred", "satisfied", "states", "text_depths", "texts")

    def __init__(self, pred: SimplePredicate) -> None:
        self.pred = pred
        self.satisfied = False
        # NFA states over the relative path: set of matched prefixes per
        # open depth; collected string values at final states.
        self.states: List[set] = [{0}]
        self.texts: Dict[int, List[str]] = {}

    def start_element(self, tag: str) -> None:
        active = self.states[-1]
        nxt = set()
        for i in active:
            if i < len(self.pred.path):
                axis, ptag = self.pred.path[i]
                if ptag is None or ptag == tag:
                    nxt.add(i + 1)
                if axis == "descendant":
                    nxt.add(i)
        # Descendant self-loops propagate through non-matching elements.
        for i in active:
            if i < len(self.pred.path) and self.pred.path[i][0] == \
                    "descendant":
                nxt.add(i)
        self.states.append(nxt)
        if len(self.pred.path) in nxt:
            self.texts[len(self.states) - 1] = []

    def text(self, text: str) -> None:
        for depth, parts in self.texts.items():
            if depth <= len(self.states) - 1:
                parts.append(text)

    def end_element(self) -> None:
        depth = len(self.states) - 1
        if depth in self.texts:
            value = "".join(self.texts.pop(depth))
            self._check(value)
        self.states.pop()

    def _check(self, value: str) -> None:
        if self.satisfied:
            return
        pred = self.pred
        if pred.contains:
            self.satisfied = (pred.literal or "") in value
        elif pred.op is None:
            self.satisfied = True
        else:
            self.satisfied = compare_values(pred.op, value,
                                            pred.literal or "")


class _Scope:
    """An open element whose predicate gates matches derived through it."""

    __slots__ = ("depth", "runs", "resolved", "passed")

    def __init__(self, depth: int, preds: List[SimplePredicate]) -> None:
        self.depth = depth
        self.runs = [_PredicateRun(p) for p in preds]
        self.resolved = False
        self.passed = False


class _Candidate:
    """A buffered potential result element (the final step's match).

    ``depsets`` holds the alternative derivations: sets of scopes that
    must all pass for this candidate to qualify through that derivation.
    """

    __slots__ = ("depth", "parts", "runs", "depsets")

    def __init__(self, depth: int, preds: List[SimplePredicate],
                 depsets) -> None:
        self.depth = depth
        self.parts: List[str] = []
        self.runs = [_PredicateRun(p) for p in preds]
        self.depsets = set(depsets)


class SpexEngine:
    """Run a compiled path over a SAX-like event stream.

    The NFA states carried per open element are ``(step, deps)`` pairs:
    the matched prefix length plus the set of predicated elements (scopes)
    the derivation went through.  A buffered result is released once its
    own predicates hold and, for some derivation, every gating scope
    resolved true — the classic transducers-with-buffers evaluation.
    """

    def __init__(self, steps: List[PathStep], is_count: bool) -> None:
        self.steps = steps
        self.is_count = is_count
        self.count = 0
        self.results: List[str] = []
        self.events_processed = 0
        self._keep_text = not is_count
        # Per open element: {step_index: set of frozenset-of-scopes}.
        self._stack: List[dict] = [{0: {frozenset()}}]
        self._candidates: List[_Candidate] = []
        self._scopes: List[_Scope] = []
        self._pending: List[_Candidate] = []
        self.peak_buffered = 0

    @classmethod
    def from_query(cls, query_text: str) -> "SpexEngine":
        from ..xquery.parser import parse
        steps, is_count = compile_path(parse(query_text))
        return cls(steps, is_count)

    # -- event handling ---------------------------------------------------------

    def process(self, e: Event) -> None:
        self.events_processed += 1
        kind = e.kind
        if kind == SE:
            self._start(e.tag or "")
        elif kind == EE:
            self._end(e.tag or "")
        elif kind == CD:
            self._text(e.text or "")

    def process_all(self, events) -> "SpexEngine":
        for e in events:
            self.process(e)
        return self

    def _start(self, tag: str) -> None:
        for cand in self._candidates:
            if self._keep_text:
                cand.parts.append("<{}>".format(tag))
            for run in cand.runs:
                run.start_element(tag)
        for scope in self._scopes:
            if not scope.resolved:
                for run in scope.runs:
                    run.start_element(tag)
        if len(self._stack) == 1:
            # The document root element is the path's context node (the
            # paper's X/D): it never matches a step itself.
            self._stack.append(dict(self._stack[-1]))
            return
        active = self._stack[-1]
        nxt: dict = {}
        final_depsets: set = set()
        scope: Optional[_Scope] = None
        depth = len(self._stack)  # depth of the element being opened
        for k, depsets in active.items():
            step = self.steps[k] if k < len(self.steps) else None
            if step is None:
                continue
            if step.axis == "descendant":
                nxt.setdefault(k, set()).update(depsets)
            if step.matches(tag):
                if step.predicates:
                    if scope is None:
                        scope = _Scope(depth, step.predicates)
                        self._scopes.append(scope)
                    new_sets = {ds | {scope} for ds in depsets}
                else:
                    new_sets = set(depsets)
                if k + 1 == len(self.steps):
                    final_depsets.update(new_sets)
                else:
                    nxt.setdefault(k + 1, set()).update(new_sets)
        self._stack.append(nxt)
        if final_depsets:
            cand = _Candidate(depth, self.steps[-1].predicates,
                              final_depsets)
            if self._keep_text:
                cand.parts.append("<{}>".format(tag))
            self._candidates.append(cand)
        self.peak_buffered = max(self.peak_buffered,
                                 len(self._candidates)
                                 + len(self._pending))

    def _text(self, text: str) -> None:
        escaped = escape_text(text) if self._keep_text else ""
        for cand in self._candidates:
            if self._keep_text:
                cand.parts.append(escaped)
            for run in cand.runs:
                run.text(text)
        for scope in self._scopes:
            if not scope.resolved:
                for run in scope.runs:
                    run.text(text)

    def _end(self, tag: str) -> None:
        depth = len(self._stack) - 1
        self._stack.pop()
        finished = [c for c in self._candidates if c.depth == depth]
        self._candidates = [c for c in self._candidates
                            if c.depth != depth]
        for cand in self._candidates:
            if self._keep_text:
                cand.parts.append("</{}>".format(tag))
            for run in cand.runs:
                run.end_element()
        for scope in self._scopes:
            if not scope.resolved:
                if scope.depth == depth:
                    scope.resolved = True
                    scope.passed = all(run.satisfied for run in scope.runs)
                else:
                    for run in scope.runs:
                        run.end_element()
        for cand in finished:
            if self._keep_text:
                cand.parts.append("</{}>".format(tag))
            if all(run.satisfied for run in cand.runs):
                self._pending.append(cand)
        self._resolve_pending()
        self._scopes = [s for s in self._scopes if not s.resolved]

    def _resolve_pending(self) -> None:
        still: List[_Candidate] = []
        for cand in self._pending:
            emitted = False
            dead = True
            new_sets = set()
            for ds in cand.depsets:
                alive = frozenset(s for s in ds if not s.resolved)
                if any(s.resolved and not s.passed for s in ds):
                    continue  # this derivation is killed
                if not alive:
                    emitted = True
                    break
                new_sets.add(alive)
                dead = False
            if emitted:
                self.count += 1
                if self._keep_text:
                    self.results.append("".join(cand.parts))
            elif not dead:
                cand.depsets = new_sets
                still.append(cand)
        self._pending = still

    # -- results -------------------------------------------------------------------

    def text(self) -> str:
        if self.is_count:
            return str(self.count)
        return "".join(self.results)


def run_spex(query_text: str, events) -> SpexEngine:
    """Compile and run a query; returns the finished engine."""
    return SpexEngine.from_query(query_text).process_all(events)
