"""Baseline systems: naive in-memory evaluation and an automata engine."""

from .dom_eval import EvalError, descendants_postorder, evaluate, \
    evaluate_to_xml
from .spex import SpexEngine, SpexError, compile_path, run_spex

__all__ = [
    "evaluate", "evaluate_to_xml", "EvalError", "descendants_postorder",
    "SpexEngine", "SpexError", "compile_path", "run_spex",
]
