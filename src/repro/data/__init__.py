"""Synthetic dataset generators: XMark-like, DBLP-like, stock ticker."""

from .dblp import DBLPGenerator
from .dblp import generate as generate_dblp
from .stock import SYMBOLS, StockTicker
from .xmark import XMarkGenerator
from .xmark import generate as generate_xmark

__all__ = [
    "XMarkGenerator", "generate_xmark",
    "DBLPGenerator", "generate_dblp",
    "StockTicker", "SYMBOLS",
]
