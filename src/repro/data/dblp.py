"""A DBLP-like bibliography generator.

The paper's real-world workload is the DBLP XML dump (318 MB).  This
generator reproduces its flat record structure — a long sequence of
``inproceedings``/``article`` records with ``author``, ``title``, ``year``
and ``booktitle``/``journal`` children — with a controllable fraction of
authors named Smith (the selectivity knob of queries 8 and 9).
"""

from __future__ import annotations

import random
from typing import Iterator, List

FIRST_NAMES = ("John", "Jane", "Adam", "Maria", "Wei", "Anna", "Peter",
               "Laura", "Ivan", "Sofia", "Ken", "Nadia", "Omar", "Lucy")

LAST_NAMES = ("Johnson", "Garcia", "Mueller", "Tanaka", "Rossi", "Novak",
              "Silva", "Dubois", "Kim", "Olsen", "Papadopoulos", "Kovacs")

VENUES = ("ICDE", "SIGMOD", "VLDB", "EDBT", "CIKM", "WWW", "KDD", "PODS")

_TITLE_WORDS = ("Efficient", "Scalable", "Adaptive", "Incremental",
                "Streaming", "Processing", "of", "XML", "Queries",
                "Updates", "Views", "Indexes", "Joins", "Data", "Systems",
                "over", "Distributed", "Continuous")

#: Records at scale 1.0.
RECORDS = 4000


class DBLPGenerator:
    """Deterministic DBLP-like bibliography builder.

    Args:
        scale: size multiplier (records scale linearly).
        seed: RNG seed (deterministic output).
        smith_fraction: fraction of records with a Smith author — the
            selectivity of the paper's queries 8 and 9.
    """

    def __init__(self, scale: float = 0.1, seed: int = 7,
                 smith_fraction: float = 0.05) -> None:
        self.scale = scale
        self.seed = seed
        self.smith_fraction = smith_fraction

    def record_count(self) -> int:
        return max(1, int(RECORDS * self.scale))

    def chunks(self) -> Iterator[str]:
        rng = random.Random(self.seed)
        yield "<dblp>"
        for _ in range(self.record_count()):
            yield self._record(rng)
        yield "</dblp>"

    def text(self) -> str:
        return "".join(self.chunks())

    def _record(self, rng: random.Random) -> str:
        kind = "inproceedings" if rng.random() < 0.7 else "article"
        n_authors = rng.randint(1, 3)
        authors: List[str] = []
        for i in range(n_authors):
            first = rng.choice(FIRST_NAMES)
            if i == 0 and rng.random() < self.smith_fraction:
                last = "Smith"
            else:
                last = rng.choice(LAST_NAMES)
            authors.append("{} {}".format(first, last))
        title = " ".join(rng.choice(_TITLE_WORDS)
                         for _ in range(rng.randint(4, 9)))
        year = rng.randint(1988, 2007)
        venue = rng.choice(VENUES)
        parts = ["<{}>".format(kind)]
        parts.extend("<author>{}</author>".format(a) for a in authors)
        parts.append("<title>{}</title>".format(title))
        if kind == "inproceedings":
            parts.append("<booktitle>{}</booktitle>".format(venue))
        else:
            parts.append("<journal>{} Journal</journal>".format(venue))
        parts.append("<year>{}</year>".format(year))
        parts.append("</{}>".format(kind))
        return "".join(parts)


#: The generator's document class as a DTD (also checked in under
#: ``examples/dblp.dtd``).  Records repeat freely under ``dblp`` and
#: ``author`` repeats inside a record; ``title``/``booktitle``/
#: ``journal``/``year`` are fixed, single-occurrence positions.
DTD = """\
<!ELEMENT dblp (inproceedings | article)*>
<!ELEMENT inproceedings (author+, title, booktitle, year)>
<!ELEMENT article (author+, title, journal, year)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT year (#PCDATA)>
"""

_SCHEMA = None


def document_schema():
    """The generator's document class, parsed from :data:`DTD`.

    Returns a closed :class:`repro.analysis.schema.ElementSchema` (root
    ``dblp``) for the projection and type analyses.
    """
    global _SCHEMA
    if _SCHEMA is None:
        from ..analysis.schema import ElementSchema
        _SCHEMA = ElementSchema.from_dtd(DTD)
    return _SCHEMA


def element_children():
    """The generator's element containment map (tag -> child tags).

    Historically a hand-coded map; now derived from :data:`DTD` (the
    fixture test pins the parse against the original expectations).
    """
    return {tag: tuple(sorted(kids))
            for tag, kids in document_schema().children_map().items()}


def generate(scale: float = 0.1, seed: int = 7) -> str:
    """Convenience: generate a DBLP-like document string."""
    return DBLPGenerator(scale=scale, seed=seed).text()
