"""A DBLP-like bibliography generator.

The paper's real-world workload is the DBLP XML dump (318 MB).  This
generator reproduces its flat record structure — a long sequence of
``inproceedings``/``article`` records with ``author``, ``title``, ``year``
and ``booktitle``/``journal`` children — with a controllable fraction of
authors named Smith (the selectivity knob of queries 8 and 9).
"""

from __future__ import annotations

import random
from typing import Iterator, List

FIRST_NAMES = ("John", "Jane", "Adam", "Maria", "Wei", "Anna", "Peter",
               "Laura", "Ivan", "Sofia", "Ken", "Nadia", "Omar", "Lucy")

LAST_NAMES = ("Johnson", "Garcia", "Mueller", "Tanaka", "Rossi", "Novak",
              "Silva", "Dubois", "Kim", "Olsen", "Papadopoulos", "Kovacs")

VENUES = ("ICDE", "SIGMOD", "VLDB", "EDBT", "CIKM", "WWW", "KDD", "PODS")

_TITLE_WORDS = ("Efficient", "Scalable", "Adaptive", "Incremental",
                "Streaming", "Processing", "of", "XML", "Queries",
                "Updates", "Views", "Indexes", "Joins", "Data", "Systems",
                "over", "Distributed", "Continuous")

#: Records at scale 1.0.
RECORDS = 4000


class DBLPGenerator:
    """Deterministic DBLP-like bibliography builder.

    Args:
        scale: size multiplier (records scale linearly).
        seed: RNG seed (deterministic output).
        smith_fraction: fraction of records with a Smith author — the
            selectivity of the paper's queries 8 and 9.
    """

    def __init__(self, scale: float = 0.1, seed: int = 7,
                 smith_fraction: float = 0.05) -> None:
        self.scale = scale
        self.seed = seed
        self.smith_fraction = smith_fraction

    def record_count(self) -> int:
        return max(1, int(RECORDS * self.scale))

    def chunks(self) -> Iterator[str]:
        rng = random.Random(self.seed)
        yield "<dblp>"
        for _ in range(self.record_count()):
            yield self._record(rng)
        yield "</dblp>"

    def text(self) -> str:
        return "".join(self.chunks())

    def _record(self, rng: random.Random) -> str:
        kind = "inproceedings" if rng.random() < 0.7 else "article"
        n_authors = rng.randint(1, 3)
        authors: List[str] = []
        for i in range(n_authors):
            first = rng.choice(FIRST_NAMES)
            if i == 0 and rng.random() < self.smith_fraction:
                last = "Smith"
            else:
                last = rng.choice(LAST_NAMES)
            authors.append("{} {}".format(first, last))
        title = " ".join(rng.choice(_TITLE_WORDS)
                         for _ in range(rng.randint(4, 9)))
        year = rng.randint(1988, 2007)
        venue = rng.choice(VENUES)
        parts = ["<{}>".format(kind)]
        parts.extend("<author>{}</author>".format(a) for a in authors)
        parts.append("<title>{}</title>".format(title))
        if kind == "inproceedings":
            parts.append("<booktitle>{}</booktitle>".format(venue))
        else:
            parts.append("<journal>{} Journal</journal>".format(venue))
        parts.append("<year>{}</year>".format(year))
        parts.append("</{}>".format(kind))
        return "".join(parts)


def element_children():
    """The generator's element containment map (tag -> child tags).

    Consumed by the projection analyzer's schema refinement
    (:func:`repro.analysis.projection.known_schema`); leaf elements map
    to an empty tuple (provably no element children).
    """
    return {
        "dblp": ("inproceedings", "article"),
        "inproceedings": ("author", "title", "booktitle", "year"),
        "article": ("author", "title", "journal", "year"),
        "author": (),
        "title": (),
        "booktitle": (),
        "journal": (),
        "year": (),
    }


def generate(scale: float = 0.1, seed: int = 7) -> str:
    """Convenience: generate a DBLP-like document string."""
    return DBLPGenerator(scale=scale, seed=seed).text()
