"""An XMark-like auction-site document generator.

The paper's synthetic workload is the XMark benchmark document (224 MB at
their scale).  This generator reproduces the schema shape the nine
benchmark queries touch — ``site/regions/<continent>/item`` with
``location``, ``quantity``, ``payment``, ``name`` and ``description``
children, plus the deeply recursive ``parlist/listitem`` structure inside
descriptions that makes ``//*`` expensive — deterministically from a seed,
scaled by a factor (scale 1.0 is roughly 2 MB of text; the shape, not the
absolute size, is what the experiments depend on).
"""

from __future__ import annotations

import random
from typing import Iterator, List

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

LOCATIONS = (
    "Albania", "France", "Germany", "United States", "Japan", "Italy",
    "Greece", "Spain", "Brazil", "Kenya", "Australia", "China", "India",
    "Canada", "Norway", "Poland", "Egypt", "Chile", "Peru", "Austria",
)

PAYMENTS = ("Cash", "Creditcard", "Money order", "Personal Check")

_WORDS = (
    "auction", "vintage", "rare", "classic", "antique", "signed",
    "limited", "edition", "original", "mint", "boxed", "collector",
    "estate", "imported", "handmade", "restored", "certified", "deluxe",
)

#: Items per region at scale 1.0.
ITEMS_PER_REGION = 180


class XMarkGenerator:
    """Deterministic XMark-like document builder.

    Args:
        scale: size multiplier (items per region scale linearly).
        seed: RNG seed; identical (scale, seed) pairs produce identical
            documents byte-for-byte.
        albania_fraction: selectivity knob for the paper's
            ``[location="Albania"]`` predicates.
        max_parlist_depth: recursion depth of description parlists (drives
            the ``//*`` event blow-up).
    """

    def __init__(self, scale: float = 0.1, seed: int = 42,
                 albania_fraction: float = 0.08,
                 max_parlist_depth: int = 4) -> None:
        self.scale = scale
        self.seed = seed
        self.albania_fraction = albania_fraction
        self.max_parlist_depth = max_parlist_depth

    def items_per_region(self) -> int:
        return max(1, int(ITEMS_PER_REGION * self.scale))

    # -- generation ----------------------------------------------------------

    def chunks(self) -> Iterator[str]:
        """Yield the document as text chunks (streamable)."""
        rng = random.Random(self.seed)
        yield "<site><regions>"
        per_region = self.items_per_region()
        item_no = 0
        for region in REGIONS:
            yield "<{}>".format(region)
            for _ in range(per_region):
                item_no += 1
                yield self._item(rng, item_no)
            yield "</{}>".format(region)
        yield "</regions></site>"

    def text(self) -> str:
        """The complete document as one string."""
        return "".join(self.chunks())

    def _item(self, rng: random.Random, n: int) -> str:
        if rng.random() < self.albania_fraction:
            location = "Albania"
        else:
            location = rng.choice([l for l in LOCATIONS if l != "Albania"])
        quantity = rng.randint(1, 10)
        payment = rng.choice(PAYMENTS)
        name = "item{:05d} {}".format(n, rng.choice(_WORDS))
        parts: List[str] = [
            "<item>",
            "<location>{}</location>".format(location),
            "<quantity>{}</quantity>".format(quantity),
            "<name>{}</name>".format(name),
            "<payment>{}</payment>".format(payment),
            "<description>",
        ]
        parts.append(self._parlist(rng, depth=1))
        parts.append("</description></item>")
        return "".join(parts)

    def _parlist(self, rng: random.Random, depth: int) -> str:
        """The recursive structure that makes //* quadratic-ish in depth."""
        n_items = rng.randint(1, 3)
        parts = ["<parlist>"]
        for _ in range(n_items):
            parts.append("<listitem>")
            parts.append("<text>{}</text>".format(
                " ".join(rng.choice(_WORDS)
                         for _ in range(rng.randint(2, 6)))))
            if depth < self.max_parlist_depth and rng.random() < 0.4:
                parts.append(self._parlist(rng, depth + 1))
            parts.append("</listitem>")
        parts.append("</parlist>")
        return "".join(parts)


#: The generator's document class as a DTD (also checked in under
#: ``examples/xmark.dtd``; a fixture test holds the two identical).
#: ``description`` is optional and every region holds ``item*`` — the
#: starred positions are the schema's mutable regions (the only places
#: a schema-valid update stream may insert siblings).
DTD = """\
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, payment, description?)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (parlist)>
<!ELEMENT parlist (listitem*)>
<!ELEMENT listitem (text | parlist)*>
<!ELEMENT text (#PCDATA)>
"""

_SCHEMA = None


def document_schema():
    """The generator's document class, parsed from :data:`DTD`.

    Returns a closed :class:`repro.analysis.schema.ElementSchema` (root
    ``site``) carrying child reachability, content-model cardinality,
    and #PCDATA facts for the projection and type analyses.
    """
    global _SCHEMA
    if _SCHEMA is None:
        from ..analysis.schema import ElementSchema
        _SCHEMA = ElementSchema.from_dtd(DTD)
    return _SCHEMA


def element_children():
    """The generator's element containment map (tag -> child tags).

    Historically a hand-coded map; now derived from :data:`DTD` so the
    projection analyzer and the type checker consume one source of
    truth (the fixture test in ``tests/test_types.py`` pins the parse
    against the original hand-coded expectations).
    """
    return {tag: tuple(sorted(kids))
            for tag, kids in document_schema().children_map().items()}


def generate(scale: float = 0.1, seed: int = 42) -> str:
    """Convenience: generate an XMark-like document string."""
    return XMarkGenerator(scale=scale, seed=seed).text()
