"""A stock-ticker update stream generator (paper Sections I and V).

The paper's motivating continuous-update source: a finite prefix of stock
quotes followed by an unbounded stream of embedded updates.  Quote *names*
are immutable (plain events); quote *prices* (and optionally names, to
exercise predicate revocation) sit inside mutable regions that later
replace-updates target — the element-granularity update discipline the
engine's predicates re-evaluate on (see DESIGN.md).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from ..events.model import (Event, cdata, end_element, end_mutable,
                            end_replace, end_stream, freeze,
                            start_element, start_mutable, start_replace,
                            start_stream)

SYMBOLS = ("IBM", "MSFT", "AAPL", "ORCL", "GOOG", "AMZN", "INTC", "CSCO")


class StockTicker:
    """Generate a quotes document with embedded price/name updates.

    Args:
        symbols: ticker symbols, one ``<quote>`` each.
        n_updates: number of update events appended after the snapshot.
        name_update_fraction: fraction of updates that change a quote's
            *name* rather than its price (these flip predicates).
        mutable_names: wrap names in mutable regions (required for name
            updates; price-only streams keep names immutable like the
            paper's Section V example).
        seed: determinism.
        stream_id: the global stream number.
        first_region: first update-region number to allocate.
    """

    def __init__(self, symbols: Sequence[str] = SYMBOLS,
                 n_updates: int = 50,
                 name_update_fraction: float = 0.1,
                 mutable_names: bool = True, seed: int = 11,
                 stream_id: int = 0, first_region: int = 1,
                 freeze_superseded: bool = True) -> None:
        self.symbols = list(symbols)
        self.n_updates = n_updates
        self.name_update_fraction = name_update_fraction
        self.mutable_names = mutable_names
        self.seed = seed
        self.stream_id = stream_id
        self.first_region = first_region
        #: A well-behaved producer freezes a region it has replaced: it
        #: will never target the superseded id again, and the freeze lets
        #: every consumer drop its state (the paper's Section V).  Turn
        #: off to measure the cost of unbounded openness.
        self.freeze_superseded = freeze_superseded

    def events(self) -> List[Event]:
        return list(self.iter_events())

    def iter_events(self) -> Iterator[Event]:
        rng = random.Random(self.seed)
        sid = self.stream_id
        next_region = self.first_region
        # Active (latest) region ids per quote field, for cascaded updates.
        name_regions: List[Optional[int]] = []
        price_regions: List[int] = []
        prices: List[float] = []

        yield start_stream(sid)
        yield start_element(sid, "quotes")
        for symbol in self.symbols:
            price = round(rng.uniform(10, 500), 2)
            prices.append(price)
            yield start_element(sid, "quote")
            if self.mutable_names:
                region = next_region
                next_region += 1
                name_regions.append(region)
                yield start_mutable(sid, region)
                yield start_element(region, "name")
                yield cdata(region, symbol)
                yield end_element(region, "name")
                yield end_mutable(sid, region)
            else:
                name_regions.append(None)
                yield start_element(sid, "name")
                yield cdata(sid, symbol)
                yield end_element(sid, "name")
            region = next_region
            next_region += 1
            price_regions.append(region)
            yield start_mutable(sid, region)
            yield start_element(region, "price")
            yield cdata(region, "{:.2f}".format(price))
            yield end_element(region, "price")
            yield end_mutable(sid, region)
            yield end_element(sid, "quote")

        for _ in range(self.n_updates):
            idx = rng.randrange(len(self.symbols))
            update_name = (self.mutable_names
                           and rng.random() < self.name_update_fraction)
            new_region = next_region
            next_region += 1
            if update_name:
                target = name_regions[idx]
                new_symbol = rng.choice(self.symbols)
                name_regions[idx] = new_region
                yield start_replace(target, new_region)
                yield start_element(new_region, "name")
                yield cdata(new_region, new_symbol)
                yield end_element(new_region, "name")
                yield end_replace(target, new_region)
                if self.freeze_superseded:
                    yield freeze(target)
            else:
                target = price_regions[idx]
                prices[idx] = round(
                    max(1.0, prices[idx] * rng.uniform(0.95, 1.05)), 2)
                price_regions[idx] = new_region
                yield start_replace(target, new_region)
                yield start_element(new_region, "price")
                yield cdata(new_region, "{:.2f}".format(prices[idx]))
                yield end_element(new_region, "price")
                yield end_replace(target, new_region)
                if self.freeze_superseded:
                    yield freeze(target)
        yield end_element(sid, "quotes")
        yield end_stream(sid)
