"""Event model for XML update streams (paper Sections II and III)."""

from .model import (ABBREV_TO_KIND, UpdateStripper, strip_updates, CD, DATA_KINDS, EA, EB, EE, EM, ER, ES,
                    ET, FREEZE, HIDE, SA, SB, SE, SHOW, SM, SR, SS, ST,
                    UPDATE_ENDS, UPDATE_KINDS, UPDATE_STARTS, Event,
                    IdGenerator, Kind, cdata, end_element, end_insert_after,
                    end_insert_before, end_mutable, end_replace, end_stream,
                    end_tuple, events_of, freeze, hide, matching_end,
                    matching_start, show, start_element, start_insert_after,
                    start_insert_before, start_mutable, start_replace,
                    start_stream, start_tuple)
from .errors import ProtocolViolation
from .serialize import (EventSyntaxError, dumps, event_to_text, iter_loads,
                        loads)
from .wellformed import (WellFormednessError, check_well_formed,
                         element_balance, is_well_formed, projection,
                         strip_tuples, validate_document_stream)

__all__ = [
    "Event", "Kind", "IdGenerator",
    "UpdateStripper", "strip_updates",
    "SS", "ES", "ST", "ET", "SE", "EE", "CD",
    "SM", "EM", "SR", "ER", "SB", "EB", "SA", "EA",
    "FREEZE", "HIDE", "SHOW",
    "DATA_KINDS", "UPDATE_KINDS", "UPDATE_STARTS", "UPDATE_ENDS",
    "ABBREV_TO_KIND",
    "start_stream", "end_stream", "start_tuple", "end_tuple",
    "start_element", "end_element", "cdata",
    "start_mutable", "end_mutable", "start_replace", "end_replace",
    "start_insert_before", "end_insert_before",
    "start_insert_after", "end_insert_after",
    "freeze", "hide", "show",
    "matching_end", "matching_start", "events_of",
    "dumps", "loads", "iter_loads", "event_to_text", "EventSyntaxError",
    "is_well_formed", "check_well_formed", "element_balance",
    "validate_document_stream", "projection", "strip_tuples",
    "WellFormednessError", "ProtocolViolation",
]
