"""Textual (de)serialization of event streams.

The format is the paper's abbreviated notation, one event per whitespace- or
comma-separated token::

    sS(0) sE(0,"name") cD(0,"Smith") eE(0,"name") eS(0)
    sM(0,1) cD(1,"x") eM(0,1) sR(1,2) cD(2,"y") eR(1,2)

This is used by tests (worked examples from the paper transcribe directly),
by debugging tools, and by the examples to show the wire format.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Sequence

from .model import (ABBREV_TO_KIND, CD, EE, FREEZE, HIDE, SE, SHOW,
                    UPDATE_ENDS, UPDATE_STARTS, Event, Kind)

_TOKEN_RE = re.compile(
    r"""\s*(?P<name>[a-zA-Z]+)\(
        (?P<args>(?:[^()"]|"(?:[^"\\]|\\.)*")*)
        \)[\s,]*""",
    re.VERBOSE,
)
_ARG_RE = re.compile(r'\s*(?:"(?P<str>(?:[^"\\]|\\.)*)"|(?P<num>-?\d+))\s*,?')


class EventSyntaxError(ValueError):
    """Raised when an event-stream text cannot be parsed."""


def event_to_text(e: Event) -> str:
    """Serialize one event in the paper's notation."""
    args: List[str] = [str(e.id)]
    if e.sub is not None:
        args.append(str(e.sub))
    if e.tag is not None:
        args.append('"{}"'.format(_escape(e.tag)))
    if e.text is not None:
        args.append('"{}"'.format(_escape(e.text)))
    return "{}({})".format(e.abbrev, ",".join(args))


def dumps(events: Iterable[Event], per_line: int = 8) -> str:
    """Serialize a sequence of events, ``per_line`` events per line."""
    toks = [event_to_text(e) for e in events]
    lines = [" ".join(toks[i:i + per_line])
             for i in range(0, len(toks), per_line)]
    return "\n".join(lines)


def loads(text: str) -> List[Event]:
    """Parse a stream serialized by :func:`dumps` (or typed by hand)."""
    return list(iter_loads(text))


def iter_loads(text: str) -> Iterator[Event]:
    pos = 0
    stripped = text.strip()
    if stripped.startswith("[") and stripped.endswith("]"):
        text = stripped[1:-1]
    while pos < len(text):
        if text[pos:].strip() == "":
            return
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise EventSyntaxError(
                "cannot parse event at ...{!r}".format(text[pos:pos + 40]))
        pos = m.end()
        name = m.group("name")
        kind = ABBREV_TO_KIND.get(name)
        if kind is None:
            raise EventSyntaxError("unknown event name {!r}".format(name))
        yield _build(kind, _parse_args(m.group("args")))


def _parse_args(argtext: str) -> List[object]:
    args: List[object] = []
    pos = 0
    while pos < len(argtext):
        if argtext[pos:].strip() == "":
            break
        m = _ARG_RE.match(argtext, pos)
        if not m:
            raise EventSyntaxError(
                "cannot parse arguments {!r}".format(argtext))
        pos = m.end()
        if m.group("str") is not None:
            args.append(_unescape(m.group("str")))
        else:
            args.append(int(m.group("num")))
    return args


def _build(kind: Kind, args: Sequence[object]) -> Event:
    def need(n: int) -> None:
        if len(args) != n:
            raise EventSyntaxError(
                "{} expects {} arguments, got {!r}".format(kind, n, args))

    if kind in (SE, EE):
        need(2)
        return Event(kind, _as_int(args[0]), tag=_as_str(args[1]))
    if kind == CD:
        need(2)
        text = args[1]
        # The paper writes counters as bare numbers: cD(1, 0).
        return Event(kind, _as_int(args[0]), text=str(text))
    if kind in UPDATE_STARTS or kind in UPDATE_ENDS:
        need(2)
        return Event(kind, _as_int(args[0]), sub=_as_int(args[1]))
    if kind in (FREEZE, HIDE, SHOW):
        need(1)
        return Event(kind, _as_int(args[0]))
    need(1)
    return Event(kind, _as_int(args[0]))


def _as_int(x: object) -> int:
    if not isinstance(x, int):
        raise EventSyntaxError("expected integer, got {!r}".format(x))
    return x


def _as_str(x: object) -> str:
    return x if isinstance(x, str) else str(x)


def _escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(s: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(s):
        c = s[i]
        if c == "\\" and i + 1 < len(s):
            nxt = s[i + 1]
            out.append({"n": "\n", "t": "\t"}.get(nxt, nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)
