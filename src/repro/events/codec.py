"""Compact binary (de)serialization of event streams.

The textual format in :mod:`repro.events.serialize` is the paper's
notation — ideal for tests and worked examples, far too slow as an IPC
wire format: every event costs a regex match and every string a
character-level unescape.  This module is the machine format the
:mod:`repro.parallel` sharding layer ships over pipes.

Wire layout, little-endian throughout:

* **Event**: one header byte — the :class:`~repro.events.model.Kind`
  value in the low five bits, an OID-presence flag at ``0x20`` — followed
  by the fields the kind implies, ``struct``-packed:

  - ``id`` (``<i``) for every kind;
  - ``sub`` (``<i``) for the eight update-bracket kinds;
  - ``tag`` for sE/eE as ``<H`` byte length + UTF-8 bytes;
  - ``text`` for cD as ``<I`` byte length + UTF-8 bytes;
  - ``oid`` (``<i``) when the header flag is set.

  UTF-8 carries any character verbatim, so the textual format's escaping
  (and its bugs-by-construction) has no binary counterpart.

* **Batch**: ``<I`` event count, then the packed events.

* **Frame**: ``<I`` payload byte length, then the payload.  A zero
  length is a valid frame (the sharding layer uses an empty payload as
  its end-of-stream marker).  :func:`read_frame` distinguishes a clean
  end of the stream (``None``) from truncation mid-frame
  (:class:`CodecError`).

* **Checked frame** (format v2): the high bit of the length word is set
  (:data:`CHECKED_FLAG`), and the payload is preceded by a ``<I`` frame
  sequence number and followed by a ``<I`` CRC32 trailer covering the
  sequence number and the payload.  The reader verifies the CRC and
  surfaces the sequence number, turning silent corruption into a
  structured :class:`CodecError` (``reason="crc-mismatch"``) the shard
  supervisor converts into a worker restart + replay, and giving
  receivers the gap/duplicate discipline replay depends on.  Both
  readers (:func:`read_frame` / :func:`read_frame_ex`) accept both
  formats, so v1 frames written by older producers still decode.

Every :class:`CodecError` carries machine-readable fields — ``reason``,
``offset`` (byte position in the stream), ``expected`` and ``got`` —
so supervisors and tests can branch on the failure class instead of
parsing messages.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterable, Iterator, List, Optional, Tuple

from .model import (CD, EE, SE, UPDATE_ENDS, UPDATE_STARTS, Event, Kind)


class CodecError(ValueError):
    """Raised on malformed or truncated binary event data.

    Attributes:
        reason: machine-readable failure class (``"truncated"``,
            ``"crc-mismatch"``, ``"trailing-garbage"``, ``"bad-kind"``,
            ``"oversized"``, ``"unencodable"``).
        offset: byte offset in the stream/buffer where the failure was
            detected (``None`` when unknown).
        expected: the byte count or value the reader wanted.
        got: what it actually found.
    """

    def __init__(self, message: str, reason: Optional[str] = None,
                 offset: Optional[int] = None,
                 expected: Optional[object] = None,
                 got: Optional[object] = None) -> None:
        self.reason = reason
        self.offset = offset
        self.expected = expected
        self.got = got
        details = []
        if reason is not None:
            details.append("reason={}".format(reason))
        if offset is not None:
            details.append("offset={}".format(offset))
        if expected is not None:
            details.append("expected={!r}".format(expected))
        if got is not None:
            details.append("got={!r}".format(got))
        if details:
            message = "{} [{}]".format(message, ", ".join(details))
        super().__init__(message)


_OID_FLAG = 0x20
_KIND_MASK = 0x1F

_HDR_ID = struct.Struct("<Bi")        # header byte + id
_HDR_ID_SUB = struct.Struct("<Bii")   # header byte + id + sub
_TAG_LEN = struct.Struct("<H")
_TEXT_LEN = struct.Struct("<I")
_OID = struct.Struct("<i")
_U32 = struct.Struct("<I")

#: Kinds that carry a ``sub`` field on the wire.
_SUB_KINDS = frozenset(int(k) for k in (UPDATE_STARTS | UPDATE_ENDS))
_SE, _EE, _CD = int(SE), int(EE), int(CD)
_VALID_KINDS = frozenset(int(k) for k in Kind)


def encode_event(e: Event) -> bytes:
    """Pack one event into its binary form."""
    kind = int(e.kind)
    hdr = kind | (_OID_FLAG if e.oid is not None else 0)
    try:
        if kind in _SUB_KINDS:
            head = _HDR_ID_SUB.pack(hdr, e.id, e.sub)
        elif kind == _SE or kind == _EE:
            tag = e.tag.encode("utf-8")
            head = _HDR_ID.pack(hdr, e.id) + _TAG_LEN.pack(len(tag)) + tag
        elif kind == _CD:
            text = e.text.encode("utf-8")
            head = (_HDR_ID.pack(hdr, e.id)
                    + _TEXT_LEN.pack(len(text)) + text)
        else:
            head = _HDR_ID.pack(hdr, e.id)
    except (struct.error, AttributeError) as exc:
        raise CodecError("cannot encode {!r}: {}".format(e, exc),
                         reason="unencodable")
    if e.oid is not None:
        try:
            return head + _OID.pack(e.oid)
        except struct.error as exc:
            raise CodecError("cannot encode oid of {!r}: {}".format(e, exc),
                             reason="unencodable")
    return head


def decode_event(buf: bytes, pos: int = 0) -> Tuple[Event, int]:
    """Unpack one event at ``pos``; returns ``(event, next_pos)``."""
    try:
        hdr = buf[pos]
    except IndexError:
        raise CodecError("truncated event", reason="truncated",
                         offset=pos, expected=1, got=0)
    kind_val = hdr & _KIND_MASK
    if kind_val not in _VALID_KINDS:
        raise CodecError("unknown event kind", reason="bad-kind",
                         offset=pos, got=kind_val)
    kind = Kind(kind_val)
    sub = tag = text = oid = None
    try:
        if kind_val in _SUB_KINDS:
            _, id_, sub = _HDR_ID_SUB.unpack_from(buf, pos)
            pos += _HDR_ID_SUB.size
        else:
            _, id_ = _HDR_ID.unpack_from(buf, pos)
            pos += _HDR_ID.size
            if kind_val == _SE or kind_val == _EE:
                (n,) = _TAG_LEN.unpack_from(buf, pos)
                pos += _TAG_LEN.size
                end = pos + n
                if end > len(buf):
                    raise struct.error("tag bytes")
                tag = buf[pos:end].decode("utf-8")
                pos = end
            elif kind_val == _CD:
                (n,) = _TEXT_LEN.unpack_from(buf, pos)
                pos += _TEXT_LEN.size
                end = pos + n
                if end > len(buf):
                    raise struct.error("text bytes")
                text = buf[pos:end].decode("utf-8")
                pos = end
        if hdr & _OID_FLAG:
            (oid,) = _OID.unpack_from(buf, pos)
            pos += _OID.size
    except struct.error:
        raise CodecError("truncated event", reason="truncated", offset=pos)
    except UnicodeDecodeError as exc:
        raise CodecError("invalid UTF-8 in event: {}".format(exc),
                         reason="truncated", offset=pos)
    return Event(kind, id_, sub=sub, tag=tag, text=text, oid=oid), pos


def encode_batch(events: Iterable[Event]) -> bytes:
    """Pack a sequence of events as a count-prefixed payload."""
    parts = [encode_event(e) for e in events]
    return _U32.pack(len(parts)) + b"".join(parts)


def decode_batch(payload: bytes) -> List[Event]:
    """Unpack a payload produced by :func:`encode_batch`."""
    if len(payload) < _U32.size:
        raise CodecError("truncated batch header", reason="truncated",
                         offset=0, expected=_U32.size, got=len(payload))
    (count,) = _U32.unpack_from(payload, 0)
    pos = _U32.size
    out: List[Event] = []
    for _ in range(count):
        e, pos = decode_event(payload, pos)
        out.append(e)
    if pos != len(payload):
        raise CodecError(
            "trailing garbage after the declared {} events".format(count),
            reason="trailing-garbage", offset=pos,
            expected=pos, got=len(payload))
    return out


# -- framed pipe transport ---------------------------------------------------

#: High bit of the frame length word: marks a v2 (seq + CRC32) frame.
CHECKED_FLAG = 0x80000000
_LEN_MASK = CHECKED_FLAG - 1


def encode_frame(events: Iterable[Event]) -> bytes:
    """A complete length-prefixed v1 frame holding one event batch."""
    payload = encode_batch(events)
    return _U32.pack(len(payload)) + payload


def encode_checked_frame(events: Iterable[Event], seq: int) -> bytes:
    """A v2 frame: flagged length, sequence number, payload, CRC32."""
    return frame_checked(encode_batch(events), seq)


def frame_checked(payload: bytes, seq: int) -> bytes:
    """Wrap an already-encoded batch payload as a v2 checked frame."""
    if len(payload) > _LEN_MASK:
        raise CodecError("frame payload too large",
                         reason="oversized", expected=_LEN_MASK,
                         got=len(payload))
    seq_bytes = _U32.pack(seq)
    crc = zlib.crc32(payload, zlib.crc32(seq_bytes))
    return (_U32.pack(len(payload) | CHECKED_FLAG) + seq_bytes
            + payload + _U32.pack(crc))


def write_frame(stream: BinaryIO, payload: bytes) -> None:
    """Write one length-prefixed v1 frame (payload may be empty)."""
    stream.write(_U32.pack(len(payload)))
    stream.write(payload)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one frame (either format); ``None`` on clean EOF.

    Checked frames are CRC-verified and their sequence number is
    discarded; use :func:`read_frame_ex` to observe it.  Raises
    :class:`CodecError` when the stream ends mid-frame or a CRC fails.
    """
    result = read_frame_ex(stream)
    return None if result is None else result[1]


def read_frame_ex(stream: BinaryIO, offset: int = 0
                  ) -> Optional[Tuple[Optional[int], bytes, int]]:
    """Read one frame of either format, tracking byte offsets.

    Returns ``(seq, payload, next_offset)`` — ``seq`` is ``None`` for
    v1 frames — or ``None`` on clean EOF at a frame boundary.  ``offset``
    is the caller's running byte position, echoed into error fields and
    advanced in the return value.
    """
    header = _read_exact(stream, _U32.size, allow_eof=True, offset=offset)
    if header is None:
        return None
    (word,) = _U32.unpack(header)
    pos = offset + _U32.size
    if not word & CHECKED_FLAG:
        if word == 0:
            return None, b"", pos
        payload = _read_exact(stream, word, allow_eof=False, offset=pos)
        return None, payload, pos + word
    length = word & _LEN_MASK
    body = _read_exact(stream, _U32.size + length + _U32.size,
                       allow_eof=False, offset=pos)
    (seq,) = _U32.unpack_from(body, 0)
    payload = body[_U32.size:_U32.size + length]
    (crc_stored,) = _U32.unpack_from(body, _U32.size + length)
    crc_actual = zlib.crc32(payload, zlib.crc32(body[:_U32.size]))
    if crc_actual != crc_stored:
        raise CodecError(
            "frame {} failed its CRC32 check".format(seq),
            reason="crc-mismatch", offset=offset,
            expected=crc_stored, got=crc_actual)
    return seq, payload, pos + len(body)


def iter_frames(stream: BinaryIO) -> Iterator[bytes]:
    """Yield frame payloads until clean EOF or an empty (sentinel) frame."""
    for _, payload in iter_frames_ex(stream):
        yield payload


def iter_frames_ex(stream: BinaryIO
                   ) -> Iterator[Tuple[Optional[int], bytes]]:
    """Yield ``(seq, payload)`` pairs until EOF or a sentinel frame.

    Maintains a running byte offset so truncation and CRC errors report
    exactly where in the stream they happened.
    """
    offset = 0
    while True:
        result = read_frame_ex(stream, offset=offset)
        if result is None:
            return
        seq, payload, offset = result
        if not payload:
            return
        yield seq, payload


def _read_exact(stream: BinaryIO, n: int, allow_eof: bool,
                offset: int = 0) -> Optional[bytes]:
    chunks: List[bytes] = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            if allow_eof and got == 0:
                return None
            raise CodecError("stream truncated mid-frame",
                             reason="truncated", offset=offset + got,
                             expected=n, got=got)
        chunks.append(chunk)
        got += len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)
