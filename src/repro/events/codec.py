"""Compact binary (de)serialization of event streams.

The textual format in :mod:`repro.events.serialize` is the paper's
notation — ideal for tests and worked examples, far too slow as an IPC
wire format: every event costs a regex match and every string a
character-level unescape.  This module is the machine format the
:mod:`repro.parallel` sharding layer ships over pipes.

Wire layout, little-endian throughout:

* **Event**: one header byte — the :class:`~repro.events.model.Kind`
  value in the low five bits, an OID-presence flag at ``0x20`` — followed
  by the fields the kind implies, ``struct``-packed:

  - ``id`` (``<i``) for every kind;
  - ``sub`` (``<i``) for the eight update-bracket kinds;
  - ``tag`` for sE/eE as ``<H`` byte length + UTF-8 bytes;
  - ``text`` for cD as ``<I`` byte length + UTF-8 bytes;
  - ``oid`` (``<i``) when the header flag is set.

  UTF-8 carries any character verbatim, so the textual format's escaping
  (and its bugs-by-construction) has no binary counterpart.

* **Batch**: ``<I`` event count, then the packed events.

* **Frame**: ``<I`` payload byte length, then the payload.  A zero
  length is a valid frame (the sharding layer uses an empty payload as
  its end-of-stream marker).  :func:`read_frame` distinguishes a clean
  end of the stream (``None``) from truncation mid-frame
  (:class:`CodecError`).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List, Optional, Tuple

from .model import (CD, EE, SE, UPDATE_ENDS, UPDATE_STARTS, Event, Kind)


class CodecError(ValueError):
    """Raised on malformed or truncated binary event data."""


_OID_FLAG = 0x20
_KIND_MASK = 0x1F

_HDR_ID = struct.Struct("<Bi")        # header byte + id
_HDR_ID_SUB = struct.Struct("<Bii")   # header byte + id + sub
_TAG_LEN = struct.Struct("<H")
_TEXT_LEN = struct.Struct("<I")
_OID = struct.Struct("<i")
_U32 = struct.Struct("<I")

#: Kinds that carry a ``sub`` field on the wire.
_SUB_KINDS = frozenset(int(k) for k in (UPDATE_STARTS | UPDATE_ENDS))
_SE, _EE, _CD = int(SE), int(EE), int(CD)
_VALID_KINDS = frozenset(int(k) for k in Kind)


def encode_event(e: Event) -> bytes:
    """Pack one event into its binary form."""
    kind = int(e.kind)
    hdr = kind | (_OID_FLAG if e.oid is not None else 0)
    try:
        if kind in _SUB_KINDS:
            head = _HDR_ID_SUB.pack(hdr, e.id, e.sub)
        elif kind == _SE or kind == _EE:
            tag = e.tag.encode("utf-8")
            head = _HDR_ID.pack(hdr, e.id) + _TAG_LEN.pack(len(tag)) + tag
        elif kind == _CD:
            text = e.text.encode("utf-8")
            head = (_HDR_ID.pack(hdr, e.id)
                    + _TEXT_LEN.pack(len(text)) + text)
        else:
            head = _HDR_ID.pack(hdr, e.id)
    except (struct.error, AttributeError) as exc:
        raise CodecError("cannot encode {!r}: {}".format(e, exc))
    if e.oid is not None:
        try:
            return head + _OID.pack(e.oid)
        except struct.error as exc:
            raise CodecError("cannot encode oid of {!r}: {}".format(e, exc))
    return head


def decode_event(buf: bytes, pos: int = 0) -> Tuple[Event, int]:
    """Unpack one event at ``pos``; returns ``(event, next_pos)``."""
    try:
        hdr = buf[pos]
    except IndexError:
        raise CodecError("truncated event at offset {}".format(pos))
    kind_val = hdr & _KIND_MASK
    if kind_val not in _VALID_KINDS:
        raise CodecError(
            "unknown event kind {} at offset {}".format(kind_val, pos))
    kind = Kind(kind_val)
    sub = tag = text = oid = None
    try:
        if kind_val in _SUB_KINDS:
            _, id_, sub = _HDR_ID_SUB.unpack_from(buf, pos)
            pos += _HDR_ID_SUB.size
        else:
            _, id_ = _HDR_ID.unpack_from(buf, pos)
            pos += _HDR_ID.size
            if kind_val == _SE or kind_val == _EE:
                (n,) = _TAG_LEN.unpack_from(buf, pos)
                pos += _TAG_LEN.size
                end = pos + n
                if end > len(buf):
                    raise struct.error("tag bytes")
                tag = buf[pos:end].decode("utf-8")
                pos = end
            elif kind_val == _CD:
                (n,) = _TEXT_LEN.unpack_from(buf, pos)
                pos += _TEXT_LEN.size
                end = pos + n
                if end > len(buf):
                    raise struct.error("text bytes")
                text = buf[pos:end].decode("utf-8")
                pos = end
        if hdr & _OID_FLAG:
            (oid,) = _OID.unpack_from(buf, pos)
            pos += _OID.size
    except struct.error:
        raise CodecError("truncated event at offset {}".format(pos))
    except UnicodeDecodeError as exc:
        raise CodecError("invalid UTF-8 in event: {}".format(exc))
    return Event(kind, id_, sub=sub, tag=tag, text=text, oid=oid), pos


def encode_batch(events: Iterable[Event]) -> bytes:
    """Pack a sequence of events as a count-prefixed payload."""
    parts = [encode_event(e) for e in events]
    return _U32.pack(len(parts)) + b"".join(parts)


def decode_batch(payload: bytes) -> List[Event]:
    """Unpack a payload produced by :func:`encode_batch`."""
    if len(payload) < _U32.size:
        raise CodecError("truncated batch header")
    (count,) = _U32.unpack_from(payload, 0)
    pos = _U32.size
    out: List[Event] = []
    for _ in range(count):
        e, pos = decode_event(payload, pos)
        out.append(e)
    if pos != len(payload):
        raise CodecError(
            "{} trailing bytes after {} events".format(
                len(payload) - pos, count))
    return out


# -- framed pipe transport ---------------------------------------------------

def encode_frame(events: Iterable[Event]) -> bytes:
    """A complete length-prefixed frame holding one event batch."""
    payload = encode_batch(events)
    return _U32.pack(len(payload)) + payload


def write_frame(stream: BinaryIO, payload: bytes) -> None:
    """Write one length-prefixed frame (payload may be empty)."""
    stream.write(_U32.pack(len(payload)))
    stream.write(payload)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`CodecError` when the stream ends mid-frame.
    """
    header = _read_exact(stream, _U32.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _U32.unpack(header)
    if length == 0:
        return b""
    payload = _read_exact(stream, length, allow_eof=False)
    return payload


def iter_frames(stream: BinaryIO) -> Iterator[bytes]:
    """Yield frame payloads until clean EOF or an empty (sentinel) frame."""
    while True:
        payload = read_frame(stream)
        if payload is None or payload == b"":
            return
        yield payload


def _read_exact(stream: BinaryIO, n: int,
                allow_eof: bool) -> Optional[bytes]:
    chunks: List[bytes] = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            if allow_eof and got == 0:
                return None
            raise CodecError(
                "stream truncated: wanted {} bytes, got {}".format(n, got))
        chunks.append(chunk)
        got += len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)
