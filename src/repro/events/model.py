"""Event model for XML update streams.

The paper (Section II) models an XML stream as a possibly infinite sequence
of events.  Every event carries a *stream number* (``id``) so that several
virtual substreams can be interleaved in one global stream.  Regular events::

    sS: startStream(id)          eS: endStream(id)
    sT: startTuple(id)           eT: endTuple(id)
    sE: startElement(id, tag)    eE: endElement(id, tag)
    cD: cData(id, text)

Update events (Section III) extend the vocabulary.  ``sU(i, j) .. eU(i, j)``
brackets a substream numbered ``j`` that targets the region numbered ``i``::

    sM/eM: startMutable/endMutable(i, j)          -- declare mutable region j
    sR/eR: startReplace/endReplace(i, j)          -- replace content of i by j
    sB/eB: startInsertBefore/endInsertBefore(i,j) -- insert j before region i
    sA/eA: startInsertAfter/endInsertAfter(i, j)  -- insert j after region i
    freeze(i)  -- close region i to further updates
    hide(i)    -- temporarily suppress the content of region i
    show(i)    -- undo a hide(i)

Events are immutable value objects.  ``oid`` is the optional node identity
set at the stream source; the paper uses it for backward axes (Section VI-E)
where two copies of the same source event must compare equal by identity.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Optional


class Kind(enum.IntEnum):
    """Event discriminator.  IntEnum so dispatch tables can index by value."""

    START_STREAM = 0
    END_STREAM = 1
    START_TUPLE = 2
    END_TUPLE = 3
    START_ELEMENT = 4
    END_ELEMENT = 5
    CDATA = 6
    START_MUTABLE = 7
    END_MUTABLE = 8
    START_REPLACE = 9
    END_REPLACE = 10
    START_INSERT_BEFORE = 11
    END_INSERT_BEFORE = 12
    START_INSERT_AFTER = 13
    END_INSERT_AFTER = 14
    FREEZE = 15
    HIDE = 16
    SHOW = 17


# Short aliases matching the paper's abbreviations.
SS = Kind.START_STREAM
ES = Kind.END_STREAM
ST = Kind.START_TUPLE
ET = Kind.END_TUPLE
SE = Kind.START_ELEMENT
EE = Kind.END_ELEMENT
CD = Kind.CDATA
SM = Kind.START_MUTABLE
EM = Kind.END_MUTABLE
SR = Kind.START_REPLACE
ER = Kind.END_REPLACE
SB = Kind.START_INSERT_BEFORE
EB = Kind.END_INSERT_BEFORE
SA = Kind.START_INSERT_AFTER
EA = Kind.END_INSERT_AFTER
FREEZE = Kind.FREEZE
HIDE = Kind.HIDE
SHOW = Kind.SHOW

#: Kinds that open an update region: sM, sR, sB, sA.
UPDATE_STARTS = frozenset((SM, SR, SB, SA))
#: Kinds that close an update region: eM, eR, eB, eA.
UPDATE_ENDS = frozenset((EM, ER, EB, EA))
#: All update-control kinds (everything that is not a regular stream event).
UPDATE_KINDS = UPDATE_STARTS | UPDATE_ENDS | {FREEZE, HIDE, SHOW}
#: Regular data kinds.
DATA_KINDS = frozenset((SS, ES, ST, ET, SE, EE, CD))

_END_FOR_START = {SM: EM, SR: ER, SB: EB, SA: EA}
_START_FOR_END = {v: k for k, v in _END_FOR_START.items()}

_ABBREV = {
    SS: "sS", ES: "eS", ST: "sT", ET: "eT", SE: "sE", EE: "eE", CD: "cD",
    SM: "sM", EM: "eM", SR: "sR", ER: "eR", SB: "sB", EB: "eB",
    SA: "sA", EA: "eA", FREEZE: "freeze", HIDE: "hide", SHOW: "show",
}
ABBREV_TO_KIND = {v: k for k, v in _ABBREV.items()}


class Event:
    """A single stream event.

    Attributes:
        kind: the event discriminator (a :class:`Kind`).
        id:   the stream number for regular events; the *target* region
              number for update events.
        sub:  the new substream/region number introduced by an update
              bracket (``None`` for regular events and freeze/hide/show).
        tag:  element tag for sE/eE, else ``None``.
        text: character data for cD, else ``None``.
        oid:  optional node identity assigned at the stream source.
    """

    __slots__ = ("kind", "id", "sub", "tag", "text", "oid")

    def __init__(self, kind: Kind, id: int, sub: Optional[int] = None,
                 tag: Optional[str] = None, text: Optional[str] = None,
                 oid: Optional[int] = None) -> None:
        self.kind = kind
        self.id = id
        self.sub = sub
        self.tag = tag
        self.text = text
        self.oid = oid

    # -- classification helpers -------------------------------------------

    @property
    def is_update(self) -> bool:
        """True for every update-control event (sU/eU/freeze/hide/show)."""
        return self.kind in UPDATE_KINDS

    @property
    def is_update_start(self) -> bool:
        return self.kind in UPDATE_STARTS

    @property
    def is_update_end(self) -> bool:
        return self.kind in UPDATE_ENDS

    @property
    def abbrev(self) -> str:
        return _ABBREV[self.kind]

    # -- value semantics ---------------------------------------------------

    def key(self) -> tuple:
        return (self.kind, self.id, self.sub, self.tag, self.text)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def same_node(self, other: "Event") -> bool:
        """Node identity comparison used by backward axes (OID equality)."""
        return (self.oid is not None and other is not None
                and other.oid == self.oid)

    def relabel(self, new_id: int) -> "Event":
        """Copy of this event carried on a different stream number."""
        # Hot path: bypass __init__ (one fewer Python-level call) — this
        # runs once per stage per passing event.
        ev = Event.__new__(Event)
        ev.kind = self.kind
        ev.id = new_id
        ev.sub = self.sub
        ev.tag = self.tag
        ev.text = self.text
        ev.oid = self.oid
        return ev

    def __repr__(self) -> str:
        parts = [str(self.id)]
        if self.sub is not None:
            parts.append(str(self.sub))
        if self.tag is not None:
            parts.append(repr(self.tag))
        if self.text is not None:
            parts.append(repr(self.text))
        return "{}({})".format(self.abbrev, ",".join(parts))


# ---------------------------------------------------------------------------
# Constructors, named after the paper's event forms.
# ---------------------------------------------------------------------------

def start_stream(id: int) -> Event:
    return Event(SS, id)


def end_stream(id: int) -> Event:
    return Event(ES, id)


def start_tuple(id: int) -> Event:
    return Event(ST, id)


def end_tuple(id: int) -> Event:
    return Event(ET, id)


def start_element(id: int, tag: str, oid: Optional[int] = None) -> Event:
    return Event(SE, id, tag=tag, oid=oid)


def end_element(id: int, tag: str, oid: Optional[int] = None) -> Event:
    return Event(EE, id, tag=tag, oid=oid)


def cdata(id: int, text: str, oid: Optional[int] = None) -> Event:
    return Event(CD, id, text=text, oid=oid)


def start_mutable(id: int, sub: int) -> Event:
    return Event(SM, id, sub=sub)


def end_mutable(id: int, sub: int) -> Event:
    return Event(EM, id, sub=sub)


def start_replace(id: int, sub: int) -> Event:
    return Event(SR, id, sub=sub)


def end_replace(id: int, sub: int) -> Event:
    return Event(ER, id, sub=sub)


def start_insert_before(id: int, sub: int) -> Event:
    return Event(SB, id, sub=sub)


def end_insert_before(id: int, sub: int) -> Event:
    return Event(EB, id, sub=sub)


def start_insert_after(id: int, sub: int) -> Event:
    return Event(SA, id, sub=sub)


def end_insert_after(id: int, sub: int) -> Event:
    return Event(EA, id, sub=sub)


def freeze(id: int) -> Event:
    return Event(FREEZE, id)


def hide(id: int) -> Event:
    return Event(HIDE, id)


def show(id: int) -> Event:
    return Event(SHOW, id)


def matching_end(start_kind: Kind) -> Kind:
    """The eU kind matching an sU kind (sM -> eM etc.)."""
    return _END_FOR_START[start_kind]


def matching_start(end_kind: Kind) -> Kind:
    """The sU kind matching an eU kind (eM -> sM etc.)."""
    return _START_FOR_END[end_kind]


class IdGenerator:
    """Allocator of fresh stream / update-region numbers.

    The paper requires "new ids that have not been used before"; every
    pipeline shares one generator so ids are globally unique.  Data streams
    usually claim low numbers explicitly; generated ids start high.
    """

    def __init__(self, first: int = 1000) -> None:
        self._next = first

    def fresh(self) -> int:
        nid = self._next
        self._next += 1
        return nid

    def reserve(self, id: int) -> int:
        """Mark an externally chosen id as used (keeps fresh() above it)."""
        if id >= self._next:
            self._next = id + 1
        return id


def events_of(stream: Iterable[Event], id: int) -> Iterator[Event]:
    """The subsequence of ``stream`` carried on stream number ``id``."""
    return (e for e in stream if e.id == id)


class UpdateStripper:
    """Consumer-side opt-out (paper Section V): ignore incoming updates.

    "We would like the stream consumer to be able to choose which updates
    to accept and which ones to ignore.  Ignoring updates over an update
    region is the same as making the region immutable."  Feeding events
    through a stripper erases the update structure at the source: mutable
    regions dissolve into plain content (relabeled onto their stream),
    and replace/insert updates — together with their content — vanish.
    """

    def __init__(self) -> None:
        self._alias = {}    # region id -> stream id its content becomes
        self._dropped = set()

    def feed(self, e: "Event"):
        kind = e.kind
        if not e.is_update:
            if e.id in self._alias:
                return [e.relabel(self._alias[e.id])]
            if e.id in self._dropped:
                return []
            return [e]
        if kind == Kind.START_MUTABLE:
            if e.id in self._dropped:
                self._dropped.add(e.sub)
            else:
                self._alias[e.sub] = self._alias.get(e.id, e.id)
            return []
        if kind in (Kind.START_REPLACE, Kind.START_INSERT_BEFORE,
                    Kind.START_INSERT_AFTER):
            self._dropped.add(e.sub)
            return []
        return []  # bracket ends and freeze/hide/show disappear

    def feed_all(self, events):
        for e in events:
            yield from self.feed(e)


def strip_updates(events):
    """One-shot: erase all update structure from an event sequence."""
    return list(UpdateStripper().feed_all(events))
