"""Structured stream-protocol errors.

One error shape serves every checker layer — the document-level
well-formedness validator (:mod:`repro.events.wellformed`), the shared
multi-query nesting guard (:mod:`repro.core.multiplex`), and the
inter-stage protocol sanitizer (:mod:`repro.analysis.sanitize`) — so a
violation always names *where* it happened (stage or boundary), *what*
event triggered it (repr and position), and *which* substream it was on.
Tooling can catch :class:`ProtocolViolation` and read the fields instead
of parsing messages.
"""

from __future__ import annotations

from typing import Optional


class ProtocolViolation(ValueError):
    """An event sequence broke a stream-protocol invariant.

    Attributes:
        rule: short machine-readable name of the violated invariant
            (e.g. ``"element-nesting"``, ``"update-bracket-match"``).
        stage: the pipeline stage or boundary where the violation was
            observed (``None`` for standalone sequence checks).
        stage_index: 0-based index of the pipeline boundary — ``0`` is
            source -> stage 0, ``n`` is the last stage -> sink (``None``
            for standalone sequence checks).  Matches the ``index`` in
            the telemetry layer's
            :class:`~repro.obs.recorder.StageIdentity` labels, so a
            violation joins against metrics / trace / analyze JSON.
        event: repr of the offending event (``None`` for end-of-stream
            violations).
        index: 0-based position of the offending event in the checked
            sequence (``None`` when unknown).
        stream: the stream/substream number the violation concerns.
    """

    def __init__(self, message: str, rule: Optional[str] = None,
                 stage: Optional[str] = None,
                 event: Optional[object] = None,
                 index: Optional[int] = None,
                 stream: Optional[int] = None,
                 stage_index: Optional[int] = None) -> None:
        self.rule = rule
        self.stage = stage
        self.stage_index = stage_index
        self.event = None if event is None else repr(event)
        self.index = index
        self.stream = stream
        parts = [message]
        details = []
        if rule is not None:
            details.append("rule={}".format(rule))
        if stage is not None:
            details.append("at={}".format(stage))
        if stage_index is not None:
            details.append("boundary={}".format(stage_index))
        if self.event is not None:
            details.append("event={}".format(self.event))
        if index is not None:
            details.append("index={}".format(index))
        if stream is not None:
            details.append("stream={}".format(stream))
        if details:
            parts.append(" [{}]".format(", ".join(details)))
        super().__init__("".join(parts))
