"""Update-application semantics: the region tree.

Section III of the paper defines update streams operationally ("after the
updates are applied, the result is equivalent to ...").  This module makes
that semantics executable.  A :class:`RegionTree` consumes a global event
stream one event at a time and maintains the *materialized* document as a
tree of regions:

* a **region** is a container introduced by ``sU(i, j) .. eU(i, j)``
  (mutable/replace/insert-before/insert-after) or by the start of a stream;
* content events with number ``j`` are appended to the open region ``j``;
* ``sR(i, j)`` replaces the content of the latest region numbered ``i`` with
  the new region ``j`` (region ``i`` keeps its place, so later inserts that
  target ``i`` still anchor correctly — the paper's "w" example);
* ``sB``/``sA`` splice the new region just before/after the target region;
* ``hide``/``show`` toggle a region's visibility;
* ``freeze`` closes a region: a hidden frozen region is discarded outright,
  a visible one is dissolved into its parent (Section V's irrevocable,
  buffer-free decision).

An update id may be reused; only the latest region with that id is active
(``registry`` is latest-wins).  Updates that target unknown or frozen ids
are ignored, which also ignores their bracketed content.

Region content is a doubly-linked chain of *runs* (consecutive plain
events) and child regions, so appends and region-anchored splices are O(1).

The same machinery serves three roles: the engine's result display, the
eager oracle ``apply_updates`` used by tests, and the memory accounting
(live regions / buffered events) reported by the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..events.model import (CD, EA, EB, EE, EM, ER, ES, ET, FREEZE, HIDE, SA,
                            SB, SE, SHOW, SM, SR, SS, ST, Event)


class _Link:
    """A node of the intrusive doubly-linked content chain."""

    __slots__ = ("prev", "next")

    def __init__(self) -> None:
        self.prev: Optional["_Link"] = None
        self.next: Optional["_Link"] = None


class Run(_Link):
    """A maximal run of consecutive plain events inside one region."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Event] = []


class Region(_Link):
    """A container in the region tree (stream root or update region)."""

    __slots__ = ("id", "hidden", "frozen", "head", "tail")

    def __init__(self, id: int) -> None:
        super().__init__()
        self.id = id
        self.hidden = False
        self.frozen = False
        self.head = _Link()
        self.tail = _Link()
        self.head.next = self.tail
        self.tail.prev = self.head

    # -- chain editing ------------------------------------------------------

    def append_event(self, e: Event) -> None:
        last = self.tail.prev
        if isinstance(last, Run):
            last.events.append(e)
        else:
            run = Run()
            run.events.append(e)
            _insert_before(self.tail, run)

    def append_child(self, child: "Region") -> None:
        _insert_before(self.tail, child)

    def clear_content(self) -> List["Region"]:
        """Detach all content; return the child regions that were dropped."""
        dropped: List[Region] = []
        node = self.head.next
        while node is not self.tail:
            if isinstance(node, Region):
                dropped.append(node)
                dropped.extend(node.all_subregions())
            node = node.next
        self.head.next = self.tail
        self.tail.prev = self.head
        return dropped

    def all_subregions(self) -> List["Region"]:
        """Every region strictly inside this one."""
        out: List[Region] = []
        node = self.head.next
        while node is not self.tail:
            if isinstance(node, Region):
                out.append(node)
                out.extend(node.all_subregions())
            node = node.next
        return out

    def iter_events(self) -> Iterator[Event]:
        """Flatten visible content into the event sequence it denotes."""
        node = self.head.next
        while node is not self.tail:
            if isinstance(node, Run):
                yield from node.events
            elif isinstance(node, Region):
                if not node.hidden:
                    yield from node.iter_events()
            node = node.next

    def dissolve(self) -> None:
        """Splice this region's content into its place in the parent chain.

        After dissolving, the region object itself is unlinked; its content
        chain takes its position.  O(1).
        """
        first = self.head.next
        last = self.tail.prev
        if first is self.tail:
            _unlink(self)
            return
        prev, nxt = self.prev, self.next
        assert prev is not None and nxt is not None
        prev.next = first
        first.prev = prev
        nxt.prev = last
        last.next = nxt
        self.prev = self.next = None

    def counts(self) -> Dict[str, int]:
        """(regions, events) contained in this region, recursively."""
        regions = 0
        events = 0
        node = self.head.next
        while node is not self.tail:
            if isinstance(node, Run):
                events += len(node.events)
            elif isinstance(node, Region):
                regions += 1
                sub = node.counts()
                regions += sub["regions"]
                events += sub["events"]
            node = node.next
        return {"regions": regions, "events": events}

    def __repr__(self) -> str:
        return "Region(id={}, hidden={}, frozen={})".format(
            self.id, self.hidden, self.frozen)


def _insert_before(anchor: _Link, node: _Link) -> None:
    prev = anchor.prev
    assert prev is not None
    prev.next = node
    node.prev = prev
    node.next = anchor
    anchor.prev = node


def _insert_after(anchor: _Link, node: _Link) -> None:
    nxt = anchor.next
    assert nxt is not None
    nxt.prev = node
    node.next = nxt
    node.prev = anchor
    anchor.next = node


def _unlink(node: _Link) -> None:
    prev, nxt = node.prev, node.next
    if prev is not None:
        prev.next = nxt
    if nxt is not None:
        nxt.prev = prev
    node.prev = node.next = None


class RegionTree:
    """Materializes an update stream into its denoted document.

    Args:
        result_ids: stream numbers whose content is materialized.  When
            None, every stream opened with sS (plus tuple streams appearing
            via bare sT) is tracked — the mode used by the eager oracle.
        keep_tuples: keep sT/eT markers in flattened output (default they
            are erased, as the display prints tuple contents only).
    """

    def __init__(self, result_ids: Optional[Sequence[int]] = None,
                 keep_tuples: bool = False) -> None:
        self._track_all = result_ids is None
        self._wanted = set(result_ids or ())
        self.keep_tuples = keep_tuples
        self.roots: Dict[int, Region] = {}
        self.root_order: List[int] = []
        self.registry: Dict[int, Region] = {}
        self.open: Dict[int, Region] = {}
        self.ignored_updates = 0
        for rid in self._wanted:
            self._open_root(rid)

    # -- event intake --------------------------------------------------------

    def _open_root(self, rid: int) -> Region:
        root = Region(rid)
        self.roots[rid] = root
        self.root_order.append(rid)
        self.registry[rid] = root
        self.open[rid] = root
        return root

    def process(self, e: Event) -> None:
        """Consume one event, updating the materialized document."""
        kind = e.kind
        if kind == SS:
            if e.id not in self.roots and (self._track_all
                                           or e.id in self._wanted):
                self._open_root(e.id)
            return
        if kind == ES:
            return
        if kind in (SE, EE, CD):
            region = self.open.get(e.id)
            if region is not None:
                region.append_event(e)
            return
        if kind in (ST, ET):
            region = self.open.get(e.id)
            if region is None and self._track_all and kind == ST:
                # A tuple stream created on the fly (e.g. concatenation
                # output) has no sS; auto-track it in oracle mode.
                region = self._open_root(e.id)
            if region is not None and self.keep_tuples:
                region.append_event(e)
            return
        if kind == SM:
            target = self.open.get(e.id)
            if target is None:
                self.ignored_updates += 1
                return
            region = Region(e.sub)  # type: ignore[arg-type]
            target.append_child(region)
            self.registry[e.sub] = region  # type: ignore[index]
            self.open[e.sub] = region  # type: ignore[index]
            return
        if kind in (SR, SB, SA):
            target = self.registry.get(e.id)
            if target is None or target.frozen:
                self.ignored_updates += 1
                return
            region = Region(e.sub)  # type: ignore[arg-type]
            if kind == SR:
                for dropped in target.clear_content():
                    self._purge(dropped)
                target.append_child(region)
            elif kind == SB:
                _insert_before(target, region)
            else:
                _insert_after(target, region)
            self.registry[e.sub] = region  # type: ignore[index]
            self.open[e.sub] = region  # type: ignore[index]
            return
        if kind in (EM, ER, EB, EA):
            self.open.pop(e.sub, None)
            return
        if kind == HIDE:
            region = self.registry.get(e.id)
            if region is not None and not region.frozen:
                region.hidden = True
            return
        if kind == SHOW:
            region = self.registry.get(e.id)
            if region is not None and not region.frozen:
                region.hidden = False
            return
        if kind == FREEZE:
            self._freeze(e.id)
            return

    def process_all(self, events: Sequence[Event]) -> None:
        for e in events:
            self.process(e)

    # -- freezing / pruning ---------------------------------------------------

    def _freeze(self, rid: int) -> None:
        region = self.registry.get(rid)
        if region is None or region.frozen:
            return
        region.frozen = True
        if rid in self.roots:
            return  # stream roots are never dissolved
        del self.registry[rid]
        self.open.pop(rid, None)
        if region.hidden:
            for dropped in region.clear_content():
                self._purge(dropped)
            _unlink(region)
        else:
            # Frozen subregions inside keep their registry entries only if
            # still reachable; dissolving preserves flattened output.
            region.dissolve()

    def _purge(self, region: Region) -> None:
        """Remove a discarded region from the registries."""
        if self.registry.get(region.id) is region:
            del self.registry[region.id]
        if self.open.get(region.id) is region:
            del self.open[region.id]

    # -- output ----------------------------------------------------------------

    def flatten(self, relabel: bool = True) -> List[Event]:
        """The plain event sequence the update stream denotes.

        Events are relabeled to their root stream's number (the paper's
        worked example: applying the updates yields cD(0, ...) events).
        """
        out: List[Event] = []
        for rid in self.root_order:
            root = self.roots[rid]
            if root.hidden:
                continue
            for e in root.iter_events():
                if not self.keep_tuples and e.kind in (ST, ET):
                    continue
                out.append(e.relabel(rid) if relabel and e.id != rid else e)
        return out

    def stats(self) -> Dict[str, int]:
        """Buffering metrics: live regions and buffered events."""
        regions = 0
        events = 0
        for root in self.roots.values():
            c = root.counts()
            regions += 1 + c["regions"]
            events += c["events"]
        return {"regions": regions, "events": events,
                "registry": len(self.registry), "open": len(self.open)}


def apply_updates(events: Sequence[Event],
                  result_ids: Optional[Sequence[int]] = None,
                  keep_tuples: bool = False) -> List[Event]:
    """Eagerly apply every update in ``events``; return the plain stream.

    This is the oracle for the paper's lazy-propagation machinery: the
    final display of any pipeline must equal ``apply_updates`` of its
    output stream.
    """
    tree = RegionTree(result_ids=result_ids, keep_tuples=keep_tuples)
    tree.process_all(events)
    return tree.flatten()
