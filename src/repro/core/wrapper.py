"""The generic update-handling wrapper ``W`` (paper Section IV).

Given a state transformer that understands plain stream data, the wrapper
makes it update-aware without any operator-specific code:

* it keeps one copy of the transformer state per update region
  (``start``/``end``/``shadow`` maps), creating them when an update bracket
  opens inside a tracked stream;
* content events of a region are processed against that region's own state
  copy (necessary so e.g. a counter counts a replacement's content and the
  delta becomes visible at the bracket's end);
* when an update completes (eR/eA/eB) or flips visibility (hide/show), the
  states of all *later* regions — ordered by rational ``order`` timestamps —
  and the live state are fixed up through the transformer's pure
  :meth:`~repro.core.transformer.StateTransformer.adjust` function;
* the mutability analysis of Section V prunes state: regions whose id is
  *fixed* get no state copies at all, and ``freeze`` drops existing ones.

**Update-bracket translation.**  The paper's pseudo-code leaves implicit
how an update travels through a stage whose output is a different virtual
stream: the content a stage emits while processing a region must itself be
bracketed, in the *stage's own output space* ("every top-level element from
e1 has its own substream id").  The wrapper implements this generically via
a per-input-stream :class:`UpdatePolicy`:

* ``TRANSLATE`` (default): re-emit the bracket with a fresh output-side
  region id; events the transformer emits on its output stream while the
  region is loaded are relabeled into that region.  hide/show/freeze are
  forwarded retargeted at the output-side region.
* ``TRANSPARENT``: forward the bracket verbatim (operators like
  concatenation whose output carries the input stream numbers).
* ``CONSUME``: emit no bracket — the stream feeds only the operator's
  state (e.g. a predicate's condition stream); visible effects happen
  through ``on_transition`` (retroactive show/hide) instead.
* ``TEE``: forward the original bracket *and* a translated one (stream
  duplication for predicates and backward axes).

Other deviations from the paper's pseudo-code are listed in DESIGN.md.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from math import gcd
from typing import Dict, List, Optional

from ..events.model import (EA, EB, EM, ER, FREEZE, HIDE, SA, SB, SHOW, SM,
                            SR, UPDATE_ENDS, UPDATE_STARTS, Event, freeze as
                            freeze_event, hide as hide_event,
                            matching_end, show as show_event)
from .transformer import State, StateTransformer, UpdatePolicy

#: State-map key for the live (main stream) state.
LIVE = "live"

#: Every Kind below START_MUTABLE is plain stream data (see events.model;
#: the enum is laid out so one integer compare classifies an event).
_FIRST_UPDATE = int(SM)
_N_KINDS = int(SHOW) + 1


class _Rat:
    """Exact rational order timestamp (the paper's ``order`` values).

    ``fractions.Fraction`` spends most of its comparison time in ABC
    instance checks and normalization; order timestamps only ever meet
    other order timestamps, and the two operations that create them
    (±1 and midpoint) keep denominators as powers of two, so a slotted
    cross-multiplying rational is sufficient — and several times faster
    on the bisect-heavy paths (:meth:`UpdateWrapper._between_below`,
    ``_adjust_later``).
    """

    __slots__ = ("n", "d")

    def __init__(self, n: int, d: int = 1) -> None:
        self.n = n
        self.d = d

    def __lt__(self, other: "_Rat") -> bool:
        return self.n * other.d < other.n * self.d

    def __le__(self, other: "_Rat") -> bool:
        return self.n * other.d <= other.n * self.d

    def __gt__(self, other: "_Rat") -> bool:
        return self.n * other.d > other.n * self.d

    def __ge__(self, other: "_Rat") -> bool:
        return self.n * other.d >= other.n * self.d

    def __eq__(self, other: object) -> bool:
        if type(other) is not _Rat:
            return NotImplemented
        return self.n * other.d == other.n * self.d

    def __hash__(self) -> int:
        g = gcd(self.n, self.d)
        return hash((self.n // g, self.d // g))

    def __bool__(self) -> bool:
        return self.n != 0

    def __repr__(self) -> str:
        return "{}/{}".format(self.n, self.d)


def _rat_mid(a: _Rat, b: _Rat) -> _Rat:
    """(a + b) / 2, stripping common powers of two (cheap gcd)."""
    n = a.n * b.d + b.n * a.d
    d = 2 * a.d * b.d
    while not (n & 1 or d & 1):
        n >>= 1
        d >>= 1
    return _Rat(n, d)


class UpdateWrapper:
    """Wrap a :class:`StateTransformer`, handling update events generically.

    The wrapper starts *dormant*: until the first update-kind event
    (sM/sR/sB/sA/eU/freeze/hide/show) reaches it, :meth:`dispatch` is a
    straight pass-through to the transformer — no region tracking, no
    state residency management, no per-event bookkeeping beyond the call
    counter.  Pure-query streams never pay for the Section-IV machinery.
    The first update event permanently activates the full path; the
    transition is lossless because the dormant path maintains exactly the
    invariants the active path expects (live state loaded, ``start[LIVE]``
    holding the construction-time snapshot).  ``always_active=True``
    disables the fast path (used by differential tests).
    """

    #: Optional telemetry sink (a :class:`repro.obs.StageMetrics`),
    #: attached by the recorder; ``None`` keeps every hook branch cold.
    obs = None

    def __init__(self, transformer: StateTransformer,
                 always_active: bool = False,
                 reclaim_on_freeze: bool = True) -> None:
        self.t = transformer
        self.ctx = transformer.ctx
        self.input_ids = frozenset(transformer.input_ids)
        # Per-region state copies (region id -> state snapshot).
        self.start: Dict[object, State] = {}
        self.end: Dict[object, State] = {}
        self.shadow: Dict[object, State] = {}
        self.order: Dict[object, Optional[_Rat]] = {}
        self.start[LIVE] = transformer.get_state()
        self.end[LIVE] = self.start[LIVE]
        self.order[LIVE] = None  # None = +infinity: always adjusted
        self._regions: set = set()
        self._alias_live: set = set()  # fixed sM regions: plain content
        self._raw: set = set()         # RAW-policy regions: fed to process
        self._shared: set = set()      # SHARED-policy regions: live state
        self._root: Dict[int, int] = {}        # region -> root input stream
        self._out_region: Dict[int, int] = {}  # region -> output-space id
        self._anchor_at_open: Dict[int, int] = {}  # region -> anchor then
        # region -> (j_out, (output_id, anchor), translate?) — everything
        # _relabel_out needs, precomputed once at bracket open.
        self._region_info: Dict[int, tuple] = {}
        self._inner: Dict[int, set] = {}  # region -> subs opened within it
        self._parent: Dict[int, Optional[int]] = {}  # bracket nesting
        self._bracket_stack: List[int] = []          # open tracked brackets
        self._policy_cache: Dict[int, UpdatePolicy] = {}
        # region/alias id -> its policy, recorded once at bracket open so
        # the close / freeze / hide / show paths skip the root lookup.
        self._rpolicy: Dict[int, UpdatePolicy] = {}
        self._loaded: object = LIVE
        self._resident: Optional[State] = None
        self._tick = 1
        self.calls = 0
        self.peak_states = 1
        self._dormant = not always_active
        #: Section V reclamation switch: with ``reclaim_on_freeze=False``
        #: a freeze still forwards, still fixes the mutability map, but
        #: keeps the region's state copies resident (the bench memory
        #: ablation measures exactly this difference).
        self._reclaim = reclaim_on_freeze
        self._frozen_kept: set = set()
        # Sorted mirror of the non-None values in self.order, so the
        # between-timestamp searches are O(log n) instead of a full scan.
        self._order_sorted: List[_Rat] = []
        self._chain_cache: Dict[int, tuple] = {}
        # Per-region (input_root, region_chain) pairs for the data hot
        # path: both are fixed when the bracket opens, so one dict probe
        # replaces two.  Entries die with the region (freeze).
        self._rcfg: Dict[int, tuple] = {}
        # Every stream id whose *data* events this stage processes (rather
        # than passes through), mapped to its facet: 0 = live (input or
        # fixed-sM alias), 1 = raw/shared, 2 = region with own state copy.
        # One dict probe classifies an event completely (the facets are
        # disjoint by construction — update-region ids are fresh).  The
        # batched pipeline driver consults the key set to skip stages an
        # event would traverse unchanged (see Pipeline._drain for how
        # update events are keyed).
        self.tracked: Dict[int, int] = dict.fromkeys(self.input_ids, 0)
        #: Kind-indexed handler list; fixed identity, mutated in place on
        #: the dormant -> active transition (see _activate_on).
        self.handlers: List = self._build_handler_table()

    @property
    def dormant(self) -> bool:
        """True while the update-free fast path is in effect."""
        return self._dormant

    # -- policy ---------------------------------------------------------------

    def _policy(self, region: int) -> UpdatePolicy:
        root = self._root.get(region)
        if root is None:
            return UpdatePolicy.TRANSLATE
        cached = self._policy_cache.get(root)
        if cached is None:
            cached = self.t.update_policy(root)
            self._policy_cache[root] = cached
        return cached

    # -- state residency --------------------------------------------------------
    #
    # ``_resident`` caches the snapshot known to equal the transformer's
    # in-object state (None = unknown/dirty; every process() call dirties
    # it).  In the ubiquitous non-interleaved bracket lifecycle
    # (sU -> content -> eU -> freeze) this elides *all* redundant
    # get_state/set_state round-trips: the open's snapshot is reused at
    # the first load, and the commit restores a state the transformer
    # already holds.

    def _save(self) -> None:
        """Flush the transformer's in-object state into the end map."""
        r = self._resident
        if r is None:
            r = self.t.get_state()
            self._resident = r
        self.end[self._loaded] = r

    def _load(self, key: object) -> None:
        if key is self._loaded or key == self._loaded:
            return
        # _save(), inlined: this runs a couple hundred thousand times per
        # query on region-interleaved streams.
        r = self._resident
        if r is None:
            r = self.t.get_state()
            self._resident = r
        self.end[self._loaded] = r
        s = self.end[key]
        if s is not r:
            self.t.set_state(s)
            self._resident = s
        self._loaded = key

    def _load_live(self) -> None:
        """Make LIVE the loaded key (caller has already saved)."""
        s = self.end[LIVE]
        if s is not self._resident:
            self.t.set_state(s)
            self._resident = s
        self._loaded = LIVE

    # -- dispatch -----------------------------------------------------------------
    #
    # Dispatch is a fixed list of handlers indexed by ``int(e.kind)`` (the
    # Kind enum is laid out for exactly this).  The batched pipeline driver
    # calls ``wrapper.handlers[e.kind](e)`` directly, skipping even the
    # dispatch shim; each handler keeps its own ``calls`` accounting.  The
    # list object never changes identity — the dormant -> active transition
    # mutates it in place, so drivers may cache it once per run.

    def dispatch(self, e: Event) -> List[Event]:
        """The effective state transformer ``f'`` extended with updates."""
        return self.handlers[e.kind](e)

    def _build_handler_table(self) -> List:
        """Kind-indexed handler list (one entry per ``Kind`` value)."""
        if self._dormant:
            return ([self._dormant_data] * _FIRST_UPDATE
                    + [self._activate_on] * (_N_KINDS - _FIRST_UPDATE))
        h: List = [self._active_data] * _FIRST_UPDATE
        h += [None] * (_N_KINDS - _FIRST_UPDATE)
        for k in UPDATE_STARTS:
            h[k] = self._on_update_start
        for k in UPDATE_ENDS:
            h[k] = self._on_update_end
        h[FREEZE] = self._on_freeze
        h[HIDE] = self._on_hide
        h[SHOW] = self._on_show
        return h

    def _activate_on(self, e: Event) -> List[Event]:
        """First update-kind event: leave the dormant fast path for good.

        The transition is lossless because the dormant path maintains the
        invariants the active path expects (live state loaded, its snapshot
        in ``start``/``end``).  The table is mutated *in place* so cached
        references see the active handlers immediately.
        """
        self._dormant = False
        self.handlers[:] = self._build_handler_table()
        obs = self.obs
        if obs is not None:
            obs.on_activated()
        return self.handlers[e.kind](e)

    def _dormant_data(self, e: Event) -> List[Event]:
        # Update-free fast path: no update has ever reached this stage, so
        # there are no regions, no aliases, and the live state is the one
        # loaded in the transformer.  region_mutable / current_region keep
        # their class defaults (False / None).
        self.calls += 1
        t = self.t
        if e.id in self.input_ids:
            t.current_input_root = e.id
            return t.process(e)
        return t.on_other(e)

    def _active_data(self, e: Event) -> List[Event]:
        self.calls += 1
        eid = e.id
        t = self.t
        facet = self.tracked.get(eid)
        if facet is None:
            return t.on_other(e)
        if facet == 0:  # input stream or fixed-sM alias: live state
            loaded = self._loaded
            if loaded is not LIVE:
                # _load(LIVE), inlined; the final resident write is folded
                # into the pre-process() invalidation below.
                r = self._resident
                if r is None:
                    r = t.get_state()
                self.end[loaded] = r
                s = self.end[LIVE]
                if s is not r:
                    t.set_state(s)
                self._loaded = LIVE
            t.region_mutable = False
            t.current_input_root = eid
            t.current_region = None
            self._resident = None
            return t.process(e)
        if facet == 2:  # region with its own state copy
            loaded = self._loaded
            if eid != loaded:
                r = self._resident
                if r is None:
                    r = t.get_state()
                self.end[loaded] = r
                s = self.end[eid]
                if s is not r:
                    t.set_state(s)
                self._loaded = eid
            t.region_mutable = True
            cfg = self._rcfg.get(eid)
            if cfg is None:
                cfg = self._rcfg[eid] = (self._root.get(eid),
                                         self._region_chain(eid),
                                         self._region_info.get(eid))
            t.current_input_root, t.current_region_chain, info = cfg
            t.current_region = eid
            self._resident = None
            out = t.process(e)
            if not out or t.suppress_region_output:
                return []
            if info is None:
                return out
            # _relabel_out, specialized for the dominant shape: exactly
            # one data event emitted while replaying region content.
            if len(out) == 1:
                ev = out[0]
                if ev.kind < _FIRST_UPDATE:
                    inner = self._inner.get(eid)
                    if inner is not None and ev.id in inner:
                        return out
                    if info[2] or ev.id in info[1]:  # translate / own
                        return [ev.relabel(info[0])]
                    return out
            return self._relabel_out(out, eid)
        # facet == 1: RAW / SHARED region content against the live state
        if self._loaded is not LIVE:
            self._load(LIVE)
        t.region_mutable = True
        t.current_input_root = self._root.get(eid)
        t.current_region = eid
        self._resident = None
        return t.process(e)

    def on_end(self) -> List[Event]:
        self._load(LIVE)
        self._resident = None
        return self.t.on_end()

    def _relabel_out(self, out: List[Event], region: int) -> List[Event]:
        """Route events emitted during region processing into the bracket.

        Non-update events the transformer emits on its output stream (or
        into its current output-side container) are relabeled to the
        translated region id; update events *targeting* those ids are
        retargeted the same way, so operator-generated sub-brackets nest
        inside the translated bracket.
        """
        info = self._region_info.get(region)
        if info is None:
            return out
        j_out, own, translate = info
        inner = self._inner.get(region)
        result: List[Event] = []
        append = result.append
        for ev in out:
            if ev.kind >= _FIRST_UPDATE:
                if ev.id in own:
                    # Operator-generated sub-bracket anchored at the
                    # operator's own output: nest it inside the bracket.
                    append(Event(ev.kind, j_out, sub=ev.sub))
                else:
                    append(ev)
                if ev.kind in UPDATE_STARTS and ev.sub is not None:
                    if inner is None:
                        inner = self._inner[region] = set()
                    inner.add(ev.sub)
            elif inner is not None and ev.id in inner:
                # Content of a container the operator opened inside this
                # very bracket (e.g. a predicate's per-element region):
                # already correctly placed.
                append(ev)
            elif translate:
                # Everything else the operator emits while replaying this
                # region is the bracket's content — including events
                # labeled with a container opened in an *earlier* scope
                # (e.g. a replacement for a long-closed element).
                append(ev.relabel(j_out))
            elif ev.id in own:
                append(ev.relabel(j_out))
            else:
                append(ev)
        return result

    # -- update bookkeeping ----------------------------------------------------------

    def _tracks(self, i: int) -> bool:
        return (i in self.input_ids or i in self._regions
                or i in self._alias_live or i in self._raw
                or i in self._shared)

    def _untrack(self, i: int) -> None:
        """Drop ``i`` from the routing map unless some facet still uses it."""
        if not self._tracks(i):
            self.tracked.pop(i, None)

    def _key_of(self, i: int) -> object:
        return LIVE if (i in self.input_ids or i in self._alias_live) else i

    def _order_of(self, i: int) -> _Rat:
        key = self._key_of(i)
        if key is LIVE:
            return _Rat(1)  # the paper: order of sS(stream, i) is 1
        return self.order[key] or _Rat(1)

    def _out_target(self, i: int) -> int:
        """Map an input-space update target to output space."""
        if i in self.input_ids or i in self._alias_live:
            return self.t.bracket_anchor()
        return self._out_region.get(i, self.t.output_id)

    def _on_update_start(self, e: Event) -> List[Event]:
        self.calls += 1
        i, j = e.id, e.sub
        if i not in self.tracked:  # == _tracks(i); one set probe
            return self.t.on_other(e)
        fix = self.ctx.fix
        if e.kind == SM:
            fix.declare_mutable(j)
        else:
            fix.inherit(i, j)
        root = self._root.get(i, i if i in self.input_ids else None)
        if root is not None:
            self._root[j] = root
        policy = (self._policy_cache.get(self._root.get(j))
                  or self._policy(j))
        self._rpolicy[j] = policy
        if policy == UpdatePolicy.RAW:
            self._raw.add(j)
            self.tracked[j] = 1
            self._load(LIVE)
            self.t.current_input_root = root
            self.t.current_region = None
            self._resident = None
            return self.t.process(e)
        if policy == UpdatePolicy.SHARED:
            self._shared.add(j)
            self.tracked[j] = 1
            return []
        if fix.is_fixed(j):
            if e.kind == SM:
                # The consumer ignores updates here: the content is ordinary
                # stream data, processed against the live state, no copies,
                # and the bracket disappears from the output.
                self._alias_live.add(j)
                self.tracked[j] = 0
                if policy in (UpdatePolicy.TRANSPARENT, UpdatePolicy.TEE):
                    return [e]
                return []
            # A fixed sR/sB/sA target means the update is void: its content
            # stays untracked and is ignored downstream.
            self._rpolicy.pop(j, None)
            return []
        self._save()
        if e.kind == SM:
            base = self.end[self._key_of(i)]
            self._order_insert(j, self._next_tick())
        elif e.kind == SA:
            base = self.end[self._key_of(i)]
            self._order_insert(j, self._between_above(self._order_of(i)))
        elif e.kind == SR:
            base = self.start[self._key_of(i)]
            self._order_insert(j, self._order_of(i))
        else:  # SB
            base = self.start[self._key_of(i)]
            self._order_insert(j, self._between_below(self._order_of(i)))
        self.start[j] = base
        self.end[j] = base
        self._regions.add(j)
        self.tracked[j] = 2
        # Positional containment, not temporal nesting: a mutable region
        # lives inside its target; replace/insert content occupies a spot
        # inside the target's own container (brackets may interleave).
        if e.kind in (SM, SR):
            self._parent[j] = i if i in self._regions else None
        else:
            self._parent[j] = (self._parent.get(i)
                               if i in self._regions else None)
        self._bracket_stack.append(j)
        self.peak_states = max(self.peak_states, len(self._regions) + 1)
        # Bracket emission per policy.
        if policy == UpdatePolicy.TRANSPARENT:
            return [e]
        if policy == UpdatePolicy.CONSUME:
            return []
        j_out = self.ctx.fresh_id()
        self._out_region[j] = j_out
        anchor = self.t.bracket_anchor()
        self._anchor_at_open[j] = anchor
        self._region_info[j] = (j_out, (self.t.output_id, anchor),
                                policy == UpdatePolicy.TRANSLATE)
        # _out_target(i), inlined with the anchor reused.
        if i in self.input_ids or i in self._alias_live:
            target = anchor
        else:
            target = self._out_region.get(i, self.t.output_id)
        if e.kind == SM:
            fix.declare_mutable(j_out)
        else:
            fix.inherit(target, j_out)
        translated = Event(e.kind, target, sub=j_out)
        if policy == UpdatePolicy.TEE:
            return [e, translated]
        return [translated]

    def _on_update_end(self, e: Event) -> List[Event]:
        self.calls += 1
        i, j = e.id, e.sub
        if j in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(j)
            self.t.current_region = None
            self._resident = None
            return self.t.process(e)
        if j in self._shared:
            return []
        if j in self._alias_live:
            self._alias_live.discard(j)
            self._untrack(j)
            policy = (self._rpolicy.pop(j, None)
                      or self._policy_cache.get(self._root.get(j))
                      or self._policy(j))
            if policy in (UpdatePolicy.TRANSPARENT, UpdatePolicy.TEE):
                return [e]
            return []
        if j not in self._regions:
            return self.t.on_other(e)
        bs = self._bracket_stack
        if bs:
            # Brackets almost always close LIFO; pop beats a scan+remove.
            if bs[-1] == j:
                bs.pop()
            elif j in bs:
                bs.remove(j)
        self._save()
        out: List[Event] = []
        policy = (self._rpolicy.get(j)
                  or self._policy_cache.get(self._root.get(j))
                  or self._policy(j))
        j_out = self._out_region.get(j)
        if policy == UpdatePolicy.TRANSPARENT:
            out.append(e)
        elif policy == UpdatePolicy.TEE:
            if j_out is not None:
                out.append(Event(e.kind, self._out_target(i), sub=j_out))
            out.append(e)
        elif policy == UpdatePolicy.TRANSLATE and j_out is not None:
            out.append(Event(e.kind, self._out_target(i), sub=j_out))
        kind = e.kind
        key_i = self._key_of(i)
        if key_i not in self.end or j not in self.end:
            # The target's state was already pruned (frozen mid-bracket):
            # nothing to commit.
            self._load_live()
            return out
        # An update completing inside a *hidden* region contributes to
        # that region's shadow (revealed by a later show), never to the
        # live state: hidden content has no visible effect.
        anchor = self._hidden_anchor(key_i)
        if anchor is not None and kind in (EM, ER):
            if kind == ER:
                if key_i == anchor:
                    # Wholesale replacement of the hidden region itself.
                    self.shadow[anchor] = self.end[j]
                else:
                    self.shadow[anchor] = self.t.adjust(
                        self.shadow[anchor], self.end[key_i], self.end[j])
                if key_i is not LIVE:
                    self.end[key_i] = self.end[j]
            else:  # EM nested below a hidden region: plain commit
                self.end[key_i] = self.t.adjust(
                    self.end[key_i], self.start[j], self.end[j]) \
                    if not self.t.inert else (
                        self.end[j] if self.end[key_i] == self.start[j]
                        else self.end[key_i])
            self._load_live()
            return out
        if kind == EM:
            # The paper's "end[id] <- end[uid]", generalized to a delta
            # adjustment: content of sibling regions may have interleaved
            # with this bracket, so the enclosing state absorbs the
            # region's *transition* rather than its absolute snapshot.
            # (Linear case: end-of(i) == start[j], so the adjust laws give
            # exactly end[j] — the paper's rule.)
            old_enc = self.end[key_i]
            becomes = self.t.adjust(old_enc, self.start[j], self.end[j])
            if self.t.inert:
                becomes = self.end[j] if old_enc == self.start[j] \
                    else old_enc
            self.end[key_i] = becomes
            if key_i is LIVE:
                # Make the in-object state current *before* asking the
                # transformer to re-emit its visible value.
                self._load_live()
            if (self.t.suppress_region_output and not self.t.inert
                    and key_i is LIVE and old_enc != becomes):
                out.extend(self.t.on_live_adjusted(old_enc, becomes))
                self._resident = None
        elif kind == ER:
            s1, s2 = self.end[key_i], self.end[j]
            if not self.t.inert:
                out.extend(self.t.on_transition(j, s1, s2))
                self._resident = None
                self._adjust_later(j, s1, s2, out)
            if key_i is not LIVE:
                # The replaced region's own end state is now the
                # replacement's; the live state was already fixed up by
                # the adjustment above.
                self.end[key_i] = self.end[j]
            elif self.t.inert:
                self.end[key_i] = self.end[j]
        else:  # EA / EB
            s1, s2 = self.start[j], self.end[j]
            if not self.t.inert:
                out.extend(self.t.on_transition(j, s1, s2))
                self._resident = None
                self._adjust_later(j, s1, s2, out)
        self._load_live()
        return out

    def _on_hide(self, e: Event) -> List[Event]:
        self.calls += 1
        uid = e.id
        if uid in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(uid)
            self.t.current_region = None
            self._resident = None
            return self.t.process(e)
        if uid in self._shared:
            self._resident = None
            return list(self.t.on_region_hidden(uid))
        if uid not in self._regions or self.ctx.fix.is_fixed(uid):
            return self.t.on_other(e)
        if uid in self.shadow:
            # Already hidden: hide is idempotent (a second hide must not
            # overwrite the shadow with the already-hidden state).
            return self._forward_toggle(e, uid)
        self._save()
        out = self._forward_toggle(e, uid)
        s_end, s_start = self.end[uid], self.start[uid]
        anchor = self._hidden_anchor(self._parent.get(uid))
        if anchor is not None:
            # Hiding inside an already-hidden region only shifts shadows.
            self.shadow[anchor] = self.t.adjust(self.shadow[anchor],
                                                s_end, s_start)
        elif not self.t.inert:
            out.extend(self.t.on_transition(uid, s_end, s_start))
            self._resident = None
            self._adjust_later(uid, s_end, s_start, out)
        self.shadow[uid] = s_end
        self.end[uid] = s_start
        if anchor is None and not self.t.inert:
            out.extend(self.t.on_region_hidden(uid))
            self._resident = None
        self._reload()
        return out

    def _on_show(self, e: Event) -> List[Event]:
        self.calls += 1
        uid = e.id
        if uid in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(uid)
            self.t.current_region = None
            self._resident = None
            return self.t.process(e)
        if uid in self._shared:
            self._resident = None
            return list(self.t.on_region_shown(uid))
        if uid not in self._regions or self.ctx.fix.is_fixed(uid):
            return self.t.on_other(e)
        if uid not in self.shadow:
            return self._forward_toggle(e, uid)  # show without hide: no-op
        self._save()
        out = self._forward_toggle(e, uid)
        s_end, s_shadow = self.end[uid], self.shadow.pop(uid)
        anchor = self._hidden_anchor(self._parent.get(uid))
        if anchor is not None:
            self.shadow[anchor] = self.t.adjust(self.shadow[anchor],
                                                s_end, s_shadow)
        elif not self.t.inert:
            out.extend(self.t.on_transition(uid, s_end, s_shadow))
            self._resident = None
            self._adjust_later(uid, s_end, s_shadow, out)
        self.end[uid] = s_shadow
        if anchor is None and not self.t.inert:
            out.extend(self.t.on_region_shown(uid))
            self._resident = None
        self._reload()
        return out

    def _forward_toggle(self, e: Event, uid: int) -> List[Event]:
        """Forward hide/show/freeze per the region's policy."""
        policy = (self._rpolicy.get(uid)
                  or self._policy_cache.get(self._root.get(uid))
                  or self._policy(uid))
        if policy == UpdatePolicy.CONSUME:
            return []
        if policy == UpdatePolicy.TRANSPARENT:
            return [e]
        j_out = self._out_region.get(uid)
        translated = [] if j_out is None else [Event(e.kind, j_out)]
        if policy == UpdatePolicy.TEE:
            return [e] + translated
        return translated

    def _on_freeze(self, e: Event) -> List[Event]:
        self.calls += 1
        uid = e.id
        self.ctx.fix.freeze(uid)
        if uid in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(uid)
            self.t.current_region = None
            self._raw.discard(uid)
            self._untrack(uid)
            self._root.pop(uid, None)
            self._rpolicy.pop(uid, None)
            return self.t.process(e)
        if uid in self._shared:
            self._shared.discard(uid)
            self._untrack(uid)
            self._root.pop(uid, None)
            self._rpolicy.pop(uid, None)
            return []
        out: List[Event] = []
        if uid in self._regions or uid in self._alias_live:
            if uid in self._frozen_kept:
                # Ablation mode only: the region's state was kept, but a
                # repeated freeze must behave exactly like the reclaiming
                # path (the region is long gone there): plain forward.
                return self.t.on_other(e)
            out = self._forward_toggle(e, uid)
            if not self.t.inert:
                out.extend(self.t.on_region_frozen(uid))
                self._resident = None
            j_out = self._out_region.pop(uid, None)
            if j_out is not None:
                self.ctx.fix.freeze(j_out)
            # Section V: a fixed id's states are removed immediately.
            self._save()
            if self._loaded == uid:
                self._load_live()
            obs = self.obs
            if obs is not None:
                reclaimed = 0
                cells = self.t.state_cells
                for m in (self.start, self.end, self.shadow):
                    s = m.get(uid)
                    if s is not None:
                        reclaimed += cells(s)
                obs.on_freeze(reclaimed)
            if not self._reclaim:
                # Freeze ablation: identical event output and mutability
                # bookkeeping, but the state copies stay resident — the
                # footprint a system without Section V's pruning pays.
                self._frozen_kept.add(uid)
                bs = self._bracket_stack
                if bs:
                    if bs[-1] == uid:
                        bs.pop()
                    elif uid in bs:
                        bs.remove(uid)
                return out
            self._regions.discard(uid)
            self._alias_live.discard(uid)
            self._untrack(uid)
            self.start.pop(uid, None)
            self.end.pop(uid, None)
            self.shadow.pop(uid, None)
            self._order_discard(self.order.pop(uid, None))
            self._root.pop(uid, None)
            self._rcfg.pop(uid, None)
            self._rpolicy.pop(uid, None)
            self._anchor_at_open.pop(uid, None)
            self._region_info.pop(uid, None)
            self._inner.pop(uid, None)
            bs = self._bracket_stack
            if bs:
                if bs[-1] == uid:
                    bs.pop()
                elif uid in bs:
                    bs.remove(uid)
            return out
        return self.t.on_other(e)

    def _reload(self) -> None:
        s = self.end[self._loaded]
        if s is not self._resident:
            self.t.set_state(s)
            self._resident = s

    # -- adjustment --------------------------------------------------------------------

    def _region_chain(self, eid: int) -> tuple:
        # Parent links are assigned once when a bracket opens and never
        # reassigned, so the chain of a region is immutable and cacheable.
        chain = self._chain_cache.get(eid)
        if chain is not None:
            return chain
        parts = []
        k: Optional[int] = eid
        while k is not None:
            parts.append(k)
            k = self._parent.get(k)
        chain = tuple(parts)
        self._chain_cache[eid] = chain
        return chain

    def _hidden_anchor(self, key: object) -> Optional[int]:
        """The nearest positionally-enclosing hidden region (or None)."""
        k = key if key is not LIVE else None
        while k is not None:
            if k in self.shadow:
                return k
            k = self._parent.get(k)
        return None

    def _nearest_open(self, uid: int) -> Optional[int]:
        """The innermost still-open bracket enclosing ``uid`` (None=live)."""
        p = self._parent.get(uid)
        while p is not None and p not in self._bracket_stack:
            p = self._parent.get(p)
        return p

    def _adjust_later(self, uid: int, s1: State, s2: State,
                      out: List[Event]) -> None:
        """The paper's ``adj``, causally scoped.

        An update's delta is visible only within the innermost bracket
        that is still open around it (its accumulated ``end`` state), plus
        the sibling regions inside that bracket that come after the update
        in display order; everything outside receives the delta when that
        bracket itself commits.  When no enclosing bracket is open, this
        degenerates to the paper's flat rule: adjust every later region
        and the live state.
        """
        if s1 == s2:
            return
        enclosing = self._nearest_open(uid)
        pivot = self.order[uid]
        adjust = self.t.adjust
        for k in self._regions:
            if k == uid or k == enclosing:
                continue
            if self._nearest_open(k) != enclosing:
                continue
            o = self.order[k]
            if o is not None and pivot is not None and o <= pivot:
                continue
            self.start[k] = adjust(self.start[k], s1, s2)
            self.end[k] = adjust(self.end[k], s1, s2)
            if k in self.shadow:
                self.shadow[k] = adjust(self.shadow[k], s1, s2)
        if enclosing is None:
            old = self.end[LIVE]
            new = adjust(old, s1, s2)
            if new != old:
                self.end[LIVE] = new
                # Materialize the adjusted live state before the emission
                # hook: transformers re-emit from their in-object fields.
                self._loaded = LIVE
                self.t.set_state(new)
                self._resident = new
                out.extend(self.t.on_live_adjusted(old, new))
                self._resident = None
        else:
            self.end[enclosing] = adjust(self.end[enclosing], s1, s2)
            if self._loaded == enclosing:
                self.t.set_state(self.end[enclosing])
                self._resident = self.end[enclosing]

    # -- order timestamps ------------------------------------------------------------------

    def _next_tick(self) -> _Rat:
        self._tick += 1
        return _Rat(self._tick)

    def _order_insert(self, j: int, o: _Rat) -> _Rat:
        """Record region ``j``'s timestamp in both the map and the mirror."""
        self.order[j] = o
        mirror = self._order_sorted
        # sM timestamps are monotone ticks, so appends dominate; one
        # comparison beats an O(log n) insort of Python-level __lt__ calls.
        if not mirror or not (o < mirror[-1]):
            mirror.append(o)
        else:
            insort(mirror, o)
        return o

    def _order_discard(self, o: Optional[_Rat]) -> None:
        if o is None:
            return
        mirror = self._order_sorted
        if mirror and mirror[-1] == o:  # LIFO discard: freeze after close
            mirror.pop()
            return
        idx = bisect_left(mirror, o)
        if idx < len(mirror) and mirror[idx] == o:
            del mirror[idx]

    def _between_above(self, o: _Rat) -> _Rat:
        """Smallest recorded timestamp above ``o``, halved towards it."""
        mirror = self._order_sorted
        idx = bisect_right(mirror, o)
        if idx < len(mirror):
            return _rat_mid(o, mirror[idx])
        return _Rat(o.n + o.d, o.d)

    def _between_below(self, o: _Rat) -> _Rat:
        """Largest recorded timestamp below ``o``, halved towards it."""
        mirror = self._order_sorted
        idx = bisect_left(mirror, o)
        if idx > 0:
            return _rat_mid(o, mirror[idx - 1])
        return _Rat(o.n - o.d, o.d)

    # -- accounting ----------------------------------------------------------------------------

    def state_cells(self) -> int:
        """Retained state size (cells) across all live copies."""
        self._save()
        total = 0
        for m in (self.start, self.end, self.shadow):
            for state in m.values():
                total += self.t.state_cells(state)
        return total

    def live_regions(self) -> int:
        return len(self._regions)

    def account(self) -> tuple:
        """``(state_cells, live_regions)`` in one call.

        The single accounting walk every consumer shares — pipeline
        totals, per-stage stats, and metrics samples all read state
        through here, so the numbers can never disagree.
        """
        return self.state_cells(), self.live_regions()

    def __repr__(self) -> str:
        return "UpdateWrapper({!r})".format(self.t)
