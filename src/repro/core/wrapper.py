"""The generic update-handling wrapper ``W`` (paper Section IV).

Given a state transformer that understands plain stream data, the wrapper
makes it update-aware without any operator-specific code:

* it keeps one copy of the transformer state per update region
  (``start``/``end``/``shadow`` maps), creating them when an update bracket
  opens inside a tracked stream;
* content events of a region are processed against that region's own state
  copy (necessary so e.g. a counter counts a replacement's content and the
  delta becomes visible at the bracket's end);
* when an update completes (eR/eA/eB) or flips visibility (hide/show), the
  states of all *later* regions — ordered by rational ``order`` timestamps —
  and the live state are fixed up through the transformer's pure
  :meth:`~repro.core.transformer.StateTransformer.adjust` function;
* the mutability analysis of Section V prunes state: regions whose id is
  *fixed* get no state copies at all, and ``freeze`` drops existing ones.

**Update-bracket translation.**  The paper's pseudo-code leaves implicit
how an update travels through a stage whose output is a different virtual
stream: the content a stage emits while processing a region must itself be
bracketed, in the *stage's own output space* ("every top-level element from
e1 has its own substream id").  The wrapper implements this generically via
a per-input-stream :class:`UpdatePolicy`:

* ``TRANSLATE`` (default): re-emit the bracket with a fresh output-side
  region id; events the transformer emits on its output stream while the
  region is loaded are relabeled into that region.  hide/show/freeze are
  forwarded retargeted at the output-side region.
* ``TRANSPARENT``: forward the bracket verbatim (operators like
  concatenation whose output carries the input stream numbers).
* ``CONSUME``: emit no bracket — the stream feeds only the operator's
  state (e.g. a predicate's condition stream); visible effects happen
  through ``on_transition`` (retroactive show/hide) instead.
* ``TEE``: forward the original bracket *and* a translated one (stream
  duplication for predicates and backward axes).

Other deviations from the paper's pseudo-code are listed in DESIGN.md.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional

from ..events.model import (EA, EB, EM, ER, FREEZE, HIDE, SA, SB, SHOW, SM,
                            SR, UPDATE_ENDS, UPDATE_STARTS, Event, freeze as
                            freeze_event, hide as hide_event,
                            matching_end, show as show_event)
from .transformer import State, StateTransformer, UpdatePolicy

#: State-map key for the live (main stream) state.
LIVE = "live"


class UpdateWrapper:
    """Wrap a :class:`StateTransformer`, handling update events generically."""

    def __init__(self, transformer: StateTransformer) -> None:
        self.t = transformer
        self.ctx = transformer.ctx
        self.input_ids = frozenset(transformer.input_ids)
        # Per-region state copies (region id -> state snapshot).
        self.start: Dict[object, State] = {}
        self.end: Dict[object, State] = {}
        self.shadow: Dict[object, State] = {}
        self.order: Dict[object, Optional[Fraction]] = {}
        self.start[LIVE] = transformer.get_state()
        self.end[LIVE] = self.start[LIVE]
        self.order[LIVE] = None  # None = +infinity: always adjusted
        self._regions: set = set()
        self._alias_live: set = set()  # fixed sM regions: plain content
        self._raw: set = set()         # RAW-policy regions: fed to process
        self._shared: set = set()      # SHARED-policy regions: live state
        self._root: Dict[int, int] = {}        # region -> root input stream
        self._out_region: Dict[int, int] = {}  # region -> output-space id
        self._anchor_at_open: Dict[int, int] = {}  # region -> anchor then
        self._inner: Dict[int, set] = {}  # region -> subs opened within it
        self._parent: Dict[int, Optional[int]] = {}  # bracket nesting
        self._bracket_stack: List[int] = []          # open tracked brackets
        self._policy_cache: Dict[int, UpdatePolicy] = {}
        self._loaded: object = LIVE
        self._tick = Fraction(1)
        self.calls = 0
        self.peak_states = 1

    # -- policy ---------------------------------------------------------------

    def _policy(self, region: int) -> UpdatePolicy:
        root = self._root.get(region)
        if root is None:
            return UpdatePolicy.TRANSLATE
        cached = self._policy_cache.get(root)
        if cached is None:
            cached = self.t.update_policy(root)
            self._policy_cache[root] = cached
        return cached

    # -- state residency --------------------------------------------------------

    def _save(self) -> None:
        """Flush the transformer's in-object state into the end map."""
        self.end[self._loaded] = self.t.get_state()

    def _load(self, key: object) -> None:
        if key is self._loaded or key == self._loaded:
            return
        self._save()
        self.t.set_state(self.end[key])
        self._loaded = key

    # -- dispatch -----------------------------------------------------------------

    def dispatch(self, e: Event) -> List[Event]:
        """The effective state transformer ``f'`` extended with updates."""
        self.calls += 1
        kind = e.kind
        if not e.is_update:
            eid = e.id
            if eid in self.input_ids or eid in self._alias_live:
                self._load(LIVE)
                self.t.region_mutable = False
                self.t.current_input_root = eid
                self.t.current_region = None
                return self.t.process(e)
            if eid in self._raw or eid in self._shared:
                self._load(LIVE)
                self.t.region_mutable = True
                self.t.current_input_root = self._root.get(eid)
                self.t.current_region = eid
                return self.t.process(e)
            if eid in self._regions:
                self._load(eid)
                self.t.region_mutable = True
                self.t.current_input_root = self._root.get(eid)
                self.t.current_region = eid
                self.t.current_region_chain = self._region_chain(eid)
                out = self.t.process(e)
                if self.t.suppress_region_output:
                    return []
                return self._relabel_out(out, eid)
            return self.t.on_other(e)
        if kind in UPDATE_STARTS:
            return self._on_update_start(e)
        if kind in UPDATE_ENDS:
            return self._on_update_end(e)
        if kind == HIDE:
            return self._on_hide(e)
        if kind == SHOW:
            return self._on_show(e)
        if kind == FREEZE:
            return self._on_freeze(e)
        return self.t.on_other(e)

    def on_end(self) -> List[Event]:
        self._load(LIVE)
        return self.t.on_end()

    def _relabel_out(self, out: List[Event], region: int) -> List[Event]:
        """Route events emitted during region processing into the bracket.

        Non-update events the transformer emits on its output stream (or
        into its current output-side container) are relabeled to the
        translated region id; update events *targeting* those ids are
        retargeted the same way, so operator-generated sub-brackets nest
        inside the translated bracket.
        """
        j_out = self._out_region.get(region)
        if j_out is None:
            return out
        policy = self._policy(region)
        own = {self.t.output_id,
               self._anchor_at_open.get(region, self.t.output_id)}
        inner = self._inner.setdefault(region, set())
        result: List[Event] = []
        for ev in out:
            if ev.is_update:
                if ev.id in own:
                    # Operator-generated sub-bracket anchored at the
                    # operator's own output: nest it inside the bracket.
                    result.append(Event(ev.kind, j_out, sub=ev.sub))
                else:
                    result.append(ev)
                if ev.kind in UPDATE_STARTS and ev.sub is not None:
                    inner.add(ev.sub)
            elif ev.id in inner:
                # Content of a container the operator opened inside this
                # very bracket (e.g. a predicate's per-element region):
                # already correctly placed.
                result.append(ev)
            elif policy == UpdatePolicy.TRANSLATE:
                # Everything else the operator emits while replaying this
                # region is the bracket's content — including events
                # labeled with a container opened in an *earlier* scope
                # (e.g. a replacement for a long-closed element).
                result.append(ev.relabel(j_out))
            elif ev.id in own:
                result.append(ev.relabel(j_out))
            else:
                result.append(ev)
        return result

    # -- update bookkeeping ----------------------------------------------------------

    def _tracks(self, i: int) -> bool:
        return (i in self.input_ids or i in self._regions
                or i in self._alias_live or i in self._raw
                or i in self._shared)

    def _key_of(self, i: int) -> object:
        return LIVE if (i in self.input_ids or i in self._alias_live) else i

    def _order_of(self, i: int) -> Fraction:
        key = self._key_of(i)
        if key is LIVE:
            return Fraction(1)  # the paper: order of sS(stream, i) is 1
        return self.order[key] or Fraction(1)

    def _out_target(self, i: int) -> int:
        """Map an input-space update target to output space."""
        if i in self.input_ids or i in self._alias_live:
            return self.t.bracket_anchor()
        return self._out_region.get(i, self.t.output_id)

    def _on_update_start(self, e: Event) -> List[Event]:
        i, j = e.id, e.sub
        if not self._tracks(i):
            return self.t.on_other(e)
        fix = self.ctx.fix
        if e.kind == SM:
            fix.declare_mutable(j)
        else:
            fix.inherit(i, j)
        root = self._root.get(i, i if i in self.input_ids else None)
        if root is not None:
            self._root[j] = root
        policy = self._policy(j)
        if policy == UpdatePolicy.RAW:
            self._raw.add(j)
            self._load(LIVE)
            self.t.current_input_root = root
            self.t.current_region = None
            return self.t.process(e)
        if policy == UpdatePolicy.SHARED:
            self._shared.add(j)
            return []
        if fix.is_fixed(j):
            if e.kind == SM:
                # The consumer ignores updates here: the content is ordinary
                # stream data, processed against the live state, no copies,
                # and the bracket disappears from the output.
                self._alias_live.add(j)
                if policy in (UpdatePolicy.TRANSPARENT, UpdatePolicy.TEE):
                    return [e]
                return []
            # A fixed sR/sB/sA target means the update is void: its content
            # stays untracked and is ignored downstream.
            return []
        self._save()
        if e.kind == SM:
            base = self.end[self._key_of(i)]
            self.order[j] = self._next_tick()
        elif e.kind == SA:
            base = self.end[self._key_of(i)]
            self.order[j] = self._between_above(self._order_of(i))
        elif e.kind == SR:
            base = self.start[self._key_of(i)]
            self.order[j] = self._order_of(i)
        else:  # SB
            base = self.start[self._key_of(i)]
            self.order[j] = self._between_below(self._order_of(i))
        self.start[j] = base
        self.end[j] = base
        self._regions.add(j)
        # Positional containment, not temporal nesting: a mutable region
        # lives inside its target; replace/insert content occupies a spot
        # inside the target's own container (brackets may interleave).
        if e.kind in (SM, SR):
            self._parent[j] = i if i in self._regions else None
        else:
            self._parent[j] = (self._parent.get(i)
                               if i in self._regions else None)
        self._bracket_stack.append(j)
        self.peak_states = max(self.peak_states, len(self._regions) + 1)
        # Bracket emission per policy.
        if policy == UpdatePolicy.TRANSPARENT:
            return [e]
        if policy == UpdatePolicy.CONSUME:
            return []
        j_out = self.ctx.fresh_id()
        self._out_region[j] = j_out
        self._anchor_at_open[j] = self.t.bracket_anchor()
        if e.kind == SM:
            fix.declare_mutable(j_out)
        else:
            fix.inherit(self._out_target(i), j_out)
        translated = Event(e.kind, self._out_target(i), sub=j_out)
        if policy == UpdatePolicy.TEE:
            return [e, translated]
        return [translated]

    def _on_update_end(self, e: Event) -> List[Event]:
        i, j = e.id, e.sub
        if j in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(j)
            self.t.current_region = None
            return self.t.process(e)
        if j in self._shared:
            return []
        if j in self._alias_live:
            self._alias_live.discard(j)
            policy = self._policy(j)
            if policy in (UpdatePolicy.TRANSPARENT, UpdatePolicy.TEE):
                return [e]
            return []
        if j not in self._regions:
            return self.t.on_other(e)
        if j in self._bracket_stack:
            self._bracket_stack.remove(j)
        self._save()
        out: List[Event] = []
        policy = self._policy(j)
        j_out = self._out_region.get(j)
        if policy == UpdatePolicy.TRANSPARENT:
            out.append(e)
        elif policy == UpdatePolicy.TEE:
            if j_out is not None:
                out.append(Event(e.kind, self._out_target(i), sub=j_out))
            out.append(e)
        elif policy == UpdatePolicy.TRANSLATE and j_out is not None:
            out.append(Event(e.kind, self._out_target(i), sub=j_out))
        kind = e.kind
        key_i = self._key_of(i)
        if key_i not in self.end or j not in self.end:
            # The target's state was already pruned (frozen mid-bracket):
            # nothing to commit.
            self._loaded = LIVE
            self.t.set_state(self.end[LIVE])
            return out
        # An update completing inside a *hidden* region contributes to
        # that region's shadow (revealed by a later show), never to the
        # live state: hidden content has no visible effect.
        anchor = self._hidden_anchor(key_i)
        if anchor is not None and kind in (EM, ER):
            if kind == ER:
                if key_i == anchor:
                    # Wholesale replacement of the hidden region itself.
                    self.shadow[anchor] = self.end[j]
                else:
                    self.shadow[anchor] = self.t.adjust(
                        self.shadow[anchor], self.end[key_i], self.end[j])
                if key_i is not LIVE:
                    self.end[key_i] = self.end[j]
            else:  # EM nested below a hidden region: plain commit
                self.end[key_i] = self.t.adjust(
                    self.end[key_i], self.start[j], self.end[j]) \
                    if not self.t.inert else (
                        self.end[j] if self.end[key_i] == self.start[j]
                        else self.end[key_i])
            self._loaded = LIVE
            self.t.set_state(self.end[LIVE])
            return out
        if kind == EM:
            # The paper's "end[id] <- end[uid]", generalized to a delta
            # adjustment: content of sibling regions may have interleaved
            # with this bracket, so the enclosing state absorbs the
            # region's *transition* rather than its absolute snapshot.
            # (Linear case: end-of(i) == start[j], so the adjust laws give
            # exactly end[j] — the paper's rule.)
            old_enc = self.end[key_i]
            becomes = self.t.adjust(old_enc, self.start[j], self.end[j])
            if self.t.inert:
                becomes = self.end[j] if old_enc == self.start[j] \
                    else old_enc
            self.end[key_i] = becomes
            if key_i is LIVE:
                # Make the in-object state current *before* asking the
                # transformer to re-emit its visible value.
                self._loaded = LIVE
                self.t.set_state(becomes)
            if (self.t.suppress_region_output and not self.t.inert
                    and key_i is LIVE and old_enc != becomes):
                out.extend(self.t.on_live_adjusted(old_enc, becomes))
        elif kind == ER:
            s1, s2 = self.end[key_i], self.end[j]
            if not self.t.inert:
                out.extend(self.t.on_transition(j, s1, s2))
                self._adjust_later(j, s1, s2, out)
            if key_i is not LIVE:
                # The replaced region's own end state is now the
                # replacement's; the live state was already fixed up by
                # the adjustment above.
                self.end[key_i] = self.end[j]
            elif self.t.inert:
                self.end[key_i] = self.end[j]
        else:  # EA / EB
            s1, s2 = self.start[j], self.end[j]
            if not self.t.inert:
                out.extend(self.t.on_transition(j, s1, s2))
                self._adjust_later(j, s1, s2, out)
        self._loaded = LIVE
        self.t.set_state(self.end[LIVE])
        return out

    def _on_hide(self, e: Event) -> List[Event]:
        uid = e.id
        if uid in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(uid)
            self.t.current_region = None
            return self.t.process(e)
        if uid in self._shared:
            return list(self.t.on_region_hidden(uid))
        if uid not in self._regions or self.ctx.fix.is_fixed(uid):
            return self.t.on_other(e)
        if uid in self.shadow:
            # Already hidden: hide is idempotent (a second hide must not
            # overwrite the shadow with the already-hidden state).
            return self._forward_toggle(e, uid)
        self._save()
        out = self._forward_toggle(e, uid)
        s_end, s_start = self.end[uid], self.start[uid]
        anchor = self._hidden_anchor(self._parent.get(uid))
        if anchor is not None:
            # Hiding inside an already-hidden region only shifts shadows.
            self.shadow[anchor] = self.t.adjust(self.shadow[anchor],
                                                s_end, s_start)
        elif not self.t.inert:
            out.extend(self.t.on_transition(uid, s_end, s_start))
            self._adjust_later(uid, s_end, s_start, out)
        self.shadow[uid] = s_end
        self.end[uid] = s_start
        if anchor is None and not self.t.inert:
            out.extend(self.t.on_region_hidden(uid))
        self._reload()
        return out

    def _on_show(self, e: Event) -> List[Event]:
        uid = e.id
        if uid in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(uid)
            self.t.current_region = None
            return self.t.process(e)
        if uid in self._shared:
            return list(self.t.on_region_shown(uid))
        if uid not in self._regions or self.ctx.fix.is_fixed(uid):
            return self.t.on_other(e)
        if uid not in self.shadow:
            return self._forward_toggle(e, uid)  # show without hide: no-op
        self._save()
        out = self._forward_toggle(e, uid)
        s_end, s_shadow = self.end[uid], self.shadow.pop(uid)
        anchor = self._hidden_anchor(self._parent.get(uid))
        if anchor is not None:
            self.shadow[anchor] = self.t.adjust(self.shadow[anchor],
                                                s_end, s_shadow)
        elif not self.t.inert:
            out.extend(self.t.on_transition(uid, s_end, s_shadow))
            self._adjust_later(uid, s_end, s_shadow, out)
        self.end[uid] = s_shadow
        if anchor is None and not self.t.inert:
            out.extend(self.t.on_region_shown(uid))
        self._reload()
        return out

    def _forward_toggle(self, e: Event, uid: int) -> List[Event]:
        """Forward hide/show/freeze per the region's policy."""
        policy = self._policy(uid)
        if policy == UpdatePolicy.CONSUME:
            return []
        if policy == UpdatePolicy.TRANSPARENT:
            return [e]
        j_out = self._out_region.get(uid)
        translated = [] if j_out is None else [Event(e.kind, j_out)]
        if policy == UpdatePolicy.TEE:
            return [e] + translated
        return translated

    def _on_freeze(self, e: Event) -> List[Event]:
        uid = e.id
        self.ctx.fix.freeze(uid)
        if uid in self._raw:
            self._load(LIVE)
            self.t.current_input_root = self._root.get(uid)
            self.t.current_region = None
            self._raw.discard(uid)
            self._root.pop(uid, None)
            return self.t.process(e)
        if uid in self._shared:
            self._shared.discard(uid)
            self._root.pop(uid, None)
            return []
        out: List[Event] = []
        if uid in self._regions or uid in self._alias_live:
            out = self._forward_toggle(e, uid)
            if not self.t.inert:
                out.extend(self.t.on_region_frozen(uid))
            j_out = self._out_region.pop(uid, None)
            if j_out is not None:
                self.ctx.fix.freeze(j_out)
            # Section V: a fixed id's states are removed immediately.
            self._save()
            if self._loaded == uid:
                self._loaded = LIVE
                self.t.set_state(self.end[LIVE])
            self._regions.discard(uid)
            self._alias_live.discard(uid)
            self.start.pop(uid, None)
            self.end.pop(uid, None)
            self.shadow.pop(uid, None)
            self.order.pop(uid, None)
            self._root.pop(uid, None)
            self._anchor_at_open.pop(uid, None)
            self._inner.pop(uid, None)
            if uid in self._bracket_stack:
                self._bracket_stack.remove(uid)
            return out
        return self.t.on_other(e)

    def _reload(self) -> None:
        self.t.set_state(self.end[self._loaded])

    # -- adjustment --------------------------------------------------------------------

    def _region_chain(self, eid: int) -> tuple:
        chain = []
        k: Optional[int] = eid
        while k is not None:
            chain.append(k)
            k = self._parent.get(k)
        return tuple(chain)

    def _hidden_anchor(self, key: object) -> Optional[int]:
        """The nearest positionally-enclosing hidden region (or None)."""
        k = key if key is not LIVE else None
        while k is not None:
            if k in self.shadow:
                return k
            k = self._parent.get(k)
        return None

    def _nearest_open(self, uid: int) -> Optional[int]:
        """The innermost still-open bracket enclosing ``uid`` (None=live)."""
        p = self._parent.get(uid)
        while p is not None and p not in self._bracket_stack:
            p = self._parent.get(p)
        return p

    def _adjust_later(self, uid: int, s1: State, s2: State,
                      out: List[Event]) -> None:
        """The paper's ``adj``, causally scoped.

        An update's delta is visible only within the innermost bracket
        that is still open around it (its accumulated ``end`` state), plus
        the sibling regions inside that bracket that come after the update
        in display order; everything outside receives the delta when that
        bracket itself commits.  When no enclosing bracket is open, this
        degenerates to the paper's flat rule: adjust every later region
        and the live state.
        """
        if s1 == s2:
            return
        enclosing = self._nearest_open(uid)
        pivot = self.order[uid]
        adjust = self.t.adjust
        for k in self._regions:
            if k == uid or k == enclosing:
                continue
            if self._nearest_open(k) != enclosing:
                continue
            o = self.order[k]
            if o is not None and pivot is not None and o <= pivot:
                continue
            self.start[k] = adjust(self.start[k], s1, s2)
            self.end[k] = adjust(self.end[k], s1, s2)
            if k in self.shadow:
                self.shadow[k] = adjust(self.shadow[k], s1, s2)
        if enclosing is None:
            old = self.end[LIVE]
            new = adjust(old, s1, s2)
            if new != old:
                self.end[LIVE] = new
                # Materialize the adjusted live state before the emission
                # hook: transformers re-emit from their in-object fields.
                self._loaded = LIVE
                self.t.set_state(new)
                out.extend(self.t.on_live_adjusted(old, new))
        else:
            self.end[enclosing] = adjust(self.end[enclosing], s1, s2)
            if self._loaded == enclosing:
                self.t.set_state(self.end[enclosing])

    # -- order timestamps ------------------------------------------------------------------

    def _next_tick(self) -> Fraction:
        self._tick += 1
        return self._tick

    def _between_above(self, o: Fraction) -> Fraction:
        higher = [v for v in self.order.values()
                  if v is not None and v > o]
        return (o + min(higher)) / 2 if higher else o + 1

    def _between_below(self, o: Fraction) -> Fraction:
        lower = [v for v in self.order.values()
                 if v is not None and v < o]
        return (o + max(lower)) / 2 if lower else o - 1

    # -- accounting ----------------------------------------------------------------------------

    def state_cells(self) -> int:
        """Retained state size (cells) across all live copies."""
        self._save()
        total = 0
        for m in (self.start, self.end, self.shadow):
            for state in m.values():
                total += self.t.state_cells(state)
        return total

    def live_regions(self) -> int:
        return len(self._regions)

    def __repr__(self) -> str:
        return "UpdateWrapper({!r})".format(self.t)
