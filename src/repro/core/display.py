"""The query result display: the end of every pipeline.

The display is the one component the paper exempts from the generic
wrapper: it has explicit code for every event kind, applying updates to
the displayed text — removing, inserting, and replacing portions of the
answer as retroactive updates arrive.  Here the displayed document is a
:class:`~repro.core.regions.RegionTree`; snapshots can be taken at any time
(the continuous display the introduction describes), and the final snapshot
is the query answer.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..events.model import Event
from ..xmlio.writer import write_events
from .regions import RegionTree


class Display:
    """Materializes the result stream, supporting continuous snapshots.

    Args:
        result_id: stream number of the query's final output.
        on_change: optional callback invoked with (event, display) after
            every consumed event — used by examples to show the display
            evolving (books moving, counters being replaced, ...).
        track_snapshots: when True, record a text snapshot after every
            event that changed the rendering (memory-heavy; for tests
            and small demos only).
    """

    def __init__(self, result_id: int,
                 on_change: Optional[Callable[[Event, "Display"],
                                              None]] = None,
                 track_snapshots: bool = False) -> None:
        self.result_id = result_id
        self.tree = RegionTree(result_ids=[result_id])
        self.on_change = on_change
        self.track_snapshots = track_snapshots
        self.snapshots: List[str] = []
        self.events_seen = 0
        self.peak_regions = 0
        self.peak_events = 0
        self._text_cache: Optional[str] = None

    def process(self, e: Event) -> None:
        self.events_seen += 1
        self.tree.process(e)
        self._text_cache = None
        if self.track_snapshots:
            text = self.text()
            if not self.snapshots or self.snapshots[-1] != text:
                self.snapshots.append(text)
        if self.on_change is not None:
            self.on_change(e, self)
        if self.events_seen % 256 == 0:
            self._sample_peaks()

    def finish(self) -> None:
        self._sample_peaks()

    def _sample_peaks(self) -> None:
        stats = self.tree.stats()
        self.peak_regions = max(self.peak_regions, stats["regions"])
        self.peak_events = max(self.peak_events, stats["events"])

    # -- snapshots -------------------------------------------------------------

    def events(self) -> List[Event]:
        """The plain event sequence currently displayed."""
        return self.tree.flatten()

    def text(self) -> str:
        """The currently displayed answer as XML/text.

        Cached between events: continuous-mode consumers poll ``text()``
        after every fed event, and most events do not reach the display —
        only :meth:`process` invalidates, so idle polls cost a attribute
        check instead of a full flatten + render.
        """
        if self._text_cache is None:
            self._text_cache = write_events(self.events())
        return self._text_cache

    def stats(self) -> dict:
        s = self.tree.stats()
        s["peak_regions"] = max(self.peak_regions, s["regions"])
        s["peak_events"] = max(self.peak_events, s["events"])
        return s

    def __repr__(self) -> str:
        return "Display(result_id={}, {} events seen)".format(
            self.result_id, self.events_seen)
