"""Push-based pipeline plumbing (paper Section II).

A query is a chain of stages; every stage is a
:class:`~repro.core.transformer.StateTransformer` wrapped by the generic
:class:`~repro.core.wrapper.UpdateWrapper`.  The global event stream is
pushed through the chain one event at a time; each stage may emit zero or
more events for the next stage.  The paper's ``Filter`` class with its
``dispatch`` method is provided for fidelity; :class:`Pipeline` is the
iterative driver the engine uses (no recursion, cheap accounting).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from ..events.model import Event
from .transformer import Context, StateTransformer
from .wrapper import UpdateWrapper


class Filter:
    """The paper's push-based filter: dispatches events to ``next``."""

    def __init__(self, transformer: StateTransformer,
                 next: Optional["Filter"] = None) -> None:
        self.wrapper = UpdateWrapper(transformer)
        self.next = next

    def dispatch(self, e: Event) -> None:
        for a in self.wrapper.dispatch(e):
            if self.next is not None:
                self.next.dispatch(a)

    def finish(self) -> None:
        for a in self.wrapper.on_end():
            if self.next is not None:
                self.next.dispatch(a)
        if self.next is not None:
            self.next.finish()


class SinkFilter(Filter):
    """Chain terminator that hands events to a callable sink."""

    def __init__(self, sink: Callable[[Event], None]) -> None:
        self.sink = sink
        self.next = None

    def dispatch(self, e: Event) -> None:
        self.sink(e)

    def finish(self) -> None:
        pass


def build_filter_chain(transformers: Sequence[StateTransformer],
                       sink: Callable[[Event], None]) -> Filter:
    """Link transformers into the paper's Filter chain, ending at ``sink``."""
    head: Filter = SinkFilter(sink)
    for t in reversed(transformers):
        head = Filter(t, head)
    return head


class Pipeline:
    """Iterative pipeline driver with per-stage accounting.

    Args:
        ctx: shared context (id allocator, fix map).
        stages: the transformers, source side first.
        sink: an object with ``process(event)`` (e.g. a Display or a
            Collector); events surviving the last stage land there.
    """

    def __init__(self, ctx: Context, stages: Sequence[StateTransformer],
                 sink) -> None:
        self.ctx = ctx
        self.wrappers: List[UpdateWrapper] = [UpdateWrapper(t)
                                              for t in stages]
        self.sink = sink
        self._finished = False

    def feed(self, e: Event) -> None:
        """Push one source event through every stage into the sink.

        Propagation is depth-first, like the paper's ``Filter.dispatch``:
        each event a stage emits traverses the *entire* rest of the chain
        before the stage's next emitted event.  This ordering is
        semantically significant — the global mutability map means a
        ``freeze`` must not overtake the ``hide`` emitted just before it.
        """
        self._dispatch(0, e)

    def _dispatch(self, idx: int, e: Event) -> None:
        wrappers = self.wrappers
        if idx == len(wrappers):
            self.sink.process(e)
            return
        nxt = idx + 1
        for out in wrappers[idx].dispatch(e):
            self._dispatch(nxt, out)

    def feed_all(self, events: Iterable[Event]) -> None:
        for e in events:
            self._dispatch(0, e)

    def finish(self) -> None:
        """Flush every stage's ``on_end`` through the rest of the chain."""
        if self._finished:
            return
        self._finished = True
        for idx, w in enumerate(self.wrappers):
            for ev in w.on_end():
                self._dispatch(idx + 1, ev)
        finish = getattr(self.sink, "finish", None)
        if finish is not None:
            finish()

    def run(self, events: Iterable[Event]):
        """Feed a complete stream, flush, and return the sink."""
        self.feed_all(events)
        self.finish()
        return self.sink

    # -- accounting ----------------------------------------------------------

    def total_calls(self) -> int:
        """Total state-transformer dispatches (the paper's ``events``)."""
        return sum(w.calls for w in self.wrappers)

    def state_cells(self) -> int:
        """Retained transformer-state cells across all stages."""
        return sum(w.state_cells() for w in self.wrappers)

    def live_regions(self) -> int:
        return sum(w.live_regions() for w in self.wrappers)


class Collector:
    """A sink that records the raw output event stream."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def process(self, e: Event) -> None:
        self.events.append(e)


def run_stages(ctx: Context, stages: Sequence[StateTransformer],
               events: Iterable[Event]) -> List[Event]:
    """Run events through stages (with update wrappers); return raw output."""
    collector = Collector()
    Pipeline(ctx, stages, collector).run(events)
    return collector.events
