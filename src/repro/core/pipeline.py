"""Push-based pipeline plumbing (paper Section II).

A query is a chain of stages; every stage is a
:class:`~repro.core.transformer.StateTransformer` wrapped by the generic
:class:`~repro.core.wrapper.UpdateWrapper`.  The global event stream is
pushed through the chain one event at a time; each stage may emit zero or
more events for the next stage.  The paper's ``Filter`` class with its
``dispatch`` method is provided for fidelity; :class:`Pipeline` is the
iterative driver the engine uses (no recursion, cheap accounting).
"""

from __future__ import annotations

from time import perf_counter_ns as _perf_ns
from typing import Callable, Iterable, List, Optional, Sequence

from ..events.model import FREEZE, UPDATE_STARTS, Event
from .transformer import Context, StateTransformer
from .wrapper import _FIRST_UPDATE, UpdateWrapper

_FREEZE = int(FREEZE)
_UPDATE_START_KINDS = frozenset(int(k) for k in UPDATE_STARTS)


class Filter:
    """The paper's push-based filter: dispatches events to ``next``."""

    def __init__(self, transformer: StateTransformer,
                 next: Optional["Filter"] = None) -> None:
        self.wrapper = UpdateWrapper(transformer)
        self.next = next

    def dispatch(self, e: Event) -> None:
        for a in self.wrapper.dispatch(e):
            if self.next is not None:
                self.next.dispatch(a)

    def finish(self) -> None:
        for a in self.wrapper.on_end():
            if self.next is not None:
                self.next.dispatch(a)
        if self.next is not None:
            self.next.finish()


class SinkFilter(Filter):
    """Chain terminator that hands events to a callable sink."""

    def __init__(self, sink: Callable[[Event], None]) -> None:
        self.sink = sink
        self.next = None

    def dispatch(self, e: Event) -> None:
        self.sink(e)

    def finish(self) -> None:
        pass


def build_filter_chain(transformers: Sequence[StateTransformer],
                       sink: Callable[[Event], None]) -> Filter:
    """Link transformers into the paper's Filter chain, ending at ``sink``."""
    head: Filter = SinkFilter(sink)
    for t in reversed(transformers):
        head = Filter(t, head)
    return head


class Pipeline:
    """Iterative pipeline driver with per-stage accounting.

    Args:
        ctx: shared context (id allocator, fix map).
        stages: the transformers, source side first.
        sink: an object with ``process(event)`` (e.g. a Display or a
            Collector); events surviving the last stage land there.
        always_active: disable the wrappers' update-free fast path (every
            stage pays full region bookkeeping from the first event); used
            by differential tests and ablations.
        sanitize: interpose a
            :class:`~repro.analysis.sanitize.BoundaryChecker` at every
            stage boundary (source -> stage 0, stage i -> stage i+1,
            last stage -> sink) validating the inter-stage event
            protocol; any violation raises
            :class:`~repro.events.errors.ProtocolViolation`.  Disables
            the routing fast path so every boundary sees its full
            stream.
        recorder: an optional :class:`~repro.obs.MetricsRecorder`.  The
            disabled path costs exactly one ``is None`` test per batch:
            with no recorder the original drain runs untouched; with one
            the instrumented twin (:meth:`_drain_observed`) runs
            instead.  Recording never changes the output stream, the
            routing decisions, or the per-stage call counts.
        reclaim_on_freeze: Section V state reclamation (default on).
            ``False`` is the bench memory ablation: freezes forward and
            fix the mutability map as usual but state copies persist.
        fusion: an optional
            :class:`~repro.compile.fusion.FusionPlan`.  Runs of
            streaming stages then execute through generated closures
            (one call per fused segment per event) instead of the
            per-stage drain; byte- and call-identical to the
            interpreted path by construction.  Silently ignored — the
            pipeline stays fully interpreted — whenever any observer
            needs the per-stage event stream: sanitize (boundary
            checkers interpose at every stage boundary), a recorder
            (per-stage counters), or always-active mode (reference
            accounting, routing off).
    """

    def __init__(self, ctx: Context, stages: Sequence[StateTransformer],
                 sink, always_active: bool = False,
                 sanitize: bool = False, recorder=None,
                 reclaim_on_freeze: bool = True, fusion=None) -> None:
        self.ctx = ctx
        self.wrappers: List[UpdateWrapper] = [
            UpdateWrapper(t, always_active=always_active,
                          reclaim_on_freeze=reclaim_on_freeze)
            for t in stages]
        self.sink = sink
        # Per-stage kind-indexed handler tables, captured once: the batched
        # driver calls ``tables[idx][e.kind](e)`` instead of re-resolving
        # wrapper attributes per event.  The table objects have fixed
        # identity — the dormant -> active transition mutates them in
        # place — so caching here is safe for the pipeline's lifetime.
        self._tables = [w.handlers for w in self.wrappers]
        # Per-stage routing sets (live views, mutated by the wrappers as
        # regions open and close): a data event whose id is not in a
        # stage's set would be passed through verbatim by that stage, so
        # the batched driver skips the dispatch entirely.  Routing is off
        # in always-active mode (per-stage call counts must match the
        # reference driver) and when any stage customizes on_other.
        if not always_active and all(t.passes_foreign for t in stages):
            self._routes = [w.tracked for w in self.wrappers]
        else:
            self._routes = None
        if sanitize:
            # Local import: repro.analysis depends on the compiler, which
            # depends on this module.
            from ..analysis.sanitize import boundary_checkers
            self._checkers: Optional[list] = boundary_checkers(stages, sink)
            # Routing would skip boundaries for untracked events; the
            # checkers need the complete stream at every boundary.  The
            # one global side effect routing performs — the fix-map write
            # of freeze — moves into the checker feed path instead.
            self._routes = None
        else:
            self._checkers = None
        self._recorder = recorder
        if recorder is not None:
            recorder.attach(self.wrappers, stages)
        self._finished = False
        self._fusion_plan = None
        self._segments = None
        self._drive = None
        self._fast_seg = None
        self._fast_emit = None
        if (fusion is not None and getattr(fusion, "fused", False)
                and self._routes is not None and self._checkers is None
                and recorder is None):
            self._fusion_plan = fusion
            self._build_drive()

    def _build_drive(self) -> None:
        """Assemble the fused per-event driver from ``self._fusion_plan``.

        The driver is a continuation chain, sink side first: each fused
        segment's generated closure hands every exit event to the next
        unit's drive *as it is produced* (stages allocate fresh stream
        ids on the data path, so an exit must traverse the whole rest
        of the chain before its segment computes the next exit — the
        depth-first ordering the interpreter's LIFO stack provides).
        Interpreted units (blocking stages, single-stage gaps) get a
        closure replicating one iteration of :meth:`_drain`'s routing
        block.  Only built when routing is on, sanitize is off, and no
        recorder is attached — the states in which :meth:`_drain` would
        perform exactly these steps.
        """
        # Local import: repro.compile depends on core modules.
        from ..compile.fusion import MAX_SEGMENT, FusedSegment
        # The generated driver spans the *entire* stage list: the inlined
        # per-level routing block is exactly one _drain iteration for any
        # wrapped stage (the wrapper's handler table has the same shape
        # whether the transformer streams or buffers), so blocking stages
        # ride along as active-flavor levels instead of paying a closure
        # frame per event at every partition gap.  The fusion partition
        # still decides which levels may use the dormant fast path.
        specs = self._fusion_plan.segments
        flags: List[bool] = []
        for spec in specs:
            if spec.fused:
                flags.extend(spec.dormant)
            else:
                flags.extend([False] * (spec.end - spec.start))
        n = len(self.wrappers)
        # One generated closure per chunk of at most MAX_SEGMENT stages
        # (bounds codegen size); chunks chain sink-first so each exit
        # crosses the whole remaining pipeline before its chunk computes
        # the next exit — the depth-first order the interpreter's LIFO
        # stack provides, which the id allocator depends on.
        bounds = list(range(0, n, MAX_SEGMENT)) + [n]
        segments = []
        emit = self.sink.process
        for start, end in reversed(list(zip(bounds, bounds[1:]))):
            seg = FusedSegment(self.wrappers[start:end], start,
                               flags[start:end], self.ctx)
            segments.append(seg)
            seg_emit = emit

            def chunk_drive(ev, _seg=seg, _emit=seg_emit):
                # Re-read _impl per event: a deopt mid-batch swaps it.
                _seg._impl(ev, _emit)
            emit = chunk_drive
        segments.reverse()
        self._segments = segments
        self._drive = emit
        # feed_batch runs the first chunk's in-frame source loop and
        # hands its exits to the rest of the chain (the sink directly in
        # the common single-chunk case): no wrapper closure per source
        # event anywhere.
        self._fast_seg = segments[0]
        self._fast_emit = seg_emit

    @property
    def fused(self) -> bool:
        return self._drive is not None

    def rebind_fused(self) -> None:
        """Regenerate the fused driver after a transformer was patched.

        Fused segments capture each stage's bound ``process`` at codegen
        time, so in-place patches (fault injection) are invisible until
        the driver is rebuilt.  Call before any events are fed — a
        rebuild resets per-segment dormancy to the plan's static flags.
        No-op on interpreted pipelines.
        """
        if self._fusion_plan is not None:
            self._build_drive()

    def fusion_info(self) -> Optional[dict]:
        """Fusion introspection: segment layout and deopt counters."""
        if self._fusion_plan is None or self._segments is None:
            return None
        return {
            "units": len(self._fusion_plan.segments),
            "stages": len(self.wrappers),
            "segments": [seg.describe() for seg in self._segments],
            "deopts": sum(seg.deopts for seg in self._segments),
        }

    def feed(self, e: Event) -> None:
        """Push one source event through every stage into the sink.

        Propagation is depth-first, like the paper's ``Filter.dispatch``:
        each event a stage emits traverses the *entire* rest of the chain
        before the stage's next emitted event.  This ordering is
        semantically significant — the global mutability map means a
        ``freeze`` must not overtake the ``hide`` emitted just before it.

        This recursive form is the reference implementation;
        :meth:`feed_batch` is the equivalent flattened driver.
        """
        if self._recorder is not None:
            self._drain_observed(0, (e,))
            return
        if self._drive is not None:
            self._drive(e)
            return
        self._dispatch(0, e)

    def _dispatch(self, idx: int, e: Event) -> None:
        checkers = self._checkers
        if checkers is not None:
            if e.kind == _FREEZE:
                self.ctx.fix.freeze(e.id)
            checkers[idx].feed(e)
        wrappers = self.wrappers
        if idx == len(wrappers):
            self.sink.process(e)
            return
        nxt = idx + 1
        for out in wrappers[idx].dispatch(e):
            self._dispatch(nxt, out)

    def feed_batch(self, events: Iterable[Event]) -> None:
        """Push a batch of source events through the chain iteratively.

        Equivalent to ``for e in events: self.feed(e)`` but flattens the
        recursive dispatch into an explicit work-list loop: pending
        (stage, event) pairs live on a LIFO stack, which reproduces the
        depth-first ordering invariant documented in :meth:`feed` exactly
        — an emitted event traverses the whole rest of the chain before
        its siblings, so a ``freeze`` can never overtake the ``hide``
        emitted just before it.
        """
        if self._recorder is not None:
            self._drain_observed(0, events)
            return
        fast = self._fast_seg
        if fast is not None:
            # The first chunk's source-event loop runs inside the
            # generated frame (exits cross the rest of the chain via
            # _fast_emit — the sink itself in the common single-chunk
            # case); a mid-batch deopt hands the rest of the iterator
            # to the per-event resume path (see FusedSegment._resume).
            fast._impl_batch(events, self._fast_emit)
            return
        drive = self._drive
        if drive is not None:
            for e in events:
                drive(e)
            return
        self._drain(0, events)

    def _drain(self, start_idx: int, events: Iterable[Event]) -> None:
        tables = self._tables
        routes = self._routes
        checkers = self._checkers
        n = len(tables)
        sink_process = self.sink.process
        fix_freeze = self.ctx.fix.freeze
        stack: List[tuple] = []
        push = stack.append
        pop = stack.pop
        for e in events:
            idx = start_idx
            ev = e
            while True:
                kind = ev.kind
                if checkers is not None:
                    if kind == _FREEZE:
                        fix_freeze(ev.id)
                    checkers[idx].feed(ev)
                if routes is not None:
                    # Routing: skip every stage that would pass the event
                    # through unchanged.  Data events and update starts /
                    # freeze / hide / show are keyed by the event id; a
                    # bracket end is keyed by the substream it closes (the
                    # id a tracking stage registered at the start).  A
                    # wrapper that tracks none of an update's ids has no
                    # local effect — the single global side effect, the
                    # fix-map write of freeze, is applied here once (it is
                    # idempotent, so tracking stages re-applying it is
                    # harmless).  Wrappers whose sU handler would register
                    # state always have the target id in their route map,
                    # so they are never skipped.
                    if kind < _FIRST_UPDATE:
                        key = ev.id
                    elif kind >= _FREEZE:
                        if kind == _FREEZE:
                            fix_freeze(ev.id)
                        key = ev.id
                    elif kind & 1:  # sM/sR/sB/sA: odd Kind values
                        key = ev.id
                    else:           # eM/eR/eB/eA
                        key = ev.sub
                    while idx < n and key not in routes[idx]:
                        idx += 1
                if idx < n:
                    out = tables[idx][kind](ev)
                    m = len(out)
                    if m:
                        idx += 1
                        if m > 1:
                            # Later siblings wait on the stack (reverse
                            # order, LIFO) while the first output runs
                            # the rest of the chain.
                            i = m - 1
                            while i > 0:
                                push((idx, out[i]))
                                i -= 1
                        ev = out[0]
                        continue
                else:
                    sink_process(ev)
                if not stack:
                    break
                idx, ev = pop()

    def _drain_observed(self, start_idx: int,
                        events: Iterable[Event]) -> None:
        """Instrumented twin of :meth:`_drain` (telemetry enabled).

        Identical control flow — routing, checkers, the LIFO stack, the
        depth-first ordering invariant — plus per-stage event counting,
        periodic footprint sampling (every ``sample_interval`` source
        events), and optional update-provenance hops.  Kept as a
        separate method so the unobserved hot path carries zero
        telemetry cost; the differential tests hold the two drains
        byte- and call-identical.
        """
        rec = self._recorder
        stage_ms = rec.stages
        sink_counts = rec.sink_counts
        trace = rec.trace
        flight = rec.flight
        hists = rec.histograms
        hist_update = hists["update_latency"]
        tables = self._tables
        routes = self._routes
        checkers = self._checkers
        n = len(tables)
        sink_process = self.sink.process
        fix_freeze = self.ctx.fix.freeze
        counting_source = start_idx == 0
        # Latency clocks ride source batches only: on_end flushes from
        # finish() (start_idx > 0) are not drain observations, which
        # keeps observation counts deterministic — the sharded
        # differential holds merged counts equal to single-process.
        t_batch = _perf_ns() if counting_source else 0
        t_update = 0
        stack: List[tuple] = []
        push = stack.append
        pop = stack.pop
        for e in events:
            if counting_source:
                if flight is not None:
                    flight.note(e)
                if rec.count_source():
                    rec.sample_now()
                # End-to-end update latency: propagation is depth-first,
                # so by the time the drain returns to the source loop
                # every display delta of this update start has landed.
                t_update = (_perf_ns()
                            if e.kind in _UPDATE_START_KINDS else 0)
            idx = start_idx
            ev = e
            while True:
                kind = ev.kind
                if checkers is not None:
                    if kind == _FREEZE:
                        fix_freeze(ev.id)
                    checkers[idx].feed(ev)
                if routes is not None:
                    if kind < _FIRST_UPDATE:
                        key = ev.id
                    elif kind >= _FREEZE:
                        if kind == _FREEZE:
                            fix_freeze(ev.id)
                        key = ev.id
                    elif kind & 1:
                        key = ev.id
                    else:
                        key = ev.sub
                    while idx < n and key not in routes[idx]:
                        idx += 1
                if idx < n:
                    sm = stage_ms[idx]
                    sm.in_counts[kind] += 1
                    is_start = kind in _UPDATE_START_KINDS
                    if trace is not None and is_start:
                        trace.record(ev.sub, kind, idx, "enter")
                    out = tables[idx][kind](ev)
                    m = len(out)
                    if m:
                        out_counts = sm.out_counts
                        for o in out:
                            out_counts[o.kind] += 1
                        if trace is not None and is_start:
                            sub = ev.sub
                            for o in out:
                                if (o.kind in _UPDATE_START_KINDS
                                        and o.sub != sub):
                                    trace.record(sub, kind, idx,
                                                 "translate",
                                                 to_region=o.sub)
                        idx += 1
                        if m > 1:
                            i = m - 1
                            while i > 0:
                                push((idx, out[i]))
                                i -= 1
                        ev = out[0]
                        continue
                else:
                    sink_counts[kind] += 1
                    if trace is not None and kind in _UPDATE_START_KINDS:
                        trace.record(ev.sub, kind, -1, "emit")
                    sink_process(ev)
                if not stack:
                    break
                idx, ev = pop()
            if t_update:
                hist_update.record(_perf_ns() - t_update)
                t_update = 0
        if counting_source:
            hists["drain_batch"].record(_perf_ns() - t_batch)

    def feed_all(self, events: Iterable[Event]) -> None:
        self.feed_batch(events)

    def finish(self) -> None:
        """Flush every stage's ``on_end`` through the rest of the chain."""
        if self._finished:
            return
        self._finished = True
        drain = (self._drain if self._recorder is None
                 else self._drain_observed)
        for idx, w in enumerate(self.wrappers):
            drain(idx + 1, w.on_end())
        finish = getattr(self.sink, "finish", None)
        if finish is not None:
            finish()
        if self._checkers is not None:
            for checker in self._checkers:
                checker.finish()
        if self._recorder is not None:
            # Final footprint sample: end-of-stream state (post on_end).
            self._recorder.sample_now()

    def run(self, events: Iterable[Event]):
        """Feed a complete stream, flush, and return the sink."""
        self.feed_all(events)
        self.finish()
        return self.sink

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> bytes:
        """Snapshot the pipeline's complete mid-stream state.

        Everything the next event's processing depends on is captured in
        one versioned envelope (see :mod:`repro.fault.checkpoint`): the
        shared context (id allocator, fix map), every stage wrapper with
        its transformer and region tables, the sink (display buffers
        included), and the boundary checkers when sanitizing.  Restoring
        the blob into a freshly built pipeline for the same plan and
        feeding the remaining stream produces byte-identical output to
        an uninterrupted run (``tests/test_checkpoint.py``).
        """
        from ..fault.checkpoint import encode_checkpoint
        return encode_checkpoint("pipeline", self.checkpoint_schema(),
                                 self.checkpoint_state())

    def checkpoint_schema(self) -> dict:
        """Structural identity a restore target must match."""
        return {
            "stages": [type(w.t).__name__ for w in self.wrappers],
            "sink": type(self.sink).__name__,
        }

    def checkpoint_state(self) -> dict:
        """The live state graph; callers embed it in their own envelope.

        :class:`~repro.xquery.engine.QueryRun` pickles this dict together
        with its own extras in ONE pickle so cross-references (the display
        *is* the sink) survive the round trip via pickle memoization.
        """
        return {
            "ctx": self.ctx,
            "wrappers": self.wrappers,
            "sink": self.sink,
            "checkers": self._checkers,
            "routing": self._routes is not None,
            "finished": self._finished,
            # The partition only (plain data).  Generated closures are
            # rebuilt against the restored wrappers' current dormancy.
            "fusion": self._fusion_plan,
        }

    def restore(self, blob: bytes) -> "Pipeline":
        """Adopt a :meth:`checkpoint` snapshot, replacing current state.

        The receiving pipeline must be structurally compatible — same
        stage transformer classes in the same order, same sink class —
        which a fresh compile of the same query guarantees (compilation
        is deterministic; stream numbers are allocated identically).
        Raises :class:`~repro.fault.checkpoint.CheckpointError` on any
        format or schema mismatch.  A recorder attached to this pipeline
        is re-attached to the restored wrappers; its counters cover the
        post-restore tail only.
        """
        from ..fault.checkpoint import decode_checkpoint, require_schema
        schema, state = decode_checkpoint(blob, "pipeline")
        require_schema(schema, self.checkpoint_schema())
        self.apply_checkpoint_state(state)
        return self

    def apply_checkpoint_state(self, state: dict) -> None:
        """Adopt an already-validated :meth:`checkpoint_state` dict."""
        self.ctx = state["ctx"]
        self.wrappers = state["wrappers"]
        self.sink = state["sink"]
        self._tables = [w.handlers for w in self.wrappers]
        self._checkers = state["checkers"]
        if state["routing"] and self._checkers is None:
            self._routes = [w.tracked for w in self.wrappers]
        else:
            self._routes = None
        self._finished = state["finished"]
        if self._recorder is not None:
            self._recorder.attach(self.wrappers,
                                  [w.t for w in self.wrappers])
        else:
            for w in self.wrappers:
                w.obs = None
        self._fusion_plan = state.get("fusion")
        self._segments = None
        self._drive = None
        self._fast_seg = None
        self._fast_emit = None
        if (self._fusion_plan is not None and self._routes is not None
                and self._checkers is None and self._recorder is None):
            self._build_drive()

    def __getstate__(self) -> dict:
        # Strip the generated driver chain (closures do not pickle);
        # __setstate__ regenerates it from the stored fusion plan.
        state = self.__dict__.copy()
        state["_segments"] = None
        state["_drive"] = None
        state["_fast_seg"] = None
        state["_fast_emit"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if (self._fusion_plan is not None and self._routes is not None
                and self._checkers is None and self._recorder is None):
            self._build_drive()

    # -- accounting ----------------------------------------------------------

    def total_calls(self) -> int:
        """Total state-transformer dispatches (the paper's ``events``)."""
        return sum(w.calls for w in self.wrappers)

    def stage_accounts(self) -> List[dict]:
        """Per-stage accounting: one dict per stage, source side first.

        The single source of truth for state accounting —
        :meth:`state_cells` and :meth:`live_regions` are sums over this
        list, and the telemetry layer's footprint samples use the same
        underlying :meth:`~repro.core.wrapper.UpdateWrapper.account`
        walk, so every observer agrees on the numbers.
        """
        from ..obs.recorder import stage_identities
        idents = stage_identities([w.t for w in self.wrappers])
        accounts = []
        for ident, w in zip(idents, self.wrappers):
            cells, regions = w.account()
            accounts.append({
                "index": ident.index,
                "label": ident.label,
                "calls": w.calls,
                "state_cells": cells,
                "live_regions": regions,
            })
        return accounts

    def state_cells(self) -> int:
        """Retained transformer-state cells across all stages."""
        return sum(a["state_cells"] for a in self.stage_accounts())

    def live_regions(self) -> int:
        return sum(a["live_regions"] for a in self.stage_accounts())


class Collector:
    """A sink that records the raw output event stream."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def process(self, e: Event) -> None:
        self.events.append(e)


def run_stages(ctx: Context, stages: Sequence[StateTransformer],
               events: Iterable[Event]) -> List[Event]:
    """Run events through stages (with update wrappers); return raw output."""
    collector = Collector()
    Pipeline(ctx, stages, collector).run(events)
    return collector.events
