"""State transformers: the unit of query evaluation (paper Section II).

A pipeline stage is a tuple ``(S, s, z, i : f)`` — a state type, a current
state, an initial state, and a state transformer ``f : E x S -> E* x S``
attached to stream number ``i`` (or to several streams for binary
operations).  As in the paper, we code ``f`` as a *state modifier*
``F : E -> E*`` that destructively updates the state; the generic update
wrapper (:mod:`repro.core.wrapper`) clones the state when update regions
require it, via :meth:`StateTransformer.get_state` /
:meth:`StateTransformer.set_state`.

A transformer is **inert** when ``f*`` restores the state across any
well-formed input sequence; inert transformers need no state adjustment
(``adjust`` is the identity), which the wrapper exploits.

Non-inert transformers additionally implement:

* :meth:`adjust` — the paper's ``adjust(s1, s2, s3)``: given that an earlier
  transition changed ``s2`` to ``s3``, fix up a later state ``s1``;
* :meth:`on_transition` — invoked once per completed update (eR/eA/eB,
  hide, show) with the update's old/new boundary states; may emit events
  (e.g. the predicate's retroactive show/hide);
* :meth:`on_live_adjusted` — invoked after the live state is adjusted; may
  emit events (e.g. count re-emits its replace update with the fixed value).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from ..events.model import ES, ET, SS, ST, Event, IdGenerator


class MutabilityRegistry:
    """The global ``fix : id -> bool`` map of Section V.

    Content that was never declared mutable is *fixed* (closed to updates),
    so the default for unknown ids is True.  ``sM`` regions start not fixed
    unless the consumer declared that it ignores updates on that stream;
    ``sR/sB/sA`` regions inherit their target's fixedness; ``freeze``
    irrevocably fixes an id.
    """

    def __init__(self) -> None:
        self._not_fixed: set = set()
        self.ignored_streams: set = set()

    def is_fixed(self, id: int) -> bool:
        return id not in self._not_fixed

    def declare_mutable(self, id: int) -> None:
        if id not in self.ignored_streams:
            self._not_fixed.add(id)

    def inherit(self, target: int, new: int) -> None:
        """fix[new] <- fix[target] at the start of any update."""
        if target in self._not_fixed:
            self._not_fixed.add(new)

    def freeze(self, id: int) -> None:
        self._not_fixed.discard(id)

    def live_count(self) -> int:
        return len(self._not_fixed)


class Context:
    """Shared pipeline context: id allocator and the fix map."""

    def __init__(self, ids: Optional[IdGenerator] = None,
                 fix: Optional[MutabilityRegistry] = None) -> None:
        self.ids = ids if ids is not None else IdGenerator()
        self.fix = fix if fix is not None else MutabilityRegistry()

    def fresh_id(self) -> int:
        return self.ids.fresh()


State = Tuple
PASS_THROUGH: List[Event] = []


class UpdatePolicy(enum.Enum):
    """How update brackets on an input stream travel through a stage."""

    TRANSLATE = "translate"
    TRANSPARENT = "transparent"
    CONSUME = "consume"
    TEE = "tee"
    #: Update events are handed to the transformer's process() like data
    #: (no wrapper bookkeeping): for operators that must reorder brackets
    #: together with their content (sorting and tuple normalization).
    RAW = "raw"
    #: Region content is processed against the shared live state and the
    #: brackets are consumed silently — for consumed inputs whose operator
    #: tracks them via its own registers (the backward-axis join), where
    #: per-region state copies would wrongly overwrite interleaved live
    #: progress at the bracket's end.
    SHARED = "shared"


class StateTransformer:
    """Base class for pipeline stage operators.

    Attributes:
        input_ids: the stream number(s) this operator consumes.  Events on
            these streams (and on update regions nested in them) are fed to
            :meth:`process`; everything else passes through unchanged.
        output_id: the stream number of the operator's result (for unary
            relabeling operators this may equal the input).
        inert: True when ``f*`` preserves state over well-formed sequences.
    """

    inert = True
    #: When True (the base-class contract), :meth:`on_other` forwards
    #: foreign-stream events unchanged and has no side effects, so the
    #: batched pipeline driver may route events past this stage without
    #: calling it.  A subclass that overrides :meth:`on_other` with
    #: different behaviour MUST set this to False to opt out of routing.
    passes_foreign = True
    #: When True, events emitted while processing update-region content are
    #: discarded; the operator's visible result is refreshed through
    #: on_live_adjusted instead (used by aggregates whose whole output is a
    #: continuously replaced value).
    suppress_region_output = False
    #: Set by the wrapper before each process() call: True when the event
    #: being processed is update-region content (hence revocable), False
    #: for plain (immutable) stream content.  Predicates use this as the
    #: paper's fixed[e.id] test.
    region_mutable = False
    #: Set by the wrapper before each process() call: the input stream the
    #: event belongs to (the event's own id for live content, the region's
    #: root input stream for region content).  Binary operators route by
    #: this rather than by e.id.
    current_input_root = None
    #: Set by the wrapper before each process() call: the update region the
    #: event is content of (None for live content).
    current_region = None
    #: Set by the wrapper before each process() call: the positional
    #: ancestor chain of current_region, innermost first (empty for live
    #: content).  Operators that slave output regions to input visibility
    #: register against every enclosing region.
    current_region_chain = ()

    def __init__(self, ctx: Context, input_ids: Sequence[int],
                 output_id: int) -> None:
        self.ctx = ctx
        self.input_ids = tuple(input_ids)
        self.output_id = output_id

    def update_policy(self, stream_id: int) -> "UpdatePolicy":
        """How update brackets on ``stream_id`` travel through this stage.

        The default TRANSLATE re-emits brackets in output space.
        Overridden by operators with consumed inputs (aggregates),
        transparent outputs (concatenation), or tee behaviour (stream
        cloning).  The wrapper caches the answer per input stream, so the
        policy must be static per (operator, stream).
        """
        return UpdatePolicy.TRANSLATE

    def bracket_anchor(self) -> int:
        """The output-space container that translated brackets nest into.

        By default an update bracket arriving on the input stream is
        re-emitted targeting the operator's output stream.  Operators that
        are currently emitting *inside* an output-side region of their own
        making (e.g. the predicate's per-element mutable region) return
        that region's id so nested incoming brackets anchor correctly.
        """
        return self.output_id

    # -- static facts for the plan analyzer ----------------------------------

    def static_facts(self) -> dict:
        """Compile-time facts about this stage (see :mod:`repro.analysis`).

        Returns a dict with the keys:

        * ``streaming`` — True when the stage emits output incrementally
          (every stage in this engine does; operators that a conventional
          evaluator would block on instead set ``paper_blocking``).
        * ``paper_blocking`` — True for operators that are only unblocked
          *because* of the update-stream protocol (aggregates, sorting,
          concatenation): a plain-stream evaluator would have to buffer
          their whole input.
        * ``state_class`` — Koch-style memory class of the transformer
          state: ``"constant"``, ``"per-region"`` (grows with open/unsealed
          regions, reclaimed on freeze), ``"buffering"`` (bounded by one
          item/document feature), or ``"unbounded"`` (grows with the
          stream).
        * ``generates_updates`` — abbrevs of update-kind events this stage
          *originates* (not merely forwards), e.g. ``("sM", "freeze")``.
        * ``brackets`` — specs of the update brackets the stage emits,
          each a dict with ``kind`` (``"sM"``/``"sR"``/``"sB"``/``"sA"``),
          ``target`` and ``sub`` (a concrete stream number, or the string
          ``"dynamic"`` for ids allocated at run time; a spec may instead
          reference an earlier spec of the same stage via ``parent``, its
          index, meaning the target is that spec's dynamic sub),
          ``freeze`` (``"always"``, ``"never"``, ``"conditional"`` — only
          frozen when the source is immutable — or ``"derived"`` — frozen
          exactly when the covering input regions freeze), and ``per``
          (cardinality: ``"stream"``, ``"item"``, ``"tuple"``, ``"match"``
          or ``"nested"``).
        * ``notes`` — free-form remark surfaced in the lint report.
        * ``projection`` — how the stage transforms element *paths* for
          the stream-projection analyzer (:mod:`repro.analysis.projection`).
          One of ``{"kind": "step", "axis": "child"|"descendant",
          "tag": ...}`` (navigation: output paths extend input paths by
          one step), ``{"kind": "plumbing"}`` (copies/reorders/wraps
          without reading element content), ``{"kind": "content"}``
          (reads its input's content — the consumed subtrees must be
          kept whole; the safe default), or ``{"kind": "opaque"}``
          (defeats path analysis entirely — forces the universal
          projection).

        The base class describes an inert pass-through stage; every
        update-originating operator overrides this.
        """
        return {
            "streaming": True,
            "paper_blocking": False,
            "state_class": "constant",
            "generates_updates": (),
            "brackets": (),
            "notes": "",
            "projection": {"kind": "content"},
        }

    def type_facts(self) -> dict:
        """How this stage transforms element *types* (see
        :mod:`repro.analysis.types`).

        The type checker propagates, per stream, a regular-expression
        content type (which element tags / text an item sequence may
        contain under a document schema).  Each operator declares its
        transfer function as a small dict keyed on ``kind``:

        * ``{"kind": "step", "axis": "child"|"descendant", "tag": t}`` —
          navigation: output labels are the schema children/descendants
          of the input labels, filtered to ``t`` (``None`` = wildcard).
        * ``{"kind": "copy"}`` — output type is the union of the input
          types (tee, self step, tuple plumbing).
        * ``{"kind": "filter"}`` — output is a sub-language of the input
          (predicates; the checker reads ``self.conditions`` to prove a
          never-true condition empty).
        * ``{"kind": "text"}`` — emits character data per input item
          (text step, string value): empty input => empty output.
        * ``{"kind": "flag"}`` — emits boolean flag cDs per input value
          (comparisons, exists): empty input => empty output.
        * ``{"kind": "literal"}`` — emits literal text per tuple.
        * ``{"kind": "union"}`` — output is the union of both inputs
          (concatenation): empty only when *both* inputs are.
        * ``{"kind": "construct", "tag": t, "always": bool}`` — wraps
          content in a constructed element ``t``; ``always`` marks the
          per-stream constructor that emits its wrapper even on empty
          input (never empty).
        * ``{"kind": "aggregate"}`` — emits a text value even for empty
          input (count's ``"0"``): never empty.
        * ``{"kind": "join", "keep": i, "requires": j}`` — output is a
          sub-language of input ``i``, and provably empty when input
          ``j`` is empty (the backward-axis join).
        * ``{"kind": "empty"}`` — emits no content at all (Drop,
          StructuralRelay).
        * ``{"kind": "opaque"}`` — unknown transfer: output is TOP.
          The safe default for stages the checker has not been taught.
        """
        return {"kind": "opaque"}

    # -- the state modifier F ----------------------------------------------

    def process(self, e: Event) -> List[Event]:
        """Handle one event of the operator's own stream(s)."""
        raise NotImplementedError

    def on_other(self, e: Event) -> List[Event]:
        """Handle an event of a foreign stream (default: pass through)."""
        return [e]

    def on_end(self) -> List[Event]:
        """Called once when the global stream ends (flush hook)."""
        return []

    # -- state cloning for the wrapper ---------------------------------------

    def get_state(self) -> State:
        """Snapshot the mutable state as an immutable value."""
        return ()

    def set_state(self, state: State) -> None:
        """Restore a snapshot taken by :meth:`get_state`."""

    def state_cells(self, state: State) -> int:
        """Approximate retained size of one state copy (for accounting)."""
        return _count_cells(state)

    # -- update adjustment (non-inert transformers override) -----------------

    def adjust(self, state: State, s1: State, s2: State) -> State:
        """The paper's adjust: s2 changed to s3=s2'; fix up ``state``."""
        return state

    def on_transition(self, uid: int, s1: State, s2: State) -> List[Event]:
        """Events to embed when update ``uid`` changed s1 -> s2."""
        return []

    def on_live_adjusted(self, old: State, new: State) -> List[Event]:
        """Events to embed after the live state was adjusted."""
        return []

    def on_region_hidden(self, uid: int) -> List[Event]:
        """Hook: a tracked region was hidden (may emit events)."""
        return []

    def on_region_shown(self, uid: int) -> List[Event]:
        """Hook: a tracked region was shown again (may emit events)."""
        return []

    def on_region_frozen(self, uid: int) -> List[Event]:
        """Hook: a tracked region was sealed (may emit events)."""
        return []

    def __repr__(self) -> str:
        return "{}(in={}, out={})".format(type(self).__name__,
                                          self.input_ids, self.output_id)


def _count_cells(value: object) -> int:
    if isinstance(value, (tuple, list, frozenset, set)):
        return 1 + sum(_count_cells(v) for v in value)
    if isinstance(value, dict):
        return 1 + sum(_count_cells(k) + _count_cells(v)
                       for k, v in value.items())
    return 1


class Identity(StateTransformer):
    """Pass a stream through unchanged (useful in tests and as a spacer)."""

    def process(self, e: Event) -> List[Event]:
        return [e]

    def type_facts(self) -> dict:
        return {"kind": "copy"}


class Relabel(StateTransformer):
    """Relabel a stream to a new stream number."""

    def process(self, e: Event) -> List[Event]:
        return [e.relabel(self.output_id)]

    def type_facts(self) -> dict:
        return {"kind": "copy"}


class Drop(StateTransformer):
    """Consume a stream, emitting nothing (used to discard residue)."""

    def process(self, e: Event) -> List[Event]:
        return PASS_THROUGH

    def type_facts(self) -> dict:
        return {"kind": "empty"}


class StructuralRelay(StateTransformer):
    """Relay only structural events (sS/eS/sT/eT); drop all content.

    The residue of static dead-stage elimination
    (:func:`repro.analysis.types.optimize_plan`): a stage whose output
    type is provably empty forwards structural events unchanged and —
    by the emptiness proof — never any content, so this constant-state
    relay is byte-equivalent to it (and to any chain of such stages).
    """

    inert = True

    def process(self, e: Event) -> List[Event]:
        if e.kind in (SS, ES, ST, ET):
            return [e.relabel(self.output_id)]
        return PASS_THROUGH

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(notes="statically-empty segment (dead stages "
                           "eliminated by the type checker)")
        facts["projection"] = {"kind": "plumbing"}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "empty"}


def run_sequence(transformer: StateTransformer,
                 events: Sequence[Event]) -> List[Event]:
    """Apply the raw state modifier over a sequence (the paper's ``f*``).

    Bypasses the update wrapper: update events are treated as foreign.
    Used by unit tests that exercise a single operator in isolation.
    """
    out: List[Event] = []
    tracked = set(transformer.input_ids)
    for e in events:
        if not e.is_update and e.id in tracked:
            out.extend(transformer.process(e))
        else:
            out.extend(transformer.on_other(e))
    out.extend(transformer.on_end())
    return out
