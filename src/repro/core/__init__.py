"""Core framework: state transformers, update wrapper, regions, display."""

from .display import Display
from .multiplex import EventMultiplexer, NestingGuard
from .pipeline import (Collector, Filter, Pipeline, SinkFilter,
                       build_filter_chain, run_stages)
from .regions import Region, RegionTree, apply_updates
from .transformer import (Context, Drop, Identity, MutabilityRegistry,
                          Relabel, StateTransformer, run_sequence)
from .wrapper import LIVE, UpdateWrapper

__all__ = [
    "StateTransformer", "Context", "MutabilityRegistry",
    "Identity", "Relabel", "Drop", "run_sequence",
    "UpdateWrapper", "LIVE",
    "Pipeline", "Filter", "SinkFilter", "build_filter_chain", "Collector",
    "run_stages",
    "Region", "RegionTree", "apply_updates",
    "Display",
    "EventMultiplexer", "NestingGuard",
]
