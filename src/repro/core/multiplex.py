"""Single-pass fan-out of one event stream to many query pipelines.

The serving scenario the paper motivates (Section I: many standing
queries over one live update stream) needs the inverse of the usual
driver loop: instead of pulling the stream once per query, pull it
*once* and push every batch through N independent pipelines.  The
multiplexer owns the work every consumer would otherwise repeat:

* the input batch is materialized once and shared by reference — one
  tokenizer pass, one event-object allocation, regardless of N;
* consumers that opt out of updates (paper Section V) share a single
  :class:`~repro.events.model.UpdateStripper` pass — stripping is a
  deterministic function of the input, so its output is computed once
  and fed to every opted-out pipeline;
* the optional well-formedness guard checks element nesting once for
  the whole stream instead of once per consumer.

Each pipeline still does its own (per-query) transformer work — the
multiplexer never reorders or drops events, so per-query results and
accounting are exactly those of an independent run over the same
events (the differential tests in ``tests/test_multiquery.py`` hold
this byte-for-byte and call-for-call).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..events.model import EE, SE, Event, UpdateStripper
from ..events.wellformed import WellFormednessError


class NestingGuard:
    """Incremental element-nesting check, shared across all consumers.

    Validates the data-event projection of every virtual stream in the
    input: an ``eE`` must match the innermost open ``sE`` of its stream.
    Update-control events are ignored (their bracket discipline is the
    wrappers' concern); this guards against a malformed *source* — a
    truncated document, a broken producer — before N pipelines ingest it.
    """

    def __init__(self) -> None:
        self._stacks: Dict[int, List[str]] = {}
        self.events_checked = 0

    def check_batch(self, events: Sequence[Event]) -> None:
        stacks = self._stacks
        base = self.events_checked
        self.events_checked += len(events)
        for pos, e in enumerate(events):
            kind = e.kind
            if kind == SE:
                stacks.setdefault(e.id, []).append(e.tag or "")
            elif kind == EE:
                stack = stacks.get(e.id)
                if not stack:
                    raise WellFormednessError(
                        "unmatched eE", rule="element-nesting",
                        stage="shared input guard", event=e,
                        index=base + pos, stream=e.id)
                if stack[-1] != (e.tag or ""):
                    raise WellFormednessError(
                        "eE closes open element {!r}".format(stack[-1]),
                        rule="element-nesting", stage="shared input guard",
                        event=e, index=base + pos, stream=e.id)
                stack.pop()

    def finish(self) -> None:
        open_tags = {sid: stack for sid, stack in self._stacks.items()
                     if stack}
        if open_tags:
            raise WellFormednessError(
                "stream ended with open elements: {}".format(
                    {sid: list(s) for sid, s in open_tags.items()}),
                rule="element-nesting", stage="shared input guard",
                index=self.events_checked, stream=min(open_tags))


class EventMultiplexer:
    """Drive N :class:`~repro.xquery.engine.QueryRun` pipelines in one pass.

    Args:
        runs: the consumers.  A run constructed with ``ignore_updates``
            is detected by its stripper marker and served from the shared
            stripped stream instead of running its own stripper.
        validate: install a shared :class:`NestingGuard` on the raw
            input.
        quarantine: isolate pipeline failures.  An exception escaping
            one pipeline (an operator bug, an injected fault, a
            :class:`~repro.events.errors.ProtocolViolation` from that
            pipeline's sanitizer) detaches *that* pipeline from the
            fan-out and records a captured error report; the siblings
            keep running.  Failures of the shared input guard stay
            fatal — a malformed source invalidates every consumer.
            With ``quarantine=False`` the first pipeline exception
            propagates (the pre-fault-tolerance behaviour).
    """

    def __init__(self, runs: Sequence, validate: bool = False,
                 quarantine: bool = False) -> None:
        self.runs = list(runs)
        self._raw_pipelines = [(i, r.pipeline)
                               for i, r in enumerate(self.runs)
                               if r._stripper is None]
        self._stripped_pipelines = [(i, r.pipeline)
                                    for i, r in enumerate(self.runs)
                                    if r._stripper is not None]
        self._stripper: Optional[UpdateStripper] = (
            UpdateStripper() if self._stripped_pipelines else None)
        self.guard: Optional[NestingGuard] = (
            NestingGuard() if validate else None)
        self.quarantine = quarantine
        #: run index -> captured error report (see repro.fault).
        self.quarantined: Dict[int, dict] = {}
        self.events_in = 0
        self.batches = 0
        #: Events handed to each consumer class (batch-level counters:
        #: the telemetry layer reads these, the hot loop never branches).
        self.raw_events_out = 0
        self.stripped_events_out = 0
        self._finished = False
        #: run index -> per-query projection mask (see
        #: :class:`repro.analysis.projection.ProjectionMask`).  Installed
        #: by the owning executor; empty means the unmasked fast path.
        self._masks: Dict[int, object] = {}
        #: Shared prefix groups (see
        #: :class:`repro.compile.sharing.SharedGroup`).  Member runs are
        #: removed from the direct fan-out — the group feeds them from
        #: its prefix pipeline's output — but keep their run indices for
        #: results, stats, and quarantine accounting.
        self._groups: List = []
        self._grouped: frozenset = frozenset()
        #: The :class:`~repro.fault.FaultPlan` in force, if any —
        #: installed by the owning executor so quarantine bundles can
        #: record the replayable spec and seed.
        self.fault_plan = None
        #: Run indices proven statically empty by the type checker
        #: (:mod:`repro.analysis.types`).  Detached from the fan-out
        #: entirely: their answer is the empty sequence for *every*
        #: input, so feeding them would be pure overhead.
        self.static_empty: frozenset = frozenset()

    def set_static_empty(self, indices: Iterable[int]) -> None:
        """Detach statically-empty pipelines from the fan-out.

        The owning executor installs the run indices whose plans the
        type checker proved empty for every document of the declared
        schema.  Those pipelines are never fed and never finished —
        their displays stay at the provably correct empty answer.
        """
        self.static_empty = frozenset(indices)
        self._raw_pipelines = [(i, p) for i, p in self._raw_pipelines
                               if i not in self.static_empty]
        self._stripped_pipelines = [(i, p)
                                    for i, p in self._stripped_pipelines
                                    if i not in self.static_empty]

    def set_masks(self, masks: Dict[int, object]) -> None:
        """Install per-pipeline projection masks (run index -> mask).

        Masked pipelines receive, per batch, only the events their own
        query's projection can reach; unmasked pipelines keep the shared
        by-reference batch.  Masks never apply to update-control events
        (each mask disables itself on the first one it sees).
        """
        self._masks = dict(masks)

    def set_groups(self, groups: Sequence) -> None:
        """Install shared prefix groups; detach members from the fan-out."""
        self._groups = list(groups)
        self._grouped = frozenset(i for g in self._groups
                                  for i in g.member_indices)
        self._raw_pipelines = [(i, p) for i, p in self._raw_pipelines
                               if i not in self._grouped]
        self._stripped_pipelines = [(i, p)
                                    for i, p in self._stripped_pipelines
                                    if i not in self._grouped]

    def feed(self, event: Event) -> None:
        self.feed_batch((event,))

    def _feed_groups(self, batch: Sequence[Event]) -> None:
        for group in self._groups:
            for i, exc in group.feed_batch(batch,
                                           quarantine=self.quarantine):
                self._quarantine(i, exc)

    def _quarantine(self, run_index: int, exc: BaseException) -> None:
        from ..fault import error_report
        report = error_report(
            exc, run_index=run_index, events_in=self.events_in)
        recorder = getattr(self.runs[run_index], "recorder", None)
        if recorder is not None and recorder.flight is not None:
            # Post-mortem bundle: the failing pipeline's recent events,
            # stage identities, and telemetry snapshot travel with the
            # quarantine report (plain dicts — they cross the shard
            # result pipe and land in the chaos CLI's artifacts).
            from ..obs.flightrec import build_bundle
            report["flight_bundle"] = build_bundle(
                "quarantine", recorder=recorder,
                error={"error_type": report["error_type"],
                       "message": report["message"]},
                fault_plan=self.fault_plan,
                run_index=run_index, events_in=self.events_in)
        self.quarantined[run_index] = report
        self._raw_pipelines = [(i, p) for i, p in self._raw_pipelines
                               if i != run_index]
        self._stripped_pipelines = [(i, p)
                                    for i, p in self._stripped_pipelines
                                    if i != run_index]

    def feed_batch(self, events: Iterable[Event]) -> None:
        """Fan one input batch out to every pipeline.

        The batch is materialized once; pipelines receive it by
        reference.  Pipelines are independent (disjoint contexts and
        stream-number spaces), so per-batch sequencing across consumers
        is unobservable — within each pipeline the event order is exactly
        the input order.
        """
        batch = events if isinstance(events, (list, tuple)) \
            else list(events)
        self.events_in += len(batch)
        self.batches += 1
        if self.guard is not None:
            self.guard.check_batch(batch)
        quarantine = self.quarantine
        if self._groups:
            self._feed_groups(batch)
        if self._masks:
            self._feed_batch_masked(batch)
            return
        if self._stripper is not None:
            stripper_feed = self._stripper.feed
            stripped = [out for e in batch for out in stripper_feed(e)]
            self.stripped_events_out += (len(stripped)
                                         * len(self._stripped_pipelines))
            if quarantine:
                for i, pipeline in list(self._stripped_pipelines):
                    try:
                        pipeline.feed_batch(stripped)
                    except Exception as exc:
                        self._quarantine(i, exc)
            else:
                for _, pipeline in self._stripped_pipelines:
                    pipeline.feed_batch(stripped)
        self.raw_events_out += len(batch) * len(self._raw_pipelines)
        if quarantine:
            for i, pipeline in list(self._raw_pipelines):
                try:
                    pipeline.feed_batch(batch)
                except Exception as exc:
                    self._quarantine(i, exc)
        else:
            for _, pipeline in self._raw_pipelines:
                pipeline.feed_batch(batch)

    def _feed_batch_masked(self, batch: Sequence[Event]) -> None:
        """Mask-aware fan-out: per-pipeline filtering and counters."""
        masks = self._masks
        quarantine = self.quarantine
        if self._stripper is not None:
            stripper_feed = self._stripper.feed
            stripped = [out for e in batch for out in stripper_feed(e)]
            for i, pipeline in list(self._stripped_pipelines):
                mask = masks.get(i)
                feed = stripped if mask is None else mask.filter(stripped)
                self.stripped_events_out += len(feed)
                if quarantine:
                    try:
                        pipeline.feed_batch(feed)
                    except Exception as exc:
                        self._quarantine(i, exc)
                else:
                    pipeline.feed_batch(feed)
        for i, pipeline in list(self._raw_pipelines):
            mask = masks.get(i)
            feed = batch if mask is None else mask.filter(batch)
            self.raw_events_out += len(feed)
            if quarantine:
                try:
                    pipeline.feed_batch(feed)
                except Exception as exc:
                    self._quarantine(i, exc)
            else:
                pipeline.feed_batch(feed)

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self.guard is not None:
            self.guard.finish()
        for i, run in enumerate(self.runs):
            if (i in self.quarantined or i in self._grouped
                    or i in self.static_empty):
                continue
            if self.quarantine:
                try:
                    run.finish()
                except Exception as exc:
                    self._quarantine(i, exc)
            else:
                run.finish()
        # Grouped members flush through their group: the prefix's
        # end-of-stream tail must reach them before their own on_end.
        for group in self._groups:
            for i, exc in group.finish(quarantine=self.quarantine):
                self._quarantine(i, exc)

    # -- accounting ----------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate executor metrics plus the per-pipeline breakdown."""
        per_pipeline = [r.stats() for r in self.runs]
        return {
            "pipelines": len(self.runs),
            "events_in": self.events_in,
            "batches": self.batches,
            "fanout": {
                "raw_pipelines": len(self._raw_pipelines),
                "stripped_pipelines": len(self._stripped_pipelines),
                "raw_events_out": self.raw_events_out,
                "stripped_events_out": self.stripped_events_out,
                "masked_pipelines": len(self._masks),
                "grouped_pipelines": len(self._grouped),
                "static_empty_pipelines": len(self.static_empty),
            },
            "shared_strip": self._stripper is not None,
            "validated_events": (self.guard.events_checked
                                 if self.guard is not None else 0),
            "transformer_calls": sum(s["transformer_calls"]
                                     for s in per_pipeline),
            "state_cells": sum(s["state_cells"] for s in per_pipeline),
            "per_pipeline": per_pipeline,
        }
