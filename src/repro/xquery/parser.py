"""Recursive-descent parser for the supported XQuery subset.

Hand-rolled over the raw query text, because element constructors need a
mode switch (XML content with ``{ expr }`` islands) that a conventional
token stream handles poorly.  Grammar (informally)::

    Query    := Expr
    Expr     := FLWOR | Sequence
    FLWOR    := 'for' '$'Name 'in' Expr ('where' Expr)?
                ('order' 'by' Expr ('ascending'|'descending')?)?
                'return' Expr
    Sequence := Or (',' Or)*
    Or       := Comparison             -- no and/or yet (chain predicates)
    Comparison := Path (CmpOp Literal)?
    Path     := Primary StepOrPred*
    Primary  := '$'Name | FnCall | Ctor | StringLit | '(' Expr ')' | Name
    StepOrPred := '/' NodeTest | '//' NodeTest | '/text()' | '/..'
                | '/ancestor::' NodeTest | '[' Expr ']'
    FnCall   := ('count'|'sum'|'avg') '(' Expr ')'
              | 'contains' '(' Expr ',' StringLit ')'
              | 'stream' '(' ')' | 'doc' '(' StringLit ')'
    Ctor     := '<' Name '>' (text | '{' Sequence '}')* '</' Name '>'

A bare Name in primary position is a dataset handle (the paper writes
``X//europe...``), equivalent to ``stream()``; the engine binds it.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List, Optional

from .ast import (ANCESTOR, BoolExpr, CHILD, DESCENDANT, PARENT, TEXT,
                  Compare, ElementCtor, Expr, Filter, FLWOR, FunCall,
                  SequenceExpr, Source, Step, StringLit, VarRef)


class XQuerySyntaxError(ValueError):
    """Raised on malformed query text, with position information."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        line = text.count("\n", 0, pos) + 1
        col = pos - (text.rfind("\n", 0, pos) + 1) + 1
        super().__init__("{} (line {}, column {})".format(message, line,
                                                          col))
        self.pos = pos


_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")
_STRING_RE = re.compile(r'"([^"\\]*(?:\\.[^"\\]*)*)"'
                        r"|'([^'\\]*(?:\\.[^'\\]*)*)'")
_WS_RE = re.compile(r"(?:\s+|\(:.*?:\))+", re.DOTALL)
_CMP_OPS = ("<=", ">=", "!=", "=", "<", ">")
_KEYWORDS = frozenset(("for", "in", "where", "order", "by", "return",
                       "ascending", "descending", "let", "and", "or"))
#: Curly quotes appear in queries copy-pasted from the paper's PDF.
_QUOTE_FIXES = {"“": '"', "”": '"', "‘": "'",
                "’": "'"}


def parse(text: str) -> Expr:
    """Parse a query string into an AST."""
    for bad, good in _QUOTE_FIXES.items():
        text = text.replace(bad, good)
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.skip_ws()
    if parser.pos < len(parser.text):
        parser.fail("unexpected trailing input")
    return expr


@lru_cache(maxsize=256)
def parse_cached(text: str) -> Expr:
    """Parse with a module-level AST cache keyed by the query text.

    A serving executor constructs many engines for the same standing
    query; the AST is read-only downstream (the compiler only walks it),
    so all of them can share one parse.  Errors are not cached — a
    failing parse raises before the cache stores anything.
    """
    return parse(text)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level helpers ---------------------------------------------------

    def fail(self, message: str) -> None:
        raise XQuerySyntaxError(message, self.text, self.pos)

    def skip_ws(self) -> None:
        m = _WS_RE.match(self.text, self.pos)
        if m:
            self.pos = m.end()

    def peek(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def accept(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            self.fail("expected {!r}".format(token))

    def peek_keyword(self, word: str) -> bool:
        self.skip_ws()
        end = self.pos + len(word)
        if not self.text.startswith(word, self.pos):
            return False
        return end >= len(self.text) or not (self.text[end].isalnum()
                                             or self.text[end] == "_")

    def accept_keyword(self, word: str) -> bool:
        if self.peek_keyword(word):
            self.pos += len(word)
            return True
        return False

    def name(self) -> str:
        self.skip_ws()
        m = _NAME_RE.match(self.text, self.pos)
        if not m:
            self.fail("expected a name")
        self.pos = m.end()
        return m.group(0)

    def string_literal(self) -> str:
        self.skip_ws()
        m = _STRING_RE.match(self.text, self.pos)
        if not m:
            self.fail("expected a string literal")
        self.pos = m.end()
        raw = m.group(1) if m.group(1) is not None else m.group(2)
        return raw.replace("\\n", "\n").replace("\\t", "\t") \
                  .replace('\\"', '"').replace("\\'", "'") \
                  .replace("\\\\", "\\")

    # -- grammar ----------------------------------------------------------------

    def parse_expr(self) -> Expr:
        if self.peek_keyword("for"):
            return self.parse_flwor()
        return self.parse_sequence()

    def parse_flwor(self) -> Expr:
        self.accept_keyword("for")
        self.expect("$")
        var = self.name()
        if not self.accept_keyword("in"):
            self.fail("expected 'in'")
        seq = self.parse_sequence_item()
        lets = []
        while self.accept_keyword("let"):
            self.expect("$")
            let_var = self.name()
            self.expect(":=")
            lets.append((let_var, self.parse_sequence_item()))
        where = None
        if self.accept_keyword("where"):
            where = self.parse_sequence_item()
        order_key = None
        descending = False
        if self.accept_keyword("order"):
            if not self.accept_keyword("by"):
                self.fail("expected 'by'")
            order_key = self.parse_sequence_item()
            if self.accept_keyword("descending"):
                descending = True
            else:
                self.accept_keyword("ascending")
        if not self.accept_keyword("return"):
            self.fail("expected 'return'")
        ret = self.parse_expr()
        return FLWOR(var, seq, where, order_key, descending, ret,
                     lets=lets)

    def parse_sequence(self) -> Expr:
        items = [self.parse_sequence_item()]
        while self.accept(","):
            items.append(self.parse_sequence_item())
        if len(items) == 1:
            return items[0]
        return SequenceExpr(items)

    def parse_sequence_item(self) -> Expr:
        left = self.parse_boolean_operand()
        for word in ("and", "or"):
            if self.peek_keyword(word):
                items = [left]
                while self.accept_keyword(word):
                    items.append(self.parse_boolean_operand())
                if self.peek_keyword("or" if word == "and" else "and"):
                    self.fail("mixing 'and' and 'or' requires parentheses")
                return BoolExpr(word, items)
        return left

    def parse_boolean_operand(self) -> Expr:
        left = self.parse_path()
        self.skip_ws()
        for op in _CMP_OPS:
            if self.text.startswith(op, self.pos):
                # Guard: '<' starting a constructor never reaches here
                # (constructors are parsed in primary position).
                self.pos += len(op)
                literal = self.string_or_number()
                return Compare(left, op, literal)
        return left

    def string_or_number(self) -> str:
        self.skip_ws()
        m = re.match(r"-?\d+(\.\d+)?", self.text[self.pos:])
        if m and not _STRING_RE.match(self.text, self.pos):
            self.pos += m.end()
            return m.group(0)
        return self.string_literal()

    def parse_path(self) -> Expr:
        base = self.parse_primary()
        while True:
            self.skip_ws()
            if self.text.startswith("//", self.pos):
                self.pos += 2
                base = Step(base, DESCENDANT, self.node_test())
            elif self.text.startswith("/..", self.pos):
                self.pos += 3
                base = Step(base, PARENT, None)
            elif self.text.startswith("/ancestor::", self.pos):
                self.pos += len("/ancestor::")
                base = Step(base, ANCESTOR, self.node_test())
            elif self.text.startswith("/text()", self.pos):
                self.pos += len("/text()")
                base = Step(base, TEXT, None)
            elif self.text.startswith("/", self.pos):
                self.pos += 1
                base = Step(base, CHILD, self.node_test())
            elif self.text.startswith("[", self.pos):
                self.pos += 1
                cond = self.parse_sequence_item()
                self.expect("]")
                base = Filter(base, cond)
            else:
                return base

    def node_test(self) -> Optional[str]:
        self.skip_ws()
        if self.accept("*"):
            return None
        return self.name()

    def parse_primary(self) -> Expr:
        self.skip_ws()
        if self.accept("$"):
            return VarRef(self.name())
        if self.peek("("):
            self.expect("(")
            inner = self.parse_sequence()
            self.expect(")")
            return inner
        if self.peek('"') or self.peek("'"):
            return StringLit(self.string_literal())
        if self.peek("<"):
            return self.parse_constructor()
        name = self.name()
        if name in _KEYWORDS:
            self.fail("unexpected keyword {!r}".format(name))
        self.skip_ws()
        if self.text.startswith("(", self.pos):
            return self.parse_funcall(name)
        # A bare name is a dataset handle (the paper's X / D).
        return Source(name)

    def parse_funcall(self, name: str) -> Expr:
        self.expect("(")
        if name in ("stream", "doc"):
            source_name = "stream"
            if self.peek('"') or self.peek("'"):
                source_name = self.string_literal()
            self.expect(")")
            return Source(source_name)
        if name == "contains":
            arg = self.parse_sequence_item()
            self.expect(",")
            literal = self.string_literal()
            self.expect(")")
            return FunCall("contains", [arg], literal=literal)
        if name in ("count", "sum", "avg", "min", "max"):
            arg = self.parse_expr()
            self.expect(")")
            return FunCall(name, [arg])
        self.fail("unknown function {!r}".format(name))

    # -- element constructors -----------------------------------------------------

    def parse_constructor(self) -> Expr:
        self.expect("<")
        tag = self.name()
        self.expect(">")
        content: List[Expr] = []
        text_buf: List[str] = []

        def flush_text() -> None:
            raw = "".join(text_buf)
            text_buf.clear()
            if raw.strip():
                content.append(StringLit(raw))

        close = "</"
        while True:
            if self.pos >= len(self.text):
                self.fail("unterminated constructor <{}>".format(tag))
            ch = self.text[self.pos]
            if ch == "{":
                flush_text()
                self.pos += 1
                content.append(self.parse_expr())
                self.expect("}")
            elif self.text.startswith(close, self.pos):
                save = self.pos
                self.pos += 2
                end_tag = self.name()
                self.expect(">")
                if end_tag != tag:
                    self.pos = save
                    self.fail("mismatched </{}> in <{}>".format(end_tag,
                                                                tag))
                flush_text()
                return ElementCtor(tag, content)
            elif ch == "<":
                flush_text()
                content.append(self.parse_constructor())
            else:
                text_buf.append(ch)
                self.pos += 1
