"""XFlux: the public query engine.

Typical use::

    from repro import XFlux

    engine = XFlux('X//europe//item[location="Albania"]/quantity')
    result = engine.run_xml(open("auction.xml").read())
    print(result.text())          # the final answer
    print(result.stats())         # buffering metrics

Continuous operation::

    engine = XFlux('stream()//quote[name="IBM"]/price',
                   mutable_source=True)
    run = engine.start()
    for event in ticker_events:
        run.feed(event)
        print(run.display.text())   # the continuously updated answer

The engine compiles the query once per ``start()``/``run()`` (stream
numbers are single-use) and pushes events through the transformer
pipeline into a :class:`~repro.core.display.Display`.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional

from ..core.display import Display
from ..core.pipeline import Pipeline
from ..core.transformer import Context
from ..events.model import Event
from ..xmlio.tokenizer import tokenize
from .ast import Expr
from .compiler import Compiler, Plan
from .parser import parse_cached


def _sanitize_default() -> bool:
    """Opt into boundary checking via the REPRO_SANITIZE env variable."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def _metrics_default() -> bool:
    """Opt into telemetry recording via the REPRO_METRICS env variable."""
    return os.environ.get("REPRO_METRICS", "") not in ("", "0")


def _fuse_default() -> bool:
    """Opt into stage-fusion codegen via the REPRO_FUSE env variable."""
    return os.environ.get("REPRO_FUSE", "") not in ("", "0")


def _share_default() -> bool:
    """Opt into prefix sharing via the REPRO_SHARE env variable."""
    return os.environ.get("REPRO_SHARE", "") not in ("", "0")


def _flight_default() -> bool:
    """Opt into flight recording via the REPRO_FLIGHT env variable."""
    return os.environ.get("REPRO_FLIGHT", "") not in ("", "0")


class QueryRun:
    """One live execution of a compiled query."""

    def __init__(self, plan: Plan,
                 on_change: Optional[Callable[[Event, Display],
                                              None]] = None,
                 track_snapshots: bool = False,
                 ignore_updates: bool = False,
                 always_active: bool = False,
                 sanitize: Optional[bool] = None,
                 metrics: Optional[bool] = None,
                 trace: bool = False,
                 sample_interval: int = 256,
                 reclaim_on_freeze: bool = True,
                 fuse: Optional[bool] = None,
                 fusion_assume_updates: bool = False,
                 flight: Optional[bool] = None) -> None:
        if sanitize is None:
            sanitize = _sanitize_default()
        if metrics is None:
            metrics = _metrics_default()
        if fuse is None:
            fuse = _fuse_default()
        if flight is None:
            flight = _flight_default()
        self.fuse = bool(fuse)
        self.plan = plan
        self.display = Display(plan.result_id, on_change=on_change,
                               track_snapshots=track_snapshots)
        if metrics or trace or flight:
            # Flight recording rides the instrumented drain, so it
            # implies a recorder (same rule as tracing).
            from ..obs import MetricsRecorder
            self.recorder: Optional["MetricsRecorder"] = MetricsRecorder(
                sample_interval=sample_interval, trace=trace,
                flight=flight)
        else:
            self.recorder = None
        fusion = None
        if (self.fuse and not always_active and not sanitize
                and self.recorder is None):
            from ..compile.fusion import fusion_partition
            fusion = fusion_partition(
                plan, assume_updates=fusion_assume_updates)
        self.pipeline = Pipeline(plan.ctx, plan.stages, self.display,
                                 always_active=always_active,
                                 sanitize=sanitize,
                                 recorder=self.recorder,
                                 reclaim_on_freeze=reclaim_on_freeze,
                                 fusion=fusion)
        from ..events.model import UpdateStripper
        self._stripper = UpdateStripper() if ignore_updates else None
        #: Set by projection-aware drivers (XFlux.run_xml with
        #: ``projection=True``): the derived QueryProjection and the
        #: tokenizer's pruning counters.
        self.projection = None
        self.projection_stats = None

    def feed(self, event: Event) -> None:
        if self._stripper is not None:
            for e in self._stripper.feed(event):
                self.pipeline.feed(e)
            return
        self.pipeline.feed(event)

    def feed_all(self, events: Iterable[Event]) -> None:
        """Feed a whole batch through the flattened pipeline driver."""
        if self._stripper is not None:
            stripper_feed = self._stripper.feed
            self.pipeline.feed_batch(
                e for event in events for e in stripper_feed(event))
            return
        self.pipeline.feed_batch(events)

    def finish(self) -> "QueryRun":
        self.pipeline.finish()
        return self

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(self) -> bytes:
        """Snapshot the run — pipeline, display, stripper — mid-stream.

        Everything goes into ONE pickle so shared structure survives:
        the display object in the envelope *is* the pipeline's sink, and
        restoring keeps them identical.  ``on_change`` callbacks ride
        along and must therefore be picklable (module-level functions;
        no closures) — a non-picklable callback raises
        :class:`~repro.fault.checkpoint.CheckpointError` at checkpoint
        time, never silently drops state.
        """
        from ..fault.checkpoint import encode_checkpoint
        schema = dict(self.pipeline.checkpoint_schema(),
                      stripper=self._stripper is not None)
        state = {
            "pipeline": self.pipeline.checkpoint_state(),
            "stripper": self._stripper,
        }
        return encode_checkpoint("queryrun", schema, state)

    def restore(self, blob: bytes) -> "QueryRun":
        """Adopt a :meth:`checkpoint` snapshot in place.

        The receiving run must come from a fresh compile of the same
        query with the same flags (schema-guarded).  Returns ``self``.
        """
        from ..fault.checkpoint import decode_checkpoint, require_schema
        schema, state = decode_checkpoint(blob, "queryrun")
        require_schema(schema, dict(self.pipeline.checkpoint_schema(),
                                    stripper=self._stripper is not None))
        self.pipeline.apply_checkpoint_state(state["pipeline"])
        self.display = self.pipeline.sink
        self._stripper = state["stripper"]
        return self

    # -- results ---------------------------------------------------------------

    def text(self) -> str:
        """The currently displayed answer."""
        return self.display.text()

    def events(self):
        return self.display.events()

    def stats(self) -> dict:
        """Execution metrics: transformer calls and retained state.

        ``per_stage`` breaks the aggregate counters down by stage (the
        aggregates are exact sums over it); ``metrics`` appears when the
        run has a telemetry recorder attached.
        """
        out = {
            "transformer_calls": self.pipeline.total_calls(),
            "state_cells": self.pipeline.state_cells(),
            "live_regions": self.pipeline.live_regions(),
            "display": self.display.stats(),
            "stages": len(self.pipeline.wrappers),
            "per_stage": self.pipeline.stage_accounts(),
        }
        fusion = self.pipeline.fusion_info()
        if fusion is not None:
            out["fusion"] = fusion
        if self.projection is not None:
            out["projection"] = self.projection.to_dict()
            if self.projection_stats is not None:
                out["projection"]["tokenizer"] = \
                    self.projection_stats.to_dict()
        if self.recorder is not None:
            out["metrics"] = self.recorder.to_dict()
        return out

    def metrics(self) -> Optional[dict]:
        """The telemetry recorder's dict, or None when recording is off."""
        return None if self.recorder is None else self.recorder.to_dict()


class MultiQueryRun:
    """N standing queries over one shared input stream, in a single pass.

    The serving-shaped executor: the input is tokenized/deserialized
    once, every batch is fanned out to all compiled pipelines by the
    :class:`~repro.core.multiplex.EventMultiplexer`, consumers that
    ignore updates share one stripper pass, and queries with identical
    text and flags share one pipeline (their results are reference-equal
    by construction).  Per-query results and accounting are exactly
    those of N independent runs over the same events.

    Typical use::

        mq = MultiQueryRun(['X//item/quantity', 'count(X//item)'])
        mq.run_xml(document)
        for query, text in zip(mq.query_texts, mq.texts()):
            print(query, '->', text)

    Args:
        queries: query texts or preconstructed :class:`XFlux` engines
            (mixing is fine; engines keep their own flags).
        mutable_source / ignore_updates: defaults applied to queries
            given as text.
        validate: check element nesting of the shared input once.
        dedup: collapse identical (text, flags) queries onto one
            pipeline.
        always_active: disable wrapper fast paths (differential tests).
        quarantine: isolate per-query failures (the default).  An
            exception escaping one query's pipeline — an operator bug, a
            :class:`~repro.events.errors.ProtocolViolation` from its
            sanitizer, an injected fault — detaches that query with a
            captured error report; siblings keep running and
            :meth:`statuses` / :meth:`error_reports` tell them apart.
            ``quarantine=False`` restores fail-fast propagation.
        fault_plan: a :class:`~repro.fault.FaultPlan` whose ``raise``
            actions are armed on the matching query pipelines (query
            indices are submission-order positions).
        projection: derive each plan's path projection
            (:mod:`repro.analysis.projection`).  The union projection
            drives the shared tokenizer's subtree skipping in
            :meth:`run_xml`; per-query masks then cut each pipeline's
            fan-out dispatch down to the events its own query can
            reach.  Results are byte-identical by construction.
        schema: optional DTD refinement for the projection matchers
            and the type checker (an
            :class:`~repro.analysis.schema.ElementSchema`, the name
            ``"xmark"``/``"dblp"``, or a DTD file path).
        typecheck: run the static type checker
            (:mod:`repro.analysis.types`) over every unique plan and
            *short-circuit* the statically-empty ones: their answer is
            provably the empty sequence for any document of the
            schema, so they are never fed a single event.  They report
            status ``"empty"`` and the empty text.  Queries over
            mutable sources are skipped (inference is defined over
            documents) and run normally.
        fuse: stage-fusion codegen for every pipeline (prefix, member,
            and independent); ``None`` reads ``REPRO_FUSE``.
        share_prefixes: factor common leading axis/predicate chains
            into shared prefix pipelines evaluated once per batch
            (:mod:`repro.compile.sharing`); ``None`` reads
            ``REPRO_SHARE``.  Silently off under sanitize /
            always-active / telemetry — those observers are defined
            over per-query stage boundaries — so differential runs
            with those flags compare the unshared paths.
    """

    def __init__(self, queries, mutable_source: bool = False,
                 ignore_updates: bool = False, validate: bool = False,
                 dedup: bool = True, always_active: bool = False,
                 sanitize: Optional[bool] = None,
                 metrics: Optional[bool] = None,
                 sample_interval: int = 256,
                 quarantine: bool = True,
                 fault_plan=None,
                 projection: bool = False,
                 schema=None,
                 typecheck: bool = False,
                 fuse: Optional[bool] = None,
                 share_prefixes: Optional[bool] = None,
                 flight: Optional[bool] = None) -> None:
        from ..core.multiplex import EventMultiplexer
        self.engines = []
        for q in queries:
            if isinstance(q, XFlux):
                self.engines.append(q)
            else:
                self.engines.append(XFlux(q, mutable_source=mutable_source,
                                          ignore_updates=ignore_updates))
        self.query_texts = [e.query_text for e in self.engines]
        eff_sanitize = (_sanitize_default() if sanitize is None
                        else bool(sanitize))
        eff_metrics = (_metrics_default() if metrics is None
                       else bool(metrics))
        eff_flight = (_flight_default() if flight is None
                      else bool(flight))
        if share_prefixes is None:
            share_prefixes = _share_default()
        # Flight recording implies a recorder on every run, so it
        # disengages sharing exactly like metrics does.
        self.share_prefixes = (bool(share_prefixes) and not always_active
                               and not eff_sanitize and not eff_metrics
                               and not eff_flight)
        self._slots = []        # query index -> index into self.runs
        seen = {}
        unique = []             # first engine of each unique slot
        for e in self.engines:
            key = ((e.query_text, e.mutable_source, e.ignore_updates)
                   if dedup else len(self._slots))
            slot = seen.get(key)
            if slot is None:
                slot = len(unique)
                seen[key] = slot
                unique.append(e)
            self._slots.append(slot)
        self._slot_engines = unique
        #: Per-slot :class:`~repro.analysis.types.TypeReport` when
        #: ``typecheck`` is on (mutable-source slots are absent).
        self.type_reports = {}
        empty_slots = set()
        if typecheck:
            from ..analysis.types import TypeCheckError, infer_types
            for slot, e in enumerate(unique):
                try:
                    report = infer_types(e.compile(optimize=False),
                                         schema=(e.schema if e.schema
                                                 is not None else schema))
                except TypeCheckError:
                    continue  # mutable source: run the query normally
                self.type_reports[slot] = report
                if report.statically_empty:
                    empty_slots.add(slot)
        #: Slots proven statically empty and detached from the fan-out.
        self.static_empty_slots = frozenset(empty_slots)
        #: Shared prefix groups (empty when sharing is off or nothing
        #: shares); member runs live in ``self.runs`` like any other.
        self.groups = []
        grouped_runs = {}
        if self.share_prefixes:
            from ..compile.sharing import build_shared_groups

            def make_run(plan, engine):
                return QueryRun(plan,
                                ignore_updates=engine.ignore_updates,
                                always_active=always_active,
                                sanitize=sanitize,
                                metrics=metrics,
                                sample_interval=sample_interval,
                                fuse=fuse,
                                fusion_assume_updates=True,
                                flight=flight)

            eff_fuse = _fuse_default() if fuse is None else bool(fuse)
            # Statically-empty slots never receive events, so sharing
            # a prefix with them buys nothing — keep them solo.
            self.groups = build_shared_groups(
                [(slot, e) for slot, e in enumerate(unique)
                 if slot not in empty_slots], make_run, fuse=eff_fuse)
            for g in self.groups:
                for slot, run in g.members:
                    grouped_runs[slot] = run
        self.runs = []          # unique pipelines, construction order
        for slot, e in enumerate(unique):
            run = grouped_runs.get(slot)
            if run is None:
                if slot in empty_slots:
                    # The checker proved the answer empty for every
                    # document: compile the one-relay constant plan so
                    # the run's footprint matches its (zero) work.
                    from ..analysis.types import constant_empty_plan
                    plan = constant_empty_plan(e.compile(optimize=False))
                else:
                    plan = e.compile()
                run = QueryRun(plan,
                               ignore_updates=e.ignore_updates,
                               always_active=always_active,
                               sanitize=sanitize,
                               metrics=metrics,
                               sample_interval=sample_interval,
                               fuse=fuse,
                               flight=flight)
            self.runs.append(run)
        source_ids = {r.plan.source_id for r in self.runs}
        if len(source_ids) > 1:
            raise ValueError("queries disagree on the source stream "
                             "number: {}".format(sorted(source_ids)))
        self.source_id = source_ids.pop() if source_ids else 0
        self.needs_oids = any(r.plan.needs_oids for r in self.runs)
        self.mux = EventMultiplexer(self.runs, validate=validate,
                                    quarantine=quarantine)
        if self.groups:
            self.mux.set_groups(self.groups)
        if self.static_empty_slots:
            self.mux.set_static_empty(self.static_empty_slots)
        #: Union projection across unique pipelines (None when off).
        self.projection = None
        #: Tokenizer-side matcher for run_xml (None when nothing prunes).
        self.projection_matcher = None
        #: Tokenizer pruning counters, set by run_xml.
        self.projection_stats = None
        #: Shared-tokenizer chunk-latency histogram, set by run_xml when
        #: any run records metrics (executor state, counted once).
        self.chunk_latency = None
        self._masks = {}
        if projection:
            from ..analysis.projection import (ProjectionMask,
                                               ProjectionMatcher,
                                               derive_projection,
                                               union_projection)
            # Grouped members hold suffix plans whose paths are relative
            # to the shared prefix — deriving a projection from them
            # would starve the prefix's own steps.  Their projections
            # come from a throwaway full compile of the query instead.
            grouped = {s for g in self.groups for s in g.member_indices}
            projections = []
            for slot, run in enumerate(self.runs):
                # Static-empty slots hold the one-relay constant plan,
                # whose projection is universal — derive from the
                # query's own (unoptimized) plan so the union stays
                # prunable for the siblings.
                if slot in grouped or slot in self.static_empty_slots:
                    plan = self._slot_engines[slot].compile(
                        optimize=False)
                else:
                    plan = run.plan
                projections.append(derive_projection(plan))
            self.projection = union_projection(projections)
            union_matcher = ProjectionMatcher(self.projection,
                                              schema=schema)
            if union_matcher.prunable and not self.needs_oids:
                self.projection_matcher = union_matcher
            for i, (run, proj) in enumerate(zip(self.runs, projections)):
                if i in grouped or i in self.static_empty_slots:
                    continue
                matcher = ProjectionMatcher(proj, schema=schema)
                if not matcher.prunable:
                    continue
                mask = ProjectionMask(matcher, self.source_id)
                self._masks[i] = mask
                if run.recorder is not None:
                    run.recorder.projection = mask.counters
            for g in self.groups:
                gproj = union_projection(
                    [projections[s] for s in g.member_indices])
                gmatcher = ProjectionMatcher(gproj, schema=schema)
                if gmatcher.prunable:
                    g.mask = ProjectionMask(gmatcher, self.source_id)
            if self._masks:
                self.mux.set_masks(self._masks)
        self.fault_plan = fault_plan
        self.mux.fault_plan = fault_plan
        if fault_plan:
            from ..fault import arm_stage_fault
            for q, stage, at in fault_plan.stage_faults():
                if 0 <= q < len(self._slots):
                    arm_stage_fault(self.runs[self._slots[q]], stage, at,
                                    query=q)

    def __len__(self) -> int:
        return len(self._slots)

    # -- feeding ---------------------------------------------------------------

    def feed(self, event: Event) -> None:
        self.mux.feed(event)

    def feed_all(self, events: Iterable[Event]) -> None:
        self.mux.feed_batch(events)

    def finish(self) -> "MultiQueryRun":
        self.mux.finish()
        return self

    def run(self, events: Iterable[Event]) -> "MultiQueryRun":
        """Evaluate all queries over a complete event stream."""
        self.feed_all(events)
        return self.finish()

    def run_durable(self, events: Iterable[Event], durable: str,
                    batch_events: int = 512,
                    checkpoint_every: int = 16,
                    checkpoint_cost_factor: float = 9.0,
                    manifest_extra: Optional[dict] = None,
                    **wal_opts) -> "MultiQueryRun":
        """Evaluate with write-ahead journaling to ``durable`` (a dir).

        Every frame is durably logged before any pipeline sees it,
        checkpoint envelopes land every ``checkpoint_every`` frames
        subject to time-amortization (plus one covering the empty
        prefix, so recovery always has an envelope to restore; see
        :func:`repro.fault.wal.drive_durable`), and quarantines are
        recorded as STATUS records.  After a crash,
        :func:`repro.fault.recover.recover` on the directory
        reproduces this run byte-identically.  ``wal_opts`` pass
        through to :class:`~repro.fault.wal.WriteAheadLog`
        (``segment_bytes``, ``fsync``, ``crash_after_frames``).
        """
        from ..fault.wal import WriteAheadLog, drive_durable
        wal = WriteAheadLog(durable, **wal_opts)
        manifest = {
            "kind": "multiquery",
            "queries": list(self.query_texts),
            "batch_events": batch_events,
            "checkpoint_every": checkpoint_every,
            "needs_oids": self.needs_oids,
            "source_id": self.source_id,
        }
        manifest.update(manifest_extra or {})
        wal.begin(manifest)
        wal.register_shards([None])
        wal.checkpoint(self.checkpoint(), 0)
        drive_durable(self, events, wal, batch_events=batch_events,
                      checkpoint_every=checkpoint_every,
                      checkpoint_cost_factor=checkpoint_cost_factor)
        return self

    def run_xml(self, text: str, durable: Optional[str] = None,
                **durable_opts) -> "MultiQueryRun":
        """Evaluate all queries over an XML document — tokenized once.

        With projection enabled the shared tokenizer prunes subtrees no
        query's path set can reach (the union projection); per-query
        masks narrow the fan-out further.

        With ``durable`` set to a directory path the run journals to a
        write-ahead log first (see :meth:`run_durable`); projection is
        not combinable with durability (the log must hold the full
        event stream a recovery can resume from).
        """
        if durable is not None:
            if self.projection_matcher is not None:
                raise ValueError("durable runs do not combine with "
                                 "tokenizer projection")
            events = list(tokenize(text, stream_id=self.source_id,
                                   emit_oids=self.needs_oids))
            return self.run_durable(events, durable, **durable_opts)
        tok_hist = None
        if any(r.recorder is not None for r in self.runs):
            from ..obs.histogram import LogHistogram
            tok_hist = LogHistogram()
        if self.projection_matcher is not None:
            from ..xmlio.tokenizer import XMLTokenizer
            tok = XMLTokenizer(stream_id=self.source_id,
                               projection=self.projection_matcher)
            tok.chunk_histogram = tok_hist
            events = list(tok.tokenize(text))
            self.projection_stats = tok.projection_stats
            self.chunk_latency = tok_hist
            return self.run(events)
        if tok_hist is not None:
            from ..xmlio.tokenizer import XMLTokenizer
            tok = XMLTokenizer(stream_id=self.source_id,
                               emit_oids=self.needs_oids)
            tok.chunk_histogram = tok_hist
            events = list(tok.tokenize(text))
            self.chunk_latency = tok_hist
            return self.run(events)
        events = tokenize(text, stream_id=self.source_id,
                          emit_oids=self.needs_oids)
        return self.run(events)

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(self) -> bytes:
        """Snapshot the whole executor mid-stream into one envelope.

        The entire object graph — every pipeline, the multiplexer with
        its shared stripper and guard, dedup aliasing, quarantine
        records, armed faults — goes into one pickle, so restoring gives
        back an executor whose continued run is byte-identical to never
        having stopped.  This is the blob shard workers ship to their
        supervisor (see :mod:`repro.parallel.shard`).
        """
        from ..fault.checkpoint import encode_checkpoint
        return encode_checkpoint(
            "multiquery", {"queries": list(self.query_texts)}, self)

    @classmethod
    def restore(cls, blob: bytes, queries=None) -> "MultiQueryRun":
        """Rehydrate a :meth:`checkpoint` snapshot.

        ``queries`` (optional) guards against feeding the wrong blob to
        a restore site: the checkpointed query texts must match exactly.
        Checkpoints are process-local, version-locked state transfer —
        not durable archives (see DESIGN.md section 9).
        """
        from ..fault.checkpoint import decode_checkpoint, require_schema
        schema, run = decode_checkpoint(blob, "multiquery")
        if queries is not None:
            require_schema(schema, {"queries": list(queries)})
        return run

    # -- results ---------------------------------------------------------------

    def query_run(self, i: int) -> QueryRun:
        """The (possibly shared) live run serving query ``i``."""
        return self.runs[self._slots[i]]

    def text(self, i: int) -> Optional[str]:
        """Query ``i``'s current answer, or ``None`` once quarantined."""
        slot = self._slots[i]
        if slot in self.mux.quarantined:
            return None
        return self.runs[slot].text()

    def texts(self) -> list:
        """Current answers, one per query, in construction order.

        Quarantined queries report ``None`` — their displays froze at an
        arbitrary mid-stream point, so exposing the partial text would
        present a wrong answer as a result.
        """
        quarantined = self.mux.quarantined
        return [None if s in quarantined else self.runs[s].text()
                for s in self._slots]

    def statuses(self) -> list:
        """Per-query health, submission order.

        ``"ok"``, ``"quarantined"``, or ``"empty"`` — the last for
        queries the type checker proved can never produce output
        (their empty text is the exact answer, not a failure).
        """
        quarantined = self.mux.quarantined
        empty = self.static_empty_slots
        return ["empty" if s in empty
                else "quarantined" if s in quarantined else "ok"
                for s in self._slots]

    def error_reports(self) -> dict:
        """Query index -> captured error report for quarantined queries."""
        quarantined = self.mux.quarantined
        return {i: quarantined[s] for i, s in enumerate(self._slots)
                if s in quarantined}

    def stats(self) -> dict:
        """Aggregate executor metrics plus the per-query breakdown.

        ``per_query`` is in submission order; deduplicated queries report
        their shared pipeline's stats.  Aggregate counters (transformer
        calls, state cells) count each unique pipeline once.  Every
        per-query entry carries a ``status`` key; the top-level
        ``quarantined`` count says how many pipelines were detached.
        """
        stats = self.mux.stats()
        quarantined = self.mux.quarantined
        for s, entry in enumerate(stats["per_pipeline"]):
            entry["status"] = ("empty" if s in self.static_empty_slots
                               else "quarantined" if s in quarantined
                               else "ok")
        stats["queries"] = len(self._slots)
        stats["deduped"] = len(self._slots) - len(self.runs)
        stats["quarantined"] = len(quarantined)
        stats["static_empty"] = len(self.static_empty_slots)
        stats["per_query"] = [stats["per_pipeline"][s]
                              for s in self._slots]
        if self.groups:
            prefix_calls = sum(g.pipeline.total_calls()
                               for g in self.groups)
            stats["sharing"] = {
                "groups": [g.stats() for g in self.groups],
                "shared_queries": sum(len(g.member_indices)
                                      for g in self.groups),
                "prefix_calls": prefix_calls,
            }
            # The aggregate counts every transformer dispatch actually
            # performed, shared prefix stages included.
            stats["transformer_calls"] += prefix_calls
        if self.projection is not None:
            stats["projection"] = self.projection_summary()
        if any(r.recorder is not None for r in self.runs):
            stats["metrics"] = self.metrics()
        return stats

    def projection_summary(self) -> Optional[dict]:
        """Union projection, tokenizer counters, per-mask drop counts."""
        if self.projection is None:
            return None
        out = {
            "union": self.projection.to_dict(),
            "tokenizer_pruning": self.projection_matcher is not None,
            "masked_pipelines": len(self._masks),
            "mask_events_dropped": sum(
                m.counters["mask_events_dropped"]
                for m in self._masks.values()),
        }
        if self.projection_stats is not None:
            out["tokenizer"] = self.projection_stats.to_dict()
        return out

    def metrics(self) -> Optional[dict]:
        """Merged telemetry across unique pipelines (None when off).

        Tokenizer-level pruning counters are added exactly once (they
        are executor state, not pipeline state), so a sharded run —
        whose parent prunes with the same union matcher — merges to the
        same totals.
        """
        from ..obs import merge_metrics
        dicts = [r.recorder.to_dict() for r in self.runs
                 if r.recorder is not None]
        if not dicts:
            return None
        merged = merge_metrics(dicts)
        if self.projection_stats is not None:
            proj = merged.setdefault("projection", {})
            for key, value in self.projection_stats.counter_dict().items():
                proj[key] = proj.get(key, 0) + value
        if self.chunk_latency is not None:
            # One shared tokenizer pass, one histogram — added here,
            # not per run, so sharded parents merge to the same totals.
            merged.setdefault("histograms", {})["tokenizer_chunk"] = \
                self.chunk_latency.to_dict()
        return merged

    def __repr__(self) -> str:
        return "MultiQueryRun({} queries, {} pipelines)".format(
            len(self._slots), len(self.runs))


class XFlux:
    """A streaming XQuery processor built on update streams.

    Args:
        query: query text in the supported XQuery subset, or a parsed AST.
        mutable_source: declare that the input stream embeds updates;
            predicate/join decisions then stay revocable (more state,
            Section V pruning off).  Leave False for plain documents.
        schema: declare the document schema and let the static type
            checker (:mod:`repro.analysis.types`) optimize every
            compiled plan: provably-dead stages become structural
            relays and statically-empty plans collapse to a
            constant-empty pipeline, byte-identically.  Accepts an
            :class:`~repro.analysis.schema.ElementSchema`, the names
            ``"xmark"``/``"dblp"``, or a DTD file path.  Ignored for
            mutable sources (inference is defined over documents).
    """

    def __init__(self, query, mutable_source: bool = False,
                 ignore_updates: bool = False, schema=None) -> None:
        # Parsing goes through the module-level AST cache: constructing
        # many engines for the same standing query parses once (the
        # compiler never mutates the AST, so sharing is safe).
        self.ast: Expr = (parse_cached(query) if isinstance(query, str)
                          else query)
        self.query_text = query if isinstance(query, str) else repr(query)
        self.mutable_source = mutable_source
        #: Section V consumer opt-out: treat every incoming mutable region
        #: as fixed content; updates targeting them become void and no
        #: per-region state is ever retained.
        self.ignore_updates = ignore_updates
        #: Declared document schema driving compile-time type-directed
        #: plan optimization (None: compile plans as written).
        self.schema = schema

    def compile(self, optimize: Optional[bool] = None) -> Plan:
        """Compile a fresh plan (stream numbers are single-use).

        With a declared ``schema`` the plan is run through the static
        type checker and optimized (dead stages relayed, statically
        empty plans collapsed); ``optimize=False`` is the escape hatch
        returning the plan exactly as compiled — the differential
        tests compare the two paths byte for byte.
        """
        compiler = Compiler(ctx=Context(), source_id=0,
                            mutable_source=self.mutable_source
                            and not self.ignore_updates)
        plan = compiler.compile(self.ast)
        if optimize is False:
            return plan
        if self.schema is not None or optimize:
            from ..analysis.types import optimize_plan
            plan = optimize_plan(plan, schema=self.schema)
        return plan

    def start(self, on_change: Optional[Callable[[Event, Display],
                                                 None]] = None,
              track_snapshots: bool = False,
              sanitize: Optional[bool] = None,
              metrics: Optional[bool] = None,
              trace: bool = False,
              sample_interval: int = 256,
              reclaim_on_freeze: bool = True,
              fuse: Optional[bool] = None,
              flight: Optional[bool] = None) -> QueryRun:
        """Begin a continuous run; feed it events as they arrive."""
        return QueryRun(self.compile(), on_change=on_change,
                        track_snapshots=track_snapshots,
                        ignore_updates=self.ignore_updates,
                        sanitize=sanitize, metrics=metrics, trace=trace,
                        sample_interval=sample_interval,
                        reclaim_on_freeze=reclaim_on_freeze,
                        fuse=fuse, flight=flight)

    def run(self, events: Iterable[Event], **kwargs) -> QueryRun:
        """Evaluate over a complete event stream."""
        run = self.start(**kwargs)
        run.feed_all(events)
        return run.finish()

    def run_durable(self, events: Iterable[Event], durable: str,
                    batch_events: int = 512,
                    checkpoint_every: int = 16,
                    checkpoint_cost_factor: float = 9.0,
                    run_kwargs: Optional[dict] = None,
                    **wal_opts) -> QueryRun:
        """Evaluate over an event stream with write-ahead journaling.

        The single-query twin of
        :meth:`MultiQueryRun.run_durable`: frames are logged to the
        ``durable`` directory before the pipeline sees them, with
        periodic ``queryrun`` checkpoint envelopes, so
        :func:`repro.fault.recover.recover` reproduces the run after a
        crash (the recovery side re-compiles this same query from the
        manifest and restores into it).
        """
        from ..fault.wal import WriteAheadLog, drive_durable
        run = self.start(**(run_kwargs or {}))
        wal = WriteAheadLog(durable, **wal_opts)
        wal.begin({
            "kind": "query",
            "query": self.query_text,
            "mutable_source": self.mutable_source,
            "ignore_updates": self.ignore_updates,
            "batch_events": batch_events,
            "checkpoint_every": checkpoint_every,
            "needs_oids": run.plan.needs_oids,
            "source_id": run.plan.source_id,
        })
        wal.register_shards([None])
        wal.checkpoint(run.checkpoint(), 0)
        drive_durable(run, events, wal, batch_events=batch_events,
                      checkpoint_every=checkpoint_every,
                      checkpoint_cost_factor=checkpoint_cost_factor)
        return run

    def run_xml(self, text: str, projection: bool = False,
                schema=None, durable: Optional[str] = None,
                durable_opts: Optional[dict] = None,
                **kwargs) -> QueryRun:
        """Evaluate over an XML document string (tokenized on the fly).

        With ``projection=True`` the compiled plan's path projection is
        derived (:mod:`repro.analysis.projection`) and, when it proves
        prunable, pushed into the tokenizer as a subtree-skip mode; the
        result is byte-identical by construction and ``schema`` (an
        :class:`~repro.analysis.projection.ElementSchema` or the name
        ``"xmark"``/``"dblp"``) sharpens what counts as prunable.

        With ``durable`` set to a directory path the run journals every
        frame to a write-ahead log ahead of dispatch and checkpoints
        periodically (see :meth:`run_durable`; ``durable_opts`` pass
        through).  Durability does not combine with projection — the
        log must hold the full stream a recovery can resume from.
        """
        if durable is not None:
            if projection:
                raise ValueError("durable runs do not combine with "
                                 "tokenizer projection")
            plan_probe = self.compile()
            events = list(tokenize(text, stream_id=plan_probe.source_id,
                                   emit_oids=plan_probe.needs_oids))
            return self.run_durable(events, durable, run_kwargs=kwargs,
                                    **(durable_opts or {}))
        plan_probe = self.compile()
        run = QueryRun(plan_probe, **kwargs)
        matcher = None
        if projection:
            from ..analysis.projection import (ProjectionMatcher,
                                               derive_projection)
            run.projection = derive_projection(plan_probe)
            candidate = ProjectionMatcher(run.projection, schema=schema)
            if candidate.prunable:
                matcher = candidate
        tok_hist = None
        if run.recorder is not None:
            from ..obs.histogram import TOKENIZER_CHUNK, LogHistogram
            tok_hist = run.recorder.histograms.setdefault(
                TOKENIZER_CHUNK, LogHistogram())
        if matcher is None:
            if tok_hist is None:
                events = tokenize(text, stream_id=plan_probe.source_id,
                                  emit_oids=plan_probe.needs_oids)
            else:
                from ..xmlio.tokenizer import XMLTokenizer
                tok = XMLTokenizer(stream_id=plan_probe.source_id,
                                   emit_oids=plan_probe.needs_oids)
                tok.chunk_histogram = tok_hist
                events = list(tok.tokenize(text))
        else:
            from ..xmlio.tokenizer import XMLTokenizer
            tok = XMLTokenizer(stream_id=plan_probe.source_id,
                               projection=matcher)
            tok.chunk_histogram = tok_hist
            events = list(tok.tokenize(text))
            run.projection_stats = tok.projection_stats
            if run.recorder is not None:
                run.recorder.projection = \
                    tok.projection_stats.counter_dict()
        run.feed_all(events)
        return run.finish()

    def __repr__(self) -> str:
        return "XFlux({!r})".format(self.query_text)
