"""XFlux: the public query engine.

Typical use::

    from repro import XFlux

    engine = XFlux('X//europe//item[location="Albania"]/quantity')
    result = engine.run_xml(open("auction.xml").read())
    print(result.text())          # the final answer
    print(result.stats())         # buffering metrics

Continuous operation::

    engine = XFlux('stream()//quote[name="IBM"]/price',
                   mutable_source=True)
    run = engine.start()
    for event in ticker_events:
        run.feed(event)
        print(run.display.text())   # the continuously updated answer

The engine compiles the query once per ``start()``/``run()`` (stream
numbers are single-use) and pushes events through the transformer
pipeline into a :class:`~repro.core.display.Display`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..core.display import Display
from ..core.pipeline import Pipeline
from ..core.transformer import Context
from ..events.model import Event
from ..xmlio.tokenizer import tokenize
from .ast import Expr
from .compiler import Compiler, Plan
from .parser import parse


class QueryRun:
    """One live execution of a compiled query."""

    def __init__(self, plan: Plan,
                 on_change: Optional[Callable[[Event, Display],
                                              None]] = None,
                 track_snapshots: bool = False,
                 ignore_updates: bool = False,
                 always_active: bool = False) -> None:
        self.plan = plan
        self.display = Display(plan.result_id, on_change=on_change,
                               track_snapshots=track_snapshots)
        self.pipeline = Pipeline(plan.ctx, plan.stages, self.display,
                                 always_active=always_active)
        from ..events.model import UpdateStripper
        self._stripper = UpdateStripper() if ignore_updates else None

    def feed(self, event: Event) -> None:
        if self._stripper is not None:
            for e in self._stripper.feed(event):
                self.pipeline.feed(e)
            return
        self.pipeline.feed(event)

    def feed_all(self, events: Iterable[Event]) -> None:
        """Feed a whole batch through the flattened pipeline driver."""
        if self._stripper is not None:
            stripper_feed = self._stripper.feed
            self.pipeline.feed_batch(
                e for event in events for e in stripper_feed(event))
            return
        self.pipeline.feed_batch(events)

    def finish(self) -> "QueryRun":
        self.pipeline.finish()
        return self

    # -- results ---------------------------------------------------------------

    def text(self) -> str:
        """The currently displayed answer."""
        return self.display.text()

    def events(self):
        return self.display.events()

    def stats(self) -> dict:
        """Execution metrics: transformer calls and retained state."""
        return {
            "transformer_calls": self.pipeline.total_calls(),
            "state_cells": self.pipeline.state_cells(),
            "live_regions": self.pipeline.live_regions(),
            "display": self.display.stats(),
            "stages": len(self.pipeline.wrappers),
        }


class XFlux:
    """A streaming XQuery processor built on update streams.

    Args:
        query: query text in the supported XQuery subset, or a parsed AST.
        mutable_source: declare that the input stream embeds updates;
            predicate/join decisions then stay revocable (more state,
            Section V pruning off).  Leave False for plain documents.
    """

    def __init__(self, query, mutable_source: bool = False,
                 ignore_updates: bool = False) -> None:
        self.ast: Expr = parse(query) if isinstance(query, str) else query
        self.query_text = query if isinstance(query, str) else repr(query)
        self.mutable_source = mutable_source
        #: Section V consumer opt-out: treat every incoming mutable region
        #: as fixed content; updates targeting them become void and no
        #: per-region state is ever retained.
        self.ignore_updates = ignore_updates

    def compile(self) -> Plan:
        """Compile a fresh plan (stream numbers are single-use)."""
        compiler = Compiler(ctx=Context(), source_id=0,
                            mutable_source=self.mutable_source
                            and not self.ignore_updates)
        return compiler.compile(self.ast)

    def start(self, on_change: Optional[Callable[[Event, Display],
                                                 None]] = None,
              track_snapshots: bool = False) -> QueryRun:
        """Begin a continuous run; feed it events as they arrive."""
        return QueryRun(self.compile(), on_change=on_change,
                        track_snapshots=track_snapshots,
                        ignore_updates=self.ignore_updates)

    def run(self, events: Iterable[Event], **kwargs) -> QueryRun:
        """Evaluate over a complete event stream."""
        run = self.start(**kwargs)
        run.feed_all(events)
        return run.finish()

    def run_xml(self, text: str, **kwargs) -> QueryRun:
        """Evaluate over an XML document string (tokenized on the fly)."""
        plan_probe = self.compile()
        run = QueryRun(plan_probe, **kwargs)
        events = tokenize(text, stream_id=plan_probe.source_id,
                          emit_oids=plan_probe.needs_oids)
        run.feed_all(events)
        return run.finish()

    def __repr__(self) -> str:
        return "XFlux({!r})".format(self.query_text)
