"""Abstract syntax for the supported XQuery subset.

The subset covers everything the paper's nine benchmark queries and its
introduction example use: rooted and variable-relative paths with child,
descendant, text(), parent and ancestor steps; general predicates (path
comparisons against literals, bare-path existence, contains); FLWOR with
where / order by (ascending or descending) / return; element construction;
sequence concatenation; string literals; and the count/sum/avg aggregates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union


class Expr:
    """Base class of all AST nodes."""

    def children(self) -> Sequence["Expr"]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


class Source(Expr):
    """The stream source: a dataset handle like ``X`` or ``stream()``."""

    def __init__(self, name: str = "stream") -> None:
        self.name = name

    def __repr__(self) -> str:
        return "Source({})".format(self.name)


class VarRef(Expr):
    """A FLWOR variable reference ``$x``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return "${}".format(self.name)


class Prebound(Expr):
    """A stream already materialized by another pipeline.

    The multi-query prefix-sharing layer (:mod:`repro.compile.sharing`)
    rewrites each member query's leading path chain to a ``Prebound``
    leaf carrying the shared prefix pipeline's output stream number; the
    compiler then builds only the member's suffix stages against that
    stream.  Never produced by the parser.
    """

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id

    def __repr__(self) -> str:
        return "Prebound({})".format(self.stream_id)


#: Step axes.
CHILD = "child"
DESCENDANT = "descendant"
TEXT = "text"
PARENT = "parent"
ANCESTOR = "ancestor"


class Step(Expr):
    """A navigation step applied to a base expression.

    ``tag`` is None for the wildcard (``*``); unused for text().
    """

    def __init__(self, base: Expr, axis: str, tag: Optional[str]) -> None:
        self.base = base
        self.axis = axis
        self.tag = tag

    def children(self) -> Sequence[Expr]:
        return (self.base,)

    def __repr__(self) -> str:
        sep = {CHILD: "/", DESCENDANT: "//", TEXT: "/text()",
               PARENT: "/..", ANCESTOR: "/ancestor::"}[self.axis]
        label = self.tag if self.tag is not None else "*"
        if self.axis == TEXT:
            return "{!r}{}".format(self.base, sep)
        if self.axis == PARENT:
            return "{!r}{}".format(self.base, sep)
        return "{!r}{}{}".format(self.base, sep, label)


class Filter(Expr):
    """A predicate ``base[cond]``."""

    def __init__(self, base: Expr, cond: Expr) -> None:
        self.base = base
        self.cond = cond

    def children(self) -> Sequence[Expr]:
        return (self.base, self.cond)

    def __repr__(self) -> str:
        return "{!r}[{!r}]".format(self.base, self.cond)


class Compare(Expr):
    """A general comparison of a path against a literal."""

    def __init__(self, left: Expr, op: str, literal: str) -> None:
        self.left = left
        self.op = op
        self.literal = literal

    def children(self) -> Sequence[Expr]:
        return (self.left,)

    def __repr__(self) -> str:
        return "({!r} {} {!r})".format(self.left, self.op, self.literal)


class BoolExpr(Expr):
    """Conjunction or disjunction of conditions (predicates/where only)."""

    def __init__(self, op: str, items) -> None:
        if op not in ("and", "or"):
            raise ValueError("bad boolean operator {!r}".format(op))
        self.op = op
        self.items = list(items)

    def children(self) -> Sequence["Expr"]:
        return tuple(self.items)

    def __repr__(self) -> str:
        return "({})".format((" " + self.op + " ").join(
            repr(i) for i in self.items))


class FunCall(Expr):
    """count(e) / sum(e) / avg(e) / contains(e, "lit")."""

    def __init__(self, name: str, args: Sequence[Expr],
                 literal: Optional[str] = None) -> None:
        self.name = name
        self.args = list(args)
        self.literal = literal  # for contains(expr, "literal")

    def children(self) -> Sequence[Expr]:
        return tuple(self.args)

    def __repr__(self) -> str:
        return "{}({!r})".format(self.name, self.args)


class StringLit(Expr):
    """A string literal item (e.g. in a return sequence)."""

    def __init__(self, value: str) -> None:
        self.value = value

    def __repr__(self) -> str:
        return repr(self.value)


class SequenceExpr(Expr):
    """Comma concatenation ``(e1, e2, ...)``."""

    def __init__(self, items: Sequence[Expr]) -> None:
        self.items = list(items)

    def children(self) -> Sequence[Expr]:
        return tuple(self.items)

    def __repr__(self) -> str:
        return "({})".format(", ".join(repr(i) for i in self.items))


class ElementCtor(Expr):
    """``<tag>{ content }</tag>`` — content is a list of Expr/StringLit."""

    def __init__(self, tag: str, content: Sequence[Expr]) -> None:
        self.tag = tag
        self.content = list(content)

    def children(self) -> Sequence[Expr]:
        return tuple(self.content)

    def __repr__(self) -> str:
        return "<{}>{{{!r}}}</{}>".format(self.tag, self.content, self.tag)


class FLWOR(Expr):
    """for $var in seq (let $v := e)* (where c)? (order by k)? return r."""

    def __init__(self, var: str, seq: Expr, where: Optional[Expr],
                 order_key: Optional[Expr], descending: bool,
                 ret: Expr, lets: Optional[Sequence] = None) -> None:
        self.var = var
        self.seq = seq
        self.lets = list(lets or ())  # [(name, Expr), ...]
        self.where = where
        self.order_key = order_key
        self.descending = descending
        self.ret = ret

    def children(self) -> Sequence[Expr]:
        out: List[Expr] = [self.seq]
        out.extend(expr for _, expr in self.lets)
        if self.where is not None:
            out.append(self.where)
        if self.order_key is not None:
            out.append(self.order_key)
        out.append(self.ret)
        return tuple(out)

    def __repr__(self) -> str:
        parts = ["for ${} in {!r}".format(self.var, self.seq)]
        if self.where is not None:
            parts.append("where {!r}".format(self.where))
        if self.order_key is not None:
            parts.append("order by {!r}{}".format(
                self.order_key, " descending" if self.descending else ""))
        parts.append("return {!r}".format(self.ret))
        return " ".join(parts)


def uses_backward_axes(expr: Expr) -> bool:
    """Does the query need source cloning (parent / ancestor steps)?"""
    return any(isinstance(n, Step) and n.axis in (PARENT, ANCESTOR)
               for n in expr.walk())
