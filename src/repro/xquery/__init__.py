"""XQuery frontend: parser, compiler, and the XFlux engine."""

from . import ast
from .compiler import CompileError, Compiler, Plan, compile_query
from .engine import QueryRun, XFlux
from .parser import XQuerySyntaxError, parse

__all__ = [
    "ast", "parse", "XQuerySyntaxError",
    "Compiler", "Plan", "compile_query", "CompileError",
    "XFlux", "QueryRun",
]
