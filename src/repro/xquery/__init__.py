"""XQuery frontend: parser, compiler, and the XFlux engine."""

from . import ast
from .compiler import CompileError, Compiler, Plan, compile_query
from .engine import MultiQueryRun, QueryRun, XFlux
from .parser import XQuerySyntaxError, parse, parse_cached

__all__ = [
    "ast", "parse", "XQuerySyntaxError",
    "Compiler", "Plan", "compile_query", "CompileError",
    "XFlux", "QueryRun", "MultiQueryRun", "parse_cached",
]
